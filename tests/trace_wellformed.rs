//! Well-formedness of the emitted Chrome trace-event JSON: what Perfetto
//! (and the CI artifact consumers) rely on. Drives a real engine run plus
//! a cluster run through the exporter and checks the output parses as
//! JSON, timestamps are monotone, async `b`/`e` spans balance per
//! `(pid, cat, id)`, and complete (`X`) events carry non-negative
//! durations.

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::cluster::{ClusterConfig, ClusterSim, RoundRobinRouter};
use dz_serve::{
    chrome_trace_json, Autoscaler, ChaosConfig, CostModel, DeltaZipConfig, DeltaZipEngine, Engine,
    FaultEvent, FaultKind, FaultPlan, TraceConfig, TraceTrack,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use serde::value::Value;
use std::collections::HashMap;

fn churn_trace(seed: u64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 1.5,
        duration_s: 30.0,
        popularity: PopularityDist::Zipf { alpha: 1.2 },
        seed,
    })
}

fn engine_config() -> DeltaZipConfig {
    DeltaZipConfig {
        max_concurrent_deltas: 2,
        max_batch: 16,
        host_capacity_deltas: Some(4),
        ..DeltaZipConfig::default()
    }
}

/// One engine lane and a cluster's lanes, traced.
fn traced_tracks() -> Vec<TraceTrack> {
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
    let mut engine =
        DeltaZipEngine::new(cost, engine_config()).with_tracing(TraceConfig::default());
    engine.run(&churn_trace(0x7E57));
    let mut tracks = vec![TraceTrack {
        name: "engine".into(),
        log: engine.tracer.take_log().expect("tracing was enabled"),
    }];

    let config = ClusterConfig {
        n_replicas: 2,
        engine: engine_config(),
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(vec![cost; 2], config, Box::new(RoundRobinRouter::new()))
        .with_tracing(TraceConfig::default());
    sim.run(&churn_trace(0xC1));
    tracks.extend(sim.take_trace());

    // A chaos run: crash + cold restart + autoscaler, so the exporter
    // sees ReplicaDown/ReplicaUp/Scale* instants and the fleet counter
    // lane alongside the ordinary request spans.
    let chaos = ChaosConfig {
        plan: FaultPlan::scripted(vec![FaultEvent {
            at: 8.0,
            kind: FaultKind::Crash {
                replica: 0,
                restart_after_s: Some(6.0),
            },
        }]),
        autoscaler: Some(Autoscaler::new(1, 2)),
        seed: 0xC405,
        ..ChaosConfig::default()
    };
    let config = ClusterConfig {
        n_replicas: 2,
        engine: engine_config(),
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(vec![cost; 2], config, Box::new(RoundRobinRouter::new()))
        .with_chaos(chaos)
        .with_tracing(TraceConfig::default());
    sim.run(&churn_trace(0xC2));
    for mut track in sim.take_trace() {
        track.name = format!("chaos/{}", track.name);
        tracks.push(track);
    }
    tracks
}

fn events(doc: &Value) -> Vec<&Value> {
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    events.iter().collect()
}

fn str_field<'a>(e: &'a Value, key: &str) -> &'a str {
    match e.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("event missing string `{key}`: {other:?}"),
    }
}

fn num_field(e: &Value, key: &str) -> f64 {
    e.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("event missing number `{key}`"))
}

#[test]
fn chrome_trace_is_wellformed() {
    let tracks = traced_tracks();
    assert!(
        tracks.len() >= 7,
        "engine + frontend + 2 replicas + chaos lanes, got {}",
        tracks.len()
    );
    let json = chrome_trace_json(&tracks);
    let doc = Value::parse_json(&json).expect("exporter must emit valid JSON");
    let events = events(&doc);
    assert!(events.len() > 100, "a churn run must emit real volume");

    // Timestamps are monotone non-decreasing in emission order
    // (metadata events sort first with a sentinel ts).
    let mut last_ts = f64::NEG_INFINITY;
    let mut n_spans = 0usize;
    let mut open: HashMap<(u64, String, u64), usize> = HashMap::new();
    for e in &events {
        let ph = str_field(e, "ph");
        if ph == "M" {
            continue;
        }
        let ts = num_field(e, "ts");
        assert!(ts >= last_ts, "timestamps regress: {ts} after {last_ts}");
        last_ts = ts;
        match ph {
            "b" | "e" => {
                n_spans += 1;
                let key = (
                    num_field(e, "pid") as u64,
                    str_field(e, "cat").to_string(),
                    num_field(e, "id") as u64,
                );
                let depth = open.entry(key.clone()).or_insert(0);
                if ph == "b" {
                    *depth += 1;
                } else {
                    assert!(*depth > 0, "unbalanced `e` for {key:?}");
                    *depth -= 1;
                }
            }
            "X" => {
                assert!(num_field(e, "dur") >= 0.0, "negative X duration");
            }
            "C" | "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(n_spans > 0, "trace must contain async spans");
    for (key, depth) in &open {
        assert_eq!(*depth, 0, "span {key:?} left open");
    }

    // The chaos lanes must surface their lifecycle instants and the
    // fleet-size counter.
    let named = |name: &str| {
        events
            .iter()
            .any(|e| matches!(e.get("name"), Some(Value::Str(s)) if s == name))
    };
    assert!(named("replica_down"), "chaos crash instant missing");
    assert!(named("replica_up"), "chaos restart instant missing");
    assert!(named("fleet"), "fleet-size counter lane missing");
}

#[test]
fn chrome_trace_of_empty_tracks_is_valid() {
    let json = chrome_trace_json(&[]);
    let doc = Value::parse_json(&json).expect("empty trace must still parse");
    assert!(events(&doc).is_empty());
}
