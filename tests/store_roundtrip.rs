//! Acceptance integration: a compressed delta round-trips through
//! `ArtifactWriter → registry → TieredDeltaStore → ModelManager`, and the
//! serving engine's per-request `load_wait_s` reflects the artifact's real
//! compressed byte size under the measured pipeline model — charges are
//! max(physical transfer, measured decode), host hits never dearer than
//! disk misses.

use deltazip::{DeltaZip, DzError};
use dz_compress::pipeline::DeltaCompressConfig;
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_model::tasks::{Corpus, NliTask, SentimentTask};
use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
use dz_model::transformer::{test_config, Params};
use dz_serve::{CostModel, DeltaStoreBinding, DeltaZipConfig};
use dz_store::{Registry, TieredDeltaStore};
use dz_tensor::Rng;
use dz_workload::{PopularityDist, Request, Trace, TraceSpec};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deltazip-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn one_request_trace(model: usize, n_models: usize) -> Trace {
    Trace {
        spec: TraceSpec {
            n_models,
            arrival_rate: 1.0,
            duration_s: 1.0,
            popularity: PopularityDist::Uniform,
            seed: 0,
        },
        requests: vec![Request {
            id: 0,
            model,
            arrival: 0.0,
            prompt_tokens: 16,
            output_tokens: 4,
        }],
    }
}

#[test]
fn full_pipeline_roundtrip_and_byte_accurate_load_waits() {
    // 1. Train a tiny base and two fine-tuned variants; ΔCompress them.
    let cfg = test_config();
    let mut rng = Rng::seeded(1);
    let mut base = Params::init(cfg, &mut rng);
    let corpus = Corpus::new(cfg.max_seq);
    pretrain(&mut base, &corpus, TrainConfig::pretrain(40));
    let mut sent = base.clone();
    finetune_fmt(&mut sent, &SentimentTask, TrainConfig::finetune(25));
    let mut nli = base.clone();
    finetune_fmt(&mut nli, &NliTask, TrainConfig::finetune(25));

    let mut dz = DeltaZip::new();
    let b = dz.register_base("tiny-base", base.clone()).unwrap();
    let v_sent = dz
        .register_fmt_variant("sent", b, &sent, DeltaCompressConfig::starred(4))
        .unwrap();
    let v_nli = dz
        .register_fmt_variant("nli", b, &nli, DeltaCompressConfig::starred(2))
        .unwrap();

    // 2. Persist both variants: ArtifactWriter → content-addressed registry.
    let dir = temp_dir("pipeline");
    let registry = Registry::open(&dir).expect("open registry");
    let id_sent = dz.persist_variant(v_sent, &registry).unwrap();
    let id_nli = dz.persist_variant(v_nli, &registry).unwrap();
    assert_ne!(id_sent, id_nli);
    registry.verify(&id_sent).expect("sent integrity");
    registry.verify(&id_nli).expect("nli integrity");

    // 3. A fresh ModelManager loads the variants back from the registry and
    // serves byte-identically to the in-memory originals.
    let mut dz2 = DeltaZip::new();
    let b2 = dz2.register_base("tiny-base", base).unwrap();
    let v2_sent = dz2
        .register_variant_from_artifact(b2, &registry, &id_sent)
        .unwrap();
    let v2_nli = dz2
        .register_variant_from_artifact(b2, &registry, &id_nli)
        .unwrap();
    let prompt = [1usize, 20, 21, 2];
    assert_eq!(
        dz2.generate(v2_sent, &prompt, 4).unwrap(),
        dz.generate(v_sent, &prompt, 4).unwrap()
    );
    assert_eq!(
        dz2.generate(v2_nli, &prompt, 4).unwrap(),
        dz.generate(v_nli, &prompt, 4).unwrap()
    );
    // Loading against an unknown artifact id fails with a typed error.
    let bogus = dz_store::ArtifactId(dz_store::sha256(b"no such artifact"));
    assert!(matches!(
        dz2.register_variant_from_artifact(b2, &registry, &bogus),
        Err(DzError::Storage(_))
    ));

    // 4. Serving: the engine bound to a TieredDeltaStore charges loads by
    // the artifacts' real .dza sizes.
    let size_sent = registry.size_of(&id_sent).expect("size");
    let size_nli = registry.size_of(&id_nli).expect("size");
    // 2-bit deltas pack tighter than 4-bit ones on disk too.
    assert!(size_nli < size_sent, "{size_nli} vs {size_sent}");

    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    let store = TieredDeltaStore::new(registry, 1 << 30);
    let binding = DeltaStoreBinding::new(store, vec![id_sent, id_nli]);
    let config = DeltaZipConfig::default();

    // Cold request: the single request waits exactly the pipelined charge
    // for its artifact's real byte size — max(disk + PCIe, decode) at the
    // decode throughput the store measured while serving this very fetch.
    let trace_sent = one_request_trace(0, 2);
    let (m_cold, binding) = dz2.simulate_with_store(&trace_sent, cost, config, binding);
    assert_eq!(m_cold.len(), 1);
    let cold_wait = m_cold.records[0].load_s;
    let gbps_cold = binding.measured_decode_gbps();
    assert!(
        gbps_cold.is_some(),
        "a cold load must leave a measured decode throughput behind"
    );
    let want_cold = cost.delta_cold_load_time_measured(size_sent as f64, gbps_cold);
    assert!(
        (cold_wait - want_cold).abs() < 1e-9,
        "cold wait {cold_wait} must equal the artifact-sized charge {want_cold}"
    );

    // Warm request for the same variant: the artifact (and its decoded
    // form) is host-resident — no new decode runs, the measurement is
    // unchanged, and the charge is the decode-free swap-in: the *raw*
    // bytes stream over PCIe with no decompression stage, never more
    // than the cold charge.
    let (m_warm, mut binding) = dz2.simulate_with_store(&trace_sent, cost, config, binding);
    let warm_wait = m_warm.records[0].load_s;
    let gbps_warm = binding.measured_decode_gbps();
    assert_eq!(
        gbps_warm, gbps_cold,
        "a host hit must not re-run the decode pipeline"
    );
    let refetch = binding
        .store_mut()
        .fetch_decoded(&id_sent)
        .expect("decode-free refetch");
    assert!(
        refetch.decode.is_none(),
        "the decoded copy must still be resident"
    );
    let want_warm = cost.decoded_load_time_bytes(refetch.raw_bytes as f64);
    assert!(
        (warm_wait - want_warm).abs() < 1e-9,
        "warm wait {warm_wait} must equal the decode-free charge {want_warm}"
    );
    assert!(
        warm_wait <= cold_wait,
        "host hit {warm_wait} cannot exceed disk miss {cold_wait}"
    );

    // The smaller 2-bit artifact's cold charge is again byte-exact under
    // the measurement taken after its own decode, and at equal throughput
    // fewer bytes always cost less.
    let trace_nli = one_request_trace(1, 2);
    let (m_nli, binding) = dz2.simulate_with_store(&trace_nli, cost, config, binding);
    let nli_cold_wait = m_nli.records[0].load_s;
    let gbps_nli = binding.measured_decode_gbps();
    let want_nli = cost.delta_cold_load_time_measured(size_nli as f64, gbps_nli);
    assert!(
        (nli_cold_wait - want_nli).abs() < 1e-9,
        "nli cold wait {nli_cold_wait} must equal {want_nli}"
    );
    assert!(
        cost.delta_cold_load_time_measured(size_nli as f64, gbps_nli)
            < cost.delta_cold_load_time_measured(size_sent as f64, gbps_nli),
        "fewer bytes must cost less at equal measured throughput"
    );

    // The store accounted every byte that crossed the disk link.
    let total = binding.store().total_stats();
    assert_eq!(total.disk_loads, 2);
    assert_eq!(total.disk_bytes, size_sent + size_nli);
    // Two host hits: the engine's warm load plus the test's own
    // decode-free refetch above.
    assert_eq!(total.host_hits, 2);
    assert_eq!(total.host_bytes, 2 * size_sent);

    std::fs::remove_dir_all(&dir).ok();
}
