//! End-to-end integration: train -> register -> ΔCompress -> serve, across
//! crates, checking the paper's qualitative claims at miniature scale.

use deltazip::DeltaZip;
use dz_compress::pipeline::DeltaCompressConfig;
use dz_model::eval::task_accuracy;
use dz_model::tasks::{Corpus, NliTask, SentimentTask, Task};
use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
use dz_model::transformer::{ModelConfig, Params};
use dz_model::vocab;
use dz_tensor::Rng;

fn train_base(cfg: ModelConfig, seed: u64, steps: usize) -> Params {
    let mut rng = Rng::seeded(seed);
    let mut base = Params::init(cfg, &mut rng);
    let corpus = Corpus::new(cfg.max_seq);
    pretrain(&mut base, &corpus, TrainConfig::pretrain(steps));
    base
}

fn tiny_cfg() -> ModelConfig {
    ModelConfig {
        vocab: vocab::MIN_VOCAB,
        d_model: 32,
        n_layers: 2,
        n_heads: 4,
        d_ff: 64,
        max_seq: 24,
    }
}

#[test]
fn register_compress_serve_quality_loop() {
    let cfg = tiny_cfg();
    let base = train_base(cfg, 1, 250);
    let mut tuned = base.clone();
    finetune_fmt(
        &mut tuned,
        &SentimentTask,
        TrainConfig {
            steps: 500,
            batch: 8,
            lr: 2e-3,
            clip: 1.0,
            seed: 2,
        },
    );
    let fmt_acc = task_accuracy(&tuned, &SentimentTask, 300, &mut Rng::seeded(3));
    assert!(fmt_acc > 0.85, "FMT training failed: {fmt_acc}");

    let mut dz = DeltaZip::new();
    let b = dz.register_base("base", base).unwrap();
    let v = dz
        .register_fmt_variant("sentiment", b, &tuned, DeltaCompressConfig::starred(4))
        .unwrap();

    // Claim 1: the artifact is several times smaller than FP16.
    let report = dz.size_report(v).unwrap();
    assert!(
        report.model_ratio() > 1.8,
        "model ratio too low: {}",
        report.model_ratio()
    );
    assert!(
        report.delta_ratio() > 3.0,
        "delta ratio {}",
        report.delta_ratio()
    );

    // Claim 2: compression keeps accuracy close to FMT.
    let rec = dz.reconstruct(v).unwrap();
    let rec_acc = task_accuracy(&rec, &SentimentTask, 300, &mut Rng::seeded(3));
    assert!(
        rec_acc > fmt_acc - 0.1,
        "ΔCompress lost too much: {rec_acc} vs {fmt_acc}"
    );

    // Claim 3: the decoupled serving path computes the same function as the
    // reconstructed dense model.
    let mut task_rng = Rng::seeded(9);
    for _ in 0..10 {
        let ex = SentimentTask.sample(&mut task_rng);
        let served = dz.generate(v, ex.prompt(), 1).unwrap();
        let dense = dz_model::eval::greedy_generate(&rec, ex.prompt(), 1);
        assert_eq!(served, dense);
    }
}

#[test]
fn multi_variant_zoo_round_trip() {
    let cfg = tiny_cfg();
    let base = train_base(cfg, 5, 200);
    let mut sentiment = base.clone();
    finetune_fmt(&mut sentiment, &SentimentTask, TrainConfig::finetune(200));
    let mut nli = base.clone();
    finetune_fmt(&mut nli, &NliTask, TrainConfig::finetune(200));

    let mut dz = DeltaZip::new();
    let b = dz.register_base("shared-base", base).unwrap();
    let v1 = dz
        .register_fmt_variant("sentiment", b, &sentiment, DeltaCompressConfig::starred(4))
        .unwrap();
    let v2 = dz
        .register_fmt_variant("nli", b, &nli, DeltaCompressConfig::starred(2))
        .unwrap();
    assert_eq!(dz.manager().variants_of(b), vec![v1, v2]);

    // 2-bit packs tighter than 4-bit.
    let r1 = dz.size_report(v1).unwrap();
    let r2 = dz.size_report(v2).unwrap();
    assert!(r2.compressed_linear_bytes < r1.compressed_linear_bytes);

    // Batched generation across both variants matches per-variant serving.
    let p1 = vec![vocab::BOS, vocab::word(1), vocab::word(2), vocab::SEP];
    let p2 = vec![
        vocab::BOS,
        vocab::word(3),
        vocab::SEP,
        vocab::word(9),
        vocab::QUERY,
    ];
    let batch = dz
        .generate_batch(&[(v1, p1.clone()), (v2, p2.clone())], 4)
        .unwrap();
    assert_eq!(batch[0], dz.generate(v1, &p1, 4).unwrap());
    assert_eq!(batch[1], dz.generate(v2, &p2, 4).unwrap());
}

#[test]
fn lossless_stage_round_trips_packed_deltas() {
    let cfg = tiny_cfg();
    let base = train_base(cfg, 7, 150);
    let mut tuned = base.clone();
    finetune_fmt(&mut tuned, &SentimentTask, TrainConfig::finetune(150));
    let corpus = Corpus::new(cfg.max_seq);
    let calib = dz_compress::calib::calibration_set(&corpus, 8, 1);
    let (cd, _) = dz_compress::pipeline::delta_compress(
        &base,
        &tuned,
        &calib,
        DeltaCompressConfig::starred(2),
    );
    let payload = cd.to_bytes();
    let compressed = dz_lossless::compress(&payload);
    let restored = dz_lossless::decompress(&compressed).unwrap();
    assert_eq!(restored, payload);
    // Packed 2-bit deltas have plenty of zero runs; lossless should bite.
    assert!(
        compressed.len() < payload.len(),
        "{} -> {}",
        payload.len(),
        compressed.len()
    );
}
