//! Cross-engine serving integration: the paper's relative claims must hold
//! on shared traces, and every engine must satisfy conservation invariants.

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{
    CostModel, DeltaZipConfig, DeltaZipEngine, Engine, EngineBuilder, LoraServingConfig, Metrics,
    VllmScbConfig, VllmScbEngine,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn cost() -> CostModel {
    CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
}

fn trace(rate: f64, pop: PopularityDist, seed: u64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: 32,
        arrival_rate: rate,
        duration_s: 120.0,
        popularity: pop,
        seed,
    })
}

fn check_conservation(trace: &Trace, m: &Metrics) {
    assert_eq!(
        m.len(),
        trace.len(),
        "{}: lost/duplicated requests",
        m.engine
    );
    let mut ids: Vec<usize> = m.records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), trace.len(), "{}: duplicate records", m.engine);
    for r in &m.records {
        assert!(
            r.ttft_s > 0.0 && r.ttft_s <= r.e2e_s + 1e-9,
            "{}: #{}",
            m.engine,
            r.id
        );
        assert!(r.e2e_s.is_finite());
    }
}

#[test]
fn all_engines_conserve_requests() {
    let tr = trace(1.0, PopularityDist::AzureLike, 1);
    let c = cost();
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(DeltaZipEngine::new(c, DeltaZipConfig::default())),
        Box::new(VllmScbEngine::new(c, VllmScbConfig::default())),
        Box::new(
            EngineBuilder::new(c)
                .adapters(LoraServingConfig::default())
                .build_adapter_only(),
        ),
    ];
    for mut e in engines {
        let m = e.run(&tr);
        check_conservation(&tr, &m);
    }
}

#[test]
fn headline_speedup_holds_across_distributions() {
    // Figure 11's claim: DeltaZip achieves 2x-12x throughput vs vLLM+SCB.
    let c = cost();
    for (pop, seed) in [
        (PopularityDist::AzureLike, 2u64),
        (PopularityDist::Uniform, 3),
        (PopularityDist::Zipf { alpha: 1.5 }, 4),
    ] {
        let tr = trace(1.0, pop, seed);
        let vllm = VllmScbEngine::new(c, VllmScbConfig::default()).run(&tr);
        let dz = DeltaZipEngine::new(
            c,
            DeltaZipConfig {
                max_concurrent_deltas: 8,
                ..DeltaZipConfig::default()
            },
        )
        .run(&tr);
        let speedup = vllm.mean_e2e() / dz.mean_e2e();
        assert!(
            speedup > 1.5,
            "{pop:?}: E2E speedup only {speedup:.2} ({} vs {})",
            dz.mean_e2e(),
            vllm.mean_e2e()
        );
        assert!(
            dz.throughput_rps() >= vllm.throughput_rps() * 0.99,
            "{pop:?}: throughput regressed"
        );
    }
}

#[test]
fn ttft_improvement_is_larger_than_e2e_improvement() {
    // The paper attributes the even larger TTFT wins to reduced queuing.
    let c = cost();
    let tr = trace(1.0, PopularityDist::Zipf { alpha: 1.5 }, 5);
    let vllm = VllmScbEngine::new(c, VllmScbConfig::default()).run(&tr);
    let dz = DeltaZipEngine::new(c, DeltaZipConfig::default()).run(&tr);
    let e2e_gain = vllm.mean_e2e() / dz.mean_e2e();
    let ttft_gain = vllm.mean_ttft() / dz.mean_ttft();
    assert!(
        ttft_gain > e2e_gain * 0.8,
        "ttft gain {ttft_gain:.1} vs e2e gain {e2e_gain:.1}"
    );
}

#[test]
fn slo_attainment_dominates_baseline() {
    let c = cost();
    let tr = trace(0.75, PopularityDist::AzureLike, 6);
    let vllm = VllmScbEngine::new(c, VllmScbConfig::default()).run(&tr);
    let dz = DeltaZipEngine::new(c, DeltaZipConfig::default()).run(&tr);
    for slo in [10.0, 30.0, 60.0, 120.0] {
        assert!(
            dz.slo_attainment_e2e(slo) >= vllm.slo_attainment_e2e(slo) - 1e-9,
            "slo {slo}: dz {} vs vllm {}",
            dz.slo_attainment_e2e(slo),
            vllm.slo_attainment_e2e(slo)
        );
    }
}

#[test]
fn deltazip_scales_with_tensor_parallelism() {
    let tr = trace(0.5, PopularityDist::Zipf { alpha: 1.5 }, 7);
    let two = DeltaZipEngine::new(
        CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b()),
        DeltaZipConfig::default(),
    )
    .run(&tr);
    let four = DeltaZipEngine::new(
        CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b()),
        DeltaZipConfig::default(),
    )
    .run(&tr);
    assert!(
        four.mean_e2e() < two.mean_e2e(),
        "4 GPUs {} should beat 2 GPUs {}",
        four.mean_e2e(),
        two.mean_e2e()
    );
}

#[test]
fn deterministic_replay() {
    let c = cost();
    let tr = trace(1.0, PopularityDist::Uniform, 8);
    let a = DeltaZipEngine::new(c, DeltaZipConfig::default()).run(&tr);
    let b = DeltaZipEngine::new(c, DeltaZipConfig::default()).run(&tr);
    assert_eq!(a.mean_e2e(), b.mean_e2e());
    assert_eq!(a.makespan_s, b.makespan_s);
}
