//! Property-based cross-crate invariants of the compression stack.

use dz_compress::obs::{compress_matrix, hessian_from_inputs, output_mse, ObsConfig};
use dz_compress::quant::QuantSpec;
use dz_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn random_problem(seed: u64, d_in: usize, d_out: usize) -> (Matrix, Matrix, Vec<Matrix>) {
    let mut rng = Rng::seeded(seed);
    let w = Matrix::randn(d_in, d_out, 0.02, &mut rng);
    let xs: Vec<Matrix> = (0..3)
        .map(|_| Matrix::randn(16, d_in, 1.0, &mut rng))
        .collect();
    let refs: Vec<&Matrix> = xs.iter().collect();
    let h = hessian_from_inputs(&refs);
    (w, h, xs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reconstruction_is_always_24_sparse(seed in any::<u64>(), blocks in 1usize..5, outs in 1usize..12) {
        let d_in = blocks * 8;
        let (w, h, _) = random_problem(seed, d_in, outs);
        let cfg = ObsConfig { spec: QuantSpec::new(4, 8), sparse24: true, damp: 0.05 };
        let rec = compress_matrix(&w, &h, &cfg).reconstructed;
        for out in 0..outs {
            for g in 0..d_in / 4 {
                let zeros = (0..4).filter(|&k| rec.get(g * 4 + k, out) == 0.0).count();
                prop_assert!(zeros >= 2, "group {g} output {out} has {zeros} zeros");
            }
        }
    }

    #[test]
    fn more_bits_never_hurt_output_error(seed in any::<u64>()) {
        let (w, h, xs) = random_problem(seed, 16, 8);
        let refs: Vec<&Matrix> = xs.iter().collect();
        let err_at = |bits: u32| {
            let cfg = ObsConfig { spec: QuantSpec::new(bits, 8), sparse24: false, damp: 0.05 };
            output_mse(&w, &compress_matrix(&w, &h, &cfg).reconstructed, &refs)
        };
        let e2 = err_at(2);
        let e4 = err_at(4);
        let e8 = err_at(8);
        // Allow a sliver of slack: scales differ per grid.
        prop_assert!(e4 <= e2 * 1.05, "4-bit {e4} vs 2-bit {e2}");
        prop_assert!(e8 <= e4 * 1.05, "8-bit {e8} vs 4-bit {e4}");
    }

    #[test]
    fn packed_bytes_shrink_with_fewer_bits(seed in any::<u64>()) {
        let (w, h, _) = random_problem(seed, 16, 8);
        let size_at = |bits: u32, sparse: bool| {
            let cfg = ObsConfig { spec: QuantSpec::new(bits, 8), sparse24: sparse, damp: 0.05 };
            compress_matrix(&w, &h, &cfg).packed.packed_bytes()
        };
        prop_assert!(size_at(2, true) < size_at(4, true));
        prop_assert!(size_at(4, true) < size_at(4, false) + 1);
        prop_assert!(size_at(4, false) < size_at(8, false));
    }

    #[test]
    fn dequantize_round_trips_through_pack(seed in any::<u64>(), sparse in any::<bool>()) {
        // packed -> dequantize -> matches the solver's own reconstruction.
        let (w, h, _) = random_problem(seed, 16, 6);
        let cfg = ObsConfig { spec: QuantSpec::new(4, 8), sparse24: sparse, damp: 0.05 };
        let res = compress_matrix(&w, &h, &cfg);
        let again = res.packed.dequantize();
        prop_assert!(again.max_abs_diff(&res.reconstructed) < 1e-6);
    }

    #[test]
    fn compressed_payload_survives_lossless(seed in any::<u64>()) {
        let (w, h, _) = random_problem(seed, 16, 8);
        let cfg = ObsConfig { spec: QuantSpec::new(2, 8), sparse24: true, damp: 0.05 };
        let payload = compress_matrix(&w, &h, &cfg).packed.to_bytes();
        let rt = dz_lossless::decompress(&dz_lossless::compress(&payload)).unwrap();
        prop_assert_eq!(rt, payload);
    }
}
