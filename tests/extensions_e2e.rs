//! End-to-end integration of the §8 extensions: RoSA and GaLore variants
//! through the DeltaZip facade, and the policy knobs (SLO classes, length
//! prediction, resume, dynamic N) through the serving simulator.

use deltazip::{DeltaZip, DzError, VariantArtifact};
use dz_compress::pipeline::DeltaCompressConfig;
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_model::eval::task_accuracy;
use dz_model::galore::{finetune_galore, low_rank_residual, GaloreConfig};
use dz_model::rosa::{finetune_rosa, RosaAdapter, RosaConfig};
use dz_model::tasks::{Corpus, SentimentTask};
use dz_model::train::{pretrain, TrainConfig};
use dz_model::transformer::{ModelConfig, Params};
use dz_model::vocab;
use dz_serve::predictor::LengthEstimator;
use dz_serve::slo::SloPolicy;
use dz_serve::tuning::{DynamicN, DynamicNConfig};
use dz_serve::{CostModel, DeltaZipConfig, DeltaZipEngine, Engine, PreemptionPolicy, ResumePolicy};
use dz_tensor::Rng;
use dz_workload::{PopularityDist, Trace, TraceSpec};

fn tiny_cfg() -> ModelConfig {
    ModelConfig {
        vocab: vocab::MIN_VOCAB,
        d_model: 32,
        n_layers: 2,
        n_heads: 4,
        d_ff: 64,
        max_seq: 24,
    }
}

fn train_base(seed: u64, steps: usize) -> Params {
    let cfg = tiny_cfg();
    let mut rng = Rng::seeded(seed);
    let mut base = Params::init(cfg, &mut rng);
    pretrain(
        &mut base,
        &Corpus::new(cfg.max_seq),
        TrainConfig::pretrain(steps),
    );
    base
}

#[test]
fn rosa_and_galore_through_the_facade() {
    let base = train_base(21, 250);
    let train = TrainConfig {
        steps: 300,
        batch: 8,
        lr: 1e-2,
        clip: 1.0,
        seed: 22,
    };

    let mut rosa = RosaAdapter::init(&base, RosaConfig::new(4, 0.05), &mut Rng::seeded(23));
    finetune_rosa(&base, &mut rosa, &SentimentTask, train);

    let mut galore_model = base.clone();
    finetune_galore(
        &mut galore_model,
        &SentimentTask,
        TrainConfig { lr: 3e-3, ..train },
        GaloreConfig::rank(4),
    );

    let mut dz = DeltaZip::new();
    let b = dz.register_base("base", base.clone()).unwrap();
    let v_rosa = dz.register_rosa("rosa", b, rosa).unwrap();
    let v_galore = dz
        .register_fmt_variant("galore", b, &galore_model, DeltaCompressConfig::starred(4))
        .unwrap();

    // Both variants improved over the (already decent) base model.
    let mut eval_rng = Rng::seeded(24);
    let base_acc = task_accuracy(&base, &SentimentTask, 300, &mut eval_rng);
    for vid in [v_rosa, v_galore] {
        let served = dz.reconstruct(vid).unwrap();
        let acc = task_accuracy(&served, &SentimentTask, 300, &mut eval_rng);
        assert!(
            acc > (base_acc + 0.05).max(0.85),
            "variant {vid:?} failed to learn: {acc} vs base {base_acc}"
        );
    }

    // GaLore's update is full-rank: only the delta path can host it, and
    // ΔCompress still packs it several times smaller than FP16.
    let delta = galore_model
        .get("layer0.wq")
        .unwrap()
        .sub(base.get("layer0.wq").unwrap());
    assert!(low_rank_residual(&delta, 4, &mut eval_rng) > 0.05);
    let report = dz.size_report(v_galore).unwrap();
    assert!(
        report.delta_ratio() > 3.0,
        "delta ratio {}",
        report.delta_ratio()
    );

    // RoSA rides the adapter path; its artifact undercuts both the full
    // model and a dense FP16 delta of the adapted projections (at real
    // scale the gap is d/r-fold; at d=32 it is modest but must exist).
    let info = dz.manager().variant(v_rosa).unwrap();
    let VariantArtifact::Rosa(adapter) = &info.artifact else {
        panic!("rosa variant stored under the wrong artifact kind");
    };
    let dense_delta_bytes: usize = adapter
        .pairs
        .iter()
        .map(|p| base.get(&p.name).unwrap().len() * 2)
        .sum();
    assert!(info.artifact.swap_bytes() < dense_delta_bytes);
    assert!(info.artifact.swap_bytes() < base.fp16_bytes());
    assert_eq!(dz.size_report(v_rosa), Err(DzError::NotADelta));
}

#[test]
fn full_policy_stack_serves_a_bursty_zoo() {
    // All the §8 knobs at once on a bursty multi-variant workload: SLO
    // tiers + length-aware preemption + cost-based resume + dynamic N +
    // bounded host cache. Everything must still be served exactly once,
    // and interactive TTFT must not lose to plain FCFS.
    let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    let trace = Trace::generate(TraceSpec {
        n_models: 24,
        arrival_rate: 2.5,
        duration_s: 90.0,
        popularity: PopularityDist::AzureLike,
        seed: 31,
    });
    let policy = SloPolicy::tiered(24, 4);
    let config = DeltaZipConfig {
        max_concurrent_deltas: 4,
        max_batch: 24,
        preemption: PreemptionPolicy::LengthAware { spare_tokens: 12 },
        resume: ResumePolicy::CostBased,
        host_capacity_deltas: Some(12),
        ..DeltaZipConfig::default()
    };
    let plain = DeltaZipEngine::new(cost, DeltaZipConfig::default()).run(&trace);
    let full = DeltaZipEngine::new(cost, config)
        .with_slo_policy(policy.clone())
        .with_estimator(LengthEstimator::quantile(0.75))
        .with_dynamic_n(DynamicN::new(DynamicNConfig::default(), 4))
        .run(&trace);

    assert_eq!(full.len(), trace.len());
    let mut ids: Vec<usize> = full.records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..trace.len()).collect::<Vec<_>>());
    for r in &full.records {
        assert!(r.e2e_s > 0.0 && r.ttft_s > 0.0 && r.ttft_s <= r.e2e_s + 1e-9);
    }

    let interactive_ttft = |m: &dz_serve::Metrics| {
        policy
            .split_metrics(m)
            .into_iter()
            .find(|(c, _)| *c == dz_serve::SloClass::Interactive)
            .map(|(_, s)| s.mean_ttft())
            .unwrap_or(0.0)
    };
    // Margin note: overlapped swapping (the default) already removes
    // cold-load stalls from interactive requests in the *plain* baseline,
    // so the policy stack's relative headroom is thinner than it was
    // under serialized loading.
    assert!(
        interactive_ttft(&full) <= interactive_ttft(&plain) * 1.15,
        "policy stack hurt interactive TTFT: {} vs {}",
        interactive_ttft(&full),
        interactive_ttft(&plain)
    );
}
