//! The GPU performance model and the real packer account bytes
//! independently; serving conclusions rest on them agreeing.

use dz_compress::obs::{compress_matrix, ObsConfig};
use dz_compress::quant::QuantSpec;
use dz_gpusim::kernel::WeightFormat;
use dz_tensor::{Matrix, Rng};

/// The simulator's `weight_bytes` formula must track the packer's exact
/// `packed_bytes` within the tolerance of their differing scale-overhead
/// assumptions (the simulator assumes group size 128 as in the paper, the
/// packer charges whatever group size it was given).
#[test]
fn simulator_and_packer_byte_accounting_agree() {
    let mut rng = Rng::seeded(42);
    for &(d_in, d_out) in &[(128usize, 64usize), (256, 256), (64, 512)] {
        for &(bits, sparse) in &[(4u32, true), (2, true), (4, false), (8, false)] {
            let w = Matrix::randn(d_in, d_out, 0.02, &mut rng);
            let cfg = ObsConfig {
                // Group size 128 matches the simulator's overhead model.
                spec: QuantSpec::new(bits, 128.min(d_in)),
                sparse24: sparse,
                damp: 0.05,
            };
            let packed = compress_matrix(&w, &Matrix::identity(d_in), &cfg).packed;
            let exact = packed.packed_bytes() as f64;
            let model = WeightFormat::Int {
                bits,
                sparse24: sparse,
            }
            .weight_bytes(d_in, d_out);
            let ratio = model / exact;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{d_in}x{d_out} bits={bits} sparse={sparse}: model {model} vs exact {exact}"
            );
        }
    }
}

/// The simulated per-shape delta size must match what ΔCompress would
/// produce for the same layer shapes (embeddings FP16, linears packed).
#[test]
fn shape_level_delta_bytes_are_consistent_with_fig5_arithmetic() {
    // One layer group of 4 FP16 weights: 8 bytes. 2:4 + 4 bit: 2 values *
    // 4 bits + 2 indices * 2 bits = 12 bits = 1.5 bytes -> 5.33x before
    // scale overhead; with 1/128-group FP16 scales it lands near 5x.
    let fmt = WeightFormat::Int {
        bits: 4,
        sparse24: true,
    };
    let ratio = WeightFormat::Fp16.weight_bytes(4096, 4096) / fmt.weight_bytes(4096, 4096);
    assert!(
        (4.5..5.4).contains(&ratio),
        "4bit* ratio {ratio} should be near the paper's 5.33x minus scale overhead"
    );
    let fmt2 = WeightFormat::Int {
        bits: 2,
        sparse24: true,
    };
    let ratio2 = WeightFormat::Fp16.weight_bytes(4096, 4096) / fmt2.weight_bytes(4096, 4096);
    assert!(
        (7.0..8.6).contains(&ratio2),
        "2bit* ratio {ratio2} should be near the paper's 8.53x minus scale overhead"
    );
}
