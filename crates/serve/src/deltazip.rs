//! The DeltaZip serving engine (§5 of the paper).
//!
//! One simulation step = one continuous-batching iteration:
//!
//! 1. admit arrivals into the FCFS queue,
//! 2. (re)schedule: running requests keep their slots; the queue is scanned
//!    in order (or in SLO-priority order when a [`SloPolicy`] is set),
//!    selecting up to `N` distinct deltas; any queued request whose delta is
//!    already selected may **skip the line** (it becomes a *child* of the
//!    request that caused the delta's selection),
//! 3. start loads for missing deltas on the shared
//!    [`swap::TransferTimeline`](crate::swap::TransferTimeline): decode
//!    continues for the resident sub-batch while loads progress in the
//!    background, and each admitted request stalls only until *its own*
//!    delta lands (§5's overlap of swap-in with ongoing computation).
//!    With [`DeltaZipConfig::overlap_swaps`] disabled, the legacy
//!    serialized behavior is retained: every load is charged up front and
//!    the whole batch stalls on the sum. A [`Prefetcher`] may additionally
//!    prewarm deltas disk→host ahead of demand under a bandwidth budget,
//! 4. batch-prefill newly admitted prompts and restore preempted requests
//!    per the [`ResumePolicy`],
//! 5. run one decode iteration: shared base GEMM over the whole batch plus
//!    SBMM over the resident deltas,
//! 6. finish requests that produced all tokens; when a *parent* finishes,
//!    its children are preempted back to their original queue positions
//!    (the starvation-avoidance rule of §5.4), unless the
//!    [`PreemptionPolicy`] spares them.
//!
//! `N` itself may be adjusted online by a [`DynamicN`] controller (§5.4's
//! "dynamic tuning").

use crate::cost::CostModel;
use crate::metrics::{Metrics, SwapStats, ToppingsStats};
use crate::policy::{PreemptionPolicy, ResumePolicy};
use crate::predictor::LengthEstimator;
use crate::request::{Phase, ReqState};
use crate::slo::SloPolicy;
use crate::swap::{
    Completion, LoadKind, LoadToken, PrefetchConfig, PrefetchContext, Prefetcher, TransferTimeline,
};
use crate::tuning::DynamicN;
use crate::variant::{VariantCatalog, VariantKind};
use crate::Engine;
use dz_gpusim::kernel::BatchedImpl;
use dz_store::{ArtifactId, DecodedFetch, FetchTier, TieredDeltaStore, Warmth};
use dz_trace::{EvictTier, GaugeSample, TraceConfig, TraceEvent, Tracer};
use dz_workload::Trace;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Tunables of the DeltaZip engine.
#[derive(Debug, Clone, Copy)]
pub struct DeltaZipConfig {
    /// `N`: maximum distinct deltas processed concurrently.
    pub max_concurrent_deltas: usize,
    /// `K`: maximum requests in one batch.
    pub max_batch: usize,
    /// Delta-matmul execution strategy.
    pub strategy: BatchedImpl,
    /// Starvation-avoidance rule (Figure 19 ablation; §8 length-aware fix).
    pub preemption: PreemptionPolicy,
    /// How preempted requests are restored on re-admission.
    pub resume: ResumePolicy,
    /// Enable skip-the-line batching (disabling degenerates to plain FCFS).
    pub skip_the_line: bool,
    /// Host-DRAM delta cache capacity (deltas evicted from it fall back to
    /// disk, §5.4's hierarchical management). `None` = unbounded host cache.
    ///
    /// Deltas selected for the current batch are exempt from eviction, so
    /// a cap below `max_concurrent_deltas` could never bind; the engine
    /// therefore **clamps the cap up to `max_concurrent_deltas`** (at both
    /// construction and run time) instead of silently carrying an
    /// unenforceable value.
    pub host_capacity_deltas: Option<usize>,
    /// Overlap delta swap-in with decode (the §5 behavior): loads progress
    /// on a bandwidth-shared transfer timeline while the resident
    /// sub-batch keeps decoding, and each request stalls only until its
    /// own delta lands. `false` restores the legacy serialized model —
    /// every missing delta is charged up front and the *whole batch*
    /// stalls on the sum (the baseline `exp bench-swap` compares against).
    pub overlap_swaps: bool,
    /// Cap on **distinct toppings** (non-base variants: LoRA adapters,
    /// deltas, stacked) co-batched in one iteration. Deltas additionally
    /// stay under `max_concurrent_deltas`; pure-LoRA variants count only
    /// against this cap. `None` = unbounded (the legacy delta-only
    /// behavior, where `N` alone governs).
    pub max_toppings_per_batch: Option<usize>,
    /// Refuse to mix delta-backed variants (Delta/Stacked) with pure-LoRA
    /// variants in the same batch — the segregated-pool baseline that
    /// `exp bench-toppings` compares the mixed pool against. Base-model
    /// requests join either side. Default `false` (mixed batches).
    pub segregate_kinds: bool,
}

impl Default for DeltaZipConfig {
    fn default() -> Self {
        DeltaZipConfig {
            max_concurrent_deltas: 8,
            max_batch: 48,
            strategy: BatchedImpl::SbmmPlus,
            preemption: PreemptionPolicy::ParentFinish,
            resume: ResumePolicy::SwapToHost,
            skip_the_line: true,
            host_capacity_deltas: None,
            overlap_swaps: true,
            max_toppings_per_batch: None,
            segregate_kinds: false,
        }
    }
}

impl DeltaZipConfig {
    /// Normalizes the config: clamps `host_capacity_deltas` up to the
    /// concurrency floor it could otherwise never enforce (see the field
    /// docs). Applied by [`DeltaZipEngine::new`] and again at run time
    /// (the fields are public and may be mutated in between).
    pub fn validated(mut self) -> Self {
        let floor = self.max_concurrent_deltas.max(1);
        if let Some(cap) = self.host_capacity_deltas {
            self.host_capacity_deltas = Some(cap.max(floor));
        }
        if let Some(cap) = self.max_toppings_per_batch {
            self.max_toppings_per_batch = Some(cap.max(1));
        }
        self
    }
}

/// Binds trace model ids to real artifacts in a [`TieredDeltaStore`], so
/// the engine charges loads by each artifact's actual compressed bytes
/// instead of a shape-model estimate.
pub struct DeltaStoreBinding {
    store: TieredDeltaStore,
    /// `artifacts[model_id]` is the artifact serving that trace model.
    artifacts: Vec<ArtifactId>,
}

impl DeltaStoreBinding {
    /// Binds a store and the per-model artifact mapping.
    pub fn new(store: TieredDeltaStore, artifacts: Vec<ArtifactId>) -> Self {
        DeltaStoreBinding { store, artifacts }
    }

    /// The underlying store (load accounting lives here).
    pub fn store(&self) -> &TieredDeltaStore {
        &self.store
    }

    /// Mutable access to the underlying store, so callers (e.g. a
    /// [`ClusterSim`](crate::cluster::ClusterSim) replica) can record
    /// loads, evict, or pre-warm artifacts without dismantling the
    /// binding via [`into_store`](Self::into_store).
    pub fn store_mut(&mut self) -> &mut TieredDeltaStore {
        &mut self.store
    }

    /// Unwraps the store.
    pub fn into_store(self) -> TieredDeltaStore {
        self.store
    }

    /// The per-model artifact mapping (`artifacts[model_id]`).
    pub fn artifacts(&self) -> &[ArtifactId] {
        &self.artifacts
    }

    /// The artifact backing a trace model id, if the model is bound.
    pub fn artifact_of(&self, model: usize) -> Option<&ArtifactId> {
        self.artifacts.get(model)
    }

    /// Whether a model's artifact is currently warm (host-resident) in
    /// the store — the per-replica warmth signal cluster routers score.
    pub fn is_model_warm(&self, model: usize) -> bool {
        self.artifact_of(model)
            .is_some_and(|id| self.store.is_resident(id))
    }

    /// Whether a model's **decoded** delta is host-resident — a fetch
    /// would be a decode-free hit ([`dz_store::Warmth::HostDecoded`]),
    /// the signal that lets a placement router distinguish a replica that
    /// can swap the delta in without running the decode pipeline.
    pub fn is_model_decoded(&self, model: usize) -> bool {
        self.artifact_of(model)
            .is_some_and(|id| self.store.is_decoded_resident(id))
    }

    /// Compressed byte size of a model's artifact on disk, if bound.
    fn artifact_bytes(&self, model: usize) -> Option<u64> {
        self.artifact_of(model)
            .and_then(|id| self.store.registry().size_of(id).ok())
    }

    /// Prewarms a model's artifact disk→host through the store's
    /// bandwidth-budgeted [`TieredDeltaStore::prefetch`] API.
    fn prefetch_model(&mut self, model: usize) {
        if let Some(id) = self.artifacts.get(model).copied() {
            let _ = self.store.prefetch(&[id], u64::MAX);
        }
    }

    /// Keeps a model's artifact warm in the host cache while the delta is
    /// consumed from GPU memory (no fetch, no load accounting).
    fn touch_model(&mut self, model: usize) {
        if let Some(id) = self.artifacts.get(model) {
            self.store.touch(id);
        }
    }

    /// Measured decode throughput (compressed GB/s) across every load the
    /// store's pipelined reader has timed; `None` before the first decode.
    pub fn measured_decode_gbps(&self) -> Option<f64> {
        self.store.decode_throughput().effective_gbps()
    }

    /// Fetches **and decodes** the artifact backing a trace model id,
    /// updating the store's measured decode throughput.
    ///
    /// # Panics
    ///
    /// Panics if the model has no bound artifact or storage fails — a
    /// mis-bound engine cannot produce meaningful metrics.
    fn fetch_for_model(&mut self, model: usize) -> DecodedFetch {
        let id = self
            .artifacts
            .get(model)
            .unwrap_or_else(|| panic!("model {model} has no bound artifact"));
        self.store
            .fetch_decoded(id)
            .unwrap_or_else(|e| panic!("artifact fetch for model {model} failed: {e}"))
    }
}

/// The engine.
pub struct DeltaZipEngine {
    /// Cost model (hardware + model shape + delta format).
    pub cost: CostModel,
    /// Scheduler configuration.
    pub config: DeltaZipConfig,
    /// Output-length estimator backing
    /// [`PreemptionPolicy::LengthAware`]; learned online unless replaced.
    pub estimator: LengthEstimator,
    /// Optional SLO priority policy; `None` scans the queue FCFS.
    pub slo_policy: Option<SloPolicy>,
    /// Optional online `N` controller; overrides `max_concurrent_deltas`
    /// while set.
    pub dynamic_n: Option<DynamicN>,
    /// Optional artifact-store binding. When set, delta load charges come
    /// from real `.dza` byte sizes and the store's own disk→host tiering
    /// replaces the synthetic `host_capacity_deltas` model.
    pub delta_store: Option<DeltaStoreBinding>,
    /// Optional variant catalog. When set, each request is served per its
    /// model's registered [`VariantKind`] — base requests ride the shared
    /// GEMM for free, LoRA adapters dispatch through SGMV, deltas through
    /// SBMM, stacked variants through both. `None` = every model is a
    /// delta (the legacy behavior, bit-identical to pre-catalog runs).
    pub catalog: Option<VariantCatalog>,
    /// Optional predictive prefetcher: prewarms deltas disk→host ahead of
    /// demand (only active with [`DeltaZipConfig::overlap_swaps`]).
    pub prefetcher: Option<Box<dyn Prefetcher>>,
    /// Bandwidth budget for the prefetcher.
    pub prefetch_config: PrefetchConfig,
    /// Degraded-channel fault schedule (absolute simulation time),
    /// installed on the transfer timeline at the start of each run.
    /// Empty by default; the chaos layer populates it.
    pub brownouts: Vec<crate::swap::Brownout>,
    /// Structured tracing handle. Disabled by default: emission sites
    /// only read simulation state, so tracing-off runs are identical to
    /// untraced builds. Enable via [`with_tracing`](Self::with_tracing)
    /// and harvest the log with `tracer.take_log()` after a run.
    pub tracer: Tracer,
}

impl DeltaZipEngine {
    /// Creates an engine with the paper's defaults (FCFS scan, static `N`,
    /// online-mean length estimates). The config is
    /// [validated](DeltaZipConfig::validated) — in particular an
    /// unenforceable `host_capacity_deltas` is clamped up to
    /// `max_concurrent_deltas`.
    pub fn new(cost: CostModel, config: DeltaZipConfig) -> Self {
        DeltaZipEngine {
            cost,
            config: config.validated(),
            estimator: LengthEstimator::default(),
            slo_policy: None,
            dynamic_n: None,
            delta_store: None,
            catalog: None,
            prefetcher: None,
            prefetch_config: PrefetchConfig::default(),
            brownouts: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a degraded-channel (disk/PCIe brownout) fault schedule,
    /// in absolute simulation seconds, for subsequent runs.
    pub fn with_brownouts(mut self, schedule: Vec<crate::swap::Brownout>) -> Self {
        self.brownouts = schedule;
        self
    }

    /// Enables structured simulation-clock tracing for subsequent runs.
    pub fn with_tracing(mut self, config: TraceConfig) -> Self {
        self.tracer = Tracer::enabled(config);
        self
    }

    /// Enables predictive disk→host prefetch under the default bandwidth
    /// budget (tune via the public `prefetch_config` field).
    pub fn with_prefetcher(mut self, prefetcher: Box<dyn Prefetcher>) -> Self {
        self.prefetcher = Some(prefetcher);
        self
    }

    /// Attaches an artifact store: loads are charged by the bound
    /// artifacts' real compressed byte sizes (host hit pays the PCIe hop
    /// only; a miss pays disk plus PCIe).
    #[deprecated(since = "0.6.0", note = "use `EngineBuilder::store` instead")]
    pub fn with_delta_store(mut self, binding: DeltaStoreBinding) -> Self {
        self.delta_store = Some(binding);
        self
    }

    /// Attaches a variant catalog: requests are served per their model's
    /// registered [`VariantKind`] instead of the delta-only default.
    pub fn with_catalog(mut self, catalog: VariantCatalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Replaces the length estimator (for the §8 ablations).
    pub fn with_estimator(mut self, estimator: LengthEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Enables SLO-priority queue scanning.
    pub fn with_slo_policy(mut self, policy: SloPolicy) -> Self {
        self.slo_policy = Some(policy);
        self
    }

    /// Enables online `N` tuning.
    pub fn with_dynamic_n(mut self, controller: DynamicN) -> Self {
        self.dynamic_n = Some(controller);
        self
    }

    /// Queue ids in scheduling order: FCFS, or priority-with-aging when an
    /// SLO policy is set.
    fn scan_order(&self, queue: &BTreeSet<usize>, states: &[ReqState], now: f64) -> Vec<usize> {
        let mut ids: Vec<usize> = queue.iter().copied().collect();
        if let Some(policy) = &self.slo_policy {
            let mut keyed: Vec<(f64, usize)> = ids
                .into_iter()
                .map(|qid| {
                    let wait = (now - states[qid].req.arrival).max(0.0);
                    (policy.score(states[qid].req.model, wait), qid)
                })
                .collect();
            keyed.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite scores")
                    .then(a.1.cmp(&b.1))
            });
            ids = keyed.into_iter().map(|(_, qid)| qid).collect();
        }
        ids
    }
}

impl Engine for DeltaZipEngine {
    fn label(&self) -> String {
        format!("DeltaZip(N={})", self.config.max_concurrent_deltas)
    }

    fn run(&mut self, trace: &Trace) -> Metrics {
        // Re-validate: the config fields are public and may have been
        // mutated after construction.
        let cfg = self.config.validated();
        let cost = self.cost;
        let mut states: Vec<ReqState> = trace.requests.iter().cloned().map(ReqState::new).collect();
        // Variant kinds: stamped once from the catalog (every state
        // defaults to Delta, so catalog-free runs take the legacy paths).
        if let Some(cat) = &self.catalog {
            for s in &mut states {
                s.kind = cat.kind_of(s.req.model);
            }
        }
        let toppings_cap = cfg.max_toppings_per_batch.unwrap_or(usize::MAX);
        let sgmv_rank = self.catalog.as_ref().map_or(0, |c| c.max_adapter_rank());
        let mut toppings = ToppingsStats::default();
        // Queue of request ids, FCFS == id order (trace is arrival-sorted).
        let mut queue: BTreeSet<usize> = BTreeSet::new();
        let mut running: Vec<usize> = Vec::new();
        // Admitted requests whose delta is still in flight: each holds a
        // batch slot but stalls only until *its own* load lands
        // (`blocked_at` marks when the stall began). Only used with
        // `overlap_swaps`.
        let mut waiting: Vec<usize> = Vec::new();
        let mut blocked_at: BTreeMap<usize, f64> = BTreeMap::new();
        let mut next_arrival = 0usize;
        let mut t = 0.0f64;
        // Delta residency: deltas stay on GPU (LRU) up to the memory
        // capacity; `N` caps batch concurrency, not residency. `warm` holds
        // deltas cached in host DRAM with LRU stamps — bounded by
        // `host_capacity_deltas`, so evicted deltas fall back to disk.
        let capacity = cost
            .delta_resident_capacity()
            .max(cfg.max_concurrent_deltas);
        let mut on_gpu: BTreeMap<usize, f64> = BTreeMap::new();
        let mut warm: BTreeMap<usize, f64> = BTreeMap::new();
        // The parent request per selected delta.
        let mut parent_of_delta: BTreeMap<usize, usize> = BTreeMap::new();
        // The shared-channel transfer timeline and its in-flight index.
        let mut timeline = TransferTimeline::new();
        timeline.set_brownouts(self.brownouts.clone());
        let mut loading: BTreeMap<usize, LoadToken> = BTreeMap::new();
        let mut load_is_prefetch: BTreeSet<usize> = BTreeSet::new();
        // Deltas whose host warmth came from a completed prefetch (the
        // prefetch-hit accounting).
        let mut prefetched_warm: BTreeSet<usize> = BTreeSet::new();
        let mut prefetch_bucket = self.prefetch_config.burst_s;
        let mut swap = SwapStats::default();
        // Detach the tracer so emission closures can borrow engine state.
        let mut tracer = std::mem::take(&mut self.tracer);

        loop {
            // Step 1: admit arrivals up to the current time.
            while next_arrival < states.len() && states[next_arrival].req.arrival <= t {
                tracer.emit(|| TraceEvent::RequestQueued {
                    id: states[next_arrival].req.id,
                    model: states[next_arrival].req.model,
                    kind: states[next_arrival].kind.topping_kind(),
                    at: states[next_arrival].req.arrival,
                });
                queue.insert(next_arrival);
                next_arrival += 1;
            }
            if running.is_empty() && queue.is_empty() && waiting.is_empty() {
                if next_arrival >= states.len() {
                    break;
                }
                // Idle gap: only prefetches can be in flight; let them
                // progress to the next arrival.
                let t_next = states[next_arrival].req.arrival;
                let adv = timeline.advance_to(t_next);
                swap.load_busy_s += adv.busy_s;
                prefetch_bucket = (prefetch_bucket + (t_next - t) * self.prefetch_config.rate)
                    .min(self.prefetch_config.burst_s);
                t = t_next;
                apply_swap_completions(
                    adv.completions,
                    &cfg,
                    &mut states,
                    &mut waiting,
                    &mut running,
                    &mut blocked_at,
                    &mut on_gpu,
                    &mut warm,
                    &mut loading,
                    &mut load_is_prefetch,
                    &mut prefetched_warm,
                    &BTreeSet::new(),
                    &mut self.delta_store,
                    &mut swap,
                    &mut tracer,
                );
                continue;
            }

            // Step 2: scheduling. Running and waiting requests keep their
            // delta claims.
            let n_cap = match self.dynamic_n.as_mut() {
                Some(ctl) => {
                    let distinct: HashSet<usize> =
                        queue.iter().map(|&qid| states[qid].req.model).collect();
                    ctl.update(t, queue.len(), distinct.len())
                }
                None => cfg.max_concurrent_deltas,
            };
            // `selected` claims GPU delta slots — only delta-backed kinds
            // (Delta/Stacked) occupy them. `toppings_in_batch` counts every
            // distinct non-base topping (adapters included) against
            // `max_toppings_per_batch`.
            let mut selected: BTreeSet<usize> = running
                .iter()
                .chain(waiting.iter())
                .filter(|&&i| states[i].kind.needs_delta())
                .map(|&i| states[i].req.model)
                .collect();
            let mut toppings_in_batch: BTreeSet<usize> = running
                .iter()
                .chain(waiting.iter())
                .filter(|&&i| states[i].kind.is_topping())
                .map(|&i| states[i].req.model)
                .collect();
            let mut has_delta_side = !selected.is_empty();
            let mut has_adapter_side = running
                .iter()
                .chain(waiting.iter())
                .any(|&i| matches!(states[i].kind, VariantKind::Lora { .. }));
            parent_of_delta.retain(|d, _| selected.contains(d));
            let mut batch_size = running.len() + waiting.len();
            let mut admitted: Vec<usize> = Vec::new();
            for qid in self.scan_order(&queue, &states, t) {
                if batch_size >= cfg.max_batch {
                    break;
                }
                let delta = states[qid].req.model;
                let kind = states[qid].kind;
                if cfg.segregate_kinds {
                    // Segregated-pool baseline: delta-backed and pure-LoRA
                    // toppings never share a batch (base rides anywhere).
                    let joins_adapter = matches!(kind, VariantKind::Lora { .. });
                    if (kind.needs_delta() && has_adapter_side) || (joins_adapter && has_delta_side)
                    {
                        continue;
                    }
                }
                let admit_now = if kind.needs_delta() {
                    if selected.contains(&delta) {
                        if !cfg.skip_the_line && parent_of_delta.get(&delta) != Some(&qid) {
                            // Pure FCFS ablation: only the queue head enters.
                            continue;
                        }
                        true
                    } else if selected.len() < n_cap
                        && (toppings_in_batch.contains(&delta)
                            || toppings_in_batch.len() < toppings_cap)
                    {
                        selected.insert(delta);
                        parent_of_delta.insert(delta, qid);
                        true
                    } else {
                        false
                    }
                } else if kind.is_topping() {
                    // Pure LoRA: adapters are GPU-cheap (no delta slot,
                    // no swap-in) — only the toppings cap binds.
                    toppings_in_batch.contains(&delta) || toppings_in_batch.len() < toppings_cap
                } else {
                    // Base model: shares the batch GEMM, no topping state.
                    true
                };
                if admit_now {
                    if kind.is_topping() {
                        toppings_in_batch.insert(delta);
                    }
                    has_delta_side |= kind.needs_delta();
                    has_adapter_side |= matches!(kind, VariantKind::Lora { .. });
                    admitted.push(qid);
                    batch_size += 1;
                }
            }
            for &qid in &admitted {
                queue.remove(&qid);
                let parent = parent_of_delta
                    .get(&states[qid].req.model)
                    .copied()
                    .filter(|&p| p != qid);
                states[qid].parent = parent;
                // Attribute the wait that ends here: initial queueing for
                // a first admission, preemption exile for a re-admission.
                let first_admit = states[qid].first_admitted_at.is_none();
                states[qid].accrue(t, |c, dt| {
                    if first_admit {
                        c.queue_s += dt;
                    } else {
                        c.preempt_s += dt;
                    }
                });
                states[qid].admit(t);
                tracer.emit(|| TraceEvent::RequestAdmitted {
                    id: states[qid].req.id,
                    model: states[qid].req.model,
                    kind: states[qid].kind.topping_kind(),
                    at: t,
                });
                if cfg.overlap_swaps
                    && states[qid].kind.needs_delta()
                    && !on_gpu.contains_key(&states[qid].req.model)
                {
                    // Overlapped mode: hold a batch slot but wait for this
                    // delta's own load; the resident sub-batch decodes on.
                    blocked_at.insert(qid, t);
                    waiting.push(qid);
                } else {
                    running.push(qid);
                }
            }

            // Step 3: bring selected deltas that are not yet on GPU,
            // evicting the least-recently-used non-selected deltas under
            // memory pressure.
            let needed: Vec<usize> = selected
                .iter()
                .copied()
                .filter(|d| !on_gpu.contains_key(d))
                .collect();
            if cfg.overlap_swaps {
                for d in needed {
                    if let Some(&tok) = loading.get(&d) {
                        if load_is_prefetch.contains(&d) {
                            // A prewarm for this delta is already in
                            // flight: graft the host→device stages onto it
                            // instead of paying the disk bytes twice. The
                            // promoted load needs a GPU slot like any
                            // demand load (count it *before* clearing the
                            // prefetch marker so the loop reserves room
                            // for it).
                            let demand_inflight = loading.len() - load_is_prefetch.len();
                            let victims =
                                evict_gpu_lru(&mut on_gpu, &selected, capacity, demand_inflight);
                            trace_evicts(&mut tracer, victims, EvictTier::Gpu, t);
                            load_is_prefetch.remove(&d);
                            // The prewarm's disk bytes finish into the
                            // host tier and the demand path fetches from
                            // there — keep the host-cache bookkeeping in
                            // sync so a later re-load of this delta is
                            // warm, and count the (mid-flight) hit.
                            let extra = match self.delta_store.as_mut() {
                                Some(binding) => {
                                    binding.prefetch_model(d);
                                    let outcome = binding.fetch_for_model(d);
                                    let gbps = binding.measured_decode_gbps();
                                    cost.delta_load_profile_measured(outcome.bytes as f64, gbps)
                                }
                                None => {
                                    warm.insert(d, t);
                                    let victims = enforce_host_cap(&cfg, &mut warm, &selected);
                                    trace_evicts(&mut tracer, victims, EvictTier::Host, t);
                                    cost.delta_load_profile_bytes(cost.delta_bytes())
                                }
                            };
                            swap.prefetch_hits += 1;
                            tracer.emit(|| TraceEvent::PrefetchHit { delta: d, at: t });
                            tracer.emit(|| TraceEvent::PrefetchPromoted { delta: d, at: t });
                            tracer.emit(|| TraceEvent::SwapStart {
                                delta: d,
                                at: t,
                                disk_s: extra.disk_s,
                                pcie_s: extra.pcie_s,
                                solo_s: extra.solo_s(),
                            });
                            timeline.promote(tok, extra);
                            swap.demand_loads += 1;
                            swap.serialized_stall_s += extra.solo_s();
                        }
                        continue;
                    }
                    let demand_inflight = loading.len() - load_is_prefetch.len();
                    let victims = evict_gpu_lru(&mut on_gpu, &selected, capacity, demand_inflight);
                    trace_evicts(&mut tracer, victims, EvictTier::Gpu, t);
                    let was_prefetched = prefetched_warm.remove(&d);
                    let hits_before = swap.prefetch_hits;
                    let profile = match self.delta_store.as_mut() {
                        // Artifact-store path: the store decides the tier
                        // from its byte-budget LRU, reports real artifact
                        // bytes, and the stage profile uses the *measured*
                        // decode throughput.
                        Some(binding) => {
                            let outcome = binding.fetch_for_model(d);
                            let gbps = binding.measured_decode_gbps();
                            if was_prefetched && outcome.tier == FetchTier::HostHit {
                                swap.prefetch_hits += 1;
                            }
                            match outcome.tier {
                                // Decode-free hit: the store still held the
                                // decoded copy, which streams raw over PCIe
                                // with no decompression stage.
                                FetchTier::HostHit if outcome.decode.is_none() => {
                                    cost.decoded_load_profile_bytes(outcome.raw_bytes as f64)
                                }
                                FetchTier::HostHit => {
                                    cost.delta_load_profile_measured(outcome.bytes as f64, gbps)
                                }
                                FetchTier::DiskMiss => {
                                    let mut p = cost.delta_cold_load_profile_measured(
                                        outcome.bytes as f64,
                                        gbps,
                                    );
                                    // Object-store-only artifact: the edge
                                    // pull serializes ahead of the disk read.
                                    p.head_s += outcome.object_wait_s;
                                    p
                                }
                            }
                        }
                        // Synthetic path: shape-model bytes, warm/cold
                        // decided by the engine's own host-cache bookkeeping.
                        None => {
                            let warm_hit = warm.contains_key(&d);
                            if warm_hit && was_prefetched {
                                swap.prefetch_hits += 1;
                            }
                            let p = if warm_hit {
                                cost.delta_load_profile_bytes(cost.delta_bytes())
                            } else {
                                cost.delta_cold_load_profile_bytes(cost.delta_bytes())
                            };
                            warm.insert(d, t);
                            let victims = enforce_host_cap(&cfg, &mut warm, &selected);
                            trace_evicts(&mut tracer, victims, EvictTier::Host, t);
                            p
                        }
                    };
                    if swap.prefetch_hits > hits_before {
                        tracer.emit(|| TraceEvent::PrefetchHit { delta: d, at: t });
                    }
                    tracer.emit(|| TraceEvent::SwapStart {
                        delta: d,
                        at: t,
                        disk_s: profile.disk_s,
                        pcie_s: profile.pcie_s,
                        solo_s: profile.solo_s(),
                    });
                    let tok = timeline.start(profile, LoadKind::Demand { delta: d });
                    loading.insert(d, tok);
                    swap.demand_loads += 1;
                    swap.serialized_stall_s += profile.solo_s();
                }
            } else {
                // Legacy serialized path (the `bench-swap` baseline):
                // charge every load up front and stall the whole batch on
                // the sum — including requests whose delta was already
                // resident.
                let mut load_s = 0.0;
                for d in needed {
                    let victims = evict_gpu_lru(&mut on_gpu, &selected, capacity, 0);
                    trace_evicts(&mut tracer, victims, EvictTier::Gpu, t);
                    let offset = load_s;
                    let charge = match self.delta_store.as_mut() {
                        Some(binding) => {
                            let outcome = binding.fetch_for_model(d);
                            let gbps = binding.measured_decode_gbps();
                            match outcome.tier {
                                FetchTier::HostHit => {
                                    cost.delta_load_time_measured(outcome.bytes as f64, gbps)
                                }
                                FetchTier::DiskMiss => {
                                    cost.delta_cold_load_time_measured(outcome.bytes as f64, gbps)
                                        + outcome.object_wait_s
                                }
                            }
                        }
                        None => {
                            let charge = if warm.contains_key(&d) {
                                cost.delta_load_time()
                            } else {
                                cost.delta_cold_load_time()
                            };
                            warm.insert(d, t);
                            let victims = enforce_host_cap(&cfg, &mut warm, &selected);
                            trace_evicts(&mut tracer, victims, EvictTier::Host, t);
                            charge
                        }
                    };
                    // Serialized loads run back to back: reconstruct the
                    // per-delta span inside the single up-front charge.
                    tracer.emit(|| TraceEvent::SwapStart {
                        delta: d,
                        at: t + offset,
                        disk_s: 0.0,
                        pcie_s: 0.0,
                        solo_s: charge,
                    });
                    tracer.emit(|| TraceEvent::SwapLand {
                        delta: d,
                        at: t + offset + charge,
                        waiters: 0,
                    });
                    load_s += charge;
                    swap.demand_loads += 1;
                    swap.serialized_stall_s += charge;
                    on_gpu.insert(d, t);
                }
                if load_s > 0.0 {
                    t += load_s;
                    swap.load_busy_s += load_s;
                    swap.blocked_s += load_s;
                    for &rid in &running {
                        states[rid].load_wait_s += load_s;
                        swap.stall_s += load_s;
                        // The whole batch stalls on the serialized sum:
                        // all of it is "own-delta" style exposure (the
                        // serialized model has no channel contention).
                        states[rid].accrue(t, |c, dt| c.stall_own_s += dt);
                    }
                }
            }

            // Step 3b: predictive prefetch under the bandwidth budget.
            if cfg.overlap_swaps && self.prefetcher.is_some() {
                let pcfg = self.prefetch_config;
                let queued_models: Vec<usize> = self
                    .scan_order(&queue, &states, t)
                    .into_iter()
                    // Only delta-backed variants are placement-critical
                    // enough to prewarm; adapters are ~MB and load inline.
                    .filter(|&qid| states[qid].kind.needs_delta())
                    .map(|qid| states[qid].req.model)
                    .collect();
                let ctx = PrefetchContext {
                    queued_models: &queued_models,
                    selected: &selected,
                };
                let candidates = match self.prefetcher.as_mut() {
                    Some(pf) => pf.candidates(&ctx),
                    None => Vec::new(),
                };
                for d in candidates {
                    if timeline.in_flight_prefetches() >= pcfg.max_inflight {
                        break;
                    }
                    if selected.contains(&d) || on_gpu.contains_key(&d) || loading.contains_key(&d)
                    {
                        continue;
                    }
                    let (already_warm, bytes) = match self.delta_store.as_ref() {
                        Some(binding) => (
                            binding.is_model_warm(d),
                            binding
                                .artifact_bytes(d)
                                .map(|b| b as f64)
                                .unwrap_or_else(|| cost.delta_bytes()),
                        ),
                        None => (warm.contains_key(&d), cost.delta_bytes()),
                    };
                    if already_warm {
                        continue;
                    }
                    let profile = cost.prefetch_profile_bytes(bytes);
                    if profile.disk_s > prefetch_bucket {
                        continue;
                    }
                    prefetch_bucket -= profile.disk_s;
                    tracer.emit(|| TraceEvent::PrefetchIssued {
                        delta: d,
                        at: t,
                        disk_s: profile.disk_s,
                    });
                    let tok = timeline.start(profile, LoadKind::Prefetch { delta: d });
                    loading.insert(d, tok);
                    load_is_prefetch.insert(d);
                    swap.prefetch_issued += 1;
                }
            }

            // Touch LRU stamps of the deltas used this iteration — both
            // the engine's own maps and, in store-backed mode, the host
            // cache (a GPU-resident delta must not rot into the store's
            // LRU victim while it is still hot).
            for d in &selected {
                if let Some(stamp) = on_gpu.get_mut(d) {
                    *stamp = t;
                }
                if let Some(stamp) = warm.get_mut(d) {
                    *stamp = t;
                }
            }
            if let Some(binding) = self.delta_store.as_mut() {
                for d in &selected {
                    binding.touch_model(*d);
                }
            }

            if running.is_empty() {
                // Everything admitted is stalled on its own load: jump to
                // the earliest in-flight completion (or the next arrival,
                // whichever lets the engine make progress first).
                let next_c = timeline
                    .next_completion_at()
                    .expect("waiting requests imply in-flight loads");
                let mut target = next_c;
                if next_arrival < states.len() {
                    target = target.min(states[next_arrival].req.arrival);
                }
                let target = target.max(t);
                let adv = timeline.advance_to(target);
                swap.load_busy_s += adv.busy_s;
                swap.blocked_s += adv.busy_s;
                prefetch_bucket = (prefetch_bucket + (target - t) * self.prefetch_config.rate)
                    .min(self.prefetch_config.burst_s);
                t = target;
                apply_swap_completions(
                    adv.completions,
                    &cfg,
                    &mut states,
                    &mut waiting,
                    &mut running,
                    &mut blocked_at,
                    &mut on_gpu,
                    &mut warm,
                    &mut loading,
                    &mut load_is_prefetch,
                    &mut prefetched_warm,
                    &selected,
                    &mut self.delta_store,
                    &mut swap,
                    &mut tracer,
                );
                continue;
            }

            // Step 4: batched prefill for newly admitted requests, plus
            // state restoration for resumed (previously preempted) ones.
            let t_before = t;
            let mut prompt_tokens = 0usize;
            let mut restore_s = 0.0;
            for &rid in &running {
                if states[rid].phase != Phase::Admitted {
                    continue;
                }
                if states[rid].tokens_done > 0 {
                    let ctx = states[rid].req.prompt_tokens + states[rid].tokens_done;
                    restore_s += cost.resume_time(cfg.resume, ctx);
                } else {
                    prompt_tokens += states[rid].req.prompt_tokens;
                }
            }
            if prompt_tokens > 0 {
                t += cost.prefill_time(prompt_tokens);
            }
            if restore_s > 0.0 {
                t += restore_s;
                for &rid in &running {
                    states[rid].load_wait_s += restore_s;
                }
            }
            for &rid in &running {
                if states[rid].phase == Phase::Admitted {
                    states[rid].phase = Phase::Running;
                }
            }

            // Step 5: one decode iteration over the resident sub-batch —
            // shared base GEMM for everyone, SBMM over the resident deltas,
            // SGMV over the co-batched adapters (stacked variants hit both).
            let delta_ids: Vec<usize> = selected
                .iter()
                .copied()
                .filter(|d| on_gpu.contains_key(d))
                .collect();
            let mut reqs_per_delta = vec![0usize; delta_ids.len()];
            let mut adapter_ids: Vec<usize> = Vec::new();
            let mut reqs_per_adapter: Vec<usize> = Vec::new();
            let mut batch_has_delta = false;
            let mut batch_has_pure_lora = false;
            for &rid in &running {
                batch_has_delta |= states[rid].kind.needs_delta();
                batch_has_pure_lora |= matches!(states[rid].kind, VariantKind::Lora { .. });
                if states[rid].kind.needs_delta() {
                    let di = delta_ids
                        .iter()
                        .position(|&d| d == states[rid].req.model)
                        .expect("running request's delta is resident");
                    reqs_per_delta[di] += 1;
                }
                if states[rid].kind.adapter_rank().is_some() {
                    let m = states[rid].req.model;
                    match adapter_ids.iter().position(|&a| a == m) {
                        Some(ai) => reqs_per_adapter[ai] += 1,
                        None => {
                            adapter_ids.push(m);
                            reqs_per_adapter.push(1);
                        }
                    }
                }
            }
            let iter_cost = cost.toppings_decode_iter(
                running.len(),
                &reqs_per_delta,
                &reqs_per_adapter,
                sgmv_rank,
                cfg.strategy,
            );
            t += iter_cost.total_s;
            toppings.batches += 1;
            toppings.base_gemm_s += iter_cost.base_s;
            toppings.sbmm_s += iter_cost.sbmm_s;
            toppings.sgmv_s += iter_cost.sgmv_s;
            toppings.max_toppings_in_batch =
                toppings.max_toppings_in_batch.max(toppings_in_batch.len());
            // "Mixed" means pools actually mixed: a delta-backed request
            // (Delta/Stacked) co-batched with a pure-LoRA one. A lone
            // stacked variant drives both kernels but is one pool.
            if batch_has_delta && batch_has_pure_lora {
                toppings.mixed_batches += 1;
            }
            tracer.emit(|| TraceEvent::BatchStep {
                at: t_before,
                dur_s: t - t_before,
                batch: running.len(),
                deltas: delta_ids.len(),
                loras: adapter_ids.len(),
            });
            let mut finished_parents: Vec<usize> = Vec::new();
            for &rid in &running {
                states[rid].tokens_done += 1;
                if states[rid].first_token_at.is_none() {
                    tracer.emit(|| TraceEvent::FirstToken {
                        id: states[rid].req.id,
                        at: t,
                    });
                }
                states[rid].record_first_token(t);
                // Everything since the last accounting boundary was spent
                // inside this iteration (prefill, restore, decode, and any
                // batch-alignment slack after a mid-iteration load land).
                states[rid].accrue(t, |c, dt| c.decode_s += dt);
            }
            running.retain(|&rid| {
                if states[rid].done() {
                    states[rid].finish(t);
                    let id = states[rid].req.id;
                    tracer.emit(|| TraceEvent::RequestFinished { id, at: t });
                    finished_parents.push(rid);
                    false
                } else {
                    true
                }
            });
            for &rid in &finished_parents {
                self.estimator
                    .observe(states[rid].req.model, states[rid].req.output_tokens);
            }

            // The iteration consumed wall time: in-flight loads progressed
            // underneath it (the overlap), and any that landed wake their
            // own requests — charged only their own stall.
            let adv = timeline.advance_to(t);
            swap.load_busy_s += adv.busy_s;
            swap.overlapped_s += adv.busy_s;
            prefetch_bucket = (prefetch_bucket + (t - t_before) * self.prefetch_config.rate)
                .min(self.prefetch_config.burst_s);
            apply_swap_completions(
                adv.completions,
                &cfg,
                &mut states,
                &mut waiting,
                &mut running,
                &mut blocked_at,
                &mut on_gpu,
                &mut warm,
                &mut loading,
                &mut load_is_prefetch,
                &mut prefetched_warm,
                &selected,
                &mut self.delta_store,
                &mut swap,
                &mut tracer,
            );

            // Gauge sample at the iteration boundary: queue/batch
            // occupancy, residency and warmth composition, channel
            // in-flight counts.
            tracer.gauge(|| {
                let n_models = trace.spec.n_models;
                let (disk, host, decoded, host_bytes) = match self.delta_store.as_ref() {
                    Some(binding) => {
                        let (mut disk, mut host, mut dec) = (0usize, 0usize, 0usize);
                        for id in binding.artifacts() {
                            match binding.store().warmth(id) {
                                Warmth::Disk => disk += 1,
                                Warmth::Host => host += 1,
                                Warmth::HostDecoded => dec += 1,
                            }
                        }
                        (disk, host, dec, binding.store().resident_bytes() as f64)
                    }
                    None => {
                        let host = warm.len();
                        (
                            n_models.saturating_sub(host),
                            host,
                            0,
                            host as f64 * cost.delta_bytes(),
                        )
                    }
                };
                GaugeSample {
                    at: t,
                    queue_depth: queue.len(),
                    batch: running.len(),
                    blocked: waiting.len(),
                    gpu_resident: on_gpu.len(),
                    warmth_disk: disk,
                    warmth_host: host,
                    warmth_host_decoded: decoded,
                    gpu_bytes: on_gpu.len() as f64 * cost.delta_bytes(),
                    host_bytes,
                    inflight_demand: timeline.in_flight() - timeline.in_flight_prefetches(),
                    inflight_prefetch: timeline.in_flight_prefetches(),
                    live_replicas: 0,
                }
            });

            // Step 6: starvation avoidance — preempt children of finished
            // parents back to their original queue slots. Only kick children
            // when someone is actually starving: a queued request whose
            // delta is not in the selected set.
            // Base requests never starve on a topping slot; adapters starve
            // only when the toppings cap shuts them out; delta-backed kinds
            // starve when their delta is not selected (the legacy rule).
            let someone_starving = queue.iter().any(|&qid| {
                let m = states[qid].req.model;
                match states[qid].kind {
                    VariantKind::Base => false,
                    VariantKind::Lora { .. } => {
                        !toppings_in_batch.contains(&m) && toppings_in_batch.len() >= toppings_cap
                    }
                    VariantKind::Delta | VariantKind::Stacked { .. } => !selected.contains(&m),
                }
            });
            if cfg.preemption.enabled() && someone_starving {
                let finished: HashSet<usize> = finished_parents.iter().copied().collect();
                let mut preempted = Vec::new();
                let mut spared = Vec::new();
                running.retain(|&rid| {
                    if !states[rid].parent.is_some_and(|p| finished.contains(&p)) {
                        return true;
                    }
                    if let PreemptionPolicy::LengthAware { spare_tokens } = cfg.preemption {
                        let remaining = self.estimator.remaining(
                            states[rid].req.model,
                            states[rid].tokens_done,
                            states[rid].req.output_tokens,
                        );
                        if remaining.is_some_and(|r| r <= spare_tokens as f64) {
                            spared.push(rid);
                            return true;
                        }
                    }
                    preempted.push(rid);
                    false
                });
                for rid in preempted {
                    states[rid].preemptions += 1;
                    states[rid].parent = None;
                    states[rid].phase = Phase::Queued;
                    tracer.emit(|| TraceEvent::RequestPreempted {
                        id: states[rid].req.id,
                        at: t,
                    });
                    queue.insert(rid);
                }
                // A spared child rides to completion; nothing may preempt
                // it again through the (gone) parent link.
                for rid in spared {
                    states[rid].parent = None;
                }
            }
            // Promote a child to parent when its parent finished.
            for fp in finished_parents {
                parent_of_delta.retain(|_, p| *p != fp);
            }
        }

        // Per-kind served-request tallies (every state is finished here).
        for s in &states {
            match s.kind {
                VariantKind::Base => toppings.base_reqs += 1,
                VariantKind::Lora { .. } => toppings.lora_reqs += 1,
                VariantKind::Delta => toppings.delta_reqs += 1,
                VariantKind::Stacked { .. } => toppings.stacked_reqs += 1,
            }
        }

        // Re-attach the tracer so the caller can harvest the log.
        self.tracer = tracer;
        Metrics::from_states(self.label(), &states, t)
            .with_swap(swap)
            .with_toppings(toppings)
    }
}

/// Evicts least-recently-used non-selected deltas from GPU memory until
/// there is room for one more landing delta (in-flight demand loads also
/// reserve slots), returning the evicted deltas. Capacity >= N guarantees
/// progress; if every resident delta is selected the loop stops.
fn evict_gpu_lru(
    on_gpu: &mut BTreeMap<usize, f64>,
    selected: &BTreeSet<usize>,
    capacity: usize,
    reserved_inflight: usize,
) -> Vec<usize> {
    let mut victims = Vec::new();
    while on_gpu.len() + reserved_inflight >= capacity {
        let victim = on_gpu
            .iter()
            .filter(|(d, _)| !selected.contains(*d))
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite time"))
            .map(|(&d, _)| d);
        match victim {
            Some(v) => {
                on_gpu.remove(&v);
                victims.push(v);
            }
            None => break,
        }
    }
    victims
}

/// Emits one [`TraceEvent::Evict`] per victim (no-op with an empty list
/// or a disabled tracer).
fn trace_evicts(tracer: &mut Tracer, victims: Vec<usize>, tier: EvictTier, at: f64) {
    for v in victims {
        tracer.emit(|| TraceEvent::Evict { delta: v, tier, at });
    }
}

/// Enforces the synthetic host-cache cap: evict LRU warm entries beyond
/// the (validated) cap. Only deltas selected for the current batch are
/// exempt — GPU-resident deltas no longer are, so the cap actually binds
/// (the cap is clamped to `max_concurrent_deltas`, which bounds the
/// exempt set, so the loop always restores `warm.len() <= cap`).
fn enforce_host_cap(
    cfg: &DeltaZipConfig,
    warm: &mut BTreeMap<usize, f64>,
    selected: &BTreeSet<usize>,
) -> Vec<usize> {
    let mut victims = Vec::new();
    let Some(host_cap) = cfg.host_capacity_deltas else {
        return victims;
    };
    while warm.len() > host_cap.max(1) {
        let victim = warm
            .iter()
            .filter(|(d, _)| !selected.contains(*d))
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite time"))
            .map(|(&d, _)| d);
        match victim {
            Some(v) => {
                warm.remove(&v);
                victims.push(v);
            }
            None => break, // Everything cached is selected right now.
        }
    }
    victims
}

/// Applies a batch of transfer-timeline completions to the engine state:
/// a finished **demand** load makes its delta GPU-resident and wakes
/// every request stalled on it (charging each request only its own wait);
/// a finished **prefetch** makes its delta host-warm.
#[allow(clippy::too_many_arguments)]
fn apply_swap_completions(
    completions: Vec<Completion>,
    cfg: &DeltaZipConfig,
    states: &mut [ReqState],
    waiting: &mut Vec<usize>,
    running: &mut Vec<usize>,
    blocked_at: &mut BTreeMap<usize, f64>,
    on_gpu: &mut BTreeMap<usize, f64>,
    warm: &mut BTreeMap<usize, f64>,
    loading: &mut BTreeMap<usize, LoadToken>,
    load_is_prefetch: &mut BTreeSet<usize>,
    prefetched_warm: &mut BTreeSet<usize>,
    protected: &BTreeSet<usize>,
    delta_store: &mut Option<DeltaStoreBinding>,
    swap: &mut SwapStats,
    tracer: &mut Tracer,
) {
    for c in completions {
        let d = c.kind.delta();
        loading.remove(&d);
        load_is_prefetch.remove(&d);
        match c.kind {
            LoadKind::Demand { .. } => {
                on_gpu.insert(d, c.at);
                // Contention attribution: how much of the load's wall
                // time was inflation over its uncontended duration. The
                // clamp absorbs promoted loads that *beat* their solo
                // estimate thanks to a prefetch head start.
                let wall = (c.at - c.started_at).max(0.0);
                let contention_frac = if wall > 0.0 {
                    ((wall - c.solo_s) / wall).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let mut woken = 0usize;
                let mut i = 0;
                while i < waiting.len() {
                    let qid = waiting[i];
                    if states[qid].req.model == d {
                        if let Some(b) = blocked_at.remove(&qid) {
                            let stall = (c.at - b).max(0.0);
                            states[qid].load_wait_s += stall;
                            swap.stall_s += stall;
                        }
                        // Split the stall (computed as `dt` so the ledger
                        // telescopes exactly) into own-delta exposure vs
                        // contention-induced inflation.
                        states[qid].accrue(c.at, |cs, dt| {
                            let cont = dt * contention_frac;
                            cs.stall_contention_s += cont;
                            cs.stall_own_s += dt - cont;
                        });
                        running.push(qid);
                        waiting.swap_remove(i);
                        woken += 1;
                    } else {
                        i += 1;
                    }
                }
                tracer.emit(|| TraceEvent::SwapLand {
                    delta: d,
                    at: c.at,
                    waiters: woken,
                });
            }
            LoadKind::Prefetch { .. } => {
                swap.prefetch_completed += 1;
                prefetched_warm.insert(d);
                tracer.emit(|| TraceEvent::PrefetchLand { delta: d, at: c.at });
                match delta_store.as_mut() {
                    // Store-backed: the bytes actually move into the
                    // store's host cache (budgeted at issue time).
                    Some(binding) => binding.prefetch_model(d),
                    None => {
                        warm.insert(d, c.at);
                        let victims = enforce_host_cap(cfg, warm, protected);
                        trace_evicts(tracer, victims, EvictTier::Host, c.at);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{SloClass, SloPolicy};
    use crate::swap::{PopularityPrefetch, QueueLookahead};
    use crate::tuning::{DynamicN, DynamicNConfig};
    use dz_gpusim::shapes::ModelShape;
    use dz_gpusim::spec::NodeSpec;
    use dz_workload::{PopularityDist, Request, Trace, TraceSpec};

    fn small_trace(rate: f64, pop: PopularityDist, seed: u64) -> Trace {
        Trace::generate(TraceSpec {
            n_models: 8,
            arrival_rate: rate,
            duration_s: 60.0,
            popularity: pop,
            seed,
        })
    }

    fn engine(n: usize) -> DeltaZipEngine {
        let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                max_concurrent_deltas: n,
                ..DeltaZipConfig::default()
            },
        )
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let trace = small_trace(1.0, PopularityDist::Zipf { alpha: 1.5 }, 1);
        let m = engine(4).run(&trace);
        assert_eq!(m.len(), trace.len());
        // Conservation: record ids are exactly the trace ids.
        let mut ids: Vec<usize> = m.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..trace.len()).collect::<Vec<_>>());
    }

    #[test]
    fn latencies_are_physical() {
        let trace = small_trace(0.5, PopularityDist::Uniform, 2);
        let m = engine(4).run(&trace);
        for r in &m.records {
            assert!(r.e2e_s > 0.0, "req {} has non-positive latency", r.id);
            assert!(r.ttft_s > 0.0 && r.ttft_s <= r.e2e_s + 1e-9);
            assert!(r.queue_s >= 0.0);
        }
        assert!(m.makespan_s >= 60.0 * 0.5);
    }

    #[test]
    fn idle_system_has_low_latency() {
        // A trickle of requests: latency should be decode-dominated (well
        // under a second per token budget at 13B on 4 GPUs).
        let trace = small_trace(0.05, PopularityDist::Uniform, 3);
        let m = engine(8).run(&trace);
        assert!(m.mean_time_per_token() < 0.2, "{}", m.mean_time_per_token());
    }

    #[test]
    fn more_deltas_help_under_skew_until_memory_pressure() {
        let trace = small_trace(2.0, PopularityDist::Zipf { alpha: 1.5 }, 4);
        let m1 = engine(1).run(&trace);
        let m8 = engine(8).run(&trace);
        assert!(
            m8.mean_e2e() < m1.mean_e2e(),
            "N=8 {} should beat N=1 {}",
            m8.mean_e2e(),
            m1.mean_e2e()
        );
    }

    #[test]
    fn preemption_reduces_tail_ttft_under_skew() {
        let trace = small_trace(2.5, PopularityDist::Zipf { alpha: 2.0 }, 5);
        let mut with = engine(3);
        with.config.max_batch = 24;
        let mut without = engine(3);
        without.config.max_batch = 24;
        without.config.preemption = PreemptionPolicy::Never;
        let mw = with.run(&trace);
        let mo = without.run(&trace);
        let p90_with = mw.ttft_percentile(0.9);
        let p90_without = mo.ttft_percentile(0.9);
        assert!(
            p90_with <= p90_without * 1.05,
            "preemption should not hurt the tail: {p90_with} vs {p90_without}"
        );
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace {
            spec: TraceSpec {
                n_models: 2,
                arrival_rate: 1.0,
                duration_s: 0.0,
                popularity: PopularityDist::Uniform,
                seed: 0,
            },
            requests: vec![],
        };
        let m = engine(2).run(&trace);
        assert!(m.is_empty());
    }

    #[test]
    fn skip_the_line_improves_mean_latency() {
        let trace = small_trace(2.0, PopularityDist::Zipf { alpha: 1.5 }, 6);
        let with = engine(4).run(&trace);
        let mut engine_no_skip = engine(4);
        engine_no_skip.config.skip_the_line = false;
        let without = engine_no_skip.run(&trace);
        assert!(
            with.mean_e2e() <= without.mean_e2e() * 1.05,
            "skip-the-line should help: {} vs {}",
            with.mean_e2e(),
            without.mean_e2e()
        );
    }

    #[test]
    fn length_aware_preemption_preempts_no_more_than_parent_finish() {
        let trace = small_trace(2.5, PopularityDist::Zipf { alpha: 2.0 }, 7);
        let mut strict = engine(3);
        strict.config.max_batch = 24;
        let mut aware = engine(3).with_estimator(LengthEstimator::Oracle);
        aware.config.max_batch = 24;
        aware.config.preemption = PreemptionPolicy::LengthAware { spare_tokens: 16 };
        let ms = strict.run(&trace);
        let ma = aware.run(&trace);
        let total_strict: usize = ms.records.iter().map(|r| r.preemptions).sum();
        let total_aware: usize = ma.records.iter().map(|r| r.preemptions).sum();
        assert!(
            total_aware <= total_strict,
            "length-aware {total_aware} should not preempt more than strict {total_strict}"
        );
        assert_eq!(ma.len(), trace.len());
    }

    #[test]
    fn huge_spare_budget_never_preempts() {
        let trace = small_trace(2.5, PopularityDist::Zipf { alpha: 2.0 }, 8);
        let mut aware = engine(3).with_estimator(LengthEstimator::Oracle);
        aware.config.preemption = PreemptionPolicy::LengthAware {
            spare_tokens: usize::MAX,
        };
        let m = aware.run(&trace);
        assert!(m.records.iter().all(|r| r.preemptions == 0));
    }

    #[test]
    fn resume_policies_all_conserve_requests() {
        let trace = small_trace(2.5, PopularityDist::Zipf { alpha: 2.0 }, 9);
        for resume in [
            ResumePolicy::SwapToHost,
            ResumePolicy::Recompute,
            ResumePolicy::CostBased,
        ] {
            let mut e = engine(3);
            e.config.max_batch = 16;
            e.config.resume = resume;
            let m = e.run(&trace);
            assert_eq!(m.len(), trace.len(), "{resume:?} lost requests");
        }
    }

    #[test]
    fn cost_based_resume_is_no_worse_than_either_fixed_policy() {
        let trace = small_trace(3.0, PopularityDist::Zipf { alpha: 2.0 }, 10);
        let run = |resume: ResumePolicy| {
            let mut e = engine(3);
            e.config.max_batch = 16;
            e.config.resume = resume;
            e.run(&trace).mean_e2e()
        };
        let swap = run(ResumePolicy::SwapToHost);
        let recompute = run(ResumePolicy::Recompute);
        let best = run(ResumePolicy::CostBased);
        assert!(
            best <= swap.min(recompute) * 1.05,
            "cost-based {best} vs swap {swap} / recompute {recompute}"
        );
    }

    #[test]
    fn bounded_host_cache_degrades_gracefully() {
        // §5.4 scalability: with a tiny host cache, cold (disk) loads recur
        // and latency rises, but every request is still served.
        let trace = small_trace(1.0, PopularityDist::Uniform, 11);
        let unbounded = engine(4).run(&trace);
        let mut tight = engine(4);
        tight.config.host_capacity_deltas = Some(2);
        let bounded = tight.run(&trace);
        assert_eq!(bounded.len(), trace.len());
        let load_unbounded: f64 = unbounded.records.iter().map(|r| r.load_s).sum();
        let load_bounded: f64 = bounded.records.iter().map(|r| r.load_s).sum();
        assert!(
            load_bounded >= load_unbounded,
            "bounded cache {load_bounded} must re-load at least as much as unbounded {load_unbounded}"
        );
    }

    #[test]
    fn slo_priority_lowers_interactive_ttft() {
        // Two interactive variants in a 8-model Zipf mix: with the policy
        // their TTFT must not regress versus plain FCFS.
        let trace = small_trace(2.5, PopularityDist::Zipf { alpha: 1.2 }, 12);
        let policy = SloPolicy::tiered(8, 2);
        let plain = engine(3).run(&trace);
        let prioritized = engine(3).with_slo_policy(policy.clone()).run(&trace);
        let inter = |m: &Metrics| {
            m.subset("i".into(), |r| {
                policy.class_of(r.model) == SloClass::Interactive
            })
            .mean_ttft()
        };
        assert_eq!(prioritized.len(), trace.len());
        assert!(
            inter(&prioritized) <= inter(&plain) * 1.05,
            "interactive TTFT {} should not exceed FCFS {}",
            inter(&prioritized),
            inter(&plain)
        );
    }

    fn manual_trace(n_models: usize, requests: Vec<Request>) -> Trace {
        Trace {
            spec: TraceSpec {
                n_models,
                arrival_rate: 1.0,
                duration_s: 10.0,
                popularity: PopularityDist::Uniform,
                seed: 0,
            },
            requests,
        }
    }

    fn req(id: usize, model: usize, arrival: f64) -> Request {
        Request {
            id,
            model,
            arrival,
            prompt_tokens: 16,
            output_tokens: 8,
        }
    }

    #[test]
    fn warm_request_ttft_unaffected_by_cold_cobatched_delta() {
        // The batch-stall regression test: request 1 targets a delta that
        // is already GPU-resident; a cold delta entering the batch at the
        // same instant must not inflate request 1's TTFT (it used to be
        // charged the other model's whole swap-in wait).
        let warm_only = manual_trace(2, vec![req(0, 0, 0.0), req(1, 0, 5.0)]);
        let with_cold = manual_trace(2, vec![req(0, 0, 0.0), req(1, 0, 5.0), req(2, 1, 5.0)]);
        let run = |overlap: bool, trace: &Trace| {
            let mut e = engine(4);
            e.config.overlap_swaps = overlap;
            e.run(trace)
        };
        let ttft1 = |m: &Metrics| m.records.iter().find(|r| r.id == 1).unwrap().ttft_s;
        let solo = ttft1(&run(true, &warm_only));
        let overlapped_m = run(true, &with_cold);
        let overlapped = ttft1(&overlapped_m);
        let serialized = ttft1(&run(false, &with_cold));
        assert!(
            (overlapped - solo).abs() < 1e-9,
            "warm TTFT must be unaffected by the cold co-batched delta: {overlapped} vs {solo}"
        );
        assert!(
            serialized > overlapped + 0.1,
            "the legacy serialized mode must show the whole-batch stall: \
             {serialized} vs {overlapped}"
        );
        // Stall accounting is per-request: the warm request carries no
        // load wait, the cold one carries (only) its own.
        let rec = |m: &Metrics, id: usize| m.records.iter().find(|r| r.id == id).cloned().unwrap();
        assert_eq!(rec(&overlapped_m, 1).load_s, 0.0);
        assert!(rec(&overlapped_m, 2).load_s > 0.1);
        assert!(overlapped_m.swap.demand_loads >= 2);
        assert!(overlapped_m.swap.overlap_fraction() > 0.0);
    }

    #[test]
    fn overlapped_mode_matches_serialized_results_and_conserves() {
        // Same trace through both modes: both drain, and overlapping never
        // makes the mean worse.
        let trace = small_trace(2.0, PopularityDist::Zipf { alpha: 1.5 }, 21);
        let mut over = engine(4);
        let mut serial = engine(4);
        serial.config.overlap_swaps = false;
        let mo = over.run(&trace);
        let ms = serial.run(&trace);
        assert_eq!(mo.len(), trace.len());
        assert_eq!(ms.len(), trace.len());
        assert!(
            mo.mean_ttft() <= ms.mean_ttft() * 1.01,
            "overlap must not hurt mean TTFT: {} vs {}",
            mo.mean_ttft(),
            ms.mean_ttft()
        );
        assert!(
            mo.swap.stall_s <= ms.swap.stall_s + 1e-9,
            "per-request stalls {} must not exceed the whole-batch stalls {}",
            mo.swap.stall_s,
            ms.swap.stall_s
        );
        // Serialized mode hides nothing; overlapped mode reports the
        // fraction it hid behind decode.
        assert_eq!(ms.swap.overlapped_s, 0.0);
    }

    #[test]
    fn host_cap_below_n_is_clamped() {
        let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        let e = DeltaZipEngine::new(
            cost,
            DeltaZipConfig {
                max_concurrent_deltas: 4,
                host_capacity_deltas: Some(1),
                ..DeltaZipConfig::default()
            },
        );
        assert_eq!(e.config.host_capacity_deltas, Some(4));
        // Above-floor caps pass through untouched; None stays None.
        let cfg = DeltaZipConfig {
            max_concurrent_deltas: 4,
            host_capacity_deltas: Some(9),
            ..DeltaZipConfig::default()
        }
        .validated();
        assert_eq!(cfg.host_capacity_deltas, Some(9));
        assert_eq!(
            DeltaZipConfig::default().validated().host_capacity_deltas,
            None
        );
    }

    #[test]
    fn host_cap_actually_binds_once_clamped() {
        // A small node whose GPU tier churns (rtx3090 + 7B): the host
        // cache decides warm vs cold re-loads. A tight cap — clamped up to
        // N — must force strictly more load time than an unbounded cache
        // (the old eviction rule exempted GPU-resident deltas, so the cap
        // silently never bound).
        let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
        let trace = Trace::generate(TraceSpec {
            n_models: 12,
            arrival_rate: 1.5,
            duration_s: 60.0,
            popularity: PopularityDist::Uniform,
            seed: 31,
        });
        let run = |host_cap: Option<usize>| {
            let mut e = DeltaZipEngine::new(
                cost,
                DeltaZipConfig {
                    max_concurrent_deltas: 2,
                    host_capacity_deltas: host_cap,
                    ..DeltaZipConfig::default()
                },
            );
            let m = e.run(&trace);
            assert_eq!(m.len(), trace.len());
            m.records.iter().map(|r| r.load_s).sum::<f64>()
        };
        let unbounded = run(None);
        let tight = run(Some(1)); // clamps to 2
        assert!(
            tight > unbounded,
            "clamped host cap must bind: tight {tight} vs unbounded {unbounded}"
        );
    }

    #[test]
    fn queue_lookahead_prefetch_cuts_stalls_under_churn() {
        // Many models on a bounded host cache: looking ahead in the queue
        // prewarms upcoming deltas, so demand loads hit host instead of
        // disk. Prefetch must score hits and not lose on mean TTFT.
        let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
        let trace = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: 1.2,
            duration_s: 80.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed: 41,
        });
        let config = DeltaZipConfig {
            max_concurrent_deltas: 2,
            host_capacity_deltas: Some(6),
            ..DeltaZipConfig::default()
        };
        let base = DeltaZipEngine::new(cost, config).run(&trace);
        let mut pf =
            DeltaZipEngine::new(cost, config).with_prefetcher(Box::new(QueueLookahead::new(4)));
        let mp = pf.run(&trace);
        assert_eq!(mp.len(), trace.len());
        assert!(mp.swap.prefetch_issued > 0, "lookahead must issue prewarms");
        assert!(
            mp.swap.prefetch_hits > 0,
            "some prewarmed deltas must be demanded while warm"
        );
        assert!(
            mp.swap.stall_s <= base.swap.stall_s,
            "prefetch must not increase total stalls: {} vs {}",
            mp.swap.stall_s,
            base.swap.stall_s
        );
    }

    #[test]
    fn popularity_prefetch_serves_everything_and_scores_hits() {
        let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
        let trace = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: 1.0,
            duration_s: 60.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed: 43,
        });
        let config = DeltaZipConfig {
            max_concurrent_deltas: 2,
            host_capacity_deltas: Some(6),
            ..DeltaZipConfig::default()
        };
        let mut e = DeltaZipEngine::new(cost, config).with_prefetcher(Box::new(
            PopularityPrefetch::new(trace.spec.popularity, 16, 4),
        ));
        let m = e.run(&trace);
        assert_eq!(m.len(), trace.len());
        assert!(m.swap.prefetch_issued > 0);
        assert!(m.swap.prefetch_hit_rate() > 0.0);
    }

    #[test]
    fn dynamic_n_serves_everything_and_stays_in_bounds() {
        let trace = small_trace(2.0, PopularityDist::Zipf { alpha: 1.5 }, 13);
        let ctl = DynamicN::new(
            DynamicNConfig {
                min_n: 2,
                max_n: 6,
                ..DynamicNConfig::default()
            },
            4,
        );
        let mut e = engine(4).with_dynamic_n(ctl);
        let m = e.run(&trace);
        assert_eq!(m.len(), trace.len());
        let n = e.dynamic_n.as_ref().expect("controller present").current();
        assert!((2..=6).contains(&n), "controller left bounds: {n}");
    }
}
