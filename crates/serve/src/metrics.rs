//! Serving metrics: E2E latency, TTFT, throughput, SLO attainment,
//! per-request latency breakdown.

use crate::request::ReqState;
use crate::variant::VariantKind;
use dz_trace::stats::{fraction_within, mean, percentile, ratio_or};
use dz_trace::{AttributedRequest, CauseBreakdown, Causes, PromSnapshot};
use serde::Serialize;

/// Frozen per-request measurements.
#[derive(Debug, Clone, Serialize)]
pub struct RequestRecord {
    /// Request id.
    pub id: usize,
    /// Target model variant.
    pub model: usize,
    /// Variant kind the request was served as (the legacy delta-only
    /// engines report [`VariantKind::Delta`]).
    pub kind: VariantKind,
    /// Arrival time (s).
    pub arrival: f64,
    /// End-to-end latency (s).
    pub e2e_s: f64,
    /// Time to first token (s).
    pub ttft_s: f64,
    /// Time from arrival to first admission (queuing).
    pub queue_s: f64,
    /// Time spent waiting on model/delta loads.
    pub load_s: f64,
    /// Output tokens produced.
    pub output_tokens: usize,
    /// Preemption count.
    pub preemptions: usize,
    /// Critical-path cause ledger (sums to `e2e_s` for the DeltaZip
    /// engine; all-zero for baselines that do not attribute).
    pub causes: Causes,
}

/// Engine-level swap accounting: how much delta loading happened, how
/// much of it was hidden behind decode, and what predictive prefetch
/// contributed. Zero for engines that do no swapping.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SwapStats {
    /// Demand loads started (deltas actually swapped in).
    pub demand_loads: usize,
    /// Wall-clock seconds during which at least one load was in flight.
    pub load_busy_s: f64,
    /// Of `load_busy_s`, seconds during which decode was running
    /// concurrently (hidden load time).
    pub overlapped_s: f64,
    /// Of `load_busy_s`, seconds during which the engine had nothing to
    /// decode and sat exposed on loads.
    pub blocked_s: f64,
    /// Total per-request stall seconds charged (each request waits only
    /// for its *own* delta).
    pub stall_s: f64,
    /// What the legacy serialized accounting would have charged per load
    /// episode: the sum of every demand load's uncontended duration.
    pub serialized_stall_s: f64,
    /// Predictive prefetch transfers started.
    pub prefetch_issued: usize,
    /// Predictive prefetch transfers that completed.
    pub prefetch_completed: usize,
    /// Demand loads served by a prefetch: the delta was host-warm because
    /// a completed prefetch put it there, or its prewarm was still in
    /// flight and was promoted into the demand load.
    pub prefetch_hits: usize,
}

impl SwapStats {
    /// Fraction of in-flight load time hidden behind decode
    /// (`0.0` when nothing was loaded).
    pub fn overlap_fraction(&self) -> f64 {
        ratio_or(self.overlapped_s, self.load_busy_s, 0.0)
    }

    /// Fraction of issued prefetches whose delta was later demanded while
    /// still warm (`0.0` when nothing was prefetched).
    pub fn prefetch_hit_rate(&self) -> f64 {
        ratio_or(self.prefetch_hits as f64, self.prefetch_issued as f64, 0.0)
    }

    /// Field-wise accumulation (for cluster-level aggregation).
    pub fn merge(&mut self, other: &SwapStats) {
        self.demand_loads += other.demand_loads;
        self.load_busy_s += other.load_busy_s;
        self.overlapped_s += other.overlapped_s;
        self.blocked_s += other.blocked_s;
        self.stall_s += other.stall_s;
        self.serialized_stall_s += other.serialized_stall_s;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_completed += other.prefetch_completed;
        self.prefetch_hits += other.prefetch_hits;
    }
}

/// Engine-level accounting of heterogeneous "toppings" batches: how the
/// running batch decomposed by variant kind and where the kernel seconds
/// went. Zero everywhere for engines without a variant catalog.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ToppingsStats {
    /// Finished requests served as `Base`.
    pub base_reqs: usize,
    /// Finished requests served as `Lora`.
    pub lora_reqs: usize,
    /// Finished requests served as `Delta`.
    pub delta_reqs: usize,
    /// Finished requests served as `Stacked`.
    pub stacked_reqs: usize,
    /// Decode iterations executed.
    pub batches: usize,
    /// Iterations that co-scheduled the two serving pools: a delta-backed
    /// request (`Delta`/`Stacked`) alongside a pure-`Lora` one. A lone
    /// stacked variant drives both SBMM and SGMV but is a single pool, so
    /// it does not count; `segregate_kinds` forces this to zero.
    pub mixed_batches: usize,
    /// High-water mark of distinct toppings (non-base variants) holding a
    /// batch slot at any iteration — never exceeds the engine's
    /// `max_toppings_per_batch` cap.
    pub max_toppings_in_batch: usize,
    /// Kernel seconds in shared base work (GEMMs, head/KV, all-reduce).
    pub base_gemm_s: f64,
    /// Kernel seconds in delta SBMM products.
    pub sbmm_s: f64,
    /// Kernel seconds in adapter SGMV products.
    pub sgmv_s: f64,
}

impl ToppingsStats {
    /// Total requests counted across all kinds.
    pub fn total_reqs(&self) -> usize {
        self.base_reqs + self.lora_reqs + self.delta_reqs + self.stacked_reqs
    }

    /// Total decode kernel seconds across all kinds.
    pub fn kernel_total_s(&self) -> f64 {
        self.base_gemm_s + self.sbmm_s + self.sgmv_s
    }

    /// Field-wise accumulation (for cluster-level aggregation; the
    /// high-water mark takes the max).
    pub fn merge(&mut self, other: &ToppingsStats) {
        self.base_reqs += other.base_reqs;
        self.lora_reqs += other.lora_reqs;
        self.delta_reqs += other.delta_reqs;
        self.stacked_reqs += other.stacked_reqs;
        self.batches += other.batches;
        self.mixed_batches += other.mixed_batches;
        self.max_toppings_in_batch = self.max_toppings_in_batch.max(other.max_toppings_in_batch);
        self.base_gemm_s += other.base_gemm_s;
        self.sbmm_s += other.sbmm_s;
        self.sgmv_s += other.sgmv_s;
    }
}

/// One fixed-width window of SLO accounting (see
/// [`Metrics::windowed_attainment`]).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SloWindow {
    /// Window start (s, inclusive).
    pub start_s: f64,
    /// Window end (s, exclusive).
    pub end_s: f64,
    /// Requests that arrived in this window.
    pub n: usize,
    /// Fraction of those requests that met the SLO; `None` when no
    /// requests arrived (routine during outages and traffic troughs).
    pub attainment: Option<f64>,
}

/// Aggregated results of one trace replay.
#[derive(Debug, Clone, Serialize)]
pub struct Metrics {
    /// Engine label.
    pub engine: String,
    /// Per-request records (every request in the trace, finished).
    pub records: Vec<RequestRecord>,
    /// Wall-clock span of the replay (s).
    pub makespan_s: f64,
    /// Engine-level swap/overlap/prefetch accounting.
    pub swap: SwapStats,
    /// Engine-level per-kind toppings batch accounting.
    pub toppings: ToppingsStats,
}

impl Metrics {
    /// Builds metrics from finished request states.
    ///
    /// # Panics
    ///
    /// Panics if any request is unfinished — engines must drain.
    pub fn from_states(engine: String, states: &[ReqState], makespan_s: f64) -> Metrics {
        let records = states
            .iter()
            .map(|s| {
                let finished = s
                    .finished_at
                    .unwrap_or_else(|| panic!("request {} never finished", s.req.id));
                let first_tok = s
                    .first_token_at
                    .unwrap_or_else(|| panic!("request {} produced no token", s.req.id));
                RequestRecord {
                    id: s.req.id,
                    model: s.req.model,
                    kind: s.kind,
                    arrival: s.req.arrival,
                    e2e_s: finished - s.req.arrival,
                    ttft_s: first_tok - s.req.arrival,
                    queue_s: s.first_admitted_at.unwrap_or(finished) - s.req.arrival,
                    load_s: s.load_wait_s,
                    output_tokens: s.req.output_tokens,
                    preemptions: s.preemptions,
                    causes: s.causes,
                }
            })
            .collect();
        Metrics {
            engine,
            records,
            makespan_s,
            swap: SwapStats::default(),
            toppings: ToppingsStats::default(),
        }
    }

    /// Attaches engine-level swap accounting.
    pub fn with_swap(mut self, swap: SwapStats) -> Metrics {
        self.swap = swap;
        self
    }

    /// Attaches engine-level toppings batch accounting.
    pub fn with_toppings(mut self, toppings: ToppingsStats) -> Metrics {
        self.toppings = toppings;
        self
    }

    /// Number of requests served.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no requests were served.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean end-to-end latency (s); `0.0` when no requests were served.
    pub fn mean_e2e(&self) -> f64 {
        mean(self.records.iter().map(|r| r.e2e_s)).unwrap_or(0.0)
    }

    /// Mean time to first token (s); `0.0` when no requests were served.
    pub fn mean_ttft(&self) -> f64 {
        mean(self.records.iter().map(|r| r.ttft_s)).unwrap_or(0.0)
    }

    /// Mean time per output token (s/token), the Figure 10 metric;
    /// `0.0` when no requests were served.
    pub fn mean_time_per_token(&self) -> f64 {
        mean(
            self.records
                .iter()
                .map(|r| r.e2e_s / r.output_tokens.max(1) as f64),
        )
        .unwrap_or(0.0)
    }

    /// Requests per second over the makespan.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.records.len() as f64 / self.makespan_s
        }
    }

    /// Output tokens per second over the makespan.
    pub fn throughput_tps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.records.iter().map(|r| r.output_tokens).sum::<usize>() as f64 / self.makespan_s
        }
    }

    /// Fraction of requests with E2E latency within `slo_s`.
    pub fn slo_attainment_e2e(&self, slo_s: f64) -> f64 {
        fraction_within(self.records.iter().map(|r| r.e2e_s), slo_s)
    }

    /// Fraction of requests with TTFT within `slo_s`.
    pub fn slo_attainment_ttft(&self, slo_s: f64) -> f64 {
        fraction_within(self.records.iter().map(|r| r.ttft_s), slo_s)
    }

    /// Attainment curve over a threshold grid: `(threshold, fraction)`.
    pub fn slo_curve(&self, thresholds: &[f64], ttft: bool) -> Vec<(f64, f64)> {
        thresholds
            .iter()
            .map(|&s| {
                (
                    s,
                    if ttft {
                        self.slo_attainment_ttft(s)
                    } else {
                        self.slo_attainment_e2e(s)
                    },
                )
            })
            .collect()
    }

    /// Percentile of E2E latency (q in 0..=1); `0.0` when no requests
    /// were served.
    pub fn e2e_percentile(&self, q: f64) -> f64 {
        percentile(self.records.iter().map(|r| r.e2e_s).collect(), q).unwrap_or(0.0)
    }

    /// Percentile of TTFT; `0.0` when no requests were served.
    pub fn ttft_percentile(&self, q: f64) -> f64 {
        percentile(self.records.iter().map(|r| r.ttft_s).collect(), q).unwrap_or(0.0)
    }

    /// Percentile of per-request model/delta load waits (what swap-in
    /// cost looks like from a request's point of view; the tail is the
    /// cold-load figure `exp bench-compress` sweeps per codec).
    /// `0.0` when no requests were served.
    pub fn load_percentile(&self, q: f64) -> f64 {
        percentile(self.records.iter().map(|r| r.load_s).collect(), q).unwrap_or(0.0)
    }

    /// A filtered view of the records (e.g. one SLO class, one model),
    /// keeping the makespan of the full replay.
    pub fn subset(&self, engine: String, keep: impl Fn(&RequestRecord) -> bool) -> Metrics {
        Metrics {
            engine,
            records: self.records.iter().filter(|r| keep(r)).cloned().collect(),
            makespan_s: self.makespan_s,
            swap: self.swap,
            toppings: self.toppings,
        }
    }

    /// Mean queuing / loading / inference split (sums to mean E2E).
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let queue = mean(self.records.iter().map(|r| r.queue_s)).unwrap_or(0.0);
        let load = mean(self.records.iter().map(|r| r.load_s)).unwrap_or(0.0);
        let e2e = self.mean_e2e();
        (queue, load, (e2e - queue - load).max(0.0))
    }

    /// Per-window SLO attainment over fixed `window_s` buckets of
    /// *arrival* time: window `i` covers arrivals in
    /// `[i*window_s, (i+1)*window_s)` and reports what fraction of them
    /// met the SLO, however late they eventually finished. Keying by
    /// arrival (not completion) means an outage shows up in the windows
    /// whose arrivals it punished, which is what recovery time measures.
    /// Empty windows report `None` — no data, not a perfect window.
    ///
    /// Windows span `[0, max(makespan, last arrival))`; `ttft` selects
    /// the TTFT SLO instead of E2E.
    pub fn windowed_attainment(&self, window_s: f64, slo_s: f64, ttft: bool) -> Vec<SloWindow> {
        assert!(window_s > 0.0, "window must be positive");
        let span = self
            .records
            .iter()
            .map(|r| r.arrival)
            .fold(self.makespan_s, f64::max);
        let n_windows = (span / window_s).floor() as usize + 1;
        let mut ok = vec![0usize; n_windows];
        let mut n = vec![0usize; n_windows];
        for r in &self.records {
            let w = ((r.arrival / window_s).floor() as usize).min(n_windows - 1);
            let v = if ttft { r.ttft_s } else { r.e2e_s };
            n[w] += 1;
            if v <= slo_s {
                ok[w] += 1;
            }
        }
        (0..n_windows)
            .map(|w| SloWindow {
                start_s: w as f64 * window_s,
                end_s: (w + 1) as f64 * window_s,
                n: n[w],
                attainment: if n[w] == 0 {
                    None
                } else {
                    Some(ok[w] as f64 / n[w] as f64)
                },
            })
            .collect()
    }

    /// Contiguous spans of windows whose attainment fell below
    /// `threshold`, as `(start_s, end_s)` intervals. Empty windows are
    /// neutral: they neither violate nor attain, and they end a run.
    pub fn violation_intervals(windows: &[SloWindow], threshold: f64) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut open: Option<(f64, f64)> = None;
        for w in windows {
            if w.attainment.is_some_and(|a| a < threshold) {
                open = Some(match open {
                    Some((s, _)) => (s, w.end_s),
                    None => (w.start_s, w.end_s),
                });
            } else if let Some(iv) = open.take() {
                out.push(iv);
            }
        }
        if let Some(iv) = open {
            out.push(iv);
        }
        out
    }

    /// Recovery time after a fault at `fault_at_s`: seconds from the
    /// fault until windowed attainment first re-crosses `threshold`
    /// (measured at the end of the first post-fault window that attains;
    /// empty windows do not count as recovered). `None` when attainment
    /// never comes back within the run.
    pub fn recovery_time_s(windows: &[SloWindow], fault_at_s: f64, threshold: f64) -> Option<f64> {
        windows
            .iter()
            .filter(|w| w.end_s > fault_at_s)
            .find(|w| w.attainment.is_some_and(|a| a >= threshold))
            .map(|w| (w.end_s - fault_at_s).max(0.0))
    }

    /// Critical-path attribution over the per-request cause ledgers:
    /// mean causes over all requests plus over the e2e tail at the
    /// `tail_q` percentile (`0.99` answers "where did the p99 go").
    pub fn attribution(&self, tail_q: f64) -> CauseBreakdown {
        let reqs: Vec<AttributedRequest> = self
            .records
            .iter()
            .map(|r| AttributedRequest {
                e2e_s: r.e2e_s,
                causes: r.causes,
            })
            .collect();
        dz_trace::attrib::breakdown(&reqs, tail_q)
    }

    /// Renders the run as a Prometheus text-exposition snapshot
    /// (counter/summary families labelled by engine), mirroring what the
    /// real deployment scrapes.
    pub fn prometheus_snapshot(&self) -> String {
        let labels: &[(&str, &str)] = &[("engine", &self.engine)];
        let mut p = PromSnapshot::new();
        p.header("dz_requests_total", "counter", "Requests served.");
        p.sample("dz_requests_total", labels, self.len() as f64);
        p.header("dz_tokens_total", "counter", "Output tokens produced.");
        p.sample(
            "dz_tokens_total",
            labels,
            self.records.iter().map(|r| r.output_tokens).sum::<usize>() as f64,
        );
        p.header("dz_e2e_seconds", "summary", "End-to-end request latency.");
        let e2e: Vec<f64> = self.records.iter().map(|r| r.e2e_s).collect();
        p.summary("dz_e2e_seconds", labels, &e2e);
        p.header("dz_ttft_seconds", "summary", "Time to first token.");
        let ttft: Vec<f64> = self.records.iter().map(|r| r.ttft_s).collect();
        p.summary("dz_ttft_seconds", labels, &ttft);
        p.header("dz_demand_loads_total", "counter", "Demand delta loads.");
        p.sample(
            "dz_demand_loads_total",
            labels,
            self.swap.demand_loads as f64,
        );
        p.header(
            "dz_prefetch_issued_total",
            "counter",
            "Prefetch transfers issued.",
        );
        p.sample(
            "dz_prefetch_issued_total",
            labels,
            self.swap.prefetch_issued as f64,
        );
        p.header(
            "dz_prefetch_hits_total",
            "counter",
            "Demand loads served by prefetch.",
        );
        p.sample(
            "dz_prefetch_hits_total",
            labels,
            self.swap.prefetch_hits as f64,
        );
        p.header(
            "dz_swap_overlap_fraction",
            "gauge",
            "Fraction of load time hidden behind decode.",
        );
        p.sample(
            "dz_swap_overlap_fraction",
            labels,
            self.swap.overlap_fraction(),
        );
        p.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_workload::Request;

    fn record(e2e: f64, ttft: f64, toks: usize) -> RequestRecord {
        RequestRecord {
            id: 0,
            model: 0,
            kind: VariantKind::Delta,
            arrival: 0.0,
            e2e_s: e2e,
            ttft_s: ttft,
            queue_s: ttft / 2.0,
            load_s: 0.1,
            output_tokens: toks,
            preemptions: 0,
            causes: Causes::default(),
        }
    }

    fn metrics(records: Vec<RequestRecord>) -> Metrics {
        Metrics {
            engine: "test".into(),
            records,
            makespan_s: 10.0,
            swap: SwapStats::default(),
            toppings: ToppingsStats::default(),
        }
    }

    #[test]
    fn toppings_stats_merge_and_totals() {
        let mut a = ToppingsStats {
            lora_reqs: 2,
            delta_reqs: 3,
            batches: 5,
            mixed_batches: 1,
            max_toppings_in_batch: 4,
            base_gemm_s: 1.0,
            sbmm_s: 0.5,
            sgmv_s: 0.25,
            ..ToppingsStats::default()
        };
        let b = ToppingsStats {
            base_reqs: 1,
            stacked_reqs: 2,
            batches: 3,
            max_toppings_in_batch: 7,
            sgmv_s: 0.25,
            ..ToppingsStats::default()
        };
        a.merge(&b);
        assert_eq!(a.total_reqs(), 8);
        assert_eq!(a.batches, 8);
        assert_eq!(a.max_toppings_in_batch, 7, "high-water takes the max");
        assert!((a.kernel_total_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn means_and_throughput() {
        let m = metrics(vec![record(2.0, 0.5, 10), record(4.0, 1.5, 30)]);
        assert!((m.mean_e2e() - 3.0).abs() < 1e-9);
        assert!((m.mean_ttft() - 1.0).abs() < 1e-9);
        assert!((m.throughput_rps() - 0.2).abs() < 1e-9);
        assert!((m.throughput_tps() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn slo_attainment() {
        let m = metrics(vec![
            record(1.0, 0.1, 1),
            record(5.0, 2.0, 1),
            record(9.0, 4.0, 1),
        ]);
        assert!((m.slo_attainment_e2e(5.0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.slo_attainment_ttft(0.5) - 1.0 / 3.0).abs() < 1e-9);
        let curve = m.slo_curve(&[1.0, 10.0], false);
        assert!(curve[1].1 >= curve[0].1, "attainment must be monotone");
    }

    #[test]
    fn percentiles() {
        let m = metrics(
            (1..=100)
                .map(|i| record(i as f64, i as f64 / 10.0, 1))
                .collect(),
        );
        assert!((m.e2e_percentile(0.5) - 50.0).abs() <= 1.0);
        assert!(m.e2e_percentile(0.9) > m.e2e_percentile(0.5));
    }

    #[test]
    fn percentile_interpolates_single_sample() {
        let m = metrics(vec![record(3.0, 1.0, 1)]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(m.e2e_percentile(q), 3.0);
        }
    }

    #[test]
    fn percentile_interpolates_two_samples() {
        // Nearest-rank-with-round reported p50 of {1, 3} as 3 (biased
        // high); linear interpolation gives the midpoint.
        let m = metrics(vec![record(1.0, 1.0, 1), record(3.0, 1.0, 1)]);
        assert!((m.e2e_percentile(0.5) - 2.0).abs() < 1e-12);
        assert_eq!(m.e2e_percentile(0.0), 1.0);
        assert_eq!(m.e2e_percentile(1.0), 3.0);
        // p99 is near — but strictly below — the max.
        let p99 = m.e2e_percentile(0.99);
        assert!(p99 < 3.0 && p99 > 2.9, "{p99}");
    }

    #[test]
    fn percentile_interpolates_four_samples() {
        let m = metrics(
            [10.0, 20.0, 30.0, 40.0]
                .into_iter()
                .map(|v| record(v, 1.0, 1))
                .collect(),
        );
        // pos = 0.5 * 3 = 1.5 -> midpoint of 20 and 30.
        assert!((m.e2e_percentile(0.5) - 25.0).abs() < 1e-12);
        // pos = 0.99 * 3 = 2.97 -> 30 + 0.97 * 10; the old nearest-rank
        // collapsed this to the max.
        assert!((m.e2e_percentile(0.99) - 39.7).abs() < 1e-9);
        assert!(m.e2e_percentile(0.99) < 40.0);
        // pos = 0.25 * 3 = 0.75 -> 10 + 0.75 * 10.
        assert!((m.e2e_percentile(0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn swap_stats_ratios_and_merge() {
        let mut a = SwapStats {
            demand_loads: 2,
            load_busy_s: 4.0,
            overlapped_s: 3.0,
            blocked_s: 1.0,
            stall_s: 1.5,
            serialized_stall_s: 5.0,
            prefetch_issued: 4,
            prefetch_completed: 3,
            prefetch_hits: 2,
        };
        assert!((a.overlap_fraction() - 0.75).abs() < 1e-12);
        assert!((a.prefetch_hit_rate() - 0.5).abs() < 1e-12);
        a.merge(&a.clone());
        assert_eq!(a.demand_loads, 4);
        assert!((a.load_busy_s - 8.0).abs() < 1e-12);
        assert!((a.overlap_fraction() - 0.75).abs() < 1e-12);
        // Degenerate: nothing loaded, nothing prefetched.
        let zero = SwapStats::default();
        assert_eq!(zero.overlap_fraction(), 0.0);
        assert_eq!(zero.prefetch_hit_rate(), 0.0);
    }

    fn swap_a() -> SwapStats {
        SwapStats {
            demand_loads: 2,
            load_busy_s: 4.0,
            overlapped_s: 3.0,
            blocked_s: 1.0,
            stall_s: 1.5,
            serialized_stall_s: 5.0,
            prefetch_issued: 4,
            prefetch_completed: 3,
            prefetch_hits: 2,
        }
    }

    fn swap_b() -> SwapStats {
        SwapStats {
            demand_loads: 10,
            load_busy_s: 1.0,
            overlapped_s: 0.0,
            blocked_s: 1.0,
            stall_s: 7.0,
            serialized_stall_s: 8.0,
            prefetch_issued: 1,
            prefetch_completed: 1,
            prefetch_hits: 1,
        }
    }

    fn swap_fields(s: &SwapStats) -> [f64; 9] {
        [
            s.demand_loads as f64,
            s.load_busy_s,
            s.overlapped_s,
            s.blocked_s,
            s.stall_s,
            s.serialized_stall_s,
            s.prefetch_issued as f64,
            s.prefetch_completed as f64,
            s.prefetch_hits as f64,
        ]
    }

    #[test]
    fn swap_merge_empty_is_identity() {
        let mut zero = SwapStats::default();
        zero.merge(&swap_a());
        assert_eq!(swap_fields(&zero), swap_fields(&swap_a()));
        let mut a = swap_a();
        a.merge(&SwapStats::default());
        assert_eq!(swap_fields(&a), swap_fields(&swap_a()));
    }

    #[test]
    fn swap_merge_commutes() {
        let mut ab = swap_a();
        ab.merge(&swap_b());
        let mut ba = swap_b();
        ba.merge(&swap_a());
        assert_eq!(swap_fields(&ab), swap_fields(&ba));
    }

    #[test]
    fn swap_merge_recomputes_rates_not_averages() {
        // a: overlap 3/4 = 0.75, hit rate 2/4 = 0.5.
        // b: overlap 0/1 = 0.0,  hit rate 1/1 = 1.0.
        let mut m = swap_a();
        m.merge(&swap_b());
        // Pooled overlap is 3/5, NOT the 0.375 a naive mean of the two
        // per-replica fractions would give.
        assert!((m.overlap_fraction() - 0.6).abs() < 1e-12);
        assert!((m.overlap_fraction() - (0.75 + 0.0) / 2.0).abs() > 0.1);
        // Pooled hit rate is 3/5, not (0.5 + 1.0) / 2.
        assert!((m.prefetch_hit_rate() - 0.6).abs() < 1e-12);
    }

    fn record_at(arrival: f64, e2e: f64) -> RequestRecord {
        RequestRecord {
            arrival,
            e2e_s: e2e,
            ..record(e2e, e2e / 2.0, 1)
        }
    }

    #[test]
    fn windowed_attainment_keys_by_arrival_and_reports_empty_as_none() {
        // Arrivals at 1s and 2s meet a 5s SLO; the arrival at 11s does
        // not; nothing arrives in [20, 30); the arrival at 31s recovers.
        let m = Metrics {
            makespan_s: 40.0,
            ..metrics(vec![
                record_at(1.0, 1.0),
                record_at(2.0, 2.0),
                record_at(11.0, 30.0),
                record_at(31.0, 1.0),
            ])
        };
        let w = m.windowed_attainment(10.0, 5.0, false);
        assert_eq!(w.len(), 5);
        assert_eq!(w[0].n, 2);
        assert_eq!(w[0].attainment, Some(1.0));
        assert_eq!(w[1].attainment, Some(0.0));
        assert_eq!(w[2].attainment, None, "empty window is no-data");
        assert_eq!(w[3].attainment, Some(1.0));
        assert_eq!(w[4].attainment, None);
        assert!((w[1].start_s - 10.0).abs() < 1e-12 && (w[1].end_s - 20.0).abs() < 1e-12);
    }

    #[test]
    fn violation_intervals_merge_contiguous_windows() {
        let m = Metrics {
            makespan_s: 50.0,
            ..metrics(vec![
                record_at(1.0, 1.0),
                record_at(11.0, 99.0),
                record_at(21.0, 99.0),
                record_at(31.0, 1.0),
                record_at(41.0, 99.0),
            ])
        };
        let w = m.windowed_attainment(10.0, 5.0, false);
        let iv = Metrics::violation_intervals(&w, 0.9);
        assert_eq!(iv, vec![(10.0, 30.0), (40.0, 50.0)]);
    }

    #[test]
    fn windowed_attainment_with_no_records_is_all_empty_windows() {
        // A dead replica's metrics: no arrivals at all. Windows span the
        // makespan, every one reports no-data, and no interval opens.
        let m = Metrics {
            makespan_s: 25.0,
            ..metrics(vec![])
        };
        let w = m.windowed_attainment(10.0, 5.0, false);
        assert_eq!(w.len(), 3);
        for win in &w {
            assert_eq!(win.n, 0);
            assert_eq!(win.attainment, None);
        }
        assert!(Metrics::violation_intervals(&w, 0.9).is_empty());
        assert_eq!(Metrics::recovery_time_s(&w, 0.0, 0.9), None);
    }

    #[test]
    fn windowed_attainment_single_request_and_exact_slo_boundary() {
        // One request, e2e exactly equal to the SLO: `v <= slo` means the
        // boundary counts as attained, and every other window is no-data.
        let m = Metrics {
            makespan_s: 30.0,
            ..metrics(vec![record_at(15.0, 5.0)])
        };
        let w = m.windowed_attainment(10.0, 5.0, false);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].attainment, None);
        assert_eq!((w[1].n, w[1].attainment), (1, Some(1.0)));
        assert_eq!(w[2].attainment, None);
        // Nudge past the SLO and the same window flips to violation.
        let late = Metrics {
            makespan_s: 30.0,
            ..metrics(vec![record_at(15.0, 5.0 + 1e-9)])
        };
        assert_eq!(
            late.windowed_attainment(10.0, 5.0, false)[1].attainment,
            Some(0.0)
        );
    }

    #[test]
    fn arrival_exactly_on_window_boundary_lands_in_the_later_window() {
        // Windows are half-open [start, end): an arrival at exactly 10.0
        // belongs to [10, 20), not [0, 10). An arrival exactly at the
        // span end clamps into the last window instead of indexing past
        // the vector.
        let m = Metrics {
            makespan_s: 20.0,
            ..metrics(vec![record_at(10.0, 1.0), record_at(20.0, 99.0)])
        };
        let w = m.windowed_attainment(10.0, 5.0, false);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].n, 0, "nothing in [0, 10)");
        assert_eq!((w[1].n, w[1].attainment), (1, Some(1.0)));
        assert_eq!(
            (w[2].n, w[2].attainment),
            (1, Some(0.0)),
            "clamped into last"
        );
    }

    #[test]
    fn violation_threshold_is_strict_and_trailing_violation_closes() {
        // Attainment exactly equal to the threshold does NOT violate
        // (`a < threshold` is strict), and a violation still open at the
        // end of the run is emitted.
        let m = Metrics {
            makespan_s: 20.0,
            ..metrics(vec![
                record_at(1.0, 1.0),
                record_at(2.0, 99.0),
                record_at(11.0, 99.0),
            ])
        };
        let w = m.windowed_attainment(10.0, 5.0, false);
        assert_eq!(w[0].attainment, Some(0.5));
        assert_eq!(
            Metrics::violation_intervals(&w, 0.5),
            vec![(10.0, 20.0)],
            "attainment == threshold is not a violation"
        );
        let iv = Metrics::violation_intervals(&w, 0.9);
        assert_eq!(
            iv,
            vec![(0.0, 20.0)],
            "trailing open interval closes at run end"
        );
    }

    #[test]
    fn recovery_time_crosses_threshold_after_fault() {
        let m = Metrics {
            makespan_s: 50.0,
            ..metrics(vec![
                record_at(1.0, 1.0),
                record_at(11.0, 99.0),
                record_at(21.0, 99.0),
                record_at(31.0, 1.0),
            ])
        };
        let w = m.windowed_attainment(10.0, 5.0, false);
        // Fault at 10s: windows [10,20) and [20,30) violate, [30,40)
        // attains -> recovery measured at its end.
        let rec = Metrics::recovery_time_s(&w, 10.0, 0.9).unwrap();
        assert!((rec - 30.0).abs() < 1e-12, "{rec}");
        // A run that never recovers reports None.
        let never = Metrics {
            makespan_s: 20.0,
            ..metrics(vec![record_at(1.0, 1.0), record_at(11.0, 99.0)])
        };
        let wn = never.windowed_attainment(10.0, 5.0, false);
        assert_eq!(Metrics::recovery_time_s(&wn, 10.0, 0.9), None);
    }

    #[test]
    fn breakdown_sums_to_e2e() {
        let m = metrics(vec![record(2.0, 1.0, 5)]);
        let (q, l, i) = m.breakdown();
        assert!((q + l + i - m.mean_e2e()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "never finished")]
    fn unfinished_requests_are_a_bug() {
        let st = crate::request::ReqState::new(Request {
            id: 7,
            model: 0,
            arrival: 0.0,
            prompt_tokens: 1,
            output_tokens: 1,
        });
        let _ = Metrics::from_states("x".into(), &[st], 1.0);
    }
}
