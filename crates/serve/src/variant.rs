//! The variant abstraction: one taxonomy for everything the engine can
//! serve.
//!
//! DeltaZip's delta path and the Punica/S-LoRA adapter path historically
//! lived behind two disjoint engines. [`VariantKind`] names the four ways
//! a request can differ from the shared base model, [`VariantSpec`] /
//! [`VariantCatalog`] register which kind each model id is, and the
//! unified [`DeltaZipEngine`](crate::deltazip::DeltaZipEngine) packs any
//! mix of them into one "toppings" batch (the Scratchpad exemplar's
//! `--enable-toppings`): delta requests dispatch through SBMM, LoRA
//! through SGMV, stacked through both.
//!
//! The warmth asymmetry is the whole point of unifying them: adapters are
//! megabytes and effectively always resident, deltas are gigabytes and
//! placement-critical. A catalog lets every residency consumer (swap
//! timeline, prefetchers, placement-aware routing) see both through one
//! interface — [`VariantKind::needs_delta`] gates the expensive machinery.

use crate::cost::CostModel;
use dz_trace::ToppingKind;
use serde::Serialize;

/// How a served variant differs from the shared base model.
///
/// ```
/// use dz_serve::VariantKind;
/// let stacked = VariantKind::Stacked { rank: 16 };
/// assert!(stacked.needs_delta() && stacked.adapter_rank() == Some(16));
/// assert!(!VariantKind::Base.is_topping());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum VariantKind {
    /// The base model itself: no extra kernel work, no residency cost.
    Base,
    /// A low-rank adapter of the given rank, served through SGMV.
    Lora {
        /// Adapter rank (e.g. 16).
        rank: usize,
    },
    /// A compressed full-model delta, served through SBMM.
    Delta,
    /// A delta with a rank-`rank` adapter stacked on top: the request
    /// pays both the SBMM and the SGMV product each iteration and needs
    /// the delta resident.
    Stacked {
        /// Rank of the stacked adapter.
        rank: usize,
    },
}

impl Default for VariantKind {
    /// Delta: what every legacy (catalog-free) trace model is.
    fn default() -> Self {
        VariantKind::Delta
    }
}

impl VariantKind {
    /// Whether this kind requires its compressed delta GPU-resident —
    /// i.e. participates in the swap/prefetch/placement machinery.
    pub fn needs_delta(self) -> bool {
        matches!(self, VariantKind::Delta | VariantKind::Stacked { .. })
    }

    /// Adapter rank, for kinds that carry one.
    pub fn adapter_rank(self) -> Option<usize> {
        match self {
            VariantKind::Lora { rank } | VariantKind::Stacked { rank } => Some(rank),
            VariantKind::Base | VariantKind::Delta => None,
        }
    }

    /// Whether the kind is a topping at all (anything but `Base`) and so
    /// counts against `max_toppings_per_batch`.
    pub fn is_topping(self) -> bool {
        !matches!(self, VariantKind::Base)
    }

    /// The trace-level tag for this kind (dz-trace cannot depend on
    /// dz-serve, so trace events carry this reduced enum).
    pub fn topping_kind(self) -> ToppingKind {
        match self {
            VariantKind::Base => ToppingKind::Base,
            VariantKind::Lora { .. } => ToppingKind::Lora,
            VariantKind::Delta => ToppingKind::Delta,
            VariantKind::Stacked { .. } => ToppingKind::Stacked,
        }
    }

    /// Stable lowercase label for tables and JSON.
    pub fn label(self) -> &'static str {
        self.topping_kind().label()
    }
}

/// Registration record for one servable variant.
///
/// ```
/// use dz_serve::{VariantKind, VariantSpec};
/// assert_eq!(VariantSpec::lora(8).kind, VariantKind::Lora { rank: 8 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct VariantSpec {
    /// What kind of variant this is.
    pub kind: VariantKind,
}

impl VariantSpec {
    /// The base model itself.
    pub fn base() -> Self {
        VariantSpec {
            kind: VariantKind::Base,
        }
    }

    /// A rank-`rank` LoRA adapter.
    pub fn lora(rank: usize) -> Self {
        VariantSpec {
            kind: VariantKind::Lora { rank },
        }
    }

    /// A compressed full-model delta.
    pub fn delta() -> Self {
        VariantSpec {
            kind: VariantKind::Delta,
        }
    }

    /// A delta with a rank-`rank` adapter stacked on it.
    pub fn stacked(rank: usize) -> Self {
        VariantSpec {
            kind: VariantKind::Stacked { rank },
        }
    }
}

/// Maps trace model ids to variant kinds.
///
/// Model id `i` in a [`dz_workload::Trace`] is served as `specs[i]`; ids
/// beyond the catalog default to [`VariantKind::Delta`], so a legacy
/// delta-only trace runs unchanged against any engine.
///
/// ```
/// use dz_serve::{VariantCatalog, VariantKind, VariantSpec};
/// let cat = VariantCatalog::from_specs(vec![VariantSpec::base(), VariantSpec::lora(16)]);
/// assert_eq!(cat.kind_of(1), VariantKind::Lora { rank: 16 });
/// assert_eq!(cat.kind_of(99), VariantKind::Delta); // unknown ids stay delta
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct VariantCatalog {
    specs: Vec<VariantSpec>,
}

impl VariantCatalog {
    /// Builds a catalog from per-model specs (index = trace model id).
    pub fn from_specs(specs: Vec<VariantSpec>) -> Self {
        VariantCatalog { specs }
    }

    /// All `n` models are deltas — the legacy delta-only world.
    pub fn all_delta(n: usize) -> Self {
        VariantCatalog {
            specs: vec![VariantSpec::delta(); n],
        }
    }

    /// All `n` models are rank-`rank` adapters — the legacy LoRA world.
    pub fn all_lora(n: usize, rank: usize) -> Self {
        VariantCatalog {
            specs: vec![VariantSpec::lora(rank); n],
        }
    }

    /// A heterogeneous mix cycling lora/delta/stacked across `n` models
    /// (model 0 is the base) — the bench-toppings variant pool.
    pub fn interleaved(n: usize, rank: usize) -> Self {
        let specs = (0..n)
            .map(|i| {
                if i == 0 {
                    VariantSpec::base()
                } else {
                    match i % 3 {
                        1 => VariantSpec::lora(rank),
                        2 => VariantSpec::delta(),
                        _ => VariantSpec::stacked(rank),
                    }
                }
            })
            .collect();
        VariantCatalog { specs }
    }

    /// Appends one spec (its model id is the previous length).
    pub fn push(&mut self, spec: VariantSpec) {
        self.specs.push(spec);
    }

    /// Number of registered variants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no variants are registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Registered specs, indexed by model id.
    pub fn specs(&self) -> &[VariantSpec] {
        &self.specs
    }

    /// Kind of trace model `model`; ids beyond the catalog are deltas.
    pub fn kind_of(&self, model: usize) -> VariantKind {
        self.specs.get(model).map_or(VariantKind::Delta, |s| s.kind)
    }

    /// Largest adapter rank in the catalog (0 when no variant carries
    /// one) — the rank the SGMV cost term prices mixed batches at.
    pub fn max_adapter_rank(&self) -> usize {
        self.specs
            .iter()
            .filter_map(|s| s.kind.adapter_rank())
            .max()
            .unwrap_or(0)
    }

    /// GPU-resident bytes model `model` needs beyond the base: the full
    /// compressed delta for delta-backed kinds, the (near-free) adapter
    /// factors for `Lora`, both for `Stacked`, nothing for `Base`. This
    /// is the warmth asymmetry in one number — placement and swap
    /// decisions only matter for kinds where it is GBs, not MBs.
    pub fn residency_bytes(&self, model: usize, cost: &CostModel) -> f64 {
        let kind = self.kind_of(model);
        let delta = if kind.needs_delta() {
            cost.delta_bytes()
        } else {
            0.0
        };
        let adapter = kind
            .adapter_rank()
            .map_or(0.0, |rank| cost.adapter_bytes(rank));
        delta + adapter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_gpusim::shapes::ModelShape;
    use dz_gpusim::spec::NodeSpec;

    #[test]
    fn kind_predicates() {
        assert!(VariantKind::Delta.needs_delta());
        assert!(VariantKind::Stacked { rank: 4 }.needs_delta());
        assert!(!VariantKind::Lora { rank: 4 }.needs_delta());
        assert!(!VariantKind::Base.needs_delta());
        assert_eq!(VariantKind::Lora { rank: 4 }.adapter_rank(), Some(4));
        assert_eq!(VariantKind::Delta.adapter_rank(), None);
        assert!(!VariantKind::Base.is_topping());
        assert!(VariantKind::Lora { rank: 4 }.is_topping());
        assert_eq!(VariantKind::Stacked { rank: 4 }.label(), "stacked");
    }

    #[test]
    fn catalog_defaults_unknown_ids_to_delta() {
        let cat = VariantCatalog::from_specs(vec![VariantSpec::base(), VariantSpec::lora(8)]);
        assert_eq!(cat.kind_of(0), VariantKind::Base);
        assert_eq!(cat.kind_of(1), VariantKind::Lora { rank: 8 });
        assert_eq!(cat.kind_of(2), VariantKind::Delta);
        assert_eq!(VariantCatalog::default().kind_of(0), VariantKind::Delta);
    }

    #[test]
    fn interleaved_cycles_kinds_with_base_first() {
        let cat = VariantCatalog::interleaved(7, 16);
        assert_eq!(cat.kind_of(0), VariantKind::Base);
        assert_eq!(cat.kind_of(1), VariantKind::Lora { rank: 16 });
        assert_eq!(cat.kind_of(2), VariantKind::Delta);
        assert_eq!(cat.kind_of(3), VariantKind::Stacked { rank: 16 });
        assert_eq!(cat.kind_of(4), VariantKind::Lora { rank: 16 });
        assert_eq!(cat.max_adapter_rank(), 16);
    }

    #[test]
    fn residency_bytes_reflect_warmth_asymmetry() {
        let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        let cat = VariantCatalog::interleaved(7, 16);
        let base = cat.residency_bytes(0, &cost);
        let lora = cat.residency_bytes(1, &cost);
        let delta = cat.residency_bytes(2, &cost);
        let stacked = cat.residency_bytes(3, &cost);
        assert_eq!(base, 0.0);
        // Adapters are tens-of-MBs; deltas are GBs (~45x apart here).
        assert!(lora > 0.0 && lora < delta / 20.0, "{lora} vs {delta}");
        assert!(stacked > delta && stacked - delta == lora);
    }
}
