//! One typed construction surface for every serving engine.
//!
//! [`EngineBuilder`] subsumes the historical per-engine constructors
//! (`DeltaZipEngine::new` + `with_*` chains, `LoraEngine::new`): declare
//! the cost model, the scheduler knobs, the variant catalog, and the
//! optional store/tracing/prefetch attachments in one place, then
//! [`build`](EngineBuilder::build) the unified toppings engine — or
//! [`build_adapter_only`](EngineBuilder::build_adapter_only) the legacy
//! Punica-style adapter engine for baselines.

use crate::cost::CostModel;
use crate::deltazip::{DeltaStoreBinding, DeltaZipConfig, DeltaZipEngine};
use crate::lora::{LoraEngine, LoraServingConfig};
use crate::predictor::LengthEstimator;
use crate::slo::SloPolicy;
use crate::swap::{Brownout, Prefetcher};
use crate::tuning::DynamicN;
use crate::variant::{VariantCatalog, VariantSpec};
use dz_trace::{TraceConfig, Tracer};

/// Builder for serving engines over one [`CostModel`].
///
/// ```
/// use dz_gpusim::shapes::ModelShape;
/// use dz_gpusim::spec::NodeSpec;
/// use dz_serve::{CostModel, EngineBuilder, VariantCatalog};
///
/// let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
/// let engine = EngineBuilder::new(cost)
///     .catalog(VariantCatalog::interleaved(6, 16))
///     .max_toppings_per_batch(4)
///     .build();
/// assert!(engine.catalog.is_some());
/// ```
pub struct EngineBuilder {
    cost: CostModel,
    scheduler: DeltaZipConfig,
    adapters: LoraServingConfig,
    catalog: Option<VariantCatalog>,
    store: Option<DeltaStoreBinding>,
    tracing: Option<TraceConfig>,
    prefetcher: Option<Box<dyn Prefetcher>>,
    slo: Option<SloPolicy>,
    estimator: Option<LengthEstimator>,
    dynamic_n: Option<DynamicN>,
    brownouts: Vec<Brownout>,
}

impl EngineBuilder {
    /// Starts a builder with default scheduler and adapter settings.
    pub fn new(cost: CostModel) -> Self {
        EngineBuilder {
            cost,
            scheduler: DeltaZipConfig::default(),
            adapters: LoraServingConfig::default(),
            catalog: None,
            store: None,
            tracing: None,
            prefetcher: None,
            slo: None,
            estimator: None,
            dynamic_n: None,
            brownouts: Vec::new(),
        }
    }

    /// Sets the DeltaZip scheduler configuration (batch caps, strategy,
    /// preemption/resume policies, swap overlap, toppings caps).
    pub fn scheduler(mut self, config: DeltaZipConfig) -> Self {
        self.scheduler = config;
        self
    }

    /// Sets the adapter-serving configuration used by
    /// [`build_adapter_only`](Self::build_adapter_only).
    pub fn adapters(mut self, config: LoraServingConfig) -> Self {
        self.adapters = config;
        self
    }

    /// Registers one model's variant spec, appending to the catalog in
    /// model-id order (the n-th call describes model `n`).
    ///
    /// ```
    /// use dz_gpusim::shapes::ModelShape;
    /// use dz_gpusim::spec::NodeSpec;
    /// use dz_serve::{CostModel, EngineBuilder, VariantKind, VariantSpec};
    ///
    /// let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
    /// let engine = EngineBuilder::new(cost)
    ///     .variant(VariantSpec::base())
    ///     .variant(VariantSpec::lora(16))
    ///     .variant(VariantSpec::delta())
    ///     .build();
    /// let catalog = engine.catalog.as_ref().unwrap();
    /// assert_eq!(catalog.kind_of(1), VariantKind::Lora { rank: 16 });
    /// ```
    pub fn variant(mut self, spec: VariantSpec) -> Self {
        self.catalog
            .get_or_insert_with(VariantCatalog::default)
            .push(spec);
        self
    }

    /// Installs a whole variant catalog at once (replacing any specs
    /// registered via [`variant`](Self::variant)).
    pub fn catalog(mut self, catalog: VariantCatalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Caps the distinct non-base toppings co-batched per iteration.
    pub fn max_toppings_per_batch(mut self, cap: usize) -> Self {
        self.scheduler.max_toppings_per_batch = Some(cap);
        self
    }

    /// Forbids mixing delta-backed and pure-LoRA toppings in one batch
    /// (the segregated-pool baseline of `exp bench-toppings`).
    pub fn segregate_kinds(mut self, segregate: bool) -> Self {
        self.scheduler.segregate_kinds = segregate;
        self
    }

    /// Attaches an artifact store binding: delta loads are charged by the
    /// bound artifacts' real compressed byte sizes.
    pub fn store(mut self, binding: DeltaStoreBinding) -> Self {
        self.store = Some(binding);
        self
    }

    /// Enables structured simulation-clock tracing.
    pub fn tracing(mut self, config: TraceConfig) -> Self {
        self.tracing = Some(config);
        self
    }

    /// Enables predictive disk→host delta prefetch.
    pub fn prefetcher(mut self, prefetcher: Box<dyn Prefetcher>) -> Self {
        self.prefetcher = Some(prefetcher);
        self
    }

    /// Enables SLO-priority queue scanning.
    pub fn slo(mut self, policy: SloPolicy) -> Self {
        self.slo = Some(policy);
        self
    }

    /// Replaces the output-length estimator.
    pub fn estimator(mut self, estimator: LengthEstimator) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Enables online `N` tuning.
    pub fn dynamic_n(mut self, controller: DynamicN) -> Self {
        self.dynamic_n = Some(controller);
        self
    }

    /// Installs a degraded-channel fault schedule.
    pub fn brownouts(mut self, schedule: Vec<Brownout>) -> Self {
        self.brownouts = schedule;
        self
    }

    /// Builds the unified toppings engine: one [`DeltaZipEngine`] serving
    /// base, LoRA, delta, and stacked variants per the catalog (no catalog
    /// means every model is a delta — the legacy behavior).
    pub fn build(self) -> DeltaZipEngine {
        let mut engine = DeltaZipEngine::new(self.cost, self.scheduler);
        engine.catalog = self.catalog;
        engine.delta_store = self.store;
        engine.prefetcher = self.prefetcher;
        engine.slo_policy = self.slo;
        engine.dynamic_n = self.dynamic_n;
        engine.brownouts = self.brownouts;
        if let Some(estimator) = self.estimator {
            engine.estimator = estimator;
        }
        if let Some(config) = self.tracing {
            engine.tracer = Tracer::enabled(config);
        }
        engine
    }

    /// Builds the legacy adapter-only [`LoraEngine`] baseline (ignores
    /// catalog, store, and every delta-side attachment).
    pub fn build_adapter_only(self) -> LoraEngine {
        LoraEngine {
            cost: self.cost,
            config: self.adapters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::VariantKind;
    use dz_gpusim::shapes::ModelShape;
    use dz_gpusim::spec::NodeSpec;

    fn cost() -> CostModel {
        CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
    }

    #[test]
    fn build_defaults_match_legacy_constructor() {
        let built = EngineBuilder::new(cost()).build();
        let legacy = DeltaZipEngine::new(cost(), DeltaZipConfig::default());
        assert_eq!(built.config.max_batch, legacy.config.max_batch);
        assert!(built.catalog.is_none());
        assert!(built.delta_store.is_none());
    }

    #[test]
    fn variant_calls_accumulate_in_model_order() {
        let e = EngineBuilder::new(cost())
            .variant(VariantSpec::base())
            .variant(VariantSpec::stacked(8))
            .build();
        let cat = e.catalog.expect("catalog registered");
        assert_eq!(cat.kind_of(0), VariantKind::Base);
        assert_eq!(cat.kind_of(1), VariantKind::Stacked { rank: 8 });
    }

    #[test]
    fn toppings_cap_lands_in_scheduler_config() {
        let e = EngineBuilder::new(cost())
            .max_toppings_per_batch(3)
            .segregate_kinds(true)
            .build();
        assert_eq!(e.config.max_toppings_per_batch, Some(3));
        assert!(e.config.segregate_kinds);
    }

    #[test]
    fn adapter_only_build_carries_config() {
        let e = EngineBuilder::new(cost())
            .adapters(LoraServingConfig::rosa(8, 0.01))
            .build_adapter_only();
        assert_eq!(e.config.rank, 8);
        assert_eq!(e.config.sparse_density, 0.01);
    }
}
