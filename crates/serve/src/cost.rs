//! Iteration-level cost model shared by all engines.
//!
//! Engines simulate at the granularity the real systems schedule at: one
//! decode iteration (one forward pass) per step, plus prompt-processing and
//! weight-loading charges. Each charge is assembled from the `dz-gpusim`
//! roofline kernels, so decode is memory-bound, prefill compute-bound, and
//! tensor parallelism adds all-reduce costs per layer.

use crate::policy::ResumePolicy;
use crate::swap::LoadProfile;
use dz_gpusim::kernel::{matmul_time, sbmm_time, BatchedImpl, MatmulDesc, WeightFormat};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_gpusim::xfer;

/// Per-kind kernel-time breakdown of one heterogeneous toppings decode
/// iteration (see [`CostModel::toppings_decode_iter`]).
///
/// `total_s` is the charge the engine advances the clock by, computed in
/// the exact (addition-order-sensitive) sequence of the legacy delta-only
/// iteration; the per-kind components are separate accumulators that sum
/// to `total_s` up to float re-association.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ToppingsIterCost {
    /// Total iteration time (s) — what the simulation clock advances by.
    pub total_s: f64,
    /// Shared base-model work: batched GEMMs, LM head + KV traffic, and
    /// tensor-parallel all-reduces (s).
    pub base_s: f64,
    /// Delta SBMM work over the delta-backed sub-batch (s).
    pub sbmm_s: f64,
    /// Adapter SGMV work over the adapter-backed sub-batch (s).
    pub sgmv_s: f64,
}

/// Shared cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Hardware of the tensor-parallel serving group.
    pub node: NodeSpec,
    /// Model family shape (base and all variants share it).
    pub shape: ModelShape,
    /// Delta storage format (e.g. 4-bit 2:4).
    pub delta_format: WeightFormat,
    /// Mean context length assumed for KV-cache traffic.
    pub avg_context_tokens: usize,
    /// Effective end-to-end model/delta load bandwidth, GB/s. Real systems
    /// are deserialization-bound well below raw PCIe (vLLM loads a 13B
    /// checkpoint in tens of seconds; cf. Figure 16's loading segments).
    /// With a bound artifact store this static constant is only the
    /// fallback before the first measured decode; see
    /// [`delta_load_time_measured`](Self::delta_load_time_measured).
    pub effective_load_gbps: f64,
    /// Optional measured artifact size overriding the shape-model delta
    /// estimate. This is how the delta-compression method zoo couples into
    /// serving cost without a bound store: `exp bench-compress` measures a
    /// codec's packed ratio at zoo scale, projects it to this node's model
    /// shape, and sets the override — every swap-in charge then scales
    /// with the codec's real bytes.
    pub delta_bytes_override: Option<f64>,
}

impl CostModel {
    /// Standard configuration: 4-bit 2:4 deltas.
    pub fn new(node: NodeSpec, shape: ModelShape) -> Self {
        CostModel {
            node,
            shape,
            delta_format: WeightFormat::Int {
                bits: 4,
                sparse24: true,
            },
            avg_context_tokens: 256,
            effective_load_gbps: 2.0,
            delta_bytes_override: None,
        }
    }

    /// Overrides the per-delta artifact size with a measured byte count
    /// (e.g. a method-zoo codec's packed size projected to this shape).
    pub fn with_delta_bytes(mut self, bytes: f64) -> Self {
        assert!(
            bytes > 0.0 && bytes.is_finite(),
            "delta bytes must be positive"
        );
        self.delta_bytes_override = Some(bytes);
        self
    }

    /// Bytes of one compressed delta: the measured override when set,
    /// otherwise the shape-model estimate for `delta_format`.
    pub fn delta_bytes(&self) -> f64 {
        if let Some(bytes) = self.delta_bytes_override {
            return bytes;
        }
        match self.delta_format {
            WeightFormat::Fp16 => self.shape.fp16_bytes(),
            WeightFormat::Int { bits, sparse24 } => self.shape.delta_bytes(bits, sparse24),
        }
    }

    /// Bytes of the full FP16 model.
    pub fn model_bytes(&self) -> f64 {
        self.shape.fp16_bytes()
    }

    /// Resident bytes of one rank-`rank` adapter: FP16 A/B factors for
    /// every adapted projection across all layers. Megabytes against the
    /// gigabytes of [`delta_bytes`](Self::delta_bytes) — the warmth
    /// asymmetry that makes adapters near-free to replicate.
    pub fn adapter_bytes(&self, rank: usize) -> f64 {
        let per_layer: usize = self
            .shape
            .layer_linears()
            .iter()
            .map(|&(k, n)| (k * rank + rank * n) * 2)
            .sum();
        (per_layer * self.shape.n_layers) as f64
    }

    /// Time for one decode iteration of the DeltaZip engine.
    ///
    /// `reqs_per_delta[d]` is the number of running requests per resident
    /// delta (zeros allowed); their sum is the shared base batch.
    pub fn deltazip_decode_iter(&self, reqs_per_delta: &[usize], strategy: BatchedImpl) -> f64 {
        let batch: usize = reqs_per_delta.iter().sum();
        self.toppings_decode_iter(batch, reqs_per_delta, &[], 0, strategy)
            .total_s
    }

    /// Time for one heterogeneous "toppings" decode iteration: one shared
    /// base GEMM over the whole `batch`, SBMM over the delta-backed
    /// sub-batch, and SGMV over the adapter-backed sub-batch (stacked
    /// requests appear in both). With no adapters this is float-for-float
    /// the legacy delta-only iteration — the all-delta differential test
    /// pins that bit-identity.
    ///
    /// `batch` is the total running batch (base requests contribute to
    /// the shared GEMM even though they appear in neither slice).
    pub fn toppings_decode_iter(
        &self,
        batch: usize,
        reqs_per_delta: &[usize],
        reqs_per_adapter: &[usize],
        rank: usize,
        strategy: BatchedImpl,
    ) -> ToppingsIterCost {
        if batch == 0 {
            return ToppingsIterCost::default();
        }
        let adapter_batch: usize = reqs_per_adapter.iter().sum();
        let tp = self.node.n_gpus.max(1);
        let mut t = 0.0;
        let (mut base_s, mut sbmm_s, mut sgmv_s) = (0.0f64, 0.0f64, 0.0f64);
        for (k, n) in self.shape.layer_linears() {
            // Base GEMM, batched over every request, sharded over TP ranks.
            let base = MatmulDesc {
                m: batch,
                k,
                n: n / tp,
                format: WeightFormat::Fp16,
            };
            let b = matmul_time(&self.node.gpu, &base);
            t += b;
            base_s += b;
            // Delta SBMM on the same activations (0 when no delta work).
            let s = sbmm_time(
                &self.node.gpu,
                reqs_per_delta,
                k,
                n / tp,
                self.delta_format,
                strategy,
            );
            t += s;
            sbmm_s += s;
            // Adapter SGMV, same pricing as `lora_decode_iter`.
            if adapter_batch > 0 {
                let distinct = reqs_per_adapter.iter().filter(|&&r| r > 0).count();
                let adapter_bytes = (k * rank + rank * n / tp) as f64 * 2.0;
                let adapter_flops = 2.0 * adapter_batch as f64 * (k * rank + rank * n / tp) as f64;
                let bw = self.node.gpu.hbm_bw_gbps * 1e9;
                let peak = self.node.gpu.fp16_tflops * 1e12 * self.node.gpu.efficiency;
                let g = (adapter_flops / peak).max(adapter_bytes * distinct as f64 / bw)
                    + 2.0 * self.node.gpu.kernel_launch_us * 1e-6;
                t += g;
                sgmv_s += g;
            }
        }
        t *= self.shape.n_layers as f64;
        base_s *= self.shape.n_layers as f64;
        sbmm_s *= self.shape.n_layers as f64;
        sgmv_s *= self.shape.n_layers as f64;
        let head = self.head_and_kv_time(batch);
        t += head;
        base_s += head;
        let ar = self.allreduce_per_iter(batch);
        t += ar;
        base_s += ar;
        ToppingsIterCost {
            total_s: t,
            base_s,
            sbmm_s,
            sgmv_s,
        }
    }

    /// Time for one decode iteration of the vLLM+SCB baseline.
    ///
    /// Every resident model with requests runs its own full-precision pass;
    /// weights of *each* model are streamed from HBM every iteration.
    pub fn vllm_decode_iter(&self, reqs_per_model: &[usize]) -> f64 {
        let tp = self.node.n_gpus.max(1);
        let mut t = 0.0;
        let mut batch_total = 0usize;
        for &m in reqs_per_model {
            if m == 0 {
                continue;
            }
            batch_total += m;
            for (k, n) in self.shape.layer_linears() {
                let desc = MatmulDesc {
                    m,
                    k,
                    n: n / tp,
                    format: WeightFormat::Fp16,
                };
                t += matmul_time(&self.node.gpu, &desc);
            }
        }
        if batch_total == 0 {
            return 0.0;
        }
        t *= self.shape.n_layers as f64;
        t += self.head_and_kv_time(batch_total);
        t += self.allreduce_per_iter(batch_total);
        t
    }

    /// Decode iteration for LoRA serving (Punica-style SGMV): base GEMM plus
    /// a rank-`r` adapter product whose weight traffic is negligible.
    pub fn lora_decode_iter(&self, reqs_per_adapter: &[usize], rank: usize) -> f64 {
        let batch: usize = reqs_per_adapter.iter().sum();
        if batch == 0 {
            return 0.0;
        }
        let tp = self.node.n_gpus.max(1);
        let mut t = 0.0;
        for (k, n) in self.shape.layer_linears() {
            let base = MatmulDesc {
                m: batch,
                k,
                n: n / tp,
                format: WeightFormat::Fp16,
            };
            t += matmul_time(&self.node.gpu, &base);
            // SGMV: x A then (xA) B for each adapter; tiny k x r and r x n.
            let distinct = reqs_per_adapter.iter().filter(|&&r| r > 0).count();
            let adapter_bytes = (k * rank + rank * n / tp) as f64 * 2.0;
            let adapter_flops = 2.0 * batch as f64 * (k * rank + rank * n / tp) as f64;
            let bw = self.node.gpu.hbm_bw_gbps * 1e9;
            let peak = self.node.gpu.fp16_tflops * 1e12 * self.node.gpu.efficiency;
            t += (adapter_flops / peak).max(adapter_bytes * distinct as f64 / bw)
                + 2.0 * self.node.gpu.kernel_launch_us * 1e-6;
        }
        t *= self.shape.n_layers as f64;
        t += self.head_and_kv_time(batch);
        t += self.allreduce_per_iter(batch);
        t
    }

    /// Decode iteration for RoSA-style adapters (low-rank pair plus an
    /// unstructured sparse component of the given `density`).
    ///
    /// The low-rank part prices like Punica SGMV; the sparse part adds, per
    /// distinct adapter, the traffic of its non-zeros (value + coordinate)
    /// and a gather-SpMM that runs far below dense peak — unstructured
    /// sparsity has no tensor-core support, which is exactly why the paper
    /// compresses *deltas* with structured 2:4 instead (§4.1).
    pub fn rosa_decode_iter(&self, reqs_per_adapter: &[usize], rank: usize, density: f64) -> f64 {
        let mut t = self.lora_decode_iter(reqs_per_adapter, rank);
        if density <= 0.0 {
            return t;
        }
        let batch: usize = reqs_per_adapter.iter().sum();
        if batch == 0 {
            return 0.0;
        }
        let tp = self.node.n_gpus.max(1);
        let distinct = reqs_per_adapter.iter().filter(|&&r| r > 0).count();
        let bw = self.node.gpu.hbm_bw_gbps * 1e9;
        // Gather-SpMM efficiency relative to dense FP16 peak.
        let peak = self.node.gpu.fp16_tflops * 1e12 * self.node.gpu.efficiency * 0.1;
        let mut sparse = 0.0;
        for (k, n) in self.shape.layer_linears() {
            let nnz = density * (k * n / tp) as f64;
            // FP16 value + 32-bit coordinate per non-zero.
            let bytes = nnz * 6.0 * distinct as f64;
            let flops = 2.0 * batch as f64 * nnz;
            sparse += (flops / peak).max(bytes / bw) + self.node.gpu.kernel_launch_us * 1e-6;
        }
        t += sparse * self.shape.n_layers as f64;
        t
    }

    /// Time to restore a preempted request's KV state from host memory:
    /// the PCIe transfer of `context_tokens` of KV cache, sharded over the
    /// tensor-parallel ranks.
    pub fn kv_swap_time(&self, context_tokens: usize) -> f64 {
        let bytes = context_tokens as f64 * self.shape.kv_bytes_per_token()
            / self.node.n_gpus.max(1) as f64;
        xfer::host_to_device_s(&self.node, bytes)
    }

    /// Resume charge for a preempted request holding `context_tokens` of
    /// KV state (prompt plus already-generated tokens) under `policy`.
    pub fn resume_time(&self, policy: ResumePolicy, context_tokens: usize) -> f64 {
        match policy {
            ResumePolicy::SwapToHost => self.kv_swap_time(context_tokens),
            ResumePolicy::Recompute => self.prefill_time(context_tokens),
            ResumePolicy::CostBased => self
                .kv_swap_time(context_tokens)
                .min(self.prefill_time(context_tokens)),
        }
    }

    fn head_and_kv_time(&self, batch: usize) -> f64 {
        let tp = self.node.n_gpus.max(1);
        let head = MatmulDesc {
            m: batch,
            k: self.shape.d_model,
            n: self.shape.vocab / tp,
            format: WeightFormat::Fp16,
        };
        let kv_bytes =
            batch as f64 * self.avg_context_tokens as f64 * self.shape.kv_bytes_per_token()
                / tp as f64;
        matmul_time(&self.node.gpu, &head) + kv_bytes / (self.node.gpu.hbm_bw_gbps * 1e9)
    }

    fn allreduce_per_iter(&self, batch: usize) -> f64 {
        // Two all-reduces per layer (attention out, MLP down) on (batch, d).
        let bytes = (batch * self.shape.d_model * 2) as f64;
        2.0 * self.shape.n_layers as f64 * self.node.allreduce_s(bytes)
    }

    /// Prompt-processing time for a set of prompts (compute-bound batch).
    pub fn prefill_time(&self, total_prompt_tokens: usize) -> f64 {
        if total_prompt_tokens == 0 {
            return 0.0;
        }
        let tp = self.node.n_gpus.max(1);
        let mut t = 0.0;
        for (k, n) in self.shape.layer_linears() {
            let desc = MatmulDesc {
                m: total_prompt_tokens,
                k,
                n: n / tp,
                format: WeightFormat::Fp16,
            };
            t += matmul_time(&self.node.gpu, &desc);
        }
        t * self.shape.n_layers as f64 + self.allreduce_per_iter(total_prompt_tokens)
    }

    /// Load time through the deserialization-bound pipeline, floored by the
    /// physical transfer path. Cold (disk) loads pay the disk read *on top*
    /// of the deserialization pipeline: the read cannot fully overlap it.
    ///
    /// This is the synthetic model, used when no artifact store is bound.
    /// The store-backed engine path uses [`load_time_measured`] instead:
    /// the pipelined `.dza` read path really does overlap disk reads with
    /// decode, so its cold charge is `max(disk, decode)`, not their sum.
    ///
    /// [`load_time_measured`]: Self::delta_load_time_measured
    fn load_time(&self, bytes: f64, tier: xfer::Tier) -> f64 {
        let physical =
            xfer::load_to_device_s(&self.node, tier, bytes / self.node.n_gpus.max(1) as f64);
        let pipeline = bytes / (self.effective_load_gbps * 1e9);
        match tier {
            xfer::Tier::Disk => physical + pipeline,
            _ => physical.max(pipeline),
        }
    }

    /// Load time with a *measured* decode throughput (compressed GB/s from
    /// the artifact store's pipelined reader). Reads, decode, and the PCIe
    /// hop overlap in the fast-path pipeline, so the wait is the slower of
    /// the physical transfer and the decode stage — `max(disk, decode)` —
    /// with the static constant only as a fallback before the first
    /// measurement.
    fn load_time_measured(&self, bytes: f64, tier: xfer::Tier, decode_gbps: Option<f64>) -> f64 {
        let physical =
            xfer::load_to_device_s(&self.node, tier, bytes / self.node.n_gpus.max(1) as f64);
        let gbps = decode_gbps
            .filter(|g| g.is_finite() && *g > 0.0)
            .unwrap_or(self.effective_load_gbps);
        physical.max(bytes / (gbps * 1e9))
    }

    /// Host-tier delta load charge under measured decode throughput
    /// (PCIe hop overlapped with decompression).
    pub fn delta_load_time_measured(&self, bytes: f64, decode_gbps: Option<f64>) -> f64 {
        self.load_time_measured(bytes, xfer::Tier::Host, decode_gbps)
    }

    /// Cold (disk) delta load charge under measured decode throughput:
    /// the disk read overlaps decode in the pipelined reader, so the
    /// charge is `max(disk + PCIe, decode)`.
    pub fn delta_cold_load_time_measured(&self, bytes: f64, decode_gbps: Option<f64>) -> f64 {
        self.load_time_measured(bytes, xfer::Tier::Disk, decode_gbps)
    }

    /// Time to bring one compressed delta from host memory to the GPUs,
    /// sized by the shape-model estimate of a delta's bytes.
    pub fn delta_load_time(&self) -> f64 {
        self.delta_load_time_bytes(self.delta_bytes())
    }

    /// Time to bring a compressed delta artifact of `bytes` from host
    /// memory to the GPUs (PCIe hop only).
    pub fn delta_load_time_bytes(&self, bytes: f64) -> f64 {
        self.load_time(bytes, xfer::Tier::Host)
    }

    /// Time to swap one full FP16 model from host memory to the GPUs.
    pub fn model_load_time(&self) -> f64 {
        self.load_time(self.model_bytes(), xfer::Tier::Host)
    }

    /// Time to load a delta from cold storage (first touch), sized by the
    /// shape-model estimate of a delta's bytes.
    pub fn delta_cold_load_time(&self) -> f64 {
        self.delta_cold_load_time_bytes(self.delta_bytes())
    }

    /// Time to load a compressed delta artifact of `bytes` from cold
    /// storage (disk read plus the PCIe hop).
    pub fn delta_cold_load_time_bytes(&self, bytes: f64) -> f64 {
        self.load_time(bytes, xfer::Tier::Disk)
    }

    /// Time to swap in a host-resident **decoded** delta copy of
    /// `raw_bytes`: a pure PCIe transfer of the raw bytes, with no decode
    /// stage (the store's cached decoded copy skips the pipeline).
    pub fn decoded_load_time_bytes(&self, raw_bytes: f64) -> f64 {
        xfer::load_to_device_s(
            &self.node,
            xfer::Tier::Host,
            raw_bytes / self.node.n_gpus.max(1) as f64,
        )
    }

    // ---- stage-decomposed load profiles for the swap timeline ----------
    //
    // Each constructor mirrors one scalar charge above: an uncontended
    // load on the `swap::TransferTimeline` completes in exactly
    // `profile.solo_s() == <the scalar charge>`, so single-load timing is
    // calibration-identical to the legacy serialized path and only
    // *concurrent* loads behave differently (they share channels).

    fn per_gpu_bytes(&self, bytes: f64) -> f64 {
        bytes / self.node.n_gpus.max(1) as f64
    }

    fn disk_stage_s(&self, bytes: f64) -> f64 {
        xfer::disk_channel_s(self.node.storage, self.per_gpu_bytes(bytes))
    }

    fn pcie_stage_s(&self, bytes: f64) -> f64 {
        xfer::pcie_channel_s(&self.node, self.per_gpu_bytes(bytes))
    }

    /// Profile of a synthetic host-tier load: PCIe hop pipelined against
    /// the static deserialization stage (`solo_s == delta_load_time_bytes`).
    pub fn delta_load_profile_bytes(&self, bytes: f64) -> LoadProfile {
        LoadProfile {
            head_s: 20e-6,
            disk_s: 0.0,
            pcie_s: self.pcie_stage_s(bytes),
            tail_s: 0.0,
            floor_s: bytes / (self.effective_load_gbps * 1e9),
        }
    }

    /// Profile of a synthetic cold (disk) load: disk and PCIe stages
    /// pipelined, then the serial deserialization tail
    /// (`solo_s == delta_cold_load_time_bytes`).
    pub fn delta_cold_load_profile_bytes(&self, bytes: f64) -> LoadProfile {
        LoadProfile {
            head_s: self.node.storage.latency_s() + 20e-6,
            disk_s: self.disk_stage_s(bytes),
            pcie_s: self.pcie_stage_s(bytes),
            tail_s: bytes / (self.effective_load_gbps * 1e9),
            floor_s: 0.0,
        }
    }

    /// Profile of a measured host-tier load
    /// (`solo_s == delta_load_time_measured`).
    pub fn delta_load_profile_measured(&self, bytes: f64, decode_gbps: Option<f64>) -> LoadProfile {
        let gbps = decode_gbps
            .filter(|g| g.is_finite() && *g > 0.0)
            .unwrap_or(self.effective_load_gbps);
        LoadProfile {
            head_s: 20e-6,
            disk_s: 0.0,
            pcie_s: self.pcie_stage_s(bytes),
            tail_s: 0.0,
            floor_s: bytes / (gbps * 1e9),
        }
    }

    /// Profile of a measured cold (disk) load: disk, PCIe, and decode all
    /// pipelined (`solo_s == delta_cold_load_time_measured`).
    pub fn delta_cold_load_profile_measured(
        &self,
        bytes: f64,
        decode_gbps: Option<f64>,
    ) -> LoadProfile {
        let gbps = decode_gbps
            .filter(|g| g.is_finite() && *g > 0.0)
            .unwrap_or(self.effective_load_gbps);
        LoadProfile {
            head_s: self.node.storage.latency_s() + 20e-6,
            disk_s: self.disk_stage_s(bytes),
            pcie_s: self.pcie_stage_s(bytes),
            tail_s: 0.0,
            floor_s: bytes / (gbps * 1e9),
        }
    }

    /// Profile of a decode-free swap-in of a host-resident decoded copy
    /// (`solo_s == decoded_load_time_bytes(raw_bytes)`).
    pub fn decoded_load_profile_bytes(&self, raw_bytes: f64) -> LoadProfile {
        LoadProfile {
            head_s: 20e-6,
            disk_s: 0.0,
            pcie_s: self.pcie_stage_s(raw_bytes),
            tail_s: 0.0,
            floor_s: 0.0,
        }
    }

    /// Profile of a predictive disk→host prewarm: disk channel only (the
    /// bytes stop in host DRAM; PCIe and decode are paid at swap-in).
    pub fn prefetch_profile_bytes(&self, bytes: f64) -> LoadProfile {
        LoadProfile {
            head_s: self.node.storage.latency_s(),
            disk_s: self.disk_stage_s(bytes),
            pcie_s: 0.0,
            tail_s: 0.0,
            floor_s: 0.0,
        }
    }

    /// How many full FP16 models fit in the cluster HBM next to activations.
    pub fn vllm_resident_capacity(&self) -> usize {
        // Reserve 15% of HBM for KV cache and activations.
        let usable = self.node.total_hbm_bytes() * 0.85;
        (usable / self.model_bytes()).floor() as usize
    }

    /// How many deltas fit next to the resident base model.
    pub fn delta_resident_capacity(&self) -> usize {
        let usable = self.node.total_hbm_bytes() * 0.85 - self.model_bytes();
        (usable.max(0.0) / self.delta_bytes()).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
    }

    #[test]
    fn deltazip_iter_beats_vllm_iter_at_many_models() {
        let cm = model();
        // 8 models, 2 requests each.
        let reqs = vec![2usize; 8];
        let dz = cm.deltazip_decode_iter(&reqs, BatchedImpl::SbmmPlus);
        let vllm = cm.vllm_decode_iter(&reqs);
        assert!(
            dz < vllm / 2.0,
            "deltazip {dz} should be well under vllm {vllm}"
        );
    }

    #[test]
    fn single_model_gap_is_modest() {
        // With one model the baseline reads one set of FP16 weights and
        // DeltaZip reads base + one delta: DeltaZip should be comparable
        // (slightly slower), matching the paper's unloaded-latency caveat.
        let cm = model();
        let dz = cm.deltazip_decode_iter(&[4], BatchedImpl::SbmmPlus);
        let vllm = cm.vllm_decode_iter(&[4]);
        assert!(dz > vllm * 0.9 && dz < vllm * 1.6, "dz {dz} vllm {vllm}");
    }

    #[test]
    fn lora_iter_is_cheapest() {
        let cm = model();
        let reqs = vec![1usize; 8];
        let lora = cm.lora_decode_iter(&reqs, 16);
        let dz = cm.deltazip_decode_iter(&reqs, BatchedImpl::SbmmPlus);
        assert!(lora < dz, "lora {lora} vs dz {dz}");
    }

    #[test]
    fn toppings_iter_with_no_adapters_is_bitwise_delta_iter() {
        // The unified-iteration contract: an adapter-free toppings batch
        // must charge the exact legacy delta-only float sequence.
        let cm = model();
        for reqs in [vec![4usize], vec![2usize; 8], vec![0, 3, 0, 1]] {
            let batch: usize = reqs.iter().sum();
            let unified = cm.toppings_decode_iter(batch, &reqs, &[], 0, BatchedImpl::SbmmPlus);
            let legacy = cm.deltazip_decode_iter(&reqs, BatchedImpl::SbmmPlus);
            assert_eq!(unified.total_s.to_bits(), legacy.to_bits());
            assert_eq!(unified.sgmv_s, 0.0);
        }
    }

    #[test]
    fn toppings_components_sum_to_total() {
        let cm = model();
        let c = cm.toppings_decode_iter(10, &[2, 3], &[1, 4], 16, BatchedImpl::SbmmPlus);
        let sum = c.base_s + c.sbmm_s + c.sgmv_s;
        assert!(
            (sum - c.total_s).abs() < 1e-9 * c.total_s,
            "components {sum} vs total {}",
            c.total_s
        );
        assert!(c.base_s > 0.0 && c.sbmm_s > 0.0 && c.sgmv_s > 0.0);
        // Mixing adapters in costs more than the delta work alone.
        let delta_only = cm.toppings_decode_iter(10, &[2, 3], &[], 0, BatchedImpl::SbmmPlus);
        assert!(c.total_s > delta_only.total_s);
        // On a single-GPU node (full delta shards per GPU — the
        // bench-toppings 3090/7B cell) serving the adapter sub-batch via
        // SGMV is cheaper than streaming it as two more deltas; at high
        // TP the shards shrink and SGMV's launch overhead can win out.
        let single = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
        let mixed = single.toppings_decode_iter(10, &[2, 3], &[1, 4], 16, BatchedImpl::SbmmPlus);
        let all_delta =
            single.toppings_decode_iter(10, &[2, 3, 1, 4], &[], 0, BatchedImpl::SbmmPlus);
        assert!(
            mixed.total_s < all_delta.total_s,
            "mixed {} vs all-delta {}",
            mixed.total_s,
            all_delta.total_s
        );
    }

    #[test]
    fn adapter_bytes_are_megabytes_not_gigabytes() {
        let cm = model();
        let a = cm.adapter_bytes(16);
        assert!(a > 1e6, "rank-16 adapter {a} bytes");
        // ~45x lighter than the packed delta (rank-16 over every linear
        // of the 13B model is ~125 MB vs the ~5.6 GB delta).
        assert!(a < cm.delta_bytes() / 20.0, "adapters must be near-free");
        assert!(cm.adapter_bytes(32) > a);
    }

    #[test]
    fn loads_are_ordered_by_bytes() {
        let cm = model();
        assert!(cm.delta_load_time() < cm.model_load_time() / 3.0);
        assert!(cm.delta_cold_load_time() > cm.delta_load_time());
    }

    #[test]
    fn byte_parameterized_loads_scale_and_order() {
        let cm = model();
        for bytes in [1e6, 1e8, 1e9] {
            // A host hit (PCIe only) is strictly cheaper than a disk miss
            // (disk read + PCIe) for the same artifact.
            assert!(
                cm.delta_load_time_bytes(bytes) < cm.delta_cold_load_time_bytes(bytes),
                "host hit must beat disk miss at {bytes} bytes"
            );
        }
        // More bytes cost more on both paths.
        assert!(cm.delta_load_time_bytes(2e8) > cm.delta_load_time_bytes(1e8));
        assert!(cm.delta_cold_load_time_bytes(2e8) > cm.delta_cold_load_time_bytes(1e8));
        // The legacy single-size APIs are the byte APIs at the shape
        // model's delta size.
        assert_eq!(
            cm.delta_load_time(),
            cm.delta_load_time_bytes(cm.delta_bytes())
        );
        assert_eq!(
            cm.delta_cold_load_time(),
            cm.delta_cold_load_time_bytes(cm.delta_bytes())
        );
    }

    #[test]
    fn measured_loads_pipeline_disk_and_decode() {
        let cm = model();
        let bytes = 2e8;
        // A fast measured decoder collapses the cold charge to the physical
        // path: strictly below the synthetic disk+deserialize sum.
        let fast = cm.delta_cold_load_time_measured(bytes, Some(1e6));
        assert!(
            fast < cm.delta_cold_load_time_bytes(bytes),
            "pipelined cold load must beat the read-then-deserialize sum"
        );
        // A slow measured decoder dominates both tiers equally (decode is
        // the bottleneck on the shared pipeline).
        let slow_cold = cm.delta_cold_load_time_measured(bytes, Some(0.1));
        let slow_host = cm.delta_load_time_measured(bytes, Some(0.1));
        assert!(slow_cold >= bytes / (0.1 * 1e9) * 0.999);
        assert!(slow_host >= bytes / (0.1 * 1e9) * 0.999);
        // Cold still costs at least as much as a host hit.
        for gbps in [0.05, 0.5, 5.0, 500.0] {
            assert!(
                cm.delta_cold_load_time_measured(bytes, Some(gbps))
                    >= cm.delta_load_time_measured(bytes, Some(gbps)),
                "cold >= warm at {gbps} GB/s"
            );
        }
        // No measurement yet: falls back to the static constant under the
        // max() pipeline model.
        let fallback = cm.delta_load_time_measured(bytes, None);
        assert_eq!(fallback, cm.delta_load_time_bytes(bytes));
        // Degenerate measurements are ignored, not divided by.
        assert!(cm.delta_load_time_measured(bytes, Some(0.0)).is_finite());
        assert!(cm
            .delta_load_time_measured(bytes, Some(f64::NAN))
            .is_finite());
    }

    #[test]
    fn load_profiles_solo_times_match_the_scalar_charges() {
        // The swap timeline's calibration contract: an uncontended load
        // completes in exactly the legacy serialized charge, for every
        // charge flavor.
        for node in [NodeSpec::a800_node(4), NodeSpec::rtx3090_node(1)] {
            let cm = CostModel::new(node, ModelShape::llama7b());
            for bytes in [1e6, 1e8, 2e9] {
                assert!(
                    (cm.delta_load_profile_bytes(bytes).solo_s() - cm.delta_load_time_bytes(bytes))
                        .abs()
                        < 1e-12
                );
                assert!(
                    (cm.delta_cold_load_profile_bytes(bytes).solo_s()
                        - cm.delta_cold_load_time_bytes(bytes))
                    .abs()
                        < 1e-12
                );
                for gbps in [None, Some(0.1), Some(5.0), Some(f64::NAN)] {
                    assert!(
                        (cm.delta_load_profile_measured(bytes, gbps).solo_s()
                            - cm.delta_load_time_measured(bytes, gbps))
                        .abs()
                            < 1e-12
                    );
                    assert!(
                        (cm.delta_cold_load_profile_measured(bytes, gbps).solo_s()
                            - cm.delta_cold_load_time_measured(bytes, gbps))
                        .abs()
                            < 1e-12
                    );
                }
                assert!(
                    (cm.decoded_load_profile_bytes(bytes).solo_s()
                        - cm.decoded_load_time_bytes(bytes))
                    .abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn prefetch_profile_is_disk_only() {
        let cm = model();
        let p = cm.prefetch_profile_bytes(1e8);
        assert!(p.disk_s > 0.0);
        assert_eq!(p.pcie_s, 0.0);
        assert_eq!(p.tail_s, 0.0);
        assert_eq!(p.floor_s, 0.0);
        // Prewarming costs strictly less than the full cold demand load.
        assert!(p.solo_s() < cm.delta_cold_load_time_bytes(1e8));
    }

    #[test]
    fn decoded_swap_in_skips_the_decode_stage() {
        // At equal byte counts a decode-free swap-in is pure PCIe, which
        // beats the deserialization-bound host-hit charge.
        let cm = model();
        let bytes = 1e9;
        assert!(cm.decoded_load_time_bytes(bytes) < cm.delta_load_time_bytes(bytes));
    }

    #[test]
    fn delta_bytes_override_scales_every_load_charge() {
        let cm = model();
        let shrunk = cm.delta_bytes() / 8.0;
        let small =
            CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b()).with_delta_bytes(shrunk);
        assert_eq!(small.delta_bytes(), shrunk);
        // An 8x smaller artifact (e.g. BitDelta vs 4-bit*) must cut both
        // the warm and cold swap-in charges.
        assert!(small.delta_load_time() < cm.delta_load_time());
        assert!(small.delta_cold_load_time() < cm.delta_cold_load_time());
        // And it enlarges residency: more deltas fit beside the base.
        assert!(small.delta_resident_capacity() > cm.delta_resident_capacity());
    }

    #[test]
    fn capacities_are_sane() {
        let cm = model();
        let vllm_cap = cm.vllm_resident_capacity();
        let delta_cap = cm.delta_resident_capacity();
        assert!(vllm_cap >= 4, "vllm cap {vllm_cap}");
        assert!(
            delta_cap > vllm_cap,
            "delta cap {delta_cap} must exceed {vllm_cap}"
        );
    }

    #[test]
    fn prefill_scales_superlinearly_vs_decode() {
        let cm = model();
        let decode = cm.deltazip_decode_iter(&[1], BatchedImpl::SbmmPlus);
        let prefill = cm.prefill_time(512);
        assert!(prefill > decode, "prefill {prefill} decode {decode}");
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let cm = model();
        assert_eq!(cm.deltazip_decode_iter(&[], BatchedImpl::SbmmPlus), 0.0);
        assert_eq!(cm.vllm_decode_iter(&[0, 0]), 0.0);
        assert_eq!(cm.prefill_time(0), 0.0);
    }

    #[test]
    fn rosa_sits_between_lora_and_delta() {
        let cm = model();
        let reqs = vec![1usize; 8];
        let lora = cm.lora_decode_iter(&reqs, 16);
        let rosa = cm.rosa_decode_iter(&reqs, 16, 0.01);
        let dz = cm.deltazip_decode_iter(&reqs, BatchedImpl::SbmmPlus);
        assert!(
            rosa > lora,
            "rosa {rosa} must pay for the sparse part over {lora}"
        );
        assert!(
            rosa < dz,
            "rosa {rosa} should stay under full delta serving {dz}"
        );
    }

    #[test]
    fn rosa_with_zero_density_is_lora() {
        let cm = model();
        let reqs = vec![2usize; 4];
        assert_eq!(
            cm.rosa_decode_iter(&reqs, 16, 0.0),
            cm.lora_decode_iter(&reqs, 16)
        );
    }

    #[test]
    fn resume_swap_beats_recompute_for_long_contexts() {
        // Swapping KV back over PCIe is linear in context; recomputing the
        // prefill is compute-bound and grows faster for this model size, so
        // CostBased picks swap at long contexts.
        let cm = model();
        let long = 2048;
        assert!(cm.kv_swap_time(long) < cm.prefill_time(long));
        assert_eq!(
            cm.resume_time(ResumePolicy::CostBased, long),
            cm.kv_swap_time(long)
        );
    }

    #[test]
    fn resume_policies_are_consistent() {
        let cm = model();
        for ctx in [16usize, 256, 1024] {
            let swap = cm.resume_time(ResumePolicy::SwapToHost, ctx);
            let rec = cm.resume_time(ResumePolicy::Recompute, ctx);
            let best = cm.resume_time(ResumePolicy::CostBased, ctx);
            assert!(best <= swap && best <= rec);
            assert!(best == swap || best == rec);
        }
    }

    #[test]
    fn tensor_parallelism_reduces_iteration_time() {
        let one = CostModel::new(NodeSpec::a800_node(1), ModelShape::llama13b());
        let four = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        let reqs = vec![2usize; 4];
        let t1 = one.deltazip_decode_iter(&reqs, BatchedImpl::SbmmPlus);
        let t4 = four.deltazip_decode_iter(&reqs, BatchedImpl::SbmmPlus);
        assert!(t4 < t1, "tp4 {t4} vs tp1 {t1}");
    }
}
