//! Chaos & elasticity: fault injection, autoscaling, and rolling
//! rollouts for the cluster simulator.
//!
//! A fleet that only ever sees healthy replicas is a fleet nobody has
//! operated. This module scripts the unhappy paths against
//! [`ClusterSim`](crate::cluster::ClusterSim):
//!
//! * [`FaultPlan`] — a deterministic, seeded schedule of
//!   [`FaultEvent`]s: replica crashes (warm sets and in-flight requests
//!   lost, placement re-replicates around the hole) and channel
//!   *brownouts* (disk/PCIe bandwidth degradation flowing through the
//!   replica engines' [`TransferTimeline`](crate::swap::TransferTimeline)
//!   via [`Brownout`] windows),
//! * [`Autoscaler`] — an SLO-pressure control loop that activates cold
//!   spare replicas when the live fleet's backlog climbs and drains the
//!   emptiest replica when it falls (new replicas start *cold*:
//!   prefetch races traffic to warm them),
//! * [`Rollout`] — a rolling delta-version upgrade: over a window, an
//!   increasing fraction of one model's traffic is remapped to its v2
//!   delta (the registry-side counterpart is
//!   [`Registry::supersede`](dz_store::Registry::supersede),
//!   which records the v2 → v1 lineage).
//!
//! Everything is driven by **one recorded seed** ([`ChaosConfig::seed`])
//! so a chaos run is exactly reproducible: the random fault schedule,
//! the rollout coin flips, and nothing else consume randomness.

pub use crate::swap::Brownout;
use dz_tensor::Rng;

// ---------------------------------------------------------------------------
// Faults.
// ---------------------------------------------------------------------------

/// What goes wrong when a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The replica process dies at the event time: its host warm set and
    /// decoded cache are lost, every in-flight request is lost and
    /// re-queued at the front end, and the router stops scoring it.
    /// With `restart_after_s = Some(d)` the replica comes back — cold —
    /// `d` seconds later; `None` means it stays down for the whole run.
    Crash {
        /// Replica to kill.
        replica: usize,
        /// Seconds until the replica restarts (cold); `None` = never.
        restart_after_s: Option<f64>,
    },
    /// A bandwidth brownout on the replica's load channels: disk and/or
    /// PCIe rates are scaled down for the window. The window is carried
    /// by the [`Brownout`] itself (`at` of the surrounding
    /// [`FaultEvent`] should match `brownout.start_s`).
    Degrade {
        /// Replica whose channels degrade.
        replica: usize,
        /// The brownout window and rate factors.
        brownout: Brownout,
    },
}

/// One scheduled fault: `kind` fires at simulation time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulation time (s) the fault fires.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters for [`FaultPlan::random`]: how much chaos a seeded random
/// schedule injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomFaultConfig {
    /// Expected number of crashes over the run (Poisson-ish: crash times
    /// are uniform over the duration).
    pub crashes: usize,
    /// Seconds a crashed replica stays down before its cold restart.
    pub restart_after_s: f64,
    /// Expected number of brownout windows over the run.
    pub brownouts: usize,
    /// Length of each brownout window (s).
    pub brownout_len_s: f64,
    /// Disk/PCIe rate factor during a brownout (e.g. `0.25` = quarter
    /// bandwidth); applied to both channels.
    pub brownout_rate: f64,
}

impl Default for RandomFaultConfig {
    fn default() -> Self {
        RandomFaultConfig {
            crashes: 1,
            restart_after_s: 30.0,
            brownouts: 1,
            brownout_len_s: 20.0,
            brownout_rate: 0.25,
        }
    }
}

/// A deterministic fault schedule: events sorted by fire time.
///
/// Build one with [`scripted`](FaultPlan::scripted) (exact times, for
/// tests and benches) or [`random`](FaultPlan::random) (seeded — the
/// same seed always yields the same schedule).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults at all (the healthy baseline).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A scripted schedule; events are sorted by fire time.
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        FaultPlan { events }
    }

    /// A seeded random schedule over `[0, duration_s)` against
    /// `n_replicas` replicas. Deterministic: the same `(seed, duration,
    /// n_replicas, cfg)` always produces the same plan.
    pub fn random(seed: u64, duration_s: f64, n_replicas: usize, cfg: RandomFaultConfig) -> Self {
        let mut rng = Rng::seeded(seed ^ 0xC4A0_5EED);
        let mut events = Vec::new();
        if n_replicas == 0 || duration_s <= 0.0 {
            return FaultPlan::none();
        }
        for _ in 0..cfg.crashes {
            let at = rng.uniform_f64() * duration_s;
            let replica = (rng.uniform_f64() * n_replicas as f64) as usize % n_replicas;
            events.push(FaultEvent {
                at,
                kind: FaultKind::Crash {
                    replica,
                    restart_after_s: Some(cfg.restart_after_s),
                },
            });
        }
        for _ in 0..cfg.brownouts {
            let at = rng.uniform_f64() * duration_s;
            let replica = (rng.uniform_f64() * n_replicas as f64) as usize % n_replicas;
            events.push(FaultEvent {
                at,
                kind: FaultKind::Degrade {
                    replica,
                    brownout: Brownout {
                        start_s: at,
                        end_s: at + cfg.brownout_len_s,
                        disk_rate: cfg.brownout_rate,
                        pcie_rate: cfg.brownout_rate,
                    },
                },
            });
        }
        FaultPlan::scripted(events)
    }

    /// The schedule, sorted by fire time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Autoscaling.
// ---------------------------------------------------------------------------

/// SLO-pressure-driven autoscaling: a control loop sampled every
/// `interval_s` of simulation time over the *live* fleet's mean
/// estimated backlog.
///
/// * mean backlog > `up_backlog_s` → activate one cold spare (a replica
///   slot above the currently live set), if any remain under
///   `max_replicas`;
/// * mean backlog < `down_backlog_s` → drain the emptiest live replica
///   (it stops receiving traffic but finishes what it has), down to
///   `min_replicas`.
///
/// `cooldown_s` suppresses flapping: after any scale action the loop
/// holds for that long. New replicas start **cold** — empty predicted
/// warm set and a fresh engine epoch — so the cost of elasticity (cache
/// refill racing traffic) is modeled, not assumed away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Autoscaler {
    /// Never drain below this many live replicas.
    pub min_replicas: usize,
    /// Never activate beyond this many live replicas (capped by the
    /// cluster's configured replica count).
    pub max_replicas: usize,
    /// Mean live backlog (s) above which the fleet scales up.
    pub up_backlog_s: f64,
    /// Mean live backlog (s) below which the fleet scales down.
    pub down_backlog_s: f64,
    /// Control-loop sampling interval (s).
    pub interval_s: f64,
    /// Minimum seconds between scale actions.
    pub cooldown_s: f64,
}

impl Autoscaler {
    /// A loop between `min` and `max` live replicas with bench-tuned
    /// thresholds: scale up past 20 s mean backlog, down under 2 s,
    /// sampled every 5 s with a 15 s cooldown.
    pub fn new(min: usize, max: usize) -> Self {
        Autoscaler {
            min_replicas: min.max(1),
            max_replicas: max.max(min.max(1)),
            up_backlog_s: 20.0,
            down_backlog_s: 2.0,
            interval_s: 5.0,
            cooldown_s: 15.0,
        }
    }

    /// The control decision for one tick: `+1` (scale up), `-1` (scale
    /// down), or `0` (hold), given the live count and the mean backlog
    /// across live replicas.
    pub fn decide(&self, live: usize, mean_backlog_s: f64) -> i32 {
        if mean_backlog_s > self.up_backlog_s && live < self.max_replicas {
            1
        } else if mean_backlog_s < self.down_backlog_s && live > self.min_replicas {
            -1
        } else {
            0
        }
    }
}

// ---------------------------------------------------------------------------
// Rolling rollout.
// ---------------------------------------------------------------------------

/// A rolling delta-version upgrade: over `[start_s, start_s +
/// duration_s)` an increasing fraction of `model`'s traffic is remapped
/// to the `v2` model id; after the window, all of it.
///
/// The remap is a seeded coin flip per request (probability =
/// [`fraction_at`](Rollout::fraction_at)), so the rollout is gradual the
/// way a weighted canary is — not a hard cutover — and exactly
/// reproducible from [`ChaosConfig::seed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rollout {
    /// Model id whose traffic is being migrated (v1).
    pub model: usize,
    /// Replacement model id (v2) — must be a valid model in the trace's
    /// model space (`< n_models`).
    pub v2: usize,
    /// When the rollout starts (s).
    pub start_s: f64,
    /// Ramp length (s): traffic shifts linearly from 0% to 100% v2 over
    /// this window. Zero means an instant cutover at `start_s`.
    pub duration_s: f64,
}

impl Rollout {
    /// Fraction of `model`'s traffic on `v2` at time `now` (clamped to
    /// `[0, 1]`; zero before `start_s`).
    pub fn fraction_at(&self, now: f64) -> f64 {
        if now < self.start_s {
            0.0
        } else if self.duration_s <= 0.0 {
            1.0
        } else {
            ((now - self.start_s) / self.duration_s).clamp(0.0, 1.0)
        }
    }
}

// ---------------------------------------------------------------------------
// Config + stats.
// ---------------------------------------------------------------------------

/// Everything chaotic about one cluster run, wired in via
/// [`ClusterSim::with_chaos`](crate::cluster::ClusterSim::with_chaos).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosConfig {
    /// The fault schedule (crashes + brownouts).
    pub plan: FaultPlan,
    /// Elastic scaling, if enabled.
    pub autoscaler: Option<Autoscaler>,
    /// Rolling delta-version upgrades.
    pub rollouts: Vec<Rollout>,
    /// Master seed for every chaos-side random draw (rollout coin
    /// flips). Recorded in bench provenance so runs are reproducible.
    pub seed: u64,
    /// Live replicas at t=0; the rest are cold spares the autoscaler can
    /// activate. `None` starts everything live.
    pub initial_replicas: Option<usize>,
}

impl ChaosConfig {
    /// A config with only a fault plan (no autoscaler, no rollouts).
    pub fn faults(plan: FaultPlan, seed: u64) -> Self {
        ChaosConfig {
            plan,
            seed,
            ..ChaosConfig::default()
        }
    }
}

/// What the chaos machinery actually did during a run — reported in
/// [`ClusterReport::chaos`](crate::cluster::ClusterReport::chaos).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosStats {
    /// Crash faults fired.
    pub crashes: usize,
    /// Cold restarts completed.
    pub restarts: usize,
    /// Brownout windows applied.
    pub brownouts: usize,
    /// In-flight requests lost to crashes and re-queued at the front
    /// end.
    pub lost_in_flight: usize,
    /// Requests shed because no replica was live and none was ever
    /// coming back (graceful degradation's last resort).
    pub shed_no_capacity: usize,
    /// Autoscaler scale-up actions.
    pub scale_ups: usize,
    /// Autoscaler scale-down actions.
    pub scale_downs: usize,
    /// Requests remapped v1 → v2 by rollouts.
    pub rollout_remapped: usize,
    /// Prefetch hints dropped because they targeted a dead replica.
    pub dropped_hints: usize,
    /// Fewest live replicas observed at any routing decision.
    pub min_live: usize,
    /// Most live replicas observed at any routing decision.
    pub max_live: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plan_is_deterministic_and_sorted() {
        let cfg = RandomFaultConfig {
            crashes: 3,
            brownouts: 2,
            ..RandomFaultConfig::default()
        };
        let a = FaultPlan::random(7, 100.0, 4, cfg);
        let b = FaultPlan::random(7, 100.0, 4, cfg);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_eq!(a.events().len(), 5);
        for w in a.events().windows(2) {
            assert!(w[0].at <= w[1].at, "events must be sorted");
        }
        for ev in a.events() {
            assert!((0.0..100.0).contains(&ev.at));
            match ev.kind {
                FaultKind::Crash { replica, .. } => assert!(replica < 4),
                FaultKind::Degrade { replica, brownout } => {
                    assert!(replica < 4);
                    assert!(brownout.end_s > brownout.start_s);
                }
            }
        }
        let c = FaultPlan::random(8, 100.0, 4, cfg);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn degenerate_random_plans_are_empty() {
        let cfg = RandomFaultConfig::default();
        assert!(FaultPlan::random(1, 0.0, 4, cfg).is_empty());
        assert!(FaultPlan::random(1, 100.0, 0, cfg).is_empty());
    }

    #[test]
    fn rollout_fraction_ramps_linearly() {
        let ro = Rollout {
            model: 0,
            v2: 5,
            start_s: 10.0,
            duration_s: 20.0,
        };
        assert_eq!(ro.fraction_at(0.0), 0.0);
        assert_eq!(ro.fraction_at(10.0), 0.0);
        assert!((ro.fraction_at(20.0) - 0.5).abs() < 1e-12);
        assert_eq!(ro.fraction_at(30.0), 1.0);
        assert_eq!(ro.fraction_at(1e9), 1.0);
        let cutover = Rollout {
            duration_s: 0.0,
            ..ro
        };
        assert_eq!(cutover.fraction_at(9.9), 0.0);
        assert_eq!(cutover.fraction_at(10.0), 1.0);
    }

    #[test]
    fn autoscaler_decides_by_backlog_within_bounds() {
        let a = Autoscaler::new(1, 4);
        assert_eq!(a.decide(2, 100.0), 1, "pressure scales up");
        assert_eq!(a.decide(4, 100.0), 0, "capped at max");
        assert_eq!(a.decide(3, 0.5), -1, "idle scales down");
        assert_eq!(a.decide(1, 0.0), 0, "floored at min");
        assert_eq!(a.decide(2, 10.0), 0, "hysteresis band holds");
    }
}
