//! Online output-length prediction (§8 of the paper, future work).
//!
//! The paper's starvation handling preempts every line-skipping request
//! when its parent finishes, and §8 notes that "the preemption of requests
//! that are about to finish leads to unnecessary starvation and performance
//! degradation. We plan to explore more sophisticated mechanisms, such as
//! output length prediction". This module provides those predictors; the
//! [`crate::deltazip::DeltaZipEngine`] consumes them through
//! [`crate::policy::PreemptionPolicy::LengthAware`].
//!
//! Two online estimators are provided, both learning per-model from
//! finished requests with a shared global fallback for cold models:
//!
//! * [`MeanPredictor`] — per-model running mean,
//! * [`QuantilePredictor`] — per-model streaming quantile built on the
//!   five-marker P² algorithm ([`P2Quantile`], Jain & Chlamtac 1985), so a
//!   conservative upper quantile can be tracked without storing samples.
//!
//! [`LengthEstimator`] additionally offers an `Oracle` variant that reads
//! the true output length from the request itself; it bounds what any
//! predictor could achieve and is used by the ablation experiments.

use std::collections::BTreeMap;

/// A streaming estimate of output length per model variant.
pub trait LengthPredictor {
    /// Records the output length of a finished request of `model`.
    fn observe(&mut self, model: usize, output_tokens: usize);

    /// Predicted output length (tokens) for a new request of `model`, or
    /// `None` before any observation relevant to the model exists.
    fn predict(&self, model: usize) -> Option<f64>;
}

/// Per-model running mean with a global fallback.
///
/// Cold models (fewer than [`MeanPredictor::MIN_SAMPLES`] observations)
/// fall back to the global mean over all models, which itself needs at
/// least one observation.
#[derive(Debug, Clone, Default)]
pub struct MeanPredictor {
    per_model: BTreeMap<usize, (f64, usize)>,
    global_sum: f64,
    global_n: usize,
}

impl MeanPredictor {
    /// Observations a model needs before its own mean is trusted.
    pub const MIN_SAMPLES: usize = 3;

    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total observations across all models.
    pub fn observations(&self) -> usize {
        self.global_n
    }
}

impl LengthPredictor for MeanPredictor {
    fn observe(&mut self, model: usize, output_tokens: usize) {
        let entry = self.per_model.entry(model).or_insert((0.0, 0));
        entry.0 += output_tokens as f64;
        entry.1 += 1;
        self.global_sum += output_tokens as f64;
        self.global_n += 1;
    }

    fn predict(&self, model: usize) -> Option<f64> {
        match self.per_model.get(&model) {
            Some(&(sum, n)) if n >= Self::MIN_SAMPLES => Some(sum / n as f64),
            _ if self.global_n > 0 => Some(self.global_sum / self.global_n as f64),
            _ => None,
        }
    }
}

/// Five-marker P² streaming quantile estimator (Jain & Chlamtac, 1985).
///
/// Tracks quantile `q` of a stream in O(1) space: five markers hold the
/// minimum, the q/2, q and (1+q)/2 quantile estimates, and the maximum.
/// Marker heights are adjusted towards their desired positions with a
/// piecewise-parabolic interpolation, falling back to linear when the
/// parabolic prediction would violate marker ordering.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (sorted ascending once initialized).
    heights: [f64; 5],
    /// Actual marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far (first five are buffered in `heights`).
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile being tracked.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations consumed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that heights[k] <= x < heights[k+1], clamping
        // x into the observed range (and k into 0..=3).
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // One of the three middle cells.
            let mut cell = 0;
            for i in 1..4 {
                if x >= self.heights[i] {
                    cell = i;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers towards their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Current quantile estimate.
    ///
    /// Before five observations, returns the exact sample quantile of the
    /// buffered values (or `None` with no data at all).
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut buf: Vec<f64> = self.heights[..n].to_vec();
                buf.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                let pos = (self.q * (n - 1) as f64).round() as usize;
                Some(buf[pos])
            }
            _ => Some(self.heights[2]),
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }
}

/// Per-model streaming quantile with a global fallback.
///
/// Predicting an upper quantile (e.g. 0.75) instead of the mean makes the
/// engine *conservative*: a request is only spared from preemption when
/// even a pessimistic length estimate says it is about to finish.
#[derive(Debug, Clone)]
pub struct QuantilePredictor {
    q: f64,
    per_model: BTreeMap<usize, P2Quantile>,
    global: P2Quantile,
}

impl QuantilePredictor {
    /// Observations a model needs before its own estimate is trusted.
    pub const MIN_SAMPLES: usize = 8;

    /// Creates a predictor tracking quantile `q` per model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        QuantilePredictor {
            q,
            per_model: BTreeMap::new(),
            global: P2Quantile::new(q),
        }
    }
}

impl LengthPredictor for QuantilePredictor {
    fn observe(&mut self, model: usize, output_tokens: usize) {
        self.per_model
            .entry(model)
            .or_insert_with(|| P2Quantile::new(self.q))
            .observe(output_tokens as f64);
        self.global.observe(output_tokens as f64);
    }

    fn predict(&self, model: usize) -> Option<f64> {
        match self.per_model.get(&model) {
            Some(est) if est.count() >= Self::MIN_SAMPLES => est.estimate(),
            _ => self.global.estimate(),
        }
    }
}

/// The estimator a [`crate::deltazip::DeltaZipEngine`] consults when its
/// preemption policy is length-aware.
#[derive(Debug, Clone)]
pub enum LengthEstimator {
    /// Per-model running mean learned online from finished requests.
    OnlineMean(MeanPredictor),
    /// Per-model streaming quantile learned online.
    OnlineQuantile(QuantilePredictor),
    /// Ground truth from the trace — the upper bound any predictor could
    /// reach; only meaningful inside the simulator.
    Oracle,
}

impl Default for LengthEstimator {
    fn default() -> Self {
        LengthEstimator::OnlineMean(MeanPredictor::new())
    }
}

impl LengthEstimator {
    /// A quantile estimator at the engine's default conservativeness.
    pub fn quantile(q: f64) -> Self {
        LengthEstimator::OnlineQuantile(QuantilePredictor::new(q))
    }

    /// Records a finished request.
    pub fn observe(&mut self, model: usize, output_tokens: usize) {
        match self {
            LengthEstimator::OnlineMean(p) => p.observe(model, output_tokens),
            LengthEstimator::OnlineQuantile(p) => p.observe(model, output_tokens),
            LengthEstimator::Oracle => {}
        }
    }

    /// Estimated *remaining* tokens for a request of `model` that has
    /// already produced `tokens_done` of its `true_output` tokens.
    ///
    /// Returns `None` when no estimate is available yet (the engine then
    /// treats the request as not-about-to-finish).
    pub fn remaining(&self, model: usize, tokens_done: usize, true_output: usize) -> Option<f64> {
        match self {
            LengthEstimator::Oracle => Some((true_output - tokens_done.min(true_output)) as f64),
            LengthEstimator::OnlineMean(p) => p
                .predict(model)
                .map(|est| (est - tokens_done as f64).max(0.0)),
            LengthEstimator::OnlineQuantile(p) => p
                .predict(model)
                .map(|est| (est - tokens_done as f64).max(0.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_predictor_learns_per_model() {
        let mut p = MeanPredictor::new();
        assert_eq!(p.predict(0), None);
        for _ in 0..4 {
            p.observe(0, 100);
        }
        for _ in 0..4 {
            p.observe(1, 10);
        }
        assert_eq!(p.predict(0), Some(100.0));
        assert_eq!(p.predict(1), Some(10.0));
        // Cold model falls back to the global mean.
        let global = p.predict(42).expect("global fallback");
        assert!((global - 55.0).abs() < 1e-9);
    }

    #[test]
    fn mean_predictor_needs_min_samples_per_model() {
        let mut p = MeanPredictor::new();
        p.observe(0, 100);
        p.observe(1, 10);
        // Model 0 has 1 < MIN_SAMPLES observations: global mean is used.
        assert_eq!(p.predict(0), Some(55.0));
    }

    #[test]
    fn p2_exact_for_tiny_streams() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.observe(10.0);
        assert_eq!(est.estimate(), Some(10.0));
        est.observe(20.0);
        est.observe(0.0);
        // Exact median of {0, 10, 20}.
        assert_eq!(est.estimate(), Some(10.0));
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut est = P2Quantile::new(0.5);
        // Deterministic LCG uniform in [0, 1000).
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as f64 % 1000.0;
            est.observe(v);
        }
        let got = est.estimate().expect("estimate after stream");
        assert!((got - 500.0).abs() < 30.0, "median estimate {got}");
    }

    #[test]
    fn p2_upper_quantile_of_skewed_stream() {
        // Exponential-ish stream via inverse transform; p90 of Exp(1) is
        // ln(10) ~ 2.3026.
        let mut est = P2Quantile::new(0.9);
        let mut x = 99991u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) as f64 + 0.5) / (u64::MAX >> 33) as f64;
            est.observe(-(1.0 - u.clamp(1e-12, 1.0 - 1e-12)).ln());
        }
        let got = est.estimate().expect("estimate after stream");
        assert!(
            (got - std::f64::consts::LN_10).abs() < 0.25,
            "p90 estimate {got}"
        );
    }

    #[test]
    fn p2_is_monotone_in_quantile() {
        let observations: Vec<f64> = (0..500).map(|i| ((i * 37) % 500) as f64).collect();
        let mut p25 = P2Quantile::new(0.25);
        let mut p50 = P2Quantile::new(0.5);
        let mut p75 = P2Quantile::new(0.75);
        for &v in &observations {
            p25.observe(v);
            p50.observe(v);
            p75.observe(v);
        }
        let (a, b, c) = (
            p25.estimate().expect("p25 estimate"),
            p50.estimate().expect("p50 estimate"),
            p75.estimate().expect("p75 estimate"),
        );
        assert!(a < b && b < c, "{a} < {b} < {c} violated");
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn p2_rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn quantile_predictor_upper_bounds_mean() {
        let mut qp = QuantilePredictor::new(0.75);
        let mut mp = MeanPredictor::new();
        // Two-point distribution 10 / 100: p75 must exceed the mean.
        for i in 0..100 {
            let v = if i % 2 == 0 { 10 } else { 100 };
            qp.observe(0, v);
            mp.observe(0, v);
        }
        let q = qp.predict(0).expect("quantile prediction");
        let m = mp.predict(0).expect("mean prediction");
        assert!(q > m, "p75 {q} should exceed mean {m}");
    }

    #[test]
    fn oracle_remaining_is_exact() {
        let est = LengthEstimator::Oracle;
        assert_eq!(est.remaining(3, 10, 25), Some(15.0));
        assert_eq!(est.remaining(3, 30, 25), Some(0.0));
    }

    #[test]
    fn online_remaining_clamps_at_zero() {
        let mut est = LengthEstimator::default();
        for _ in 0..4 {
            est.observe(0, 20);
        }
        assert_eq!(est.remaining(0, 5, 999), Some(15.0));
        assert_eq!(est.remaining(0, 50, 999), Some(0.0));
    }
}
