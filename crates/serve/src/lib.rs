//! Serving engines over the GPU performance model.
//!
//! Three engines reproduce the paper's comparison points:
//!
//! * [`deltazip::DeltaZipEngine`] — the paper's system: base model resident,
//!   compressed deltas swapped on demand, requests across variants batched
//!   into shared base GEMMs plus SBMM delta products, iteration-level
//!   (continuous) batching, FCFS with skip-the-line plus parent-finish
//!   preemption, and a cap of `N` concurrent deltas,
//! * [`vllm_scb::VllmScbEngine`] — the baseline the paper builds (vLLM +
//!   Swapping, Continuous batching, same-model Batching): full FP16 models
//!   swapped whole, batching only within one model,
//! * [`lora::LoraEngine`] — Punica/S-LoRA-style adapter serving: adapters
//!   are tiny, all resident, everything batches.
//!
//! All engines consume the same [`dz_workload::Trace`]s and emit the same
//! [`metrics::Metrics`], so every figure is an apples-to-apples sweep.
//!
//! Above the single-node engines, [`cluster`] scales the system out:
//! [`cluster::ClusterSim`] replays a trace across many replicas behind a
//! pluggable [`cluster::Router`] (round-robin, least-loaded, or
//! placement-aware routing over each replica's delta warm set), with
//! popularity-driven delta replication and SLO-aware admission control.
//!
//! The unified entry point is [`builder::EngineBuilder`]: register each
//! model's [`variant::VariantKind`] (base, LoRA, delta, or stacked) in a
//! [`variant::VariantCatalog`] and one [`deltazip::DeltaZipEngine`] serves
//! the heterogeneous mix in shared "toppings" batches.

#![warn(missing_docs)]

pub mod builder;
pub mod chaos;
pub mod cluster;
pub mod cost;
pub mod deltazip;
pub mod fleet;
pub mod lora;
pub mod metrics;
pub mod policy;
pub mod predictor;
pub mod request;
pub mod slo;
pub mod swap;
pub mod tuning;
pub mod variant;
pub mod vllm_scb;

pub use builder::EngineBuilder;
pub use chaos::{
    Autoscaler, Brownout, ChaosConfig, ChaosStats, FaultEvent, FaultKind, FaultPlan,
    RandomFaultConfig, Rollout,
};
pub use cluster::{
    AdmissionConfig, BasePartition, ClusterConfig, ClusterPrefetch, ClusterReport, ClusterSim,
    LeastLoadedRouter, PlacementAwareRouter, PlacementPlan, PrefetchHint, ReplicaView,
    RoundRobinRouter, Router, RoutingStats, ShedRecord,
};
pub use cost::{CostModel, ToppingsIterCost};
pub use deltazip::{DeltaStoreBinding, DeltaZipConfig, DeltaZipEngine};
pub use fleet::{
    FetchCounts, FetchTier, FleetAutoscale, FleetConfig, FleetFault, FleetLogEntry, FleetReport,
    FleetRouter, FleetSim, FleetTopology,
};
pub use lora::{LoraEngine, LoraServingConfig};
pub use metrics::{Metrics, SloWindow, SwapStats, ToppingsStats};
pub use policy::{PreemptionPolicy, ResumePolicy};
pub use predictor::LengthEstimator;
pub use slo::{SloClass, SloPolicy};
pub use swap::{
    LoadProfile, PopularityPrefetch, PrefetchConfig, PrefetchPolicy, Prefetcher, QueueLookahead,
    TransferTimeline,
};
pub use variant::{VariantCatalog, VariantKind, VariantSpec};
pub use vllm_scb::{VllmScbConfig, VllmScbEngine};
// Tracing surface: re-exported so engine users configure/consume traces
// without naming `dz_trace` directly.
pub use dz_trace::{
    chrome_trace_json, write_chrome_trace, AttributedRequest, CauseBreakdown, Causes, ToppingKind,
    TraceConfig, TraceEvent, TraceLog, TraceTrack, Tracer, CAUSE_NAMES,
};

/// A serving engine that can replay a trace.
pub trait Engine {
    /// Human-readable engine label for tables.
    fn label(&self) -> String;
    /// Replays the trace to completion and returns per-request metrics.
    fn run(&mut self, trace: &dz_workload::Trace) -> Metrics;
}
