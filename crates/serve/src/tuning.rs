//! Offline profiling to pick `N`, the number of concurrent deltas (§5.4).
//!
//! The paper tunes `N` by replaying a short trace slice under each
//! candidate and keeping the best mean time per token; Figure 10 shows the
//! chosen value stays (near-)optimal across neighbouring workloads. The
//! same procedure is implemented here against the simulator.

use crate::cost::CostModel;
use crate::deltazip::{DeltaZipConfig, DeltaZipEngine};
use crate::Engine;
use dz_workload::{Trace, TraceSpec};

/// Result of one profiling sweep.
#[derive(Debug, Clone)]
pub struct NProfile {
    /// Candidate `N` values and their mean time per token (s).
    pub candidates: Vec<(usize, f64)>,
    /// The winning `N`.
    pub best_n: usize,
}

/// How many independently seeded trace slices one profiling sweep replays.
///
/// A single short slice at a heavy Zipf skew contains only a handful of
/// tail-model requests, so its per-candidate means are dominated by which
/// tail models happened to appear. Averaging a few replicas keeps the
/// profiling phase short while making the chosen `N` stable — this is what
/// lets the Figure 10 claim (the profiled optimum transfers to neighbouring
/// rates and skews) hold on the simulator as well.
pub const PROFILE_REPLICAS: u64 = 3;

/// Profiles candidate `N` values on short slices of the expected workload.
///
/// `profile_spec` should describe a short (tens of seconds) trace matching
/// the production arrival rate and popularity skew; [`PROFILE_REPLICAS`]
/// differently seeded slices are replayed per candidate and their mean time
/// per token averaged.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn profile_best_n(
    cost: CostModel,
    base_config: DeltaZipConfig,
    profile_spec: TraceSpec,
    candidates: &[usize],
) -> NProfile {
    assert!(!candidates.is_empty(), "need at least one candidate N");
    let traces: Vec<Trace> = (0..PROFILE_REPLICAS)
        .map(|r| {
            let mut spec = profile_spec;
            spec.seed = profile_spec.seed.wrapping_add(r.wrapping_mul(0x9e37_79b9));
            Trace::generate(spec)
        })
        .collect();
    let mut results = Vec::with_capacity(candidates.len());
    for &n in candidates {
        let mut total = 0.0;
        for trace in &traces {
            let mut engine = DeltaZipEngine::new(
                cost,
                DeltaZipConfig {
                    max_concurrent_deltas: n,
                    ..base_config
                },
            );
            let metrics = engine.run(trace);
            total += metrics.mean_time_per_token();
        }
        results.push((n, total / traces.len() as f64));
    }
    let best_n = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite latency"))
        .map(|&(n, _)| n)
        .expect("non-empty candidates");
    NProfile {
        candidates: results,
        best_n,
    }
}

/// The heuristic fallback the paper describes when profiling is impossible:
/// few requests per delta -> allow more deltas; many requests per delta ->
/// fewer to limit memory pressure.
pub fn heuristic_n(expected_reqs_per_delta: f64, capacity: usize) -> usize {
    let n = if expected_reqs_per_delta < 2.0 {
        12
    } else if expected_reqs_per_delta < 8.0 {
        8
    } else {
        4
    };
    n.min(capacity.max(1))
}

/// Bounds and cadence of the online `N` controller.
#[derive(Debug, Clone, Copy)]
pub struct DynamicNConfig {
    /// Smallest `N` the controller may choose.
    pub min_n: usize,
    /// Largest `N` the controller may choose.
    pub max_n: usize,
    /// Seconds between adjustments (hysteresis).
    pub period_s: f64,
    /// Below this many waiting requests per distinct delta, widen `N`.
    pub low_reqs_per_delta: f64,
    /// Above this many waiting requests per distinct delta, narrow `N`.
    pub high_reqs_per_delta: f64,
}

impl Default for DynamicNConfig {
    fn default() -> Self {
        DynamicNConfig {
            min_n: 2,
            max_n: 16,
            period_s: 5.0,
            low_reqs_per_delta: 2.0,
            high_reqs_per_delta: 8.0,
        }
    }
}

/// Online `N` tuning (§5.4: "Dynamic tuning can also be implemented").
///
/// Applies the paper's heuristic continuously instead of once: every
/// `period_s` of simulated time the controller inspects the queue's
/// requests-per-delta ratio and moves `N` one step towards the regime the
/// heuristic prescribes. Single-step moves plus the period give hysteresis,
/// so a transient burst does not whipsaw the cap.
#[derive(Debug, Clone)]
pub struct DynamicN {
    config: DynamicNConfig,
    current: usize,
    last_adjust_at: f64,
}

impl DynamicN {
    /// Creates a controller starting at `start_n` (clamped into bounds).
    ///
    /// # Panics
    ///
    /// Panics if the config bounds are inverted or `min_n` is zero.
    pub fn new(config: DynamicNConfig, start_n: usize) -> Self {
        assert!(
            config.min_n >= 1 && config.min_n <= config.max_n,
            "invalid DynamicN bounds {}..={}",
            config.min_n,
            config.max_n
        );
        DynamicN {
            config,
            current: start_n.clamp(config.min_n, config.max_n),
            last_adjust_at: f64::NEG_INFINITY,
        }
    }

    /// The `N` currently in force.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Observes the queue at simulated time `now` and returns the `N` to
    /// use for this iteration.
    ///
    /// `waiting` is the queue length; `distinct_deltas` how many different
    /// variants those requests target.
    pub fn update(&mut self, now: f64, waiting: usize, distinct_deltas: usize) -> usize {
        if now - self.last_adjust_at < self.config.period_s || waiting == 0 {
            return self.current;
        }
        self.last_adjust_at = now;
        let rpd = waiting as f64 / distinct_deltas.max(1) as f64;
        if rpd < self.config.low_reqs_per_delta {
            self.current = (self.current + 1).min(self.config.max_n);
        } else if rpd > self.config.high_reqs_per_delta {
            self.current = self.current.saturating_sub(1).max(self.config.min_n);
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_gpusim::shapes::ModelShape;
    use dz_gpusim::spec::NodeSpec;
    use dz_workload::PopularityDist;

    fn spec(rate: f64) -> TraceSpec {
        TraceSpec {
            n_models: 12,
            arrival_rate: rate,
            duration_s: 25.0,
            popularity: PopularityDist::Zipf { alpha: 4.0 },
            seed: 0x77,
        }
    }

    #[test]
    fn profiling_returns_a_candidate() {
        let cost = CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b());
        let profile = profile_best_n(cost, DeltaZipConfig::default(), spec(3.0), &[1, 2, 3, 4, 6]);
        assert!(profile.candidates.len() == 5);
        assert!([1usize, 2, 3, 4, 6].contains(&profile.best_n));
        // All measurements are physical.
        assert!(profile.candidates.iter().all(|&(_, t)| t > 0.0));
    }

    #[test]
    fn chosen_n_transfers_to_neighbouring_rates() {
        // Figure 10's point: the profiled N stays near-optimal when the
        // arrival rate shifts.
        let cost = CostModel::new(NodeSpec::rtx3090_node(2), ModelShape::llama7b());
        let profile = profile_best_n(cost, DeltaZipConfig::default(), spec(3.0), &[1, 2, 3, 4, 6]);
        let mut shifted = spec(4.0);
        shifted.seed = 0x78;
        let at_shift = profile_best_n(cost, DeltaZipConfig::default(), shifted, &[1, 2, 3, 4, 6]);
        let best_time = at_shift
            .candidates
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let chosen_time = at_shift
            .candidates
            .iter()
            .find(|&&(n, _)| n == profile.best_n)
            .map(|&(_, t)| t)
            .expect("candidate present");
        assert!(
            chosen_time <= best_time * 1.5,
            "profiled N={} degraded: {chosen_time} vs best {best_time}",
            profile.best_n
        );
    }

    #[test]
    fn heuristic_bounds() {
        assert_eq!(heuristic_n(1.0, 100), 12);
        assert_eq!(heuristic_n(4.0, 100), 8);
        assert_eq!(heuristic_n(20.0, 100), 4);
        assert_eq!(heuristic_n(1.0, 3), 3);
    }

    #[test]
    #[should_panic(expected = "need at least one candidate")]
    fn empty_candidates_rejected() {
        let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
        let _ = profile_best_n(cost, DeltaZipConfig::default(), spec(1.0), &[]);
    }
}
