//! Cluster-scale serving: placement-aware multi-replica scheduling.
//!
//! The paper's serving story (§6) is ultimately about a *fleet*: many
//! base-model replicas, each holding a subset of deltas warm, with
//! requests routed to where their delta already lives. This module is
//! that layer:
//!
//! * [`ClusterSim`] owns `R` replicas — each an independent
//!   [`DeltaZipEngine`](crate::DeltaZipEngine) with its own cost model,
//!   its own warm set, and
//!   (optionally) its own [`TieredDeltaStore`](dz_store::TieredDeltaStore)
//!   budget via a [`DeltaStoreBinding`] — and replays a trace through a
//!   front-end router,
//! * [`Router`] is the pluggable routing policy; three are provided:
//!   [`RoundRobinRouter`] (baseline), [`LeastLoadedRouter`] (queue-depth
//!   only), and [`PlacementAwareRouter`] (scores replicas by delta warmth
//!   — a host-cache hit beats a disk miss — combined with backlog),
//! * [`PlacementPlan`] turns popularity skew
//!   ([`dz_workload::PopularityDist`]) into delta replication decisions:
//!   hot deltas get homes on several replicas, cold deltas get exactly
//!   one; the placement-aware router can re-derive the plan online from
//!   observed traffic (delta migration),
//! * [`AdmissionConfig`] adds SLO-aware admission control: when every
//!   replica is saturated, `Batch`-class requests (per [`SloPolicy`]) are
//!   deferred and ultimately shed instead of poisoning the tail,
//! * [`ClusterReport`] aggregates per-replica [`Metrics`] into
//!   cluster-level percentile latency, goodput, and cache-hit accounting.
//!
//! The router sees the fleet the way a real front-end does: through an
//! *estimated* queue depth and a *predicted* warm set per replica (updated
//! at every routing decision), not through the replicas' exact state. The
//! replicas themselves then replay their assigned sub-traces with the full
//! engine, so reported latencies include the true cold/warm load charges
//! their routed request mix produced.
//!
//! The multi-*base* partitioning of §5.1 (one GPU group per base model) is
//! retained: [`BasePartition`] splits variants across bases and
//! [`run_partitioned`] is now a thin compatibility shim that runs one
//! single-replica [`ClusterSim`] per base group.

use crate::chaos::{ChaosConfig, ChaosStats, FaultKind};
use crate::cost::CostModel;
use crate::deltazip::{DeltaStoreBinding, DeltaZipConfig};
use crate::metrics::{Metrics, RequestRecord, SwapStats};
use crate::slo::{SloClass, SloPolicy};
use crate::swap::{Brownout, PrefetchPolicy};
use crate::Engine;
use dz_gpusim::{EventClass, EventQueue};
use dz_trace::{GaugeSample, TraceConfig, TraceEvent, TraceTrack, Tracer};
use dz_workload::{PopularityDist, Request, Trace, TraceSpec};
use std::collections::{BTreeMap, BTreeSet, HashMap};

// ---------------------------------------------------------------------------
// Router-visible replica state.
// ---------------------------------------------------------------------------

/// What the front-end router knows about one replica when it routes a
/// request: estimates maintained by [`ClusterSim`], not ground truth.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaView {
    /// Replica id (`0..n_replicas`).
    pub id: usize,
    /// Estimated requests queued or running on the replica right now.
    pub queue_depth: usize,
    /// Estimated seconds of work outstanding on the replica.
    pub backlog_s: f64,
    /// Whether the routed request's delta is predicted warm (host-cache
    /// resident) on this replica.
    pub warm: bool,
    /// Whether the delta's **decoded** copy is predicted resident on this
    /// replica — a decode-free hit, cheaper than a plain warm hit
    /// (implies `warm`).
    pub decoded: bool,
    /// Estimated extra seconds a cold (disk-tier) delta load would cost on
    /// this replica — what routing to a non-warm replica risks paying.
    pub cold_load_s: f64,
    /// Estimated extra seconds a warm-but-not-decoded load would cost
    /// (the decode pipeline a decode-free hit skips).
    pub warm_load_s: f64,
    /// Whether the replica is live and routable. Replicas killed by a
    /// [`chaos`](crate::chaos) fault or drained by the autoscaler stay
    /// in the views slice (ids are positional) with `alive = false`;
    /// routers must never select a dead replica.
    pub alive: bool,
}

/// A pluggable routing policy: given a request and a view of every
/// replica, pick the replica to serve it.
///
/// The view for a request `r` has `warm` evaluated for `r.model` on each
/// replica. Implementations may keep internal state (round-robin cursors,
/// observed popularity counts); [`ClusterSim`] calls `route` exactly once
/// per admitted request, in arrival order.
///
/// # Examples
///
/// A custom router that always picks the replica with the shortest
/// backlog, ignoring warmth:
///
/// ```
/// use dz_serve::cluster::{ReplicaView, Router};
/// use dz_workload::Request;
///
/// struct ShortestBacklog;
/// impl Router for ShortestBacklog {
///     fn name(&self) -> String {
///         "shortest-backlog".into()
///     }
///     fn route(&mut self, _req: &Request, views: &[ReplicaView]) -> usize {
///         views
///             .iter()
///             .filter(|v| v.alive) // never route to a dead replica
///             .min_by(|a, b| a.backlog_s.total_cmp(&b.backlog_s))
///             .expect("at least one live replica")
///             .id
///     }
/// }
/// ```
pub trait Router {
    /// Human-readable policy name for reports.
    fn name(&self) -> String;
    /// Chooses a replica id (must be `< views.len()`) for the request.
    fn route(&mut self, req: &Request, views: &[ReplicaView]) -> usize;
    /// Prefetch hints to emit alongside this routing decision: replicas
    /// that should prewarm a delta disk→host because the policy expects
    /// traffic for it there soon. Called by [`ClusterSim`] right after
    /// [`route`](Self::route) (with the chosen replica) when cluster
    /// prefetch is enabled; the default emits none.
    fn prefetch_hints(
        &mut self,
        _req: &Request,
        _views: &[ReplicaView],
        _routed: usize,
    ) -> Vec<PrefetchHint> {
        Vec::new()
    }
    /// Cumulative delta migrations the policy has triggered (placement
    /// rebalances). Stateless routers report none.
    fn migrations(&self) -> usize {
        0
    }
}

/// One routing-time prefetch hint: "replica `replica` should prewarm
/// model `model`'s delta".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchHint {
    /// Target replica id.
    pub replica: usize,
    /// Model whose delta should be prewarmed.
    pub model: usize,
}

/// The baseline: requests cycle over replicas regardless of load or
/// placement (what the seed `run_partitioned` did across variants).
#[derive(Debug, Default)]
pub struct RoundRobinRouter {
    next: usize,
}

impl RoundRobinRouter {
    /// Creates a cursor starting at replica 0.
    pub fn new() -> Self {
        RoundRobinRouter::default()
    }
}

impl Router for RoundRobinRouter {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn route(&mut self, _req: &Request, views: &[ReplicaView]) -> usize {
        // Cycle, skipping dead replicas: the cursor still advances one
        // step per probe so the rotation stays fair among the live set.
        for _ in 0..views.len() {
            let r = self.next % views.len();
            self.next = self.next.wrapping_add(1);
            if views[r].alive {
                return r;
            }
        }
        panic!("no live replica to route to");
    }
}

/// Pure load balancing: route to the replica with the fewest estimated
/// outstanding requests (ties broken by backlog seconds, then id).
#[derive(Debug, Default)]
pub struct LeastLoadedRouter;

impl LeastLoadedRouter {
    /// Creates the (stateless) policy.
    pub fn new() -> Self {
        LeastLoadedRouter
    }
}

impl Router for LeastLoadedRouter {
    fn name(&self) -> String {
        "least-loaded".into()
    }

    fn route(&mut self, _req: &Request, views: &[ReplicaView]) -> usize {
        views
            .iter()
            .filter(|v| v.alive)
            .min_by(|a, b| {
                a.queue_depth
                    .cmp(&b.queue_depth)
                    .then(a.backlog_s.total_cmp(&b.backlog_s))
                    .then(a.id.cmp(&b.id))
            })
            .expect("at least one live replica")
            .id
    }
}

// ---------------------------------------------------------------------------
// Popularity-driven placement.
// ---------------------------------------------------------------------------

/// Which replicas hold (a copy of) each model's delta: the cluster's
/// replication decisions, derived from popularity skew.
///
/// Every model gets at least one *home* replica; models whose traffic
/// share exceeds `1/R` get proportionally more copies, so the head of a
/// Zipf distribution can be load-balanced while the tail stays pinned to
/// a single host cache (maximizing aggregate warm capacity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// `homes[model]` = sorted replica ids holding the model's delta.
    homes: Vec<Vec<usize>>,
    n_replicas: usize,
}

impl PlacementPlan {
    /// Builds a plan from per-model popularity weights (any non-negative
    /// scale). Models are placed hottest-first onto the least-loaded
    /// replicas; a model with traffic share `s` gets `ceil(s * R)` copies.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas == 0`.
    pub fn from_weights(weights: &[f64], n_replicas: usize) -> Self {
        Self::from_weights_live(weights, n_replicas, &vec![true; n_replicas])
    }

    /// Like [`from_weights`](Self::from_weights), but placing copies
    /// only onto *live* replicas (`live[r] == false` replicas get no
    /// homes). This is how placement **re-replicates around a crash**:
    /// re-deriving the plan with the dead replica masked out moves its
    /// deltas' homes onto the survivors. With no live replica at all,
    /// every replica is treated as a candidate (a plan must always
    /// exist).
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas == 0`.
    pub fn from_weights_live(weights: &[f64], n_replicas: usize, live: &[bool]) -> Self {
        assert!(n_replicas > 0, "need at least one replica");
        let mut candidates: Vec<usize> = (0..n_replicas)
            .filter(|&r| live.get(r).copied().unwrap_or(true))
            .collect();
        if candidates.is_empty() {
            candidates = (0..n_replicas).collect();
        }
        let n_live = candidates.len();
        let total: f64 = weights.iter().filter(|w| w.is_finite()).sum();
        let share = |w: f64| {
            if total > 0.0 && w.is_finite() {
                (w / total).max(0.0)
            } else if weights.is_empty() {
                0.0
            } else {
                1.0 / weights.len() as f64
            }
        };
        // Hottest first; ties broken by model id for determinism.
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| {
            share(weights[b])
                .total_cmp(&share(weights[a]))
                .then(a.cmp(&b))
        });
        let mut load = vec![0.0f64; n_replicas];
        let mut homes = vec![Vec::new(); weights.len()];
        for m in order {
            let s = share(weights[m]);
            let copies = ((s * n_live as f64).ceil() as usize).clamp(1, n_live);
            for _ in 0..copies {
                let r = candidates
                    .iter()
                    .copied()
                    .filter(|r| !homes[m].contains(r))
                    .min_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)))
                    .expect("copies <= live replicas");
                load[r] += s / copies as f64;
                homes[m].push(r);
            }
            homes[m].sort_unstable();
        }
        PlacementPlan { homes, n_replicas }
    }

    /// Builds a plan from a popularity distribution's static weights (the
    /// skew the operator provisioned for).
    pub fn from_popularity(dist: PopularityDist, n_models: usize, n_replicas: usize) -> Self {
        Self::from_weights(&dist.weights(n_models), n_replicas)
    }

    /// Builds a plan from observed per-model request counts of a trace.
    pub fn from_trace(trace: &Trace, n_replicas: usize) -> Self {
        let counts: Vec<f64> = trace
            .per_model_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect();
        Self::from_weights(&counts, n_replicas)
    }

    /// Home replicas of a model. Models beyond the plan (unknown at
    /// planning time) report no homes; routers treat them as
    /// place-anywhere.
    pub fn homes(&self, model: usize) -> &[usize] {
        self.homes.get(model).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of replicas the plan was built for.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// How many copies of a model's delta the plan keeps.
    pub fn replication_factor(&self, model: usize) -> usize {
        self.homes(model).len()
    }

    /// How many models' home sets differ between `self` and `other` — the
    /// number of delta migrations a rebalance would trigger.
    pub fn migrations_from(&self, other: &PlacementPlan) -> usize {
        let n = self.homes.len().max(other.homes.len());
        (0..n).filter(|&m| self.homes(m) != other.homes(m)).count()
    }
}

/// Placement-aware routing: prefer a replica where the delta is warm,
/// fall back to the plan's home replicas, and spill to the globally best
/// replica only when the homes are badly backlogged.
///
/// Score of a replica = estimated backlog seconds + the cold-load penalty
/// if the delta is not warm there, so "host-cache hit beats disk miss"
/// and queue depth both count. With `rebalance_every = Some(k)`, the plan
/// is re-derived from observed traffic every `k` routed requests —
/// popularity drift migrates deltas to new homes.
#[derive(Debug)]
pub struct PlacementAwareRouter {
    plan: PlacementPlan,
    /// Extra backlog (s) a home replica may carry before the router
    /// spills the request to the globally cheapest replica.
    pub spill_margin_s: f64,
    /// Re-derive the plan from observed counts every this many requests;
    /// `None` keeps the initial plan for the whole run.
    pub rebalance_every: Option<usize>,
    /// Delta migrations (home-set changes) rebalancing has triggered.
    pub migrations: usize,
    counts: Vec<u64>,
    routed: usize,
    /// Live mask observed at the last routing decision; a change (crash,
    /// restart, scale event) forces an immediate re-replication.
    last_live: Vec<bool>,
    /// Per-replica score scratch, reused across routing decisions so the
    /// hot path computes each replica's score exactly once per request
    /// (the old path re-evaluated it inside two `min_by` comparators).
    /// Scores are only valid within one `route` call — backlog and
    /// warmth predictions change between requests — so the buffer is
    /// rewritten, and thereby invalidated, on every decision; the
    /// plan-derived home sets it is combined with are invalidated on
    /// placement (rebalance) and fault (live-mask change) events above.
    score_buf: Vec<f64>,
}

impl PlacementAwareRouter {
    /// Creates the router from an initial placement plan.
    pub fn new(plan: PlacementPlan) -> Self {
        let counts = vec![0; plan.homes.len()];
        PlacementAwareRouter {
            plan,
            spill_margin_s: 1.0,
            rebalance_every: Some(512),
            migrations: 0,
            counts,
            routed: 0,
            last_live: Vec::new(),
            score_buf: Vec::new(),
        }
    }

    /// Disables online rebalancing (the plan stays fixed).
    pub fn pinned(mut self) -> Self {
        self.rebalance_every = None;
        self
    }

    /// The current placement plan (after any rebalances).
    pub fn plan(&self) -> &PlacementPlan {
        &self.plan
    }

    fn score(v: &ReplicaView) -> f64 {
        // Decode-free hit beats a plain warm hit beats a disk miss.
        v.backlog_s
            + if !v.warm {
                v.cold_load_s
            } else if !v.decoded {
                v.warm_load_s
            } else {
                0.0
            }
    }
}

impl Router for PlacementAwareRouter {
    fn name(&self) -> String {
        "placement-aware".into()
    }

    fn route(&mut self, req: &Request, views: &[ReplicaView]) -> usize {
        if req.model >= self.counts.len() {
            self.counts.resize(req.model + 1, 0);
        }
        self.counts[req.model] += 1;
        self.routed += 1;
        let live: Vec<bool> = views.iter().map(|v| v.alive).collect();
        // A live-set change (crash, restart, scale event) re-replicates
        // immediately: dead replicas' deltas need new homes *now*, not
        // at the next periodic window. The very first call just records
        // the mask so the caller's initial plan is honored.
        let live_changed = !self.last_live.is_empty() && self.last_live != live;
        let periodic = self
            .rebalance_every
            .is_some_and(|every| every > 0 && self.routed.is_multiple_of(every));
        if self.rebalance_every.is_some() && (live_changed || periodic) {
            let weights: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
            let next = PlacementPlan::from_weights_live(&weights, views.len(), &live);
            self.migrations += next.migrations_from(&self.plan);
            self.plan = next;
        }
        self.last_live = live;
        // One pass memoizes every replica's score (dead replicas score
        // infinity so they can never win) and finds the global best;
        // strict `<` keeps the first — lowest-id — replica on score
        // ties, exactly like the old `total_cmp(..).then(id.cmp(..))`
        // comparator.
        self.score_buf.clear();
        self.score_buf.reserve(views.len());
        let mut overall: Option<(usize, f64)> = None;
        for v in views {
            debug_assert_eq!(v.id, self.score_buf.len(), "views must be positional");
            let s = if v.alive {
                Self::score(v)
            } else {
                f64::INFINITY
            };
            self.score_buf.push(s);
            if v.alive && overall.is_none_or(|(_, best)| s < best) {
                overall = Some((v.id, s));
            }
        }
        let overall = overall.expect("at least one live replica");
        // Home lookup is O(homes) against the memoized scores instead of
        // re-scanning (and re-scoring) every view with a membership test.
        let homes = self.plan.homes(req.model);
        let mut home: Option<(usize, f64)> = None;
        for &h in homes {
            if h >= views.len() || !views[h].alive {
                continue;
            }
            let s = self.score_buf[h];
            if home.is_none_or(|(_, best)| s < best) {
                home = Some((h, s));
            }
        }
        match home {
            // Stay home unless the homes are badly backlogged vs the rest.
            Some((id, score)) if score <= overall.1 + self.spill_margin_s => id,
            _ => overall.0,
        }
    }

    fn prefetch_hints(
        &mut self,
        req: &Request,
        views: &[ReplicaView],
        routed: usize,
    ) -> Vec<PrefetchHint> {
        // The model just saw traffic: prewarm its *other* home replicas
        // that are still cold, so the next request for it (hot models see
        // many) finds a warm copy wherever the plan may route it. Dead
        // replicas get no hints — prewarming a corpse leaks the hint.
        self.plan
            .homes(req.model)
            .iter()
            .copied()
            .filter(|&h| h != routed && h < views.len() && views[h].alive && !views[h].warm)
            .take(2)
            .map(|replica| PrefetchHint {
                replica,
                model: req.model,
            })
            .collect()
    }

    fn migrations(&self) -> usize {
        self.migrations
    }
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

/// SLO-aware admission control: defer or shed `Batch`-class load when the
/// whole fleet is saturated, instead of letting it poison the tail.
///
/// Interactive and Standard requests are always admitted. A Batch
/// request (re)arriving when every replica's estimated queue depth is at
/// least `defer_depth` is pushed back by `defer_s` seconds while it has
/// defer budget (`max_defers` attempts). Once the budget is spent, it is
/// shed — reported in [`ClusterReport::shed`] — if every depth is still
/// at least `shed_depth`, and admitted otherwise. (With `shed_depth`
/// below `defer_depth` an over-`shed_depth` arrival is shed without
/// consuming defer budget first.)
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Per-model SLO classes (also enables SLO-priority queue scanning in
    /// every replica engine).
    pub slo: SloPolicy,
    /// Minimum per-replica queue depth (across all replicas) at which
    /// Batch requests start deferring.
    pub defer_depth: usize,
    /// Seconds a deferred request is pushed back per attempt.
    pub defer_s: f64,
    /// Defer attempts before a Batch request must be admitted or shed.
    pub max_defers: usize,
    /// Minimum per-replica queue depth at which a Batch request out of
    /// defer budget is shed.
    pub shed_depth: usize,
}

impl AdmissionConfig {
    /// Defaults tuned for the bench traces: defer at depth 32, shed at 96.
    pub fn new(slo: SloPolicy) -> Self {
        AdmissionConfig {
            slo,
            defer_depth: 32,
            defer_s: 5.0,
            max_defers: 8,
            shed_depth: 96,
        }
    }
}

/// A request the admission controller refused to serve.
#[derive(Debug, Clone)]
pub struct ShedRecord {
    /// Global request id.
    pub id: usize,
    /// Model variant the request targeted.
    pub model: usize,
    /// Original arrival time (s).
    pub arrival: f64,
    /// SLO class the request was shed under. Admission control only
    /// sheds `Batch`; a chaos run with zero live capacity and no
    /// recovery ever coming may shed any class as its last resort.
    pub class: SloClass,
}

// ---------------------------------------------------------------------------
// The cluster simulator.
// ---------------------------------------------------------------------------

/// Routing-time prefetch configuration: how [`ClusterSim`] applies the
/// router's [`PrefetchHint`]s.
#[derive(Debug, Clone, Copy)]
pub struct ClusterPrefetch {
    /// Maximum hints applied per routing decision.
    pub max_hints_per_decision: usize,
    /// Byte budget per applied hint when replicas are store-bound
    /// (forwarded to [`TieredDeltaStore::prefetch`](dz_store::TieredDeltaStore::prefetch)).
    pub budget_bytes: u64,
}

impl Default for ClusterPrefetch {
    fn default() -> Self {
        ClusterPrefetch {
            max_hints_per_decision: 2,
            budget_bytes: u64::MAX,
        }
    }
}

/// Cluster-wide configuration shared by every replica.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of base-model replicas.
    pub n_replicas: usize,
    /// Per-replica engine configuration.
    pub engine: DeltaZipConfig,
    /// Optional SLO-aware admission control (also gives every replica
    /// engine the SLO-priority queue scan).
    pub admission: Option<AdmissionConfig>,
    /// Capacity (in deltas) of the router's predicted warm set per
    /// replica. Defaults to the engine's `host_capacity_deltas`; for
    /// store-bound replicas it is derived from each store's byte budget.
    pub router_warm_deltas: Option<usize>,
    /// Routing-time prefetch: when set, the router's
    /// [`PrefetchHint`]s are applied to the target replicas' (predicted
    /// and, when store-bound, real) host caches. `None` disables hints.
    pub prefetch: Option<ClusterPrefetch>,
    /// Per-replica engine-level predictive prefetch policy (built per
    /// replica from the trace's popularity for
    /// [`PrefetchPolicy::Popularity`]). `None` disables it.
    pub prefetch_policy: Option<PrefetchPolicy>,
    /// Optional variant catalog shared by every replica: requests whose
    /// model is not delta-backed (base or pure LoRA) are placement-free —
    /// adapters are ~MB, replicated everywhere, and always routed as warm;
    /// routing-time prefetch hints are only spent on delta-backed models.
    /// `None` keeps the legacy all-delta behavior.
    pub catalog: Option<crate::variant::VariantCatalog>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_replicas: 1,
            engine: DeltaZipConfig::default(),
            admission: None,
            router_warm_deltas: None,
            prefetch: None,
            prefetch_policy: None,
            catalog: None,
        }
    }
}

impl ClusterConfig {
    /// A config with `n_replicas` replicas and default engine settings.
    pub fn replicas(n_replicas: usize) -> Self {
        ClusterConfig {
            n_replicas,
            ..ClusterConfig::default()
        }
    }
}

/// Routing-side accounting of one cluster run.
#[derive(Debug, Clone, Default)]
pub struct RoutingStats {
    /// Requests routed to each replica.
    pub per_replica_requests: Vec<usize>,
    /// Requests routed to a replica predicted warm for their delta.
    pub warm_routed: usize,
    /// Requests routed to a replica predicted cold for their delta.
    pub cold_routed: usize,
    /// Cold routings while some *other* replica was predicted warm — the
    /// placement opportunities the policy left on the table.
    pub placement_misses: usize,
    /// Defer events (one request deferred twice counts twice).
    pub defer_events: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Prefetch hints emitted by the router (pre-application).
    pub prefetch_hints: usize,
    /// Hints that actually prewarmed a cold predicted entry.
    pub prefetch_issued: usize,
    /// Requests routed warm onto an entry a prefetch hint prewarmed
    /// (each prewarmed entry counts at most once).
    pub prefetch_hits: usize,
}

impl RoutingStats {
    /// Fraction of admitted requests routed onto a warm replica.
    pub fn warm_fraction(&self) -> f64 {
        dz_trace::stats::ratio_or(
            self.warm_routed as f64,
            (self.warm_routed + self.cold_routed) as f64,
            0.0,
        )
    }

    /// Fraction of applied prefetch hints later rewarded by a warm-routed
    /// request (`0.0` when no hints were applied).
    pub fn prefetch_hit_rate(&self) -> f64 {
        dz_trace::stats::ratio_or(self.prefetch_hits as f64, self.prefetch_issued as f64, 0.0)
    }
}

/// Aggregated outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// All served requests with global ids (deferral waits included in
    /// their latency), mergeable with any single-engine [`Metrics`].
    pub merged: Metrics,
    /// Per-replica metrics (replica-local view, deferral waits excluded).
    pub per_replica: Vec<Metrics>,
    /// Requests shed by admission control.
    pub shed: Vec<ShedRecord>,
    /// Router-side accounting.
    pub routing: RoutingStats,
    /// Per-replica artifact-store load stats for **this run only** when
    /// replicas are store-bound (`None` in synthetic mode). The stores
    /// themselves keep cumulative totals across runs — query the
    /// bindings via [`ClusterSim::bindings`] for those.
    pub store_stats: Option<Vec<dz_store::LoadStats>>,
    /// What the chaos machinery did, when the run was configured with
    /// [`ClusterSim::with_chaos`] (`None` on healthy runs).
    pub chaos: Option<ChaosStats>,
}

impl ClusterReport {
    /// Served requests / offered requests (1.0 when nothing was shed).
    pub fn goodput(&self) -> f64 {
        let offered = self.merged.len() + self.shed.len();
        dz_trace::stats::ratio_or(self.merged.len() as f64, offered as f64, 1.0)
    }

    /// Aggregate host-cache hit rate across replica stores, when
    /// store-bound: host hits / (host hits + disk loads).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let stats = self.store_stats.as_ref()?;
        let (hits, loads) = stats.iter().fold((0u64, 0u64), |(h, l), s| {
            (h + s.host_hits, l + s.host_hits + s.disk_loads)
        });
        Some(dz_trace::stats::ratio_or(hits as f64, loads as f64, 1.0))
    }
}

/// Estimated-state bookkeeping for one replica, maintained by the
/// front-end as it routes.
struct ReplicaFrontendState {
    /// Predicted host-cache contents: model -> LRU stamp. Ordered so the
    /// eviction scan in `touch_warm` is iteration-order-deterministic.
    warm: BTreeMap<usize, u64>,
    /// Models whose *decoded* copy is predicted resident (subset of
    /// `warm`): a demand use decodes and caches, a prefetch does not.
    decoded: BTreeSet<usize>,
    /// Warm entries established by a prefetch hint and not yet rewarded
    /// by a warm-routed request.
    prefetched: BTreeSet<usize>,
    warm_cap: usize,
    clock: u64,
    /// Estimated time the replica drains everything routed to it.
    busy_until: f64,
    /// Estimated finish times of outstanding requests (monotone).
    finishes: std::collections::VecDeque<f64>,
    /// Requests assigned to this replica in the *current* epoch:
    /// (request-at-admission, global id, defer delay, estimated finish).
    assigned: Vec<(Request, usize, f64, f64)>,
    /// Earlier epochs, sealed by a crash or a scale cycle. Each epoch
    /// replays on its own fresh (cold) engine: a restarted replica has
    /// no host cache.
    sealed: Vec<Vec<(Request, usize, f64, f64)>>,
    /// Whether the replica is live and routable.
    alive: bool,
    /// Down because of a crash with a scheduled restart — the
    /// autoscaler must not "activate" it early.
    pending_restart: bool,
    /// Cost-model-derived estimates.
    per_token_s: f64,
    cold_load_s: f64,
    warm_load_s: f64,
}

impl ReplicaFrontendState {
    fn prune(&mut self, now: f64) {
        while self.finishes.front().is_some_and(|&f| f <= now) {
            self.finishes.pop_front();
        }
    }

    fn view(&self, id: usize, now: f64, model: usize) -> ReplicaView {
        let warm = self.warm.contains_key(&model);
        ReplicaView {
            id,
            queue_depth: self.finishes.len(),
            backlog_s: (self.busy_until - now).max(0.0),
            warm,
            decoded: warm && self.decoded.contains(&model),
            cold_load_s: self.cold_load_s,
            warm_load_s: self.warm_load_s,
            alive: self.alive,
        }
    }

    /// Crash at `t`: the warm set is gone, estimated work is gone, and
    /// requests whose estimated finish lies beyond `t` are lost —
    /// returned to the caller for re-queueing. Finished work seals into
    /// an epoch (it replays on its own engine; the post-restart epoch
    /// starts cold).
    fn crash(&mut self, t: f64) -> Vec<(Request, usize, f64, f64)> {
        self.alive = false;
        self.warm.clear();
        self.decoded.clear();
        self.prefetched.clear();
        self.busy_until = t;
        self.finishes.clear();
        let epoch = std::mem::take(&mut self.assigned);
        let (done, lost): (Vec<_>, Vec<_>) = epoch.into_iter().partition(|a| a.3 <= t);
        self.sealed.push(done);
        lost
    }

    /// Bring the replica (back) up cold at `t`. For a graceful
    /// reactivation after a scale-down the drained epoch seals here; a
    /// crash already sealed it.
    fn revive(&mut self, t: f64) {
        if !self.assigned.is_empty() {
            let epoch = std::mem::take(&mut self.assigned);
            self.sealed.push(epoch);
        }
        self.alive = true;
        self.pending_restart = false;
        self.warm.clear();
        self.decoded.clear();
        self.prefetched.clear();
        self.busy_until = t;
        self.finishes.clear();
    }

    fn touch_warm(&mut self, model: usize) {
        self.clock += 1;
        self.warm.insert(model, self.clock);
        while self.warm.len() > self.warm_cap.max(1) {
            let victim = self
                .warm
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&m, _)| m);
            match victim {
                Some(v) => {
                    self.warm.remove(&v);
                    self.decoded.remove(&v);
                    self.prefetched.remove(&v);
                }
                None => break,
            }
        }
    }

    /// A demand use: warm *and* decoded (the engine caches the decoded
    /// copy beside the bytes after first use).
    fn touch_used(&mut self, model: usize) {
        self.touch_warm(model);
        self.decoded.insert(model);
    }

    /// A prefetch hint landed: warm (compressed bytes only) — returns
    /// whether the entry was newly prewarmed.
    fn prefetch_warm(&mut self, model: usize) -> bool {
        if self.warm.contains_key(&model) {
            return false;
        }
        self.touch_warm(model);
        self.prefetched.insert(model);
        true
    }

    fn charge(&mut self, now: f64, est_service_s: f64) {
        self.busy_until = self.busy_until.max(now) + est_service_s;
        self.finishes.push_back(self.busy_until);
    }
}

/// One pending request in the front-end's time-ordered queue.
struct Pending {
    req: Request,
    delay: f64,
    defers: usize,
    seq: u64,
}

impl Pending {
    fn arrival(&self) -> f64 {
        self.req.arrival + self.delay
    }
    /// Heap key: earliest arrival first, then original order. Arrivals are
    /// non-negative, so the IEEE-754 bit pattern orders them correctly.
    fn key(&self) -> (u64, u64) {
        (self.arrival().to_bits(), self.seq)
    }
}

/// The cluster: `R` replica engines behind a pluggable router.
///
/// # Examples
///
/// ```
/// use dz_gpusim::shapes::ModelShape;
/// use dz_gpusim::spec::NodeSpec;
/// use dz_serve::cluster::{ClusterConfig, ClusterSim, PlacementAwareRouter, PlacementPlan};
/// use dz_serve::CostModel;
/// use dz_workload::{PopularityDist, Trace, TraceSpec};
///
/// let popularity = PopularityDist::Zipf { alpha: 1.5 };
/// let trace = Trace::generate(TraceSpec {
///     n_models: 8,
///     arrival_rate: 1.0,
///     duration_s: 20.0,
///     popularity,
///     seed: 1,
/// });
/// let costs = vec![CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b()); 2];
/// let plan = PlacementPlan::from_popularity(popularity, 8, 2);
/// let mut sim = ClusterSim::new(
///     costs,
///     ClusterConfig::replicas(2),
///     Box::new(PlacementAwareRouter::new(plan)),
/// );
/// let report = sim.run(&trace);
/// assert_eq!(report.merged.len(), trace.len());
/// assert!(report.goodput() == 1.0); // no admission control configured
/// ```
pub struct ClusterSim {
    costs: Vec<CostModel>,
    config: ClusterConfig,
    router: Box<dyn Router>,
    /// Per-replica artifact stores (store-bound mode); retrieved back into
    /// place after every run so warm state carries across runs.
    bindings: Option<Vec<DeltaStoreBinding>>,
    /// Router warm-set capacities derived from the store budgets, computed
    /// once at [`with_stores`](Self::with_stores) time (the sizes need a
    /// disk stat per artifact).
    store_warm_caps: Vec<usize>,
    /// When set, the front-end and every replica engine record trace
    /// events during [`run`](Self::run).
    trace_config: Option<TraceConfig>,
    /// Tracks captured by the last traced run (front-end lane first,
    /// then one per replica), until [`take_trace`](Self::take_trace).
    trace_tracks: Vec<TraceTrack>,
    /// Fault/elasticity schedule for [`run`](Self::run), when chaotic.
    chaos: Option<ChaosConfig>,
}

impl ClusterSim {
    /// Creates a cluster of `costs.len()` replicas (which must match
    /// `config.n_replicas`) behind `router`.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_replicas == 0` or the cost-model count differs.
    pub fn new(costs: Vec<CostModel>, config: ClusterConfig, router: Box<dyn Router>) -> Self {
        assert!(config.n_replicas > 0, "need at least one replica");
        assert_eq!(costs.len(), config.n_replicas, "one cost model per replica");
        ClusterSim {
            costs,
            config,
            router,
            bindings: None,
            store_warm_caps: Vec::new(),
            trace_config: None,
            trace_tracks: Vec::new(),
            chaos: None,
        }
    }

    /// Arms a chaos/elasticity schedule: subsequent [`run`](Self::run)
    /// calls inject the configured faults, drive the autoscaler, and
    /// apply rolling rollouts; the report carries
    /// [`ClusterReport::chaos`]. All chaos randomness flows from
    /// [`ChaosConfig::seed`], so a run is exactly reproducible.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Enables simulation-clock tracing: subsequent [`run`](Self::run)
    /// calls record front-end events (defer/shed/migrations) plus every
    /// replica engine's event log, retrievable via
    /// [`take_trace`](Self::take_trace).
    pub fn with_tracing(mut self, config: TraceConfig) -> Self {
        self.trace_config = Some(config);
        self
    }

    /// Takes the trace tracks captured by the last traced run: the
    /// front-end lane followed by one lane per replica, with replica
    /// request ids remapped to global trace ids.
    pub fn take_trace(&mut self) -> Vec<TraceTrack> {
        std::mem::take(&mut self.trace_tracks)
    }

    /// Binds one [`TieredDeltaStore`](dz_store::TieredDeltaStore) per
    /// replica: each replica's engine charges loads by real artifact
    /// bytes from its own host-cache budget, and the router's predicted
    /// warm sets are seeded from (and sized by) the stores.
    ///
    /// # Panics
    ///
    /// Panics if the binding count differs from the replica count.
    pub fn with_stores(mut self, bindings: Vec<DeltaStoreBinding>) -> Self {
        assert_eq!(
            bindings.len(),
            self.config.n_replicas,
            "one store binding per replica"
        );
        // Derive each replica's router warm-set capacity from its store's
        // byte budget and mean artifact size, once — sizing needs a disk
        // stat per artifact and the bindings are fixed from here on.
        self.store_warm_caps = bindings
            .iter()
            .map(|binding| {
                let sizes: Vec<u64> = binding
                    .artifacts()
                    .iter()
                    .filter_map(|id| binding.store().registry().size_of(id).ok())
                    .collect();
                if sizes.is_empty() {
                    usize::MAX
                } else {
                    let mean = (sizes.iter().sum::<u64>() / sizes.len() as u64).max(1);
                    ((binding.store().budget_bytes() / mean) as usize).max(1)
                }
            })
            .collect();
        self.bindings = Some(bindings);
        self
    }

    /// The router (e.g. to read a [`PlacementAwareRouter`]'s migration
    /// count after a run).
    pub fn router(&self) -> &dyn Router {
        self.router.as_ref()
    }

    /// Per-replica store bindings, when store-bound.
    pub fn bindings(&self) -> Option<&[DeltaStoreBinding]> {
        self.bindings.as_deref()
    }

    /// Router warm-set capacity (in deltas) for replica `r`.
    fn warm_capacity(&self, r: usize) -> usize {
        if let Some(cap) = self.config.router_warm_deltas {
            return cap.max(1);
        }
        if let Some(&cap) = self.store_warm_caps.get(r) {
            if cap != usize::MAX {
                return cap;
            }
        }
        self.config
            .engine
            .host_capacity_deltas
            .unwrap_or(usize::MAX)
    }

    /// Whether a model's variant is delta-backed and therefore
    /// placement-critical. Catalog-free clusters treat every model as a
    /// delta (the legacy behavior). Base and pure-LoRA variants are ~free
    /// to replicate, so every replica counts as warm for them and no
    /// prefetch-hint budget is spent on their behalf.
    fn model_needs_delta(&self, model: usize) -> bool {
        self.config
            .catalog
            .as_ref()
            .is_none_or(|c| c.kind_of(model).needs_delta())
    }

    /// Builds the per-replica front-end states (predicted warm sets,
    /// amortized service rates) shared by both front ends.
    fn build_states(&self, trace: &Trace, initial_live: usize) -> Vec<ReplicaFrontendState> {
        (0..self.config.n_replicas)
            .map(|r| {
                let cost = &self.costs[r];
                let mut state = ReplicaFrontendState {
                    warm: BTreeMap::new(),
                    decoded: BTreeSet::new(),
                    prefetched: BTreeSet::new(),
                    warm_cap: self.warm_capacity(r),
                    clock: 0,
                    busy_until: 0.0,
                    finishes: std::collections::VecDeque::new(),
                    assigned: Vec::new(),
                    sealed: Vec::new(),
                    alive: r < initial_live,
                    pending_restart: false,
                    // Amortized over a representative batch: the replica
                    // engine batches concurrent requests, so charging the
                    // batch-1 iteration per request would inflate backlog
                    // estimates until they drown the warmth signal.
                    per_token_s: {
                        let batch = (self.config.engine.max_batch / 4).max(1);
                        let deltas = self.config.engine.max_concurrent_deltas.clamp(1, batch);
                        let reqs = vec![batch.div_ceil(deltas); deltas];
                        let total: usize = reqs.iter().sum();
                        cost.deltazip_decode_iter(&reqs, self.config.engine.strategy) / total as f64
                    },
                    cold_load_s: cost.delta_cold_load_time(),
                    warm_load_s: cost.delta_load_time(),
                };
                // Seed the predicted warm (and decoded) sets from real
                // store residency.
                if let Some(bindings) = &self.bindings {
                    for model in 0..trace.spec.n_models {
                        if bindings[r].is_model_warm(model) {
                            if bindings[r].is_model_decoded(model) {
                                state.touch_used(model);
                            } else {
                                state.touch_warm(model);
                            }
                        }
                    }
                }
                state
            })
            .collect()
    }

    /// Replays the trace through the router and the replica engines.
    ///
    /// This is the **event-driven** front end: chaos actions and request
    /// arrivals merge on one global [`EventQueue`] keyed by
    /// `(time, class, seq)`, where the chaos class orders before the
    /// arrival class at an equal timestamp (a restart at `t` is visible
    /// to a request arriving at `t` — the lockstep reference's tie
    /// rule). Cost is O(events) heap operations instead of two manually
    /// merged queues with ad-hoc peeking.
    ///
    /// Differential oracle: the retained
    /// [`run_lockstep_reference`](Self::run_lockstep_reference) must
    /// produce a bit-identical [`ClusterReport`] on every configuration;
    /// `crates/serve/tests/fleet_equivalence.rs` pins that.
    pub fn run(&mut self, trace: &Trace) -> ClusterReport {
        const CLASS_CHAOS: EventClass = 0;
        const CLASS_ARRIVAL: EventClass = 1;
        enum FrontEvent {
            /// Index into the action table.
            Chaos(usize),
            /// A request (re-)entering the front end.
            Arrival(Pending),
        }
        let n = self.config.n_replicas;
        let chaos = self.chaos.clone();
        let initial_live = chaos
            .as_ref()
            .and_then(|c| c.initial_replicas)
            .unwrap_or(n)
            .clamp(1, n);
        let mut states = self.build_states(trace, initial_live);

        let mut events: EventQueue<FrontEvent> = EventQueue::new();
        // Arrivals still pending (deferred/parked re-entries included):
        // the autoscaler keeps ticking only while work remains.
        let mut arrivals_pending = 0usize;
        for (seq, req) in trace.requests.iter().enumerate() {
            let p = Pending {
                req: req.clone(),
                delay: 0.0,
                defers: 0,
                seq: seq as u64,
            };
            events.push_class(p.arrival(), CLASS_ARRIVAL, FrontEvent::Arrival(p));
            arrivals_pending += 1;
        }
        let mut next_seq = trace.len() as u64;
        let mut routing = RoutingStats {
            per_replica_requests: vec![0; n],
            ..RoutingStats::default()
        };
        let mut shed: Vec<ShedRecord> = Vec::new();
        let mut frontend_tracer = match self.trace_config {
            Some(cfg) => Tracer::enabled(cfg),
            None => Tracer::disabled(),
        };
        let mut migrations_seen = self.router.migrations();

        let mut chaos_stats = chaos.as_ref().map(|_| ChaosStats {
            min_live: initial_live,
            max_live: initial_live,
            ..ChaosStats::default()
        });
        let mut replica_brownouts: Vec<Vec<Brownout>> = vec![Vec::new(); n];
        let mut chaos_actions: Vec<ChaosAction> = Vec::new();
        let horizon = trace
            .requests
            .iter()
            .map(|r| r.arrival)
            .fold(0.0f64, f64::max);
        if let Some(c) = &chaos {
            for ev in c.plan.events() {
                let action = match ev.kind {
                    FaultKind::Crash {
                        replica,
                        restart_after_s,
                    } => ChaosAction::Crash {
                        replica,
                        restart_after_s,
                    },
                    FaultKind::Degrade { replica, brownout } => {
                        if replica < n {
                            replica_brownouts[replica].push(brownout);
                        }
                        ChaosAction::Degrade { replica }
                    }
                };
                let idx = chaos_actions.len();
                chaos_actions.push(action);
                events.push_class(ev.at.max(0.0), CLASS_CHAOS, FrontEvent::Chaos(idx));
            }
            if let Some(scaler) = c.autoscaler {
                let idx = chaos_actions.len();
                chaos_actions.push(ChaosAction::Tick);
                events.push_class(
                    scaler.interval_s.max(1e-3),
                    CLASS_CHAOS,
                    FrontEvent::Chaos(idx),
                );
            }
            frontend_tracer.gauge(|| GaugeSample {
                at: 0.0,
                live_replicas: initial_live,
                ..GaugeSample::default()
            });
        }
        let n_rollouts = chaos.as_ref().map_or(0, |c| c.rollouts.len());
        let mut rollout_started = vec![false; n_rollouts];
        let mut rollout_done = vec![false; n_rollouts];
        let mut chaos_rng =
            dz_tensor::Rng::seeded(chaos.as_ref().map_or(0, |c| c.seed) ^ 0xD17E_C4A0);
        let mut last_scale_at = f64::NEG_INFINITY;

        while let Some((t, _class, event)) = events.pop_classed() {
            let mut p = match event {
                FrontEvent::Chaos(idx) => {
                    let stats = chaos_stats.as_mut().expect("chaos actions imply config");
                    match chaos_actions[idx] {
                        ChaosAction::Crash {
                            replica,
                            restart_after_s,
                        } => {
                            if replica < n && states[replica].alive {
                                let lost = states[replica].crash(t);
                                stats.crashes += 1;
                                stats.lost_in_flight += lost.len();
                                let lost_n = lost.len();
                                frontend_tracer.emit(|| TraceEvent::ReplicaDown {
                                    replica,
                                    lost: lost_n,
                                    at: t,
                                });
                                // Lost in-flight requests re-enter the
                                // front end at the crash instant; the
                                // wasted wait becomes queue time from
                                // their viewpoint.
                                for (req, global_id, delay, _) in lost {
                                    let orig_arrival = req.arrival - delay;
                                    let p = Pending {
                                        req: Request {
                                            arrival: orig_arrival,
                                            id: global_id,
                                            ..req
                                        },
                                        delay: t - orig_arrival,
                                        defers: 0,
                                        seq: next_seq,
                                    };
                                    next_seq += 1;
                                    events.push_class(
                                        p.arrival(),
                                        CLASS_ARRIVAL,
                                        FrontEvent::Arrival(p),
                                    );
                                    arrivals_pending += 1;
                                }
                                if let Some(d) = restart_after_s {
                                    states[replica].pending_restart = true;
                                    let idx = chaos_actions.len();
                                    chaos_actions.push(ChaosAction::Restart { replica });
                                    events.push_class(
                                        t + d.max(0.0),
                                        CLASS_CHAOS,
                                        FrontEvent::Chaos(idx),
                                    );
                                }
                                let live = states.iter().filter(|s| s.alive).count();
                                stats.min_live = stats.min_live.min(live);
                                frontend_tracer.gauge(|| GaugeSample {
                                    at: t,
                                    live_replicas: live,
                                    ..GaugeSample::default()
                                });
                            }
                        }
                        ChaosAction::Restart { replica } => {
                            if replica < n && !states[replica].alive {
                                states[replica].revive(t);
                                stats.restarts += 1;
                                frontend_tracer.emit(|| TraceEvent::ReplicaUp { replica, at: t });
                                let live = states.iter().filter(|s| s.alive).count();
                                stats.max_live = stats.max_live.max(live);
                                frontend_tracer.gauge(|| GaugeSample {
                                    at: t,
                                    live_replicas: live,
                                    ..GaugeSample::default()
                                });
                            }
                        }
                        ChaosAction::Degrade { replica } => {
                            if replica < n {
                                stats.brownouts += 1;
                            }
                        }
                        ChaosAction::Tick => {
                            let scaler = chaos
                                .as_ref()
                                .and_then(|c| c.autoscaler)
                                .expect("tick implies autoscaler");
                            let live_ids: Vec<usize> =
                                (0..n).filter(|&r| states[r].alive).collect();
                            // An empty live set is infinite pressure:
                            // bring anything available back immediately.
                            let mean_backlog = if live_ids.is_empty() {
                                f64::INFINITY
                            } else {
                                live_ids
                                    .iter()
                                    .map(|&r| (states[r].busy_until - t).max(0.0))
                                    .sum::<f64>()
                                    / live_ids.len() as f64
                            };
                            if t - last_scale_at >= scaler.cooldown_s {
                                match scaler.decide(live_ids.len(), mean_backlog) {
                                    1 => {
                                        let spare = (0..n).find(|&r| {
                                            !states[r].alive && !states[r].pending_restart
                                        });
                                        if let Some(r) = spare {
                                            states[r].revive(t);
                                            stats.scale_ups += 1;
                                            last_scale_at = t;
                                            frontend_tracer
                                                .emit(|| TraceEvent::ScaleUp { replica: r, at: t });
                                            let live = live_ids.len() + 1;
                                            stats.max_live = stats.max_live.max(live);
                                            frontend_tracer.gauge(|| GaugeSample {
                                                at: t,
                                                live_replicas: live,
                                                ..GaugeSample::default()
                                            });
                                        }
                                    }
                                    -1 => {
                                        // Drain the emptiest live replica:
                                        // it stops receiving traffic but
                                        // keeps (and finishes) its
                                        // in-flight work.
                                        let victim = live_ids.iter().copied().min_by(|&a, &b| {
                                            states[a]
                                                .busy_until
                                                .total_cmp(&states[b].busy_until)
                                                .then(a.cmp(&b))
                                        });
                                        if let Some(r) = victim {
                                            states[r].alive = false;
                                            stats.scale_downs += 1;
                                            last_scale_at = t;
                                            frontend_tracer.emit(|| TraceEvent::ScaleDown {
                                                replica: r,
                                                at: t,
                                            });
                                            let live = live_ids.len() - 1;
                                            stats.min_live = stats.min_live.min(live);
                                            frontend_tracer.gauge(|| GaugeSample {
                                                at: t,
                                                live_replicas: live,
                                                ..GaugeSample::default()
                                            });
                                        }
                                    }
                                    _ => {}
                                }
                            }
                            // Keep ticking while there is work left to
                            // serve.
                            if arrivals_pending > 0 || t < horizon {
                                let idx = chaos_actions.len();
                                chaos_actions.push(ChaosAction::Tick);
                                events.push_class(
                                    t + scaler.interval_s.max(1e-3),
                                    CLASS_CHAOS,
                                    FrontEvent::Chaos(idx),
                                );
                            }
                        }
                    }
                    continue;
                }
                FrontEvent::Arrival(p) => {
                    arrivals_pending -= 1;
                    p
                }
            };
            let now = p.arrival();

            // Rolling rollouts: a seeded, growing fraction of the v1
            // model's traffic is remapped to its v2 delta.
            if let Some(c) = &chaos {
                for (i, ro) in c.rollouts.iter().enumerate() {
                    let frac = ro.fraction_at(now);
                    if frac > 0.0 && !rollout_started[i] {
                        rollout_started[i] = true;
                        frontend_tracer.emit(|| TraceEvent::Rollout {
                            model: ro.model,
                            v2: ro.v2,
                            frac,
                            at: now,
                        });
                    }
                    if p.req.model == ro.model && frac > 0.0 && chaos_rng.bernoulli(frac) {
                        p.req.model = ro.v2;
                        chaos_stats
                            .as_mut()
                            .expect("rollouts imply chaos config")
                            .rollout_remapped += 1;
                    }
                    if frac >= 1.0 && !rollout_done[i] {
                        rollout_done[i] = true;
                        frontend_tracer.emit(|| TraceEvent::Rollout {
                            model: ro.model,
                            v2: ro.v2,
                            frac: 1.0,
                            at: now,
                        });
                    }
                }
            }

            for state in &mut states {
                state.prune(now);
            }
            let mut views: Vec<ReplicaView> = states
                .iter()
                .enumerate()
                .map(|(r, s)| {
                    let mut v = s.view(r, now, p.req.model);
                    // A browned-out channel inflates the router's load
                    // estimates: cold loads ride disk, decode rides PCIe.
                    let (disk_rate, pcie_rate) = brownout_rates(&replica_brownouts[r], now);
                    v.cold_load_s /= disk_rate;
                    v.warm_load_s /= pcie_rate;
                    v
                })
                .collect();
            if !self.model_needs_delta(p.req.model) {
                // Non-delta variants (base weights, MB-scale adapters) are
                // resident on every live replica: the router sees them as
                // warm everywhere and charges no swap-in.
                for v in &mut views {
                    v.warm = true;
                    v.decoded = true;
                    v.cold_load_s = 0.0;
                    v.warm_load_s = 0.0;
                }
            }
            let live_now = views.iter().filter(|v| v.alive).count();
            if let Some(stats) = chaos_stats.as_mut() {
                stats.min_live = stats.min_live.min(live_now);
                stats.max_live = stats.max_live.max(live_now);
            }

            // SLO-aware admission: Batch requests defer, then shed, when
            // even the least-loaded *live* replica is saturated (a fleet
            // with zero live capacity counts as infinitely deep).
            if let Some(adm) = &self.config.admission {
                if adm.slo.class_of(p.req.model) == SloClass::Batch {
                    let min_depth = views
                        .iter()
                        .filter(|v| v.alive)
                        .map(|v| v.queue_depth)
                        .min()
                        .unwrap_or(usize::MAX);
                    if min_depth >= adm.defer_depth && p.defers < adm.max_defers {
                        routing.defer_events += 1;
                        frontend_tracer.emit(|| TraceEvent::Defer {
                            id: p.req.id,
                            model: p.req.model,
                            at: now,
                        });
                        let deferred = Pending {
                            delay: p.delay + adm.defer_s,
                            defers: p.defers + 1,
                            seq: next_seq,
                            req: p.req,
                        };
                        next_seq += 1;
                        events.push_class(
                            deferred.arrival(),
                            CLASS_ARRIVAL,
                            FrontEvent::Arrival(deferred),
                        );
                        arrivals_pending += 1;
                        continue;
                    }
                    if min_depth >= adm.shed_depth {
                        routing.shed += 1;
                        frontend_tracer.emit(|| TraceEvent::Shed {
                            id: p.req.id,
                            model: p.req.model,
                            at: now,
                        });
                        shed.push(ShedRecord {
                            id: p.req.id,
                            model: p.req.model,
                            arrival: p.req.arrival,
                            class: SloClass::Batch,
                        });
                        continue;
                    }
                }
            }

            // Zero effective capacity (every replica down or draining):
            // park the request until the next capacity event — a
            // scheduled restart or an autoscaler tick that could
            // activate a spare. If nothing will ever bring capacity
            // back, shed instead of looping: graceful degradation, not
            // a hang.
            if live_now == 0 {
                let can_scale_up = chaos
                    .as_ref()
                    .and_then(|c| c.autoscaler)
                    .is_some_and(|s| s.max_replicas > 0)
                    && states.iter().any(|s| !s.alive && !s.pending_restart);
                let next_up = events
                    .iter()
                    .filter_map(|(at, _, ev)| match ev {
                        FrontEvent::Chaos(idx) => match chaos_actions[*idx] {
                            ChaosAction::Restart { .. } => Some(at),
                            ChaosAction::Tick if can_scale_up => Some(at),
                            _ => None,
                        },
                        _ => None,
                    })
                    .fold(None, |acc: Option<f64>, t| {
                        Some(acc.map_or(t, |a| a.min(t)))
                    });
                match next_up {
                    Some(t_up) if t_up > now => {
                        let parked = Pending {
                            delay: t_up - p.req.arrival,
                            seq: next_seq,
                            ..p
                        };
                        next_seq += 1;
                        events.push_class(
                            parked.arrival(),
                            CLASS_ARRIVAL,
                            FrontEvent::Arrival(parked),
                        );
                        arrivals_pending += 1;
                    }
                    _ => {
                        routing.shed += 1;
                        if let Some(stats) = chaos_stats.as_mut() {
                            stats.shed_no_capacity += 1;
                        }
                        frontend_tracer.emit(|| TraceEvent::Shed {
                            id: p.req.id,
                            model: p.req.model,
                            at: now,
                        });
                        let class = self
                            .config
                            .admission
                            .as_ref()
                            .map(|a| a.slo.class_of(p.req.model))
                            .unwrap_or(SloClass::Batch);
                        shed.push(ShedRecord {
                            id: p.req.id,
                            model: p.req.model,
                            arrival: p.req.arrival,
                            class,
                        });
                    }
                }
                continue;
            }

            let r = self.router.route(&p.req, &views);
            assert!(r < n, "router returned replica {r} of {n}");
            assert!(views[r].alive, "router selected dead replica {r}");
            let migrations_now = self.router.migrations();
            if migrations_now > migrations_seen {
                let count = migrations_now - migrations_seen;
                frontend_tracer.emit(|| TraceEvent::Migrate { count, at: now });
                migrations_seen = migrations_now;
            }
            let warm = views[r].warm;
            if warm {
                routing.warm_routed += 1;
                // A warm hit on a prewarmed entry rewards the hint that
                // placed it (counted once per prewarm).
                if states[r].prefetched.remove(&p.req.model) {
                    routing.prefetch_hits += 1;
                }
            } else {
                routing.cold_routed += 1;
                if views.iter().any(|v| v.warm) {
                    routing.placement_misses += 1;
                }
            }
            routing.per_replica_requests[r] += 1;
            // Apply the router's prefetch hints: prewarm the predicted
            // caches and, when store-bound, the real ones (budgeted).
            if let Some(pf) = self.config.prefetch {
                for hint in self
                    .router
                    .prefetch_hints(&p.req, &views, r)
                    .into_iter()
                    .take(pf.max_hints_per_decision)
                {
                    if hint.replica >= n {
                        continue;
                    }
                    // Hint budget is for GB-scale deltas only; adapters
                    // and base weights need no placement.
                    if !self.model_needs_delta(hint.model) {
                        continue;
                    }
                    // A hint aimed at a dead replica is dropped, not
                    // leaked into its predicted (or real) cache.
                    if !views[hint.replica].alive {
                        if let Some(stats) = chaos_stats.as_mut() {
                            stats.dropped_hints += 1;
                        }
                        continue;
                    }
                    routing.prefetch_hints += 1;
                    if states[hint.replica].prefetch_warm(hint.model) {
                        routing.prefetch_issued += 1;
                        if let Some(bindings) = self.bindings.as_mut() {
                            let binding = &mut bindings[hint.replica];
                            if let Some(id) = binding.artifact_of(hint.model).copied() {
                                let _ = binding.store_mut().prefetch(&[id], pf.budget_bytes);
                            }
                        }
                    }
                }
            }
            let state = &mut states[r];
            let est = self.costs[r].prefill_time(p.req.prompt_tokens)
                + p.req.output_tokens as f64 * state.per_token_s
                + if warm { 0.0 } else { views[r].cold_load_s };
            if self.model_needs_delta(p.req.model) {
                // Adapter/base models must not occupy predicted
                // delta-warm-set capacity.
                state.touch_used(p.req.model);
            }
            state.charge(now, est);
            let est_finish = state.busy_until;
            let mut admitted = p.req.clone();
            admitted.arrival = now;
            state
                .assigned
                .push((admitted, p.req.id, p.delay, est_finish));
        }

        self.replay_and_report(
            trace,
            states,
            routing,
            shed,
            chaos_stats,
            frontend_tracer,
            &replica_brownouts,
        )
    }

    /// The original lockstep front end — two manually merged time-ordered
    /// queues (arrivals and chaos actions) with ad-hoc peeking — retained
    /// **verbatim** as the executable oracle for the event-driven
    /// [`run`](Self::run). Both share the state-building and replay
    /// phases; the merge logic under differential test is exactly what
    /// [`run`](Self::run) rewrote.
    pub fn run_lockstep_reference(&mut self, trace: &Trace) -> ClusterReport {
        let n = self.config.n_replicas;
        let chaos = self.chaos.clone();
        let initial_live = chaos
            .as_ref()
            .and_then(|c| c.initial_replicas)
            .unwrap_or(n)
            .clamp(1, n);
        let mut states = self.build_states(trace, initial_live);

        // Front-end loop: requests in time order, deferred ones re-queued.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>> =
            std::collections::BinaryHeap::new();
        let mut pending: HashMap<u64, Pending> = HashMap::new();
        for (seq, req) in trace.requests.iter().enumerate() {
            let p = Pending {
                req: req.clone(),
                delay: 0.0,
                defers: 0,
                seq: seq as u64,
            };
            heap.push(std::cmp::Reverse(p.key()));
            pending.insert(seq as u64, p);
        }
        let mut next_seq = trace.len() as u64;
        let mut routing = RoutingStats {
            per_replica_requests: vec![0; n],
            ..RoutingStats::default()
        };
        let mut shed: Vec<ShedRecord> = Vec::new();
        let mut frontend_tracer = match self.trace_config {
            Some(cfg) => Tracer::enabled(cfg),
            None => Tracer::disabled(),
        };
        let mut migrations_seen = self.router.migrations();

        // Chaos machinery: an absolute-time action queue interleaved
        // with the request stream (faults fire *between* arrivals, in
        // time order), per-replica brownout schedules handed to the
        // replay engines, and a seeded RNG for rollout coin flips. All
        // of it is independent of tracing, so a traced chaos run stays
        // bit-identical in metrics to an untraced one.
        let mut chaos_stats = chaos.as_ref().map(|_| ChaosStats {
            min_live: initial_live,
            max_live: initial_live,
            ..ChaosStats::default()
        });
        let mut replica_brownouts: Vec<Vec<Brownout>> = vec![Vec::new(); n];
        let mut chaos_actions: Vec<ChaosAction> = Vec::new();
        let mut chaos_q: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>> =
            std::collections::BinaryHeap::new();
        let mut chaos_seq = 0u64;
        fn push_chaos(
            q: &mut std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>>,
            actions: &mut Vec<ChaosAction>,
            seq: &mut u64,
            at: f64,
            action: ChaosAction,
        ) {
            let idx = actions.len();
            actions.push(action);
            q.push(std::cmp::Reverse((at.max(0.0).to_bits(), *seq, idx)));
            *seq += 1;
        }
        let horizon = trace
            .requests
            .iter()
            .map(|r| r.arrival)
            .fold(0.0f64, f64::max);
        if let Some(c) = &chaos {
            for ev in c.plan.events() {
                match ev.kind {
                    FaultKind::Crash {
                        replica,
                        restart_after_s,
                    } => push_chaos(
                        &mut chaos_q,
                        &mut chaos_actions,
                        &mut chaos_seq,
                        ev.at,
                        ChaosAction::Crash {
                            replica,
                            restart_after_s,
                        },
                    ),
                    FaultKind::Degrade { replica, brownout } => {
                        if replica < n {
                            replica_brownouts[replica].push(brownout);
                        }
                        push_chaos(
                            &mut chaos_q,
                            &mut chaos_actions,
                            &mut chaos_seq,
                            ev.at,
                            ChaosAction::Degrade { replica },
                        );
                    }
                }
            }
            if let Some(scaler) = c.autoscaler {
                push_chaos(
                    &mut chaos_q,
                    &mut chaos_actions,
                    &mut chaos_seq,
                    scaler.interval_s.max(1e-3),
                    ChaosAction::Tick,
                );
            }
            frontend_tracer.gauge(|| GaugeSample {
                at: 0.0,
                live_replicas: initial_live,
                ..GaugeSample::default()
            });
        }
        let n_rollouts = chaos.as_ref().map_or(0, |c| c.rollouts.len());
        let mut rollout_started = vec![false; n_rollouts];
        let mut rollout_done = vec![false; n_rollouts];
        let mut chaos_rng =
            dz_tensor::Rng::seeded(chaos.as_ref().map_or(0, |c| c.seed) ^ 0xD17E_C4A0);
        let mut last_scale_at = f64::NEG_INFINITY;

        loop {
            // Fire every chaos action due before the next arrival, at
            // its own timestamp (ties: chaos first, so a restart at t is
            // visible to a request arriving at t).
            let next_arrival = heap
                .peek()
                .map(|std::cmp::Reverse((bits, _))| f64::from_bits(*bits));
            let next_chaos = chaos_q
                .peek()
                .map(|std::cmp::Reverse((bits, _, _))| f64::from_bits(*bits));
            let fire_chaos = match (next_chaos, next_arrival) {
                (Some(c), Some(a)) => c <= a,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if fire_chaos {
                let std::cmp::Reverse((bits, _, idx)) = chaos_q.pop().expect("peeked above");
                let t = f64::from_bits(bits);
                let stats = chaos_stats.as_mut().expect("chaos actions imply config");
                match chaos_actions[idx] {
                    ChaosAction::Crash {
                        replica,
                        restart_after_s,
                    } => {
                        if replica < n && states[replica].alive {
                            let lost = states[replica].crash(t);
                            stats.crashes += 1;
                            stats.lost_in_flight += lost.len();
                            let lost_n = lost.len();
                            frontend_tracer.emit(|| TraceEvent::ReplicaDown {
                                replica,
                                lost: lost_n,
                                at: t,
                            });
                            // Lost in-flight requests re-enter the front
                            // end at the crash instant; the wasted wait
                            // becomes queue time from their viewpoint.
                            for (req, global_id, delay, _) in lost {
                                let orig_arrival = req.arrival - delay;
                                let p = Pending {
                                    req: Request {
                                        arrival: orig_arrival,
                                        id: global_id,
                                        ..req
                                    },
                                    delay: t - orig_arrival,
                                    defers: 0,
                                    seq: next_seq,
                                };
                                next_seq += 1;
                                heap.push(std::cmp::Reverse(p.key()));
                                pending.insert(p.seq, p);
                            }
                            if let Some(d) = restart_after_s {
                                states[replica].pending_restart = true;
                                push_chaos(
                                    &mut chaos_q,
                                    &mut chaos_actions,
                                    &mut chaos_seq,
                                    t + d.max(0.0),
                                    ChaosAction::Restart { replica },
                                );
                            }
                            let live = states.iter().filter(|s| s.alive).count();
                            stats.min_live = stats.min_live.min(live);
                            frontend_tracer.gauge(|| GaugeSample {
                                at: t,
                                live_replicas: live,
                                ..GaugeSample::default()
                            });
                        }
                    }
                    ChaosAction::Restart { replica } => {
                        if replica < n && !states[replica].alive {
                            states[replica].revive(t);
                            stats.restarts += 1;
                            frontend_tracer.emit(|| TraceEvent::ReplicaUp { replica, at: t });
                            let live = states.iter().filter(|s| s.alive).count();
                            stats.max_live = stats.max_live.max(live);
                            frontend_tracer.gauge(|| GaugeSample {
                                at: t,
                                live_replicas: live,
                                ..GaugeSample::default()
                            });
                        }
                    }
                    ChaosAction::Degrade { replica } => {
                        if replica < n {
                            stats.brownouts += 1;
                        }
                    }
                    ChaosAction::Tick => {
                        let scaler = chaos
                            .as_ref()
                            .and_then(|c| c.autoscaler)
                            .expect("tick implies autoscaler");
                        let live_ids: Vec<usize> = (0..n).filter(|&r| states[r].alive).collect();
                        // An empty live set is infinite pressure: bring
                        // anything available back immediately.
                        let mean_backlog = if live_ids.is_empty() {
                            f64::INFINITY
                        } else {
                            live_ids
                                .iter()
                                .map(|&r| (states[r].busy_until - t).max(0.0))
                                .sum::<f64>()
                                / live_ids.len() as f64
                        };
                        if t - last_scale_at >= scaler.cooldown_s {
                            match scaler.decide(live_ids.len(), mean_backlog) {
                                1 => {
                                    let spare = (0..n)
                                        .find(|&r| !states[r].alive && !states[r].pending_restart);
                                    if let Some(r) = spare {
                                        states[r].revive(t);
                                        stats.scale_ups += 1;
                                        last_scale_at = t;
                                        frontend_tracer
                                            .emit(|| TraceEvent::ScaleUp { replica: r, at: t });
                                        let live = live_ids.len() + 1;
                                        stats.max_live = stats.max_live.max(live);
                                        frontend_tracer.gauge(|| GaugeSample {
                                            at: t,
                                            live_replicas: live,
                                            ..GaugeSample::default()
                                        });
                                    }
                                }
                                -1 => {
                                    // Drain the emptiest live replica: it
                                    // stops receiving traffic but keeps
                                    // (and finishes) its in-flight work.
                                    let victim = live_ids.iter().copied().min_by(|&a, &b| {
                                        states[a]
                                            .busy_until
                                            .total_cmp(&states[b].busy_until)
                                            .then(a.cmp(&b))
                                    });
                                    if let Some(r) = victim {
                                        states[r].alive = false;
                                        stats.scale_downs += 1;
                                        last_scale_at = t;
                                        frontend_tracer
                                            .emit(|| TraceEvent::ScaleDown { replica: r, at: t });
                                        let live = live_ids.len() - 1;
                                        stats.min_live = stats.min_live.min(live);
                                        frontend_tracer.gauge(|| GaugeSample {
                                            at: t,
                                            live_replicas: live,
                                            ..GaugeSample::default()
                                        });
                                    }
                                }
                                _ => {}
                            }
                        }
                        // Keep ticking while there is work left to serve.
                        if !heap.is_empty() || t < horizon {
                            push_chaos(
                                &mut chaos_q,
                                &mut chaos_actions,
                                &mut chaos_seq,
                                t + scaler.interval_s.max(1e-3),
                                ChaosAction::Tick,
                            );
                        }
                    }
                }
                continue;
            }

            let Some(std::cmp::Reverse((_, seq))) = heap.pop() else {
                break;
            };
            let mut p = match pending.remove(&seq) {
                Some(p) => p,
                None => continue,
            };
            let now = p.arrival();

            // Rolling rollouts: a seeded, growing fraction of the v1
            // model's traffic is remapped to its v2 delta.
            if let Some(c) = &chaos {
                for (i, ro) in c.rollouts.iter().enumerate() {
                    let frac = ro.fraction_at(now);
                    if frac > 0.0 && !rollout_started[i] {
                        rollout_started[i] = true;
                        frontend_tracer.emit(|| TraceEvent::Rollout {
                            model: ro.model,
                            v2: ro.v2,
                            frac,
                            at: now,
                        });
                    }
                    if p.req.model == ro.model && frac > 0.0 && chaos_rng.bernoulli(frac) {
                        p.req.model = ro.v2;
                        chaos_stats
                            .as_mut()
                            .expect("rollouts imply chaos config")
                            .rollout_remapped += 1;
                    }
                    if frac >= 1.0 && !rollout_done[i] {
                        rollout_done[i] = true;
                        frontend_tracer.emit(|| TraceEvent::Rollout {
                            model: ro.model,
                            v2: ro.v2,
                            frac: 1.0,
                            at: now,
                        });
                    }
                }
            }

            for state in &mut states {
                state.prune(now);
            }
            let mut views: Vec<ReplicaView> = states
                .iter()
                .enumerate()
                .map(|(r, s)| {
                    let mut v = s.view(r, now, p.req.model);
                    // A browned-out channel inflates the router's load
                    // estimates: cold loads ride disk, decode rides PCIe.
                    let (disk_rate, pcie_rate) = brownout_rates(&replica_brownouts[r], now);
                    v.cold_load_s /= disk_rate;
                    v.warm_load_s /= pcie_rate;
                    v
                })
                .collect();
            if !self.model_needs_delta(p.req.model) {
                // Non-delta variants (base weights, MB-scale adapters) are
                // resident on every live replica: the router sees them as
                // warm everywhere and charges no swap-in.
                for v in &mut views {
                    v.warm = true;
                    v.decoded = true;
                    v.cold_load_s = 0.0;
                    v.warm_load_s = 0.0;
                }
            }
            let live_now = views.iter().filter(|v| v.alive).count();
            if let Some(stats) = chaos_stats.as_mut() {
                stats.min_live = stats.min_live.min(live_now);
                stats.max_live = stats.max_live.max(live_now);
            }

            // SLO-aware admission: Batch requests defer, then shed, when
            // even the least-loaded *live* replica is saturated (a fleet
            // with zero live capacity counts as infinitely deep).
            if let Some(adm) = &self.config.admission {
                if adm.slo.class_of(p.req.model) == SloClass::Batch {
                    let min_depth = views
                        .iter()
                        .filter(|v| v.alive)
                        .map(|v| v.queue_depth)
                        .min()
                        .unwrap_or(usize::MAX);
                    if min_depth >= adm.defer_depth && p.defers < adm.max_defers {
                        routing.defer_events += 1;
                        frontend_tracer.emit(|| TraceEvent::Defer {
                            id: p.req.id,
                            model: p.req.model,
                            at: now,
                        });
                        let deferred = Pending {
                            delay: p.delay + adm.defer_s,
                            defers: p.defers + 1,
                            seq: next_seq,
                            req: p.req,
                        };
                        next_seq += 1;
                        heap.push(std::cmp::Reverse(deferred.key()));
                        pending.insert(deferred.seq, deferred);
                        continue;
                    }
                    if min_depth >= adm.shed_depth {
                        routing.shed += 1;
                        frontend_tracer.emit(|| TraceEvent::Shed {
                            id: p.req.id,
                            model: p.req.model,
                            at: now,
                        });
                        shed.push(ShedRecord {
                            id: p.req.id,
                            model: p.req.model,
                            arrival: p.req.arrival,
                            class: SloClass::Batch,
                        });
                        continue;
                    }
                }
            }

            // Zero effective capacity (every replica down or draining):
            // park the request until the next capacity event — a
            // scheduled restart or an autoscaler tick that could
            // activate a spare. If nothing will ever bring capacity
            // back, shed instead of looping: graceful degradation, not
            // a hang.
            if live_now == 0 {
                let can_scale_up = chaos
                    .as_ref()
                    .and_then(|c| c.autoscaler)
                    .is_some_and(|s| s.max_replicas > 0)
                    && states.iter().any(|s| !s.alive && !s.pending_restart);
                let next_up = chaos_q
                    .iter()
                    .filter_map(
                        |std::cmp::Reverse((bits, _, idx))| match chaos_actions[*idx] {
                            ChaosAction::Restart { .. } => Some(f64::from_bits(*bits)),
                            ChaosAction::Tick if can_scale_up => Some(f64::from_bits(*bits)),
                            _ => None,
                        },
                    )
                    .fold(None, |acc: Option<f64>, t| {
                        Some(acc.map_or(t, |a| a.min(t)))
                    });
                match next_up {
                    Some(t_up) if t_up > now => {
                        let parked = Pending {
                            delay: t_up - p.req.arrival,
                            seq: next_seq,
                            ..p
                        };
                        next_seq += 1;
                        heap.push(std::cmp::Reverse(parked.key()));
                        pending.insert(parked.seq, parked);
                    }
                    _ => {
                        routing.shed += 1;
                        if let Some(stats) = chaos_stats.as_mut() {
                            stats.shed_no_capacity += 1;
                        }
                        frontend_tracer.emit(|| TraceEvent::Shed {
                            id: p.req.id,
                            model: p.req.model,
                            at: now,
                        });
                        let class = self
                            .config
                            .admission
                            .as_ref()
                            .map(|a| a.slo.class_of(p.req.model))
                            .unwrap_or(SloClass::Batch);
                        shed.push(ShedRecord {
                            id: p.req.id,
                            model: p.req.model,
                            arrival: p.req.arrival,
                            class,
                        });
                    }
                }
                continue;
            }

            let r = self.router.route(&p.req, &views);
            assert!(r < n, "router returned replica {r} of {n}");
            assert!(views[r].alive, "router selected dead replica {r}");
            let migrations_now = self.router.migrations();
            if migrations_now > migrations_seen {
                let count = migrations_now - migrations_seen;
                frontend_tracer.emit(|| TraceEvent::Migrate { count, at: now });
                migrations_seen = migrations_now;
            }
            let warm = views[r].warm;
            if warm {
                routing.warm_routed += 1;
                // A warm hit on a prewarmed entry rewards the hint that
                // placed it (counted once per prewarm).
                if states[r].prefetched.remove(&p.req.model) {
                    routing.prefetch_hits += 1;
                }
            } else {
                routing.cold_routed += 1;
                if views.iter().any(|v| v.warm) {
                    routing.placement_misses += 1;
                }
            }
            routing.per_replica_requests[r] += 1;
            // Apply the router's prefetch hints: prewarm the predicted
            // caches and, when store-bound, the real ones (budgeted).
            if let Some(pf) = self.config.prefetch {
                for hint in self
                    .router
                    .prefetch_hints(&p.req, &views, r)
                    .into_iter()
                    .take(pf.max_hints_per_decision)
                {
                    if hint.replica >= n {
                        continue;
                    }
                    // Hint budget is for GB-scale deltas only; adapters
                    // and base weights need no placement.
                    if !self.model_needs_delta(hint.model) {
                        continue;
                    }
                    // A hint aimed at a dead replica is dropped, not
                    // leaked into its predicted (or real) cache.
                    if !views[hint.replica].alive {
                        if let Some(stats) = chaos_stats.as_mut() {
                            stats.dropped_hints += 1;
                        }
                        continue;
                    }
                    routing.prefetch_hints += 1;
                    if states[hint.replica].prefetch_warm(hint.model) {
                        routing.prefetch_issued += 1;
                        if let Some(bindings) = self.bindings.as_mut() {
                            let binding = &mut bindings[hint.replica];
                            if let Some(id) = binding.artifact_of(hint.model).copied() {
                                let _ = binding.store_mut().prefetch(&[id], pf.budget_bytes);
                            }
                        }
                    }
                }
            }
            let state = &mut states[r];
            let est = self.costs[r].prefill_time(p.req.prompt_tokens)
                + p.req.output_tokens as f64 * state.per_token_s
                + if warm { 0.0 } else { views[r].cold_load_s };
            if self.model_needs_delta(p.req.model) {
                // Adapter/base models must not occupy predicted
                // delta-warm-set capacity.
                state.touch_used(p.req.model);
            }
            state.charge(now, est);
            let est_finish = state.busy_until;
            let mut admitted = p.req.clone();
            admitted.arrival = now;
            state
                .assigned
                .push((admitted, p.req.id, p.delay, est_finish));
        }

        self.replay_and_report(
            trace,
            states,
            routing,
            shed,
            chaos_stats,
            frontend_tracer,
            &replica_brownouts,
        )
    }

    /// Replays each replica's assignments on its own engine(s) and
    /// assembles the [`ClusterReport`] — the deterministic back half
    /// shared by [`run`](Self::run) and
    /// [`run_lockstep_reference`](Self::run_lockstep_reference).
    #[allow(clippy::too_many_arguments)]
    fn replay_and_report(
        &mut self,
        trace: &Trace,
        mut states: Vec<ReplicaFrontendState>,
        routing: RoutingStats,
        shed: Vec<ShedRecord>,
        chaos_stats: Option<ChaosStats>,
        mut frontend_tracer: Tracer,
        replica_brownouts: &[Vec<Brownout>],
    ) -> ClusterReport {
        let n = self.config.n_replicas;
        let mut trace_tracks: Vec<TraceTrack> = Vec::new();
        if let Some(log) = frontend_tracer.take_log() {
            trace_tracks.push(TraceTrack {
                name: "frontend".into(),
                log,
            });
        }
        let mut per_replica: Vec<Metrics> = Vec::with_capacity(n);
        let mut records: Vec<RequestRecord> = Vec::new();
        let mut makespan = 0.0f64;
        let mut store_stats: Option<Vec<dz_store::LoadStats>> =
            self.bindings.as_ref().map(|_| Vec::new());
        let mut bindings = self.bindings.take();
        for (r, state) in states.iter_mut().enumerate() {
            // Epochs sealed by crashes/scale cycles, then the live tail.
            // Each epoch replays on a *fresh* engine — a restarted
            // replica's GPU and host caches start empty — and, when
            // store-bound, the real store's warm set is invalidated
            // between epochs too.
            let mut epochs: Vec<Vec<(Request, usize, f64, f64)>> =
                std::mem::take(&mut state.sealed);
            epochs.push(std::mem::take(&mut state.assigned));
            epochs.retain(|e| !e.is_empty());
            if epochs.is_empty() {
                epochs.push(Vec::new());
            }
            let mut binding = bindings
                .as_mut()
                .and_then(|b| (!b.is_empty()).then(|| b.remove(0)));
            // Snapshot the store's cumulative counters so the report
            // carries this run's loads only (bindings persist across
            // runs to keep the caches warm).
            let stats_before = binding.as_ref().map(|b| b.store().total_stats());
            let mut replica_metrics: Option<Metrics> = None;
            let mut replica_log: Option<dz_trace::TraceLog> = None;
            for (e_idx, epoch) in epochs.into_iter().enumerate() {
                let mut ids = Vec::with_capacity(epoch.len());
                let mut delays = Vec::with_capacity(epoch.len());
                let mut requests = Vec::with_capacity(epoch.len());
                for (dense, (req, global_id, delay, _est)) in epoch.into_iter().enumerate() {
                    ids.push(global_id);
                    delays.push(delay);
                    requests.push(Request { id: dense, ..req });
                }
                let sub = Trace {
                    spec: TraceSpec {
                        n_models: trace.spec.n_models.max(1),
                        ..trace.spec
                    },
                    requests,
                };
                let mut builder =
                    crate::builder::EngineBuilder::new(self.costs[r]).scheduler(self.config.engine);
                if let Some(cat) = &self.config.catalog {
                    builder = builder.catalog(cat.clone());
                }
                if let Some(cfg) = self.trace_config {
                    builder = builder.tracing(cfg);
                }
                if let Some(adm) = &self.config.admission {
                    builder = builder.slo(adm.slo.clone());
                }
                if let Some(policy) = self.config.prefetch_policy {
                    builder = builder
                        .prefetcher(policy.build(trace.spec.popularity, trace.spec.n_models));
                }
                if !replica_brownouts[r].is_empty() {
                    builder = builder.brownouts(replica_brownouts[r].clone());
                }
                if let Some(mut b) = binding.take() {
                    if e_idx > 0 {
                        // The crash that sealed the previous epoch wiped
                        // the real host cache as well.
                        b.store_mut().invalidate_resident();
                    }
                    builder = builder.store(b);
                }
                let mut engine = builder.build();
                let mut m = engine.run(&sub);
                makespan = makespan.max(m.makespan_s);
                for rec in &m.records {
                    let global = ids[rec.id];
                    let delay = delays[rec.id];
                    // The deferral wait is queue time from the request's
                    // point of view: fold it into the attributed queue
                    // cause too, so the ledger still telescopes to the
                    // cluster-level e2e.
                    let mut causes = rec.causes;
                    causes.queue_s += delay;
                    records.push(RequestRecord {
                        id: global,
                        arrival: rec.arrival - delay,
                        e2e_s: rec.e2e_s + delay,
                        ttft_s: rec.ttft_s + delay,
                        queue_s: rec.queue_s + delay,
                        causes,
                        ..rec.clone()
                    });
                }
                if let Some(mut log) = engine.tracer.take_log() {
                    log.remap_request_ids(&ids);
                    match replica_log.as_mut() {
                        Some(dst) => dst.absorb(log),
                        None => replica_log = Some(log),
                    }
                }
                // Per-replica metrics keep the replica-local view but use
                // global record ids so epochs can't collide.
                for rec in &mut m.records {
                    rec.id = ids[rec.id];
                }
                match replica_metrics.as_mut() {
                    Some(dst) => {
                        dst.makespan_s = dst.makespan_s.max(m.makespan_s);
                        dst.swap.merge(&m.swap);
                        dst.records.extend(m.records);
                    }
                    None => replica_metrics = Some(m),
                }
                binding = engine.delta_store.take();
            }
            if let Some(log) = replica_log {
                trace_tracks.push(TraceTrack {
                    name: format!("replica{r}"),
                    log,
                });
            }
            let mut rm = replica_metrics.expect("at least one epoch per replica");
            rm.records.sort_by_key(|rec| rec.id);
            per_replica.push(rm);
            if let Some(b) = binding {
                if let Some(stats) = store_stats.as_mut() {
                    let before = stats_before.unwrap_or_default();
                    stats.push(b.store().total_stats().since(&before));
                }
                self.bindings.get_or_insert_with(Vec::new).push(b);
            }
        }
        records.sort_by_key(|r| r.id);
        let mut cluster_swap = SwapStats::default();
        for m in &per_replica {
            cluster_swap.merge(&m.swap);
        }
        self.trace_tracks = trace_tracks;
        let mut cluster_toppings = crate::metrics::ToppingsStats::default();
        for m in &per_replica {
            cluster_toppings.merge(&m.toppings);
        }
        let merged = Metrics {
            engine: format!("Cluster[{}x {}]", n, self.router.name()),
            records,
            makespan_s: makespan,
            swap: cluster_swap,
            toppings: cluster_toppings,
        };
        ClusterReport {
            merged,
            per_replica,
            shed,
            routing,
            store_stats,
            chaos: chaos_stats,
        }
    }
}

/// Internal chaos action queued on the front end's absolute-time line.
#[derive(Debug, Clone, Copy)]
enum ChaosAction {
    /// Kill a replica; optionally schedule its cold restart.
    Crash {
        replica: usize,
        restart_after_s: Option<f64>,
    },
    /// Bring a crashed replica back up, cold.
    Restart { replica: usize },
    /// A brownout window starts (the window itself lives in the
    /// per-replica schedule handed to the replay engines).
    Degrade { replica: usize },
    /// Autoscaler control-loop sample.
    Tick,
}

/// Effective (disk, PCIe) rate factors at `now` under a brownout
/// schedule; overlapping windows compound via `min`. Mirrors
/// [`TransferTimeline`](crate::swap::TransferTimeline)'s own clamping.
fn brownout_rates(schedule: &[Brownout], now: f64) -> (f64, f64) {
    let mut disk = 1.0f64;
    let mut pcie = 1.0f64;
    for b in schedule {
        if now >= b.start_s && now < b.end_s {
            disk = disk.min(b.disk_rate.clamp(1e-3, 1.0));
            pcie = pcie.min(b.pcie_rate.clamp(1e-3, 1.0));
        }
    }
    (disk, pcie)
}

// ---------------------------------------------------------------------------
// Multi-base partitioning (§5.1) — compatibility layer.
// ---------------------------------------------------------------------------

/// Assignment of variants to base models.
///
/// DeltaZip batches across variants *of one base*. With `M` distinct base
/// models, the paper dedicates one GPU group per base (the same
/// assumption LoRA serving systems make). Variants are routed to their
/// base's group and each group runs independently over its sub-trace.
#[derive(Debug, Clone)]
pub struct BasePartition {
    /// `base_of[variant] = base index` (bases are `0..n_bases`).
    pub base_of: Vec<usize>,
    /// Number of base models / GPU groups.
    pub n_bases: usize,
}

impl BasePartition {
    /// Round-robin assignment of `n_variants` across `n_bases` bases.
    ///
    /// # Panics
    ///
    /// Panics if `n_bases == 0`.
    pub fn round_robin(n_variants: usize, n_bases: usize) -> Self {
        assert!(n_bases > 0, "need at least one base");
        BasePartition {
            base_of: (0..n_variants).map(|v| v % n_bases).collect(),
            n_bases,
        }
    }

    /// Splits a trace into per-base sub-traces with remapped model ids.
    pub fn split(&self, trace: &Trace) -> Vec<Trace> {
        let mut groups: Vec<Vec<Request>> = vec![Vec::new(); self.n_bases];
        // Remap each variant to a dense id within its group.
        let mut local_id = vec![0usize; self.base_of.len()];
        let mut counts = vec![0usize; self.n_bases];
        for (v, &b) in self.base_of.iter().enumerate() {
            local_id[v] = counts[b];
            counts[b] += 1;
        }
        for r in &trace.requests {
            let b = self.base_of[r.model];
            let mut r2 = r.clone();
            r2.model = local_id[r.model];
            r2.id = r.id; // Keep the global id for merging.
            groups[b].push(r2);
        }
        groups
            .into_iter()
            .enumerate()
            .map(|(b, requests)| Trace {
                spec: TraceSpec {
                    n_models: counts[b].max(1),
                    ..trace.spec
                },
                requests,
            })
            .collect()
    }
}

/// Runs one single-replica [`ClusterSim`] per base group and merges the
/// metrics — the §5.1 setup, kept as a thin shim over the cluster layer.
///
/// Each group gets its own `cost` (its own GPUs); groups run
/// independently, exactly like the paper's `M` disjoint GPU sets.
///
/// # Panics
///
/// Panics if the cost-model count differs from the partition's base
/// count.
pub fn run_partitioned(
    partition: &BasePartition,
    costs: &[CostModel],
    config: DeltaZipConfig,
    trace: &Trace,
) -> Metrics {
    assert_eq!(
        costs.len(),
        partition.n_bases,
        "one cost model per base group"
    );
    let subtraces = partition.split(trace);
    let mut records = Vec::with_capacity(trace.len());
    let mut makespan = 0.0f64;
    for (b, sub) in subtraces.into_iter().enumerate() {
        if sub.requests.is_empty() {
            continue;
        }
        let mut sim = ClusterSim::new(
            vec![costs[b]],
            ClusterConfig {
                n_replicas: 1,
                engine: config,
                ..ClusterConfig::default()
            },
            Box::new(RoundRobinRouter::new()),
        );
        let report = sim.run(&sub);
        makespan = makespan.max(report.merged.makespan_s);
        records.extend(report.merged.records);
    }
    records.sort_by_key(|r| r.id);
    Metrics {
        engine: format!("DeltaZip[{} bases]", partition.n_bases),
        records,
        makespan_s: makespan,
        swap: SwapStats::default(),
        toppings: crate::metrics::ToppingsStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_gpusim::shapes::ModelShape;
    use dz_gpusim::spec::NodeSpec;
    use dz_workload::PopularityDist;

    fn trace() -> Trace {
        Trace::generate(TraceSpec {
            n_models: 12,
            arrival_rate: 1.0,
            duration_s: 40.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed: 3,
        })
    }

    fn cost() -> CostModel {
        CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b())
    }

    fn view(id: usize, depth: usize, backlog: f64, warm: bool) -> ReplicaView {
        ReplicaView {
            id,
            queue_depth: depth,
            backlog_s: backlog,
            warm,
            decoded: warm,
            cold_load_s: 2.0,
            warm_load_s: 0.5,
            alive: true,
        }
    }

    fn req(model: usize) -> Request {
        Request {
            id: 0,
            model,
            arrival: 0.0,
            prompt_tokens: 16,
            output_tokens: 16,
        }
    }

    // -- base-partition compatibility ------------------------------------

    #[test]
    fn split_conserves_requests_and_remaps_ids() {
        let tr = trace();
        let part = BasePartition::round_robin(12, 3);
        let subs = part.split(&tr);
        assert_eq!(subs.len(), 3);
        let total: usize = subs.iter().map(|s| s.len()).sum();
        assert_eq!(total, tr.len());
        for sub in &subs {
            for r in &sub.requests {
                assert!(r.model < sub.spec.n_models);
            }
        }
    }

    #[test]
    fn partitioned_run_serves_everything() {
        let tr = trace();
        let part = BasePartition::round_robin(12, 2);
        let costs = vec![CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b()); 2];
        let m = run_partitioned(&part, &costs, DeltaZipConfig::default(), &tr);
        assert_eq!(m.len(), tr.len());
        let mut ids: Vec<usize> = m.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tr.len());
    }

    #[test]
    fn more_groups_with_same_total_gpus_trade_batching_for_isolation() {
        // 4 GPUs as one TP-4 group vs two TP-2 groups: both must serve the
        // trace; the comparison itself is workload dependent.
        let tr = trace();
        let one = run_partitioned(
            &BasePartition::round_robin(12, 1),
            &[CostModel::new(
                NodeSpec::a800_node(4),
                ModelShape::llama13b(),
            )],
            DeltaZipConfig::default(),
            &tr,
        );
        let two = run_partitioned(
            &BasePartition::round_robin(12, 2),
            &vec![CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b()); 2],
            DeltaZipConfig::default(),
            &tr,
        );
        assert_eq!(one.len(), two.len());
        assert!(one.mean_e2e() > 0.0 && two.mean_e2e() > 0.0);
    }

    #[test]
    #[should_panic(expected = "one cost model per base group")]
    fn cost_count_must_match() {
        let tr = trace();
        let part = BasePartition::round_robin(12, 2);
        let _ = run_partitioned(
            &part,
            &[CostModel::new(
                NodeSpec::a800_node(4),
                ModelShape::llama13b(),
            )],
            DeltaZipConfig::default(),
            &tr,
        );
    }

    // -- routers ----------------------------------------------------------

    #[test]
    fn round_robin_cycles() {
        let mut r = RoundRobinRouter::new();
        let views = vec![view(0, 0, 0.0, false), view(1, 0, 0.0, false)];
        let picks: Vec<usize> = (0..4).map(|_| r.route(&req(0), &views)).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn least_loaded_prefers_shallow_queue() {
        let mut r = LeastLoadedRouter::new();
        let views = vec![view(0, 5, 10.0, true), view(1, 2, 4.0, false)];
        assert_eq!(r.route(&req(0), &views), 1);
    }

    #[test]
    fn warm_placement_routes_to_the_caching_replica() {
        // Replica 1 holds the delta warm; replica 0 is slightly less
        // loaded but cold. The cold-load penalty must dominate a small
        // backlog difference.
        let plan = PlacementPlan::from_weights(&[1.0; 4], 2);
        let mut r = PlacementAwareRouter::new(plan).pinned();
        let views = vec![view(0, 1, 0.5, false), view(1, 2, 1.0, true)];
        assert_eq!(r.route(&req(2), &views), 1);
        // With no warm copy anywhere, lower backlog wins.
        let views = vec![view(0, 1, 0.5, false), view(1, 2, 1.0, false)];
        assert_eq!(r.route(&req(2), &views), 0);
    }

    #[test]
    fn placement_router_prefers_decode_free_replicas() {
        // Both replicas hold the delta warm, but only replica 1 holds the
        // decoded copy: at equal backlog the decode-free hit must win.
        // Model 2 is beyond the plan (place-anywhere), so the pure score
        // decides: decode-free beats warm-but-undecoded.
        let plan = PlacementPlan::from_weights(&[1.0; 2], 2);
        let mut r = PlacementAwareRouter::new(plan).pinned();
        let mut views = vec![view(0, 1, 1.0, true), view(1, 1, 1.0, true)];
        views[0].decoded = false;
        views[1].decoded = true;
        assert_eq!(r.route(&req(2), &views), 1);
        // ...and a large-enough backlog gap still outweighs the decode.
        views[1].backlog_s = views[0].backlog_s + views[0].warm_load_s + 1.0;
        assert_eq!(r.route(&req(2), &views), 0);
    }

    #[test]
    fn prefetch_hints_prewarm_home_replicas_and_score_hits() {
        // Skewed traffic through the placement-aware router with
        // routing-time prefetch: hints must prewarm cold home replicas
        // and later warm-routed requests must reward them.
        let tr = Trace::generate(TraceSpec {
            n_models: 24,
            arrival_rate: 4.0,
            duration_s: 60.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed: 19,
        });
        let config = ClusterConfig {
            n_replicas: 4,
            engine: DeltaZipConfig {
                host_capacity_deltas: Some(6),
                ..DeltaZipConfig::default()
            },
            prefetch: Some(ClusterPrefetch::default()),
            ..ClusterConfig::default()
        };
        let plan = PlacementPlan::from_popularity(tr.spec.popularity, 24, 4);
        let mut sim = ClusterSim::new(
            vec![cost(); 4],
            config.clone(),
            Box::new(PlacementAwareRouter::new(plan.clone())),
        );
        let report = sim.run(&tr);
        assert_eq!(report.merged.len(), tr.len());
        assert!(report.routing.prefetch_hints > 0, "hints must be emitted");
        assert!(report.routing.prefetch_issued > 0, "hints must prewarm");
        assert!(report.routing.prefetch_hits > 0, "prewarms must pay off");
        let rate = report.routing.prefetch_hit_rate();
        assert!((0.0..=1.0).contains(&rate) && rate > 0.0, "rate {rate}");
        // Hints must not make warm routing worse than no-prefetch.
        let mut plain = ClusterSim::new(
            vec![cost(); 4],
            ClusterConfig {
                prefetch: None,
                ..config
            },
            Box::new(PlacementAwareRouter::new(plan)),
        );
        let base = plain.run(&tr);
        assert!(
            report.routing.warm_fraction() >= base.routing.warm_fraction(),
            "prefetch hints must not lower warm routing: {} vs {}",
            report.routing.warm_fraction(),
            base.routing.warm_fraction()
        );
    }

    #[test]
    fn engine_prefetch_policy_reaches_replicas() {
        // A cluster-configured engine-level prefetch policy must show up
        // in the merged swap stats.
        let tr = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: 2.0,
            duration_s: 40.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed: 37,
        });
        let config = ClusterConfig {
            n_replicas: 2,
            engine: DeltaZipConfig {
                max_concurrent_deltas: 2,
                host_capacity_deltas: Some(4),
                ..DeltaZipConfig::default()
            },
            prefetch_policy: Some(crate::swap::PrefetchPolicy::QueueLookahead { depth: 4 }),
            ..ClusterConfig::default()
        };
        let small = CostModel::new(
            dz_gpusim::spec::NodeSpec::rtx3090_node(1),
            ModelShape::llama7b(),
        );
        let mut sim = ClusterSim::new(vec![small; 2], config, Box::new(LeastLoadedRouter::new()));
        let report = sim.run(&tr);
        assert_eq!(report.merged.len(), tr.len());
        assert!(
            report.merged.swap.prefetch_issued > 0,
            "replica engines must prefetch"
        );
        assert!(report.merged.swap.demand_loads > 0);
    }

    #[test]
    fn placement_spills_when_homes_are_saturated() {
        // Two equal-share models get one home each. Model 0's only home
        // is hours behind while the other replica idles: the router must
        // spill off the home.
        let plan = PlacementPlan::from_weights(&[1.0, 1.0], 2);
        let homes = plan.homes(0).to_vec();
        assert_eq!(homes.len(), 1, "equal shares pin one copy each");
        let spare = (0..2).find(|r| !homes.contains(r)).expect("one non-home");
        let mut r = PlacementAwareRouter::new(plan).pinned();
        let mut views = vec![view(0, 64, 3600.0, false), view(1, 64, 3600.0, false)];
        views[homes[0]].warm = true;
        views[spare].backlog_s = 0.0;
        views[spare].queue_depth = 0;
        assert_eq!(r.route(&req(0), &views), spare);
    }

    /// Frozen copy of the pre-memoization routing decision: two
    /// `min_by` scans re-evaluating the score inside each comparator,
    /// plus an O(R·H) membership filter. The memoized hot path must
    /// reproduce its decision on every input, including score ties and
    /// dead replicas.
    fn reference_placement_route(
        plan: &PlacementPlan,
        spill_margin_s: f64,
        model: usize,
        views: &[ReplicaView],
    ) -> usize {
        let score = |v: &ReplicaView| {
            v.backlog_s
                + if !v.warm {
                    v.cold_load_s
                } else if !v.decoded {
                    v.warm_load_s
                } else {
                    0.0
                }
        };
        let best = |ids: &mut dyn Iterator<Item = &ReplicaView>| {
            ids.filter(|v| v.alive)
                .min_by(|a, b| score(a).total_cmp(&score(b)).then(a.id.cmp(&b.id)))
                .map(|v| (v.id, score(v)))
        };
        let overall = best(&mut views.iter()).expect("at least one live replica");
        let homes = plan.homes(model);
        let home = best(&mut views.iter().filter(|v| homes.contains(&v.id)));
        match home {
            Some((id, s)) if s <= overall.1 + spill_margin_s => id,
            _ => overall.0,
        }
    }

    #[test]
    fn memoized_placement_routing_matches_reference_decisions() {
        // Randomized fleets (xorshift, deterministic): backlogs with
        // deliberate exact ties, mixed warm/decoded states, dead
        // replicas, and models beyond the plan. The memoized router is
        // pinned so its plan stays equal to the reference's.
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let weights = PopularityDist::Zipf { alpha: 1.2 }.weights(16);
        for n in 2..=6usize {
            let plan = PlacementPlan::from_weights(&weights, n);
            let mut router = PlacementAwareRouter::new(plan.clone()).pinned();
            for trial in 0..400 {
                let mut views: Vec<ReplicaView> = (0..n)
                    .map(|id| {
                        // Quantized backlogs make exact score ties common.
                        let mut v = view(id, (rng() % 8) as usize, (rng() % 4) as f64, false);
                        v.warm = rng() % 2 == 0;
                        v.decoded = v.warm && rng() % 2 == 0;
                        v.cold_load_s = 2.0;
                        v.warm_load_s = 0.5;
                        v.alive = rng() % 5 != 0;
                        v
                    })
                    .collect();
                if !views.iter().any(|v| v.alive) {
                    views[0].alive = true;
                }
                let model = (rng() % 20) as usize; // sometimes beyond the plan
                let expect = reference_placement_route(&plan, router.spill_margin_s, model, &views);
                assert_eq!(
                    router.route(&req(model), &views),
                    expect,
                    "n={n} trial={trial} model={model} views={views:?}"
                );
            }
        }
    }

    // -- placement plan ---------------------------------------------------

    #[test]
    fn plan_replicates_hot_models_and_pins_cold_ones() {
        let weights = PopularityDist::Zipf { alpha: 1.5 }.weights(12);
        let plan = PlacementPlan::from_weights(&weights, 4);
        // The Zipf-1.5 head holds >60% of traffic: it must be replicated.
        assert!(plan.replication_factor(0) >= 2, "{:?}", plan.homes(0));
        // Everyone has at least one home, tail models exactly one.
        for m in 0..12 {
            assert!(plan.replication_factor(m) >= 1);
            assert!(plan.homes(m).iter().all(|&r| r < 4));
        }
        assert_eq!(plan.replication_factor(11), 1);
        // Uniform popularity spreads single copies evenly.
        let uniform = PlacementPlan::from_weights(&[1.0; 8], 4);
        let mut per_replica = vec![0usize; 4];
        for m in 0..8 {
            assert_eq!(uniform.replication_factor(m), 1);
            per_replica[uniform.homes(m)[0]] += 1;
        }
        assert_eq!(per_replica, vec![2, 2, 2, 2]);
    }

    #[test]
    fn plan_handles_degenerate_weights() {
        let zeros = PlacementPlan::from_weights(&[0.0; 6], 3);
        for m in 0..6 {
            assert_eq!(zeros.replication_factor(m), 1);
        }
        let empty = PlacementPlan::from_weights(&[], 2);
        assert_eq!(empty.homes(5), &[] as &[usize]);
        assert_eq!(empty.migrations_from(&zeros), 6);
    }

    #[test]
    fn rebalancing_migrates_deltas_on_popularity_drift() {
        // Plan for a head-heavy skew, then route uniform traffic: after a
        // rebalance window the plan must change (migrations counted).
        let plan = PlacementPlan::from_popularity(PopularityDist::Zipf { alpha: 3.0 }, 8, 4);
        let mut r = PlacementAwareRouter::new(plan);
        r.rebalance_every = Some(64);
        let views: Vec<ReplicaView> = (0..4).map(|i| view(i, 0, 0.0, false)).collect();
        for i in 0..256 {
            let _ = r.route(&req(i % 8), &views);
        }
        assert!(r.migrations > 0, "uniform drift must migrate deltas");
    }

    // -- cluster sim ------------------------------------------------------

    #[test]
    fn cluster_serves_every_request_exactly_once() {
        let tr = trace();
        for router in [
            Box::new(RoundRobinRouter::new()) as Box<dyn Router>,
            Box::new(LeastLoadedRouter::new()),
            Box::new(PlacementAwareRouter::new(PlacementPlan::from_popularity(
                tr.spec.popularity,
                12,
                3,
            ))),
        ] {
            let mut sim = ClusterSim::new(vec![cost(); 3], ClusterConfig::replicas(3), router);
            let report = sim.run(&tr);
            let mut ids: Vec<usize> = report.merged.records.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..tr.len()).collect::<Vec<_>>());
            assert_eq!(report.shed.len(), 0);
            assert_eq!(report.goodput(), 1.0);
            assert_eq!(
                report.routing.per_replica_requests.iter().sum::<usize>(),
                tr.len()
            );
            assert_eq!(report.per_replica.len(), 3);
        }
    }

    #[test]
    fn placement_beats_round_robin_on_skewed_traces() {
        // The satellite acceptance test: under Zipf popularity with a
        // bounded per-replica host cache, keeping each delta's traffic on
        // its home replicas must not lose to spraying it everywhere.
        let tr = Trace::generate(TraceSpec {
            n_models: 24,
            arrival_rate: 4.0,
            duration_s: 60.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed: 17,
        });
        let engine = DeltaZipConfig {
            host_capacity_deltas: Some(6),
            ..DeltaZipConfig::default()
        };
        let config = ClusterConfig {
            n_replicas: 4,
            engine,
            ..ClusterConfig::default()
        };
        let run = |router: Box<dyn Router>| {
            ClusterSim::new(vec![cost(); 4], config.clone(), router).run(&tr)
        };
        let rr = run(Box::new(RoundRobinRouter::new()));
        let pa = run(Box::new(PlacementAwareRouter::new(
            PlacementPlan::from_popularity(tr.spec.popularity, 24, 4),
        )));
        assert_eq!(pa.merged.len(), tr.len());
        assert!(
            pa.merged.mean_e2e() <= rr.merged.mean_e2e(),
            "placement-aware {} must not lose to round-robin {}",
            pa.merged.mean_e2e(),
            rr.merged.mean_e2e()
        );
        assert!(
            pa.routing.warm_fraction() > rr.routing.warm_fraction(),
            "placement-aware must route more warm hits: {} vs {}",
            pa.routing.warm_fraction(),
            rr.routing.warm_fraction()
        );
    }

    #[test]
    fn admission_sheds_only_batch_class_under_overload() {
        // Overdrive a small cluster so depth explodes; Interactive
        // requests must all be served, Batch overflow shed or deferred.
        let tr = Trace::generate(TraceSpec {
            n_models: 8,
            arrival_rate: 12.0,
            duration_s: 40.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed: 23,
        });
        let slo = SloPolicy::tiered(8, 2);
        let admission = AdmissionConfig {
            defer_depth: 8,
            defer_s: 5.0,
            max_defers: 2,
            shed_depth: 12,
            slo: slo.clone(),
        };
        let config = ClusterConfig {
            n_replicas: 2,
            admission: Some(admission),
            ..ClusterConfig::replicas(2)
        };
        let mut sim = ClusterSim::new(vec![cost(); 2], config, Box::new(LeastLoadedRouter::new()));
        let report = sim.run(&tr);
        assert!(!report.shed.is_empty(), "overload must shed something");
        assert!(report.shed.iter().all(|s| s.class == SloClass::Batch));
        assert!(
            report
                .shed
                .iter()
                .all(|s| slo.class_of(s.model) == SloClass::Batch),
            "only Batch-class models may be shed"
        );
        assert_eq!(report.merged.len() + report.shed.len(), tr.len());
        assert!(report.goodput() < 1.0);
        // Every Interactive request was served.
        let interactive_offered = tr
            .requests
            .iter()
            .filter(|r| slo.class_of(r.model) == SloClass::Interactive)
            .count();
        let interactive_served = report
            .merged
            .records
            .iter()
            .filter(|r| slo.class_of(r.model) == SloClass::Interactive)
            .count();
        assert_eq!(interactive_served, interactive_offered);
    }

    #[test]
    fn deferral_waits_count_toward_merged_latency() {
        // A deferred-then-served request's e2e must include the deferral.
        let tr = Trace::generate(TraceSpec {
            n_models: 8,
            arrival_rate: 10.0,
            duration_s: 30.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed: 29,
        });
        let admission = AdmissionConfig {
            defer_depth: 4,
            defer_s: 7.0,
            max_defers: 4,
            shed_depth: usize::MAX, // defer but never shed
            slo: SloPolicy::tiered(8, 2),
        };
        let config = ClusterConfig {
            n_replicas: 2,
            admission: Some(admission),
            ..ClusterConfig::replicas(2)
        };
        let mut sim = ClusterSim::new(vec![cost(); 2], config, Box::new(LeastLoadedRouter::new()));
        let report = sim.run(&tr);
        assert_eq!(report.merged.len(), tr.len(), "nothing may be shed");
        assert!(report.routing.defer_events > 0, "overload must defer");
        // Deferred requests waited at least one defer_s in queue.
        let max_queue = report
            .merged
            .records
            .iter()
            .map(|r| r.queue_s)
            .fold(0.0f64, f64::max);
        assert!(max_queue >= 7.0, "deferral must show up in queue_s");
        for r in &report.merged.records {
            assert!(r.ttft_s <= r.e2e_s + 1e-9);
            assert!(r.queue_s <= r.e2e_s + 1e-9);
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let tr = Trace {
            spec: TraceSpec {
                n_models: 4,
                arrival_rate: 1.0,
                duration_s: 0.0,
                popularity: PopularityDist::Uniform,
                seed: 0,
            },
            requests: vec![],
        };
        let mut sim = ClusterSim::new(
            vec![cost(); 2],
            ClusterConfig::replicas(2),
            Box::new(RoundRobinRouter::new()),
        );
        let report = sim.run(&tr);
        assert!(report.merged.is_empty());
        assert_eq!(report.goodput(), 1.0);
        assert_eq!(report.cache_hit_rate(), None);
    }

    #[test]
    #[should_panic(expected = "one cost model per replica")]
    fn replica_count_must_match_costs() {
        let _ = ClusterSim::new(
            vec![cost(); 2],
            ClusterConfig::replicas(3),
            Box::new(RoundRobinRouter::new()),
        );
    }
}
