//! Multi-base-model cluster partitioning (§5.1).
//!
//! DeltaZip batches across variants *of one base*. With `M` distinct base
//! models, the paper dedicates one GPU group per base (the same assumption
//! LoRA serving systems make). This module implements that split: variants
//! are routed to their base's group, each group runs an independent engine
//! over its sub-trace, and the results merge back into one metrics object.

use crate::cost::CostModel;
use crate::deltazip::{DeltaZipConfig, DeltaZipEngine};
use crate::metrics::Metrics;
use crate::Engine;
use dz_workload::{Request, Trace, TraceSpec};

/// Assignment of variants to base models.
#[derive(Debug, Clone)]
pub struct BasePartition {
    /// `base_of[variant] = base index` (bases are `0..n_bases`).
    pub base_of: Vec<usize>,
    /// Number of base models / GPU groups.
    pub n_bases: usize,
}

impl BasePartition {
    /// Round-robin assignment of `n_variants` across `n_bases` bases.
    ///
    /// # Panics
    ///
    /// Panics if `n_bases == 0`.
    pub fn round_robin(n_variants: usize, n_bases: usize) -> Self {
        assert!(n_bases > 0, "need at least one base");
        BasePartition {
            base_of: (0..n_variants).map(|v| v % n_bases).collect(),
            n_bases,
        }
    }

    /// Splits a trace into per-base sub-traces with remapped model ids.
    pub fn split(&self, trace: &Trace) -> Vec<Trace> {
        let mut groups: Vec<Vec<Request>> = vec![Vec::new(); self.n_bases];
        // Remap each variant to a dense id within its group.
        let mut local_id = vec![0usize; self.base_of.len()];
        let mut counts = vec![0usize; self.n_bases];
        for (v, &b) in self.base_of.iter().enumerate() {
            local_id[v] = counts[b];
            counts[b] += 1;
        }
        for r in &trace.requests {
            let b = self.base_of[r.model];
            let mut r2 = r.clone();
            r2.model = local_id[r.model];
            r2.id = r.id; // Keep the global id for merging.
            groups[b].push(r2);
        }
        groups
            .into_iter()
            .enumerate()
            .map(|(b, requests)| Trace {
                spec: TraceSpec {
                    n_models: counts[b].max(1),
                    ..trace.spec
                },
                requests,
            })
            .collect()
    }
}

/// Runs one DeltaZip engine per base group and merges the metrics.
///
/// Each group gets its own `cost` (its own GPUs); groups run independently,
/// exactly like the paper's `M` disjoint GPU sets.
pub fn run_partitioned(
    partition: &BasePartition,
    costs: &[CostModel],
    config: DeltaZipConfig,
    trace: &Trace,
) -> Metrics {
    assert_eq!(
        costs.len(),
        partition.n_bases,
        "one cost model per base group"
    );
    let subtraces = partition.split(trace);
    let mut records = Vec::with_capacity(trace.len());
    let mut makespan = 0.0f64;
    for (b, sub) in subtraces.into_iter().enumerate() {
        if sub.requests.is_empty() {
            continue;
        }
        let m = DeltaZipEngine::new(costs[b], config).run(&sub);
        makespan = makespan.max(m.makespan_s);
        records.extend(m.records);
    }
    records.sort_by_key(|r| r.id);
    Metrics {
        engine: format!("DeltaZip[{} bases]", partition.n_bases),
        records,
        makespan_s: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_gpusim::shapes::ModelShape;
    use dz_gpusim::spec::NodeSpec;
    use dz_workload::PopularityDist;

    fn trace() -> Trace {
        Trace::generate(TraceSpec {
            n_models: 12,
            arrival_rate: 1.0,
            duration_s: 40.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed: 3,
        })
    }

    #[test]
    fn split_conserves_requests_and_remaps_ids() {
        let tr = trace();
        let part = BasePartition::round_robin(12, 3);
        let subs = part.split(&tr);
        assert_eq!(subs.len(), 3);
        let total: usize = subs.iter().map(|s| s.len()).sum();
        assert_eq!(total, tr.len());
        for sub in &subs {
            for r in &sub.requests {
                assert!(r.model < sub.spec.n_models);
            }
        }
    }

    #[test]
    fn partitioned_run_serves_everything() {
        let tr = trace();
        let part = BasePartition::round_robin(12, 2);
        let costs = vec![CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b()); 2];
        let m = run_partitioned(&part, &costs, DeltaZipConfig::default(), &tr);
        assert_eq!(m.len(), tr.len());
        let mut ids: Vec<usize> = m.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tr.len());
    }

    #[test]
    fn more_groups_with_same_total_gpus_trade_batching_for_isolation() {
        // 4 GPUs as one TP-4 group vs two TP-2 groups: both must serve the
        // trace; the comparison itself is workload dependent.
        let tr = trace();
        let one = run_partitioned(
            &BasePartition::round_robin(12, 1),
            &[CostModel::new(
                NodeSpec::a800_node(4),
                ModelShape::llama13b(),
            )],
            DeltaZipConfig::default(),
            &tr,
        );
        let two = run_partitioned(
            &BasePartition::round_robin(12, 2),
            &vec![CostModel::new(NodeSpec::a800_node(2), ModelShape::llama13b()); 2],
            DeltaZipConfig::default(),
            &tr,
        );
        assert_eq!(one.len(), two.len());
        assert!(one.mean_e2e() > 0.0 && two.mean_e2e() > 0.0);
    }

    #[test]
    #[should_panic(expected = "one cost model per base group")]
    fn cost_count_must_match() {
        let tr = trace();
        let part = BasePartition::round_robin(12, 2);
        let _ = run_partitioned(
            &part,
            &[CostModel::new(
                NodeSpec::a800_node(4),
                ModelShape::llama13b(),
            )],
            DeltaZipConfig::default(),
            &tr,
        );
    }
}
