//! The vLLM+SCB baseline (§6.1 of the paper).
//!
//! The paper's comparison system: vLLM extended with **S**wapping of whole
//! FP16 models, **C**ontinuous batching, and **B**atching of same-model
//! requests. Key differences from DeltaZip, all of which this model
//! captures:
//!
//! * swaps move the *full* FP16 model (tens of GB), on the critical path,
//! * only a handful of models fit residently (`vllm_resident_capacity`),
//! * requests batch only with requests for the *same* model; each resident
//!   model with work pays its own weight traffic every iteration.

use crate::cost::CostModel;
use crate::metrics::Metrics;
use crate::request::{Phase, ReqState};
use crate::Engine;
use dz_workload::Trace;
use std::collections::{BTreeSet, HashSet};

/// Tunables of the baseline.
#[derive(Debug, Clone, Copy)]
pub struct VllmScbConfig {
    /// Maximum requests in one batch (across models).
    pub max_batch: usize,
}

impl Default for VllmScbConfig {
    fn default() -> Self {
        VllmScbConfig { max_batch: 48 }
    }
}

/// The baseline engine.
pub struct VllmScbEngine {
    /// Cost model.
    pub cost: CostModel,
    /// Configuration.
    pub config: VllmScbConfig,
}

impl VllmScbEngine {
    /// Creates the baseline engine.
    pub fn new(cost: CostModel, config: VllmScbConfig) -> Self {
        VllmScbEngine { cost, config }
    }
}

impl Engine for VllmScbEngine {
    fn label(&self) -> String {
        "vLLM+SCB".to_string()
    }

    fn run(&mut self, trace: &Trace) -> Metrics {
        let cost = self.cost;
        let capacity = cost.vllm_resident_capacity().max(1);
        let mut states: Vec<ReqState> = trace.requests.iter().cloned().map(ReqState::new).collect();
        let mut queue: BTreeSet<usize> = BTreeSet::new();
        let mut running: Vec<usize> = Vec::new();
        let mut next_arrival = 0usize;
        let mut t = 0.0f64;
        // Resident models with an LRU timestamp; warm = cached in host DRAM.
        let mut resident: Vec<(usize, f64)> = Vec::new();
        let mut warm: HashSet<usize> = HashSet::new();

        loop {
            while next_arrival < states.len() && states[next_arrival].req.arrival <= t {
                queue.insert(next_arrival);
                next_arrival += 1;
            }
            if running.is_empty() && queue.is_empty() {
                if next_arrival >= states.len() {
                    break;
                }
                t = states[next_arrival].req.arrival;
                continue;
            }

            // Schedule FCFS; same-model requests batch with resident models;
            // the head may trigger a swap if an idle slot (or free space)
            // exists.
            let mut batch_size = running.len();
            let mut admitted = Vec::new();
            let busy: HashSet<usize> = running.iter().map(|&r| states[r].req.model).collect();
            let mut load_s = 0.0;
            let mut swap_scheduled = false;
            for &qid in queue.iter() {
                if batch_size >= self.config.max_batch {
                    break;
                }
                let model = states[qid].req.model;
                let is_resident = resident.iter().any(|&(m, _)| m == model);
                if is_resident {
                    admitted.push(qid);
                    batch_size += 1;
                } else if !swap_scheduled {
                    // At most one swap per scheduling round, and only by
                    // evicting an idle model (or using free capacity).
                    if resident.len() >= capacity {
                        // Find the least-recently-used idle model.
                        let victim = resident
                            .iter()
                            .filter(|(m, _)| !busy.contains(m))
                            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite time"))
                            .map(|&(m, _)| m);
                        match victim {
                            Some(v) => resident.retain(|&(m, _)| m != v),
                            None => continue, // Everyone busy; wait for drain.
                        }
                    }
                    swap_scheduled = true;
                    load_s = if warm.contains(&model) {
                        cost.model_load_time()
                    } else {
                        // First touch streams from disk.
                        cost.model_load_time() * 2.0
                    };
                    warm.insert(model);
                    resident.push((model, t));
                    admitted.push(qid);
                    batch_size += 1;
                }
            }
            for &qid in &admitted {
                queue.remove(&qid);
                states[qid].admit(t);
                running.push(qid);
            }
            if load_s > 0.0 {
                t += load_s;
                for &rid in &running {
                    states[rid].load_wait_s += load_s;
                }
            }
            if running.is_empty() {
                // Nothing schedulable right now (e.g. all resident models
                // busy is impossible without running, so this means the swap
                // path stalled); advance to the next arrival.
                if next_arrival < states.len() {
                    t = t.max(states[next_arrival].req.arrival);
                    continue;
                }
                break;
            }
            // Touch LRU stamps for used models.
            for r in resident.iter_mut() {
                if running.iter().any(|&rid| states[rid].req.model == r.0) {
                    r.1 = t;
                }
            }

            // Batched prefill.
            let prompt_tokens: usize = running
                .iter()
                .filter(|&&rid| states[rid].phase == Phase::Admitted)
                .map(|&rid| states[rid].req.prompt_tokens)
                .sum();
            if prompt_tokens > 0 {
                t += cost.prefill_time(prompt_tokens);
            }
            for &rid in &running {
                if states[rid].phase == Phase::Admitted {
                    states[rid].phase = Phase::Running;
                }
            }

            // One decode iteration: each model pays its own weight pass.
            let models: Vec<usize> = resident.iter().map(|&(m, _)| m).collect();
            let mut reqs_per_model = vec![0usize; models.len()];
            for &rid in &running {
                let mi = models
                    .iter()
                    .position(|&m| m == states[rid].req.model)
                    .expect("running request's model resident");
                reqs_per_model[mi] += 1;
            }
            t += cost.vllm_decode_iter(&reqs_per_model);
            for &rid in &running {
                states[rid].tokens_done += 1;
                states[rid].record_first_token(t);
            }
            running.retain(|&rid| {
                if states[rid].done() {
                    states[rid].finish(t);
                    false
                } else {
                    true
                }
            });
        }

        Metrics::from_states(self.label(), &states, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deltazip::{DeltaZipConfig, DeltaZipEngine};
    use dz_gpusim::shapes::ModelShape;
    use dz_gpusim::spec::NodeSpec;
    use dz_workload::{PopularityDist, Trace, TraceSpec};

    fn trace(rate: f64, n_models: usize, seed: u64) -> Trace {
        Trace::generate(TraceSpec {
            n_models,
            arrival_rate: rate,
            duration_s: 60.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed,
        })
    }

    fn cost() -> CostModel {
        CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
    }

    #[test]
    fn serves_every_request() {
        let tr = trace(0.5, 16, 1);
        let m = VllmScbEngine::new(cost(), VllmScbConfig::default()).run(&tr);
        assert_eq!(m.len(), tr.len());
        for r in &m.records {
            assert!(r.e2e_s > 0.0 && r.ttft_s > 0.0);
        }
    }

    #[test]
    fn deltazip_outperforms_baseline_on_many_variants() {
        // The paper's headline: 2x-12x throughput, large E2E/TTFT wins when
        // many variants contend.
        let tr = trace(1.0, 32, 2);
        let baseline = VllmScbEngine::new(cost(), VllmScbConfig::default()).run(&tr);
        let dz = DeltaZipEngine::new(
            cost(),
            DeltaZipConfig {
                max_concurrent_deltas: 8,
                ..DeltaZipConfig::default()
            },
        )
        .run(&tr);
        assert!(
            dz.mean_e2e() < baseline.mean_e2e() / 1.5,
            "dz {} vs vllm {}",
            dz.mean_e2e(),
            baseline.mean_e2e()
        );
        assert!(
            dz.mean_ttft() < baseline.mean_ttft(),
            "dz ttft {} vs vllm ttft {}",
            dz.mean_ttft(),
            baseline.mean_ttft()
        );
    }

    #[test]
    fn few_models_fit_resident_and_swaps_are_rare() {
        // With fewer variants than resident capacity each model loads once
        // (expensive, deserialization bound) and never again; late requests
        // therefore wait far less than early ones.
        let tr = trace(0.3, 4, 3);
        let m = VllmScbEngine::new(cost(), VllmScbConfig::default()).run(&tr);
        let half = m.records.len() / 2;
        let early: f64 = m.records[..half].iter().map(|r| r.load_s).sum::<f64>() / half as f64;
        let late: f64 = m.records[half..].iter().map(|r| r.load_s).sum::<f64>()
            / (m.records.len() - half) as f64;
        assert!(
            late < early,
            "loads should amortize: early {early} late {late}"
        );
        // And in total, loading stays bounded by one first-touch load per
        // model (4 models).
        let max_load = m.records.iter().map(|r| r.load_s).fold(0.0f64, f64::max);
        let one_cold = cost().model_load_time() * 2.5;
        assert!(max_load < 4.0 * one_cold, "max load wait {max_load}");
    }
}
