//! SLO classes and priority scheduling (§8 of the paper, future work).
//!
//! DeltaZip's reordering (skip-the-line) means it "cannot guarantee the SLO
//! constraints of individual models"; §8 proposes "adding mechanisms to
//! prioritize models based on their constraints". This module attaches an
//! [`SloClass`] to each model variant and turns the engine's FCFS queue
//! scan into a priority scan with aging, so latency-sensitive variants are
//! selected first without permanently starving the batch tier.

use crate::metrics::Metrics;

/// Latency expectation tier of a model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SloClass {
    /// Chat-style variants: tight TTFT target.
    Interactive,
    /// Default tier.
    Standard,
    /// Offline/bulk variants: throughput matters, latency does not.
    Batch,
}

impl SloClass {
    /// Scheduling rank; lower is scheduled sooner.
    pub fn rank(&self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// A representative TTFT target (s) used by the experiments' attainment
    /// reports — Interactive expects a snappy first token, Batch tolerates
    /// a long queue.
    pub fn ttft_target_s(&self) -> f64 {
        match self {
            SloClass::Interactive => 5.0,
            SloClass::Standard => 30.0,
            SloClass::Batch => 120.0,
        }
    }
}

/// Per-model SLO assignment plus the aging rule.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    class_of_model: Vec<SloClass>,
    /// Seconds of queue wait that promote a request by one class rank.
    /// Aging bounds starvation: any Batch request eventually outranks
    /// fresh Interactive arrivals. `f64::INFINITY` disables aging.
    pub aging_s: f64,
}

impl SloPolicy {
    /// Default aging horizon (s).
    pub const DEFAULT_AGING_S: f64 = 60.0;

    /// Creates a policy with an explicit class per model.
    pub fn new(class_of_model: Vec<SloClass>) -> Self {
        SloPolicy {
            class_of_model,
            aging_s: Self::DEFAULT_AGING_S,
        }
    }

    /// Every model in the same class (degenerates to FCFS).
    pub fn uniform(n_models: usize, class: SloClass) -> Self {
        Self::new(vec![class; n_models])
    }

    /// The first `n_interactive` (most popular under Zipf) models are
    /// Interactive, the rest Batch — the tiering a provider would sell.
    pub fn tiered(n_models: usize, n_interactive: usize) -> Self {
        let classes = (0..n_models)
            .map(|m| {
                if m < n_interactive {
                    SloClass::Interactive
                } else {
                    SloClass::Batch
                }
            })
            .collect();
        Self::new(classes)
    }

    /// Class of a model (out-of-range models are Standard).
    pub fn class_of(&self, model: usize) -> SloClass {
        self.class_of_model
            .get(model)
            .copied()
            .unwrap_or(SloClass::Standard)
    }

    /// Scheduling score of a queued request; lower scans first. Ties are
    /// broken by arrival order in the engine.
    pub fn score(&self, model: usize, wait_s: f64) -> f64 {
        let aged = if self.aging_s.is_finite() && self.aging_s > 0.0 {
            wait_s / self.aging_s
        } else {
            0.0
        };
        self.class_of(model).rank() as f64 - aged
    }

    /// Splits metrics into per-class views (for attainment reports).
    pub fn split_metrics(&self, m: &Metrics) -> Vec<(SloClass, Metrics)> {
        [SloClass::Interactive, SloClass::Standard, SloClass::Batch]
            .into_iter()
            .filter_map(|class| {
                let subset = m.subset(format!("{}/{class:?}", m.engine), |r| {
                    self.class_of(r.model) == class
                });
                (!subset.is_empty()).then_some((class, subset))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RequestRecord;

    #[test]
    fn ranks_are_ordered() {
        assert!(SloClass::Interactive.rank() < SloClass::Standard.rank());
        assert!(SloClass::Standard.rank() < SloClass::Batch.rank());
        assert!(SloClass::Interactive.ttft_target_s() < SloClass::Batch.ttft_target_s());
    }

    #[test]
    fn tiered_assignment() {
        let p = SloPolicy::tiered(5, 2);
        assert_eq!(p.class_of(0), SloClass::Interactive);
        assert_eq!(p.class_of(1), SloClass::Interactive);
        assert_eq!(p.class_of(2), SloClass::Batch);
        // Out of range defaults to Standard.
        assert_eq!(p.class_of(99), SloClass::Standard);
    }

    #[test]
    fn fresh_interactive_beats_fresh_batch() {
        let p = SloPolicy::tiered(4, 1);
        assert!(p.score(0, 0.0) < p.score(3, 0.0));
    }

    #[test]
    fn aging_promotes_waiting_batch_requests() {
        let p = SloPolicy::tiered(4, 1);
        // After 2*aging_s + epsilon of waiting, a Batch request outranks a
        // fresh Interactive one.
        let waited = 2.0 * p.aging_s + 1.0;
        assert!(p.score(3, waited) < p.score(0, 0.0));
    }

    #[test]
    fn infinite_aging_disables_promotion() {
        let mut p = SloPolicy::tiered(4, 1);
        p.aging_s = f64::INFINITY;
        assert!(p.score(3, 1e9) > p.score(0, 0.0));
    }

    #[test]
    fn split_metrics_partitions_records() {
        let p = SloPolicy::tiered(4, 2);
        let rec = |model: usize| RequestRecord {
            id: model,
            model,
            kind: crate::variant::VariantKind::Delta,
            arrival: 0.0,
            e2e_s: 1.0,
            ttft_s: 0.5,
            queue_s: 0.1,
            load_s: 0.0,
            output_tokens: 4,
            preemptions: 0,
            causes: Default::default(),
        };
        let m = Metrics {
            engine: "test".into(),
            records: vec![rec(0), rec(1), rec(2), rec(3)],
            makespan_s: 10.0,
            swap: crate::metrics::SwapStats::default(),
            toppings: crate::metrics::ToppingsStats::default(),
        };
        let parts = p.split_metrics(&m);
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 4);
    }
}
