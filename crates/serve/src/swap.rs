//! Asynchronous delta swapping: in-flight loads progress on a
//! bandwidth-shared transfer timeline while decode continues, and
//! predictive prefetchers prewarm the host cache (§5 / §5.4's "overlap
//! swap-in with ongoing computation").
//!
//! The pieces:
//!
//! * [`LoadProfile`] — one load decomposed into the stages the cost model
//!   already prices (latency head, disk-channel work, PCIe-channel work,
//!   a serial tail, and a pipelined decode floor). An uncontended load
//!   completes in exactly [`LoadProfile::solo_s`], which the
//!   [`CostModel`](crate::cost::CostModel) profile constructors calibrate
//!   to equal the legacy scalar charges.
//! * [`TransferTimeline`] — the shared-channel simulator: concurrent
//!   loads split each channel's bandwidth evenly (processor sharing), so
//!   `k` cold loads share the disk link instead of being summed serially.
//!   Rates come from the same `dz_gpusim::xfer` bandwidth model the
//!   scalar charges use.
//! * [`Prefetcher`] — predictive disk→host prewarming policies:
//!   [`QueueLookahead`] scans the FCFS queue beyond the selected `N`,
//!   [`PopularityPrefetch`] prewarms the head of a [`PopularityDist`].
//!
//! [`DeltaZipEngine`](crate::deltazip::DeltaZipEngine) drives all three:
//! step 3 starts loads here instead of blocking, decode iterations call
//! [`TransferTimeline::advance_to`], and each queued request stalls only
//! until *its own* delta lands.

use dz_workload::PopularityDist;
use std::collections::BTreeSet;

/// Absolute-time comparison slack for the timeline's event stepping.
const EPS: f64 = 1e-12;

/// Floor on a browned-out channel's rate: a brownout slows a channel, it
/// never parks it forever (a zero rate would wedge `advance_to(INF)`).
const MIN_CHANNEL_RATE: f64 = 1e-3;

/// A degraded-channel fault: while `[start_s, end_s)` is active, the
/// disk and/or PCIe channels run at a fraction of their healthy
/// bandwidth. Injected by the chaos layer
/// ([`FaultKind::Brownout`](crate::chaos::FaultKind)) and honored by
/// [`TransferTimeline::advance_to`]; overlapping intervals compound by
/// taking the slowest rate per channel.
///
/// Serial latency stages (`head_s`, `tail_s`) and the pipelined floor
/// are unaffected — a brownout is a bandwidth fault, not a latency one.
/// The extra wall time a load spends under a brownout lands in the
/// contention side of the stall attribution (the load took longer than
/// its healthy-channel `solo_s`), so "where did the p99 go" answers
/// "the disk browned out" as channel contention, which is what it is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brownout {
    /// Fault start (absolute simulation seconds, inclusive).
    pub start_s: f64,
    /// Fault end (absolute simulation seconds, exclusive).
    pub end_s: f64,
    /// Disk channel rate while active (fraction of healthy bandwidth,
    /// clamped to `[1e-3, 1.0]`).
    pub disk_rate: f64,
    /// PCIe channel rate while active (same clamping).
    pub pcie_rate: f64,
}

/// One load decomposed into stages. All stage fields are *solo seconds*:
/// the time the stage takes when the load has a channel to itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadProfile {
    /// Serial latency head (storage first-byte + PCIe setup): progresses
    /// unconditionally, before any channel work.
    pub head_s: f64,
    /// Work on the shared disk channel (zero for host hits).
    pub disk_s: f64,
    /// Work on the shared PCIe channel.
    pub pcie_s: f64,
    /// Serial tail after the channel work (the synthetic model's
    /// deserialization stage, which does **not** pipeline with the read).
    pub tail_s: f64,
    /// Pipelined floor: the load cannot finish earlier than this many
    /// seconds after it started, however fast the channels drain (the
    /// measured decode stage, which overlaps the transfer).
    pub floor_s: f64,
}

impl LoadProfile {
    /// Completion time of this load on an otherwise idle timeline — by
    /// construction equal to the legacy serialized scalar charge.
    pub fn solo_s(&self) -> f64 {
        (self.head_s + self.disk_s.max(self.pcie_s) + self.tail_s).max(self.floor_s)
    }
}

/// Opaque handle to an in-flight load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoadToken(u64);

/// What an in-flight load is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// A demand swap-in: some request is (or will be) stalled on it.
    Demand {
        /// Delta (trace model id) being loaded.
        delta: usize,
    },
    /// A predictive disk→host prewarm: nobody stalls on it.
    Prefetch {
        /// Delta (trace model id) being prewarmed.
        delta: usize,
    },
}

impl LoadKind {
    /// The delta this load moves.
    pub fn delta(&self) -> usize {
        match *self {
            LoadKind::Demand { delta } | LoadKind::Prefetch { delta } => delta,
        }
    }

    /// Whether this is a prefetch (vs a demand load).
    pub fn is_prefetch(&self) -> bool {
        matches!(self, LoadKind::Prefetch { .. })
    }
}

/// A load that finished during an [`TransferTimeline::advance_to`] call.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The finished load's token.
    pub token: LoadToken,
    /// What the load was.
    pub kind: LoadKind,
    /// Absolute completion time.
    pub at: f64,
    /// When the load (or its promotion to demand) started — the base of
    /// the contention-attribution window.
    pub started_at: f64,
    /// Uncontended duration of the (post-promotion) load: what the wall
    /// time `at - started_at` would have been on an idle timeline.
    pub solo_s: f64,
}

/// The result of advancing the timeline.
#[derive(Debug, Default)]
pub struct Advance {
    /// Loads that completed, in completion order.
    pub completions: Vec<Completion>,
    /// Wall-clock seconds of the advanced window during which at least
    /// one load was in flight (the overlap-accounting numerator).
    pub busy_s: f64,
}

#[derive(Debug, Clone, Copy)]
struct Active {
    token: LoadToken,
    kind: LoadKind,
    head_left: f64,
    disk_left: f64,
    pcie_left: f64,
    tail_left: f64,
    /// Absolute floor on the completion time (pipelined decode).
    min_finish_at: f64,
    /// Start (or promotion) time, surfaced on the [`Completion`].
    started_at: f64,
    /// Uncontended duration from `started_at`, surfaced on the
    /// [`Completion`].
    solo_s: f64,
}

impl Active {
    fn channel_done(&self) -> bool {
        self.head_left <= EPS && self.disk_left <= EPS && self.pcie_left <= EPS
    }

    fn work_done(&self) -> bool {
        self.channel_done() && self.tail_left <= EPS
    }
}

/// A deterministic shared-channel transfer simulator.
///
/// Loads started here progress whenever the owner advances the clock
/// ([`advance_to`](Self::advance_to)); within an advance, each of the two
/// channels (disk, PCIe) divides its bandwidth evenly among the loads
/// with remaining work on it. A load moves through: serial head → channel
/// work (disk and PCIe pipelined in parallel) → serial tail, and never
/// completes before its pipelined floor.
#[derive(Debug, Default)]
pub struct TransferTimeline {
    now: f64,
    seq: u64,
    active: Vec<Active>,
    brownouts: Vec<Brownout>,
}

impl TransferTimeline {
    /// An empty timeline at time zero.
    pub fn new() -> Self {
        TransferTimeline::default()
    }

    /// Current timeline clock (the last `advance_to` target).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of loads currently in flight.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Number of in-flight prefetch loads.
    pub fn in_flight_prefetches(&self) -> usize {
        self.active.iter().filter(|a| a.kind.is_prefetch()).count()
    }

    /// Installs a degraded-channel fault schedule. Intervals may overlap
    /// (the slowest rate per channel wins) and need not be sorted.
    pub fn set_brownouts(&mut self, schedule: Vec<Brownout>) {
        self.brownouts = schedule;
    }

    /// Channel rates in effect at absolute time `t`.
    fn channel_rates_at(&self, t: f64) -> (f64, f64) {
        let mut disk = 1.0f64;
        let mut pcie = 1.0f64;
        for b in &self.brownouts {
            if t >= b.start_s - EPS && t < b.end_s - EPS {
                disk = disk.min(b.disk_rate);
                pcie = pcie.min(b.pcie_rate);
            }
        }
        (
            disk.clamp(MIN_CHANNEL_RATE, 1.0),
            pcie.clamp(MIN_CHANNEL_RATE, 1.0),
        )
    }

    /// The earliest brownout boundary strictly after `t`, if any: rates
    /// are constant between boundaries, so `advance_to` steps to them.
    fn next_rate_boundary_after(&self, t: f64) -> Option<f64> {
        self.brownouts
            .iter()
            .flat_map(|b| [b.start_s, b.end_s])
            .filter(|&x| x > t + EPS)
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.min(x)))
            })
    }

    /// Starts a load at the current clock.
    pub fn start(&mut self, profile: LoadProfile, kind: LoadKind) -> LoadToken {
        let token = LoadToken(self.seq);
        self.seq += 1;
        self.active.push(Active {
            token,
            kind,
            head_left: profile.head_s.max(0.0),
            disk_left: profile.disk_s.max(0.0),
            pcie_left: profile.pcie_s.max(0.0),
            tail_left: profile.tail_s.max(0.0),
            min_finish_at: self.now + profile.floor_s.max(0.0),
            started_at: self.now,
            solo_s: profile.solo_s(),
        });
        token
    }

    /// Promotes an in-flight prefetch into a demand load by grafting the
    /// remaining demand stages onto it (e.g. the host→device hop and the
    /// decode floor of a warm load): the already-transferred disk bytes
    /// are not paid twice. Returns false if the token is not in flight.
    pub fn promote(&mut self, token: LoadToken, extra: LoadProfile) -> bool {
        match self.active.iter_mut().find(|a| a.token == token) {
            Some(a) => {
                a.kind = LoadKind::Demand {
                    delta: a.kind.delta(),
                };
                a.head_left += extra.head_s.max(0.0);
                a.disk_left += extra.disk_s.max(0.0);
                a.pcie_left += extra.pcie_s.max(0.0);
                a.tail_left += extra.tail_s.max(0.0);
                a.min_finish_at = a.min_finish_at.max(self.now + extra.floor_s.max(0.0));
                // Re-base attribution at the promotion: the demanding
                // request only starts waiting now, and an idle timeline
                // would finish the grafted stages in `extra.solo_s()`
                // (any prefetch head start can only make the wall time
                // shorter, which the contention split clamps to zero).
                a.started_at = self.now;
                a.solo_s = extra.solo_s();
                true
            }
            None => false,
        }
    }

    /// The absolute time the earliest in-flight load will complete if no
    /// further loads start; `None` when nothing is in flight.
    pub fn next_completion_at(&self) -> Option<f64> {
        if self.active.is_empty() {
            return None;
        }
        let mut probe = TransferTimeline {
            now: self.now,
            seq: self.seq,
            active: self.active.clone(),
            brownouts: self.brownouts.clone(),
        };
        let adv = probe.advance_to(f64::INFINITY);
        adv.completions.first().map(|c| c.at)
    }

    /// Advances the clock to absolute time `t`, progressing all in-flight
    /// loads with even channel sharing, and returns the loads that
    /// completed (plus the busy-time accounting). `t` may be
    /// `f64::INFINITY` to drain everything.
    pub fn advance_to(&mut self, t: f64) -> Advance {
        let mut adv = Advance::default();
        loop {
            // Collect loads that are already done at the current clock.
            let mut i = 0;
            while i < self.active.len() {
                let a = self.active[i];
                if a.work_done() && a.min_finish_at <= self.now + EPS {
                    adv.completions.push(Completion {
                        token: a.token,
                        kind: a.kind,
                        at: self.now.max(a.min_finish_at),
                        started_at: a.started_at,
                        solo_s: a.solo_s,
                    });
                    self.active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if self.now >= t - EPS {
                if t.is_finite() {
                    self.now = self.now.max(t);
                }
                break;
            }
            if self.active.is_empty() {
                if t.is_finite() {
                    self.now = t;
                }
                break;
            }
            // Channel user counts are constant until the next stage event.
            let disk_users = self
                .active
                .iter()
                .filter(|a| a.head_left <= EPS && a.disk_left > EPS)
                .count()
                .max(1);
            let pcie_users = self
                .active
                .iter()
                .filter(|a| a.head_left <= EPS && a.pcie_left > EPS)
                .count()
                .max(1);
            // Channel rates (brownouts) are constant between boundaries.
            let (disk_rate, pcie_rate) = self.channel_rates_at(self.now);
            // Earliest event: a stage draining, a floor passing, a
            // brownout boundary, or `t`.
            let mut dt = if t.is_finite() {
                t - self.now
            } else {
                f64::MAX
            };
            for a in &self.active {
                if a.head_left > EPS {
                    dt = dt.min(a.head_left);
                } else if a.disk_left > EPS || a.pcie_left > EPS {
                    if a.disk_left > EPS {
                        dt = dt.min(a.disk_left * disk_users as f64 / disk_rate);
                    }
                    if a.pcie_left > EPS {
                        dt = dt.min(a.pcie_left * pcie_users as f64 / pcie_rate);
                    }
                } else if a.tail_left > EPS {
                    dt = dt.min(a.tail_left);
                } else {
                    dt = dt.min((a.min_finish_at - self.now).max(0.0));
                }
            }
            if let Some(boundary) = self.next_rate_boundary_after(self.now) {
                dt = dt.min(boundary - self.now);
            }
            let dt = dt.max(0.0);
            if dt <= EPS {
                // A zero-length event (floor exactly now): loop to collect.
                continue;
            }
            for a in &mut self.active {
                if a.head_left > EPS {
                    a.head_left = (a.head_left - dt).max(0.0);
                } else if a.disk_left > EPS || a.pcie_left > EPS {
                    if a.disk_left > EPS {
                        a.disk_left = (a.disk_left - dt * disk_rate / disk_users as f64).max(0.0);
                    }
                    if a.pcie_left > EPS {
                        a.pcie_left = (a.pcie_left - dt * pcie_rate / pcie_users as f64).max(0.0);
                    }
                } else if a.tail_left > EPS {
                    a.tail_left = (a.tail_left - dt).max(0.0);
                }
            }
            self.now += dt;
            adv.busy_s += dt;
        }
        adv
    }
}

/// What a [`Prefetcher`] sees when proposing candidates: the scheduler's
/// leftover queue and the deltas already claimed this iteration.
#[derive(Debug)]
pub struct PrefetchContext<'a> {
    /// Models of still-queued requests in scheduler scan order (the part
    /// of the queue *beyond* the selected `N` — what queue-lookahead
    /// mines).
    pub queued_models: &'a [usize],
    /// Deltas selected (running or claimed) this iteration; prefetching
    /// these would race the demand path.
    pub selected: &'a BTreeSet<usize>,
}

/// A predictive prefetch policy: proposes deltas to prewarm disk→host,
/// highest priority first. The engine filters out deltas that are
/// already warm, resident, or in flight, and applies the bandwidth
/// budget ([`PrefetchConfig`]).
pub trait Prefetcher {
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Prewarm candidates in priority order (may contain duplicates or
    /// already-warm deltas; the engine deduplicates and filters).
    fn candidates(&mut self, ctx: &PrefetchContext<'_>) -> Vec<usize>;
}

/// Queue-lookahead prefetch: scan the FCFS queue beyond the selected `N`
/// and prewarm the next distinct deltas that will be wanted — the §5.4
/// "we know who is next" signal.
#[derive(Debug, Clone, Copy)]
pub struct QueueLookahead {
    /// Maximum distinct deltas proposed per iteration.
    pub depth: usize,
}

impl QueueLookahead {
    /// Lookahead over the next `depth` distinct queued deltas.
    pub fn new(depth: usize) -> Self {
        QueueLookahead { depth }
    }
}

impl Prefetcher for QueueLookahead {
    fn name(&self) -> &'static str {
        "queue-lookahead"
    }

    fn candidates(&mut self, ctx: &PrefetchContext<'_>) -> Vec<usize> {
        let mut out = Vec::new();
        for &m in ctx.queued_models {
            if out.len() >= self.depth {
                break;
            }
            if !ctx.selected.contains(&m) && !out.contains(&m) {
                out.push(m);
            }
        }
        out
    }
}

/// Popularity-driven prefetch: keep the head of the popularity
/// distribution warm regardless of the instantaneous queue — the
/// provisioning-time signal a placement layer also uses.
#[derive(Debug, Clone)]
pub struct PopularityPrefetch {
    /// Per-model weights, hottest-first order derived at construction.
    ranked: Vec<usize>,
    /// Maximum distinct deltas proposed per iteration.
    pub top_k: usize,
}

impl PopularityPrefetch {
    /// Ranks `n_models` by `dist`'s static weights and proposes the
    /// hottest `top_k` each iteration.
    pub fn new(dist: PopularityDist, n_models: usize, top_k: usize) -> Self {
        let weights = dist.weights(n_models);
        let mut ranked: Vec<usize> = (0..n_models).collect();
        ranked.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
        PopularityPrefetch { ranked, top_k }
    }
}

impl Prefetcher for PopularityPrefetch {
    fn name(&self) -> &'static str {
        "popularity"
    }

    fn candidates(&mut self, ctx: &PrefetchContext<'_>) -> Vec<usize> {
        self.ranked
            .iter()
            .copied()
            .filter(|m| !ctx.selected.contains(m))
            .take(self.top_k)
            .collect()
    }
}

/// A copyable prefetch-policy spec, buildable per replica (the boxed
/// [`Prefetcher`] itself is stateful and not clonable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// [`QueueLookahead`] with the given depth.
    QueueLookahead {
        /// Maximum distinct deltas proposed per iteration.
        depth: usize,
    },
    /// [`PopularityPrefetch`] with the given head size.
    Popularity {
        /// Maximum distinct deltas proposed per iteration.
        top_k: usize,
    },
}

impl PrefetchPolicy {
    /// Instantiates the policy for a workload of `n_models` models drawn
    /// from `dist`.
    pub fn build(self, dist: PopularityDist, n_models: usize) -> Box<dyn Prefetcher> {
        match self {
            PrefetchPolicy::QueueLookahead { depth } => Box::new(QueueLookahead::new(depth)),
            PrefetchPolicy::Popularity { top_k } => {
                Box::new(PopularityPrefetch::new(dist, n_models, top_k))
            }
        }
    }
}

/// Bandwidth budget for predictive prefetch: a token bucket of
/// disk-channel seconds, so prewarming can never consume more than
/// `rate` of the disk link on average (demand loads always outrank it).
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Maximum concurrent prefetch transfers.
    pub max_inflight: usize,
    /// Disk-seconds of prefetch issued per second of simulated time
    /// (0.5 = prefetch may use at most half the disk link on average).
    pub rate: f64,
    /// Token-bucket burst cap, in disk-seconds.
    pub burst_s: f64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            max_inflight: 2,
            rate: 0.5,
            burst_s: 30.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(head: f64, disk: f64, pcie: f64, tail: f64, floor: f64) -> LoadProfile {
        LoadProfile {
            head_s: head,
            disk_s: disk,
            pcie_s: pcie,
            tail_s: tail,
            floor_s: floor,
        }
    }

    #[test]
    fn solo_load_finishes_in_solo_time() {
        let mut tl = TransferTimeline::new();
        let p = profile(0.1, 2.0, 0.5, 0.3, 0.0);
        tl.start(p, LoadKind::Demand { delta: 0 });
        let adv = tl.advance_to(f64::INFINITY);
        assert_eq!(adv.completions.len(), 1);
        assert!((adv.completions[0].at - p.solo_s()).abs() < 1e-9);
        assert!((p.solo_s() - 2.4).abs() < 1e-12);
    }

    #[test]
    fn floor_binds_when_channels_are_fast() {
        let mut tl = TransferTimeline::new();
        let p = profile(0.0, 0.1, 0.1, 0.0, 5.0);
        tl.start(p, LoadKind::Demand { delta: 0 });
        let adv = tl.advance_to(f64::INFINITY);
        assert!((adv.completions[0].at - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_loads_share_a_channel_evenly() {
        // Two identical disk-only loads started together: each sees half
        // the bandwidth, so both finish at 2x the solo time — and not
        // later (work conservation).
        let mut tl = TransferTimeline::new();
        let p = profile(0.0, 1.0, 0.0, 0.0, 0.0);
        tl.start(p, LoadKind::Demand { delta: 0 });
        tl.start(p, LoadKind::Demand { delta: 1 });
        let adv = tl.advance_to(f64::INFINITY);
        assert_eq!(adv.completions.len(), 2);
        for c in &adv.completions {
            assert!((c.at - 2.0).abs() < 1e-9, "completion at {}", c.at);
        }
    }

    #[test]
    fn disjoint_channels_do_not_contend() {
        // A disk-only and a PCIe-only load run fully in parallel.
        let mut tl = TransferTimeline::new();
        tl.start(
            profile(0.0, 1.0, 0.0, 0.0, 0.0),
            LoadKind::Demand { delta: 0 },
        );
        tl.start(
            profile(0.0, 0.0, 1.0, 0.0, 0.0),
            LoadKind::Demand { delta: 1 },
        );
        let adv = tl.advance_to(f64::INFINITY);
        for c in &adv.completions {
            assert!((c.at - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn staggered_start_departs_in_order_and_pays_contention() {
        let mut tl = TransferTimeline::new();
        tl.start(
            profile(0.0, 2.0, 0.0, 0.0, 0.0),
            LoadKind::Demand { delta: 0 },
        );
        let adv = tl.advance_to(1.0);
        assert!(adv.completions.is_empty());
        assert!((adv.busy_s - 1.0).abs() < 1e-12);
        // Second load joins with 1.0s of the first remaining: they share
        // the channel (first needs 1 more solo-second -> 2 wall seconds).
        tl.start(
            profile(0.0, 3.0, 0.0, 0.0, 0.0),
            LoadKind::Demand { delta: 1 },
        );
        let adv = tl.advance_to(f64::INFINITY);
        assert_eq!(adv.completions.len(), 2);
        assert_eq!(adv.completions[0].kind.delta(), 0);
        assert!((adv.completions[0].at - 3.0).abs() < 1e-9);
        // Total disk work = 5 solo-seconds, channel never idle from t=0.
        assert!((adv.completions[1].at - 5.0).abs() < 1e-9);
    }

    #[test]
    fn partial_advance_accumulates_progress() {
        let mut tl = TransferTimeline::new();
        let p = profile(0.0, 1.0, 0.0, 0.0, 0.0);
        tl.start(p, LoadKind::Demand { delta: 0 });
        for i in 1..=10 {
            let adv = tl.advance_to(i as f64 * 0.1);
            if i < 10 {
                assert!(adv.completions.is_empty(), "early completion at step {i}");
            } else {
                assert_eq!(adv.completions.len(), 1);
            }
        }
    }

    #[test]
    fn next_completion_probe_matches_reality_and_does_not_mutate() {
        let mut tl = TransferTimeline::new();
        tl.start(
            profile(0.1, 1.0, 0.5, 0.2, 0.0),
            LoadKind::Demand { delta: 0 },
        );
        tl.start(
            profile(0.0, 2.0, 0.0, 0.0, 0.0),
            LoadKind::Prefetch { delta: 1 },
        );
        let predicted = tl.next_completion_at().expect("loads in flight");
        assert_eq!(tl.in_flight(), 2);
        assert_eq!(tl.in_flight_prefetches(), 1);
        let adv = tl.advance_to(f64::INFINITY);
        assert!((adv.completions[0].at - predicted).abs() < 1e-9);
    }

    #[test]
    fn promote_grafts_demand_stages_onto_a_prefetch() {
        let mut tl = TransferTimeline::new();
        let tok = tl.start(
            profile(0.0, 2.0, 0.0, 0.0, 0.0),
            LoadKind::Prefetch { delta: 7 },
        );
        // Half the disk work done, then the delta is demanded.
        tl.advance_to(1.0);
        assert!(tl.promote(tok, profile(0.0, 0.0, 0.5, 0.0, 0.0)));
        let adv = tl.advance_to(f64::INFINITY);
        assert_eq!(adv.completions.len(), 1);
        assert!(!adv.completions[0].kind.is_prefetch());
        assert_eq!(adv.completions[0].kind.delta(), 7);
        // 1.0s disk remaining + 0.5s PCIe (pipelined in parallel): 1.0s.
        assert!((adv.completions[0].at - 2.0).abs() < 1e-9);
        assert!(!tl.promote(tok, LoadProfile::default()), "token consumed");
    }

    #[test]
    fn completions_carry_contention_base() {
        let mut tl = TransferTimeline::new();
        let p = profile(0.0, 1.0, 0.0, 0.0, 0.0);
        tl.start(p, LoadKind::Demand { delta: 0 });
        tl.start(p, LoadKind::Demand { delta: 1 });
        let adv = tl.advance_to(f64::INFINITY);
        for c in &adv.completions {
            assert_eq!(c.started_at, 0.0);
            assert!((c.solo_s - 1.0).abs() < 1e-12);
            // Wall time (2.0) exceeds solo (1.0): the contention split
            // attributes the other half to channel sharing.
            assert!((c.at - c.started_at - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn promote_rebases_contention_attribution() {
        let mut tl = TransferTimeline::new();
        let tok = tl.start(
            profile(0.0, 2.0, 0.0, 0.0, 0.0),
            LoadKind::Prefetch { delta: 7 },
        );
        tl.advance_to(1.0);
        assert!(tl.promote(tok, profile(0.0, 0.0, 0.5, 0.0, 0.0)));
        let adv = tl.advance_to(f64::INFINITY);
        let c = &adv.completions[0];
        assert_eq!(c.started_at, 1.0);
        assert!((c.solo_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn brownout_halves_disk_bandwidth_while_active() {
        let mut tl = TransferTimeline::new();
        tl.set_brownouts(vec![Brownout {
            start_s: 0.0,
            end_s: 10.0,
            disk_rate: 0.5,
            pcie_rate: 1.0,
        }]);
        tl.start(
            profile(0.0, 1.0, 0.0, 0.0, 0.0),
            LoadKind::Demand { delta: 0 },
        );
        let adv = tl.advance_to(f64::INFINITY);
        assert!((adv.completions[0].at - 2.0).abs() < 1e-9);
        // solo_s still reports the healthy-channel duration: the extra
        // second is attributed to contention, i.e. the brownout.
        assert!((adv.completions[0].solo_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn brownout_boundary_splits_the_drain() {
        // Brownout covers only the first second: 0.5 solo-seconds drain
        // during it, the rest at full rate -> finish at 1.5.
        let mut tl = TransferTimeline::new();
        tl.set_brownouts(vec![Brownout {
            start_s: 0.0,
            end_s: 1.0,
            disk_rate: 0.5,
            pcie_rate: 1.0,
        }]);
        tl.start(
            profile(0.0, 1.0, 0.0, 0.0, 0.0),
            LoadKind::Demand { delta: 0 },
        );
        let adv = tl.advance_to(f64::INFINITY);
        assert!(
            (adv.completions[0].at - 1.5).abs() < 1e-9,
            "{}",
            adv.completions[0].at
        );
    }

    #[test]
    fn brownout_leaves_other_channel_untouched() {
        let mut tl = TransferTimeline::new();
        tl.set_brownouts(vec![Brownout {
            start_s: 0.0,
            end_s: 10.0,
            disk_rate: 0.25,
            pcie_rate: 1.0,
        }]);
        tl.start(
            profile(0.0, 0.0, 1.0, 0.0, 0.0),
            LoadKind::Demand { delta: 0 },
        );
        let adv = tl.advance_to(f64::INFINITY);
        assert!((adv.completions[0].at - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probe_accounts_for_brownouts() {
        let mut tl = TransferTimeline::new();
        tl.set_brownouts(vec![Brownout {
            start_s: 0.0,
            end_s: 10.0,
            disk_rate: 0.5,
            pcie_rate: 1.0,
        }]);
        tl.start(
            profile(0.0, 1.0, 0.0, 0.0, 0.0),
            LoadKind::Demand { delta: 0 },
        );
        let predicted = tl.next_completion_at().expect("load in flight");
        let adv = tl.advance_to(f64::INFINITY);
        assert!((adv.completions[0].at - predicted).abs() < 1e-9);
    }

    #[test]
    fn queue_lookahead_scans_beyond_selected() {
        let selected: BTreeSet<usize> = [1, 2].into_iter().collect();
        let mut p = QueueLookahead::new(2);
        let queued = vec![1, 3, 3, 4, 5];
        let ctx = PrefetchContext {
            queued_models: &queued,
            selected: &selected,
        };
        assert_eq!(p.candidates(&ctx), vec![3, 4]);
    }

    #[test]
    fn popularity_prefetch_proposes_the_head() {
        let selected: BTreeSet<usize> = [0].into_iter().collect();
        let mut p = PopularityPrefetch::new(PopularityDist::Zipf { alpha: 1.5 }, 8, 3);
        let ctx = PrefetchContext {
            queued_models: &[],
            selected: &selected,
        };
        // Model 0 is selected; the next-hottest models follow in rank order.
        assert_eq!(p.candidates(&ctx), vec![1, 2, 3]);
    }

    #[test]
    fn policy_builds_both_prefetchers() {
        let lk = PrefetchPolicy::QueueLookahead { depth: 4 }.build(PopularityDist::Uniform, 8);
        assert_eq!(lk.name(), "queue-lookahead");
        let pop = PrefetchPolicy::Popularity { top_k: 4 }.build(PopularityDist::Uniform, 8);
        assert_eq!(pop.name(), "popularity");
    }
}
