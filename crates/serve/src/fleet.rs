//! Fleet-scale event-driven serving: one global heap, O(events) not
//! O(replicas × ticks).
//!
//! [`ClusterSim`](crate::cluster::ClusterSim) replays every replica with a
//! full [`DeltaZipEngine`](crate::deltazip::DeltaZipEngine) — faithful, but
//! the per-replica engines make thousand-replica sweeps infeasible.
//! [`FleetSim`] is the scale-out counterpart: replicas are compact event
//! handlers (arrival, departure, swap-land, prefetch-land, fault, autoscale
//! tick) on a single monotone [`EventQueue`], so a million-request trace
//! over 1000 replicas runs in seconds of wall clock.
//!
//! What it keeps from the paper's serving story:
//!
//! * **Multi-tier topology** ([`FleetTopology`]): replicas live in
//!   region → rack → node positions with distinct inter-tier bandwidths. A
//!   delta miss fetches from the *nearest* holder — local disk beats a
//!   rack peer beats a region peer beats cross-region — and falls back to
//!   the shared **object store** below every disk ([`FetchTier`]). Pulled
//!   deltas replicate onto the edge disk, so popular deltas spread.
//! * **O(1)-per-request routing** ([`FleetRouter`]): power-of-two-choices
//!   and consistent hashing route without touching all `R` replicas;
//!   [`FleetRouter::GlobalLeastCost`] keeps the O(R) global scan as the
//!   baseline that stops scaling.
//! * **Determinism**: same seed → identical event sequence. The optional
//!   event log ([`FleetReport::event_log`]) exists so tests can replay a
//!   run and compare logs bit-for-bit.
//!
//! Event ordering at equal timestamps is by event *class* (faults before
//! lands before departures before arrivals before ticks), then by
//! insertion sequence — see [`EventQueue`] for the `(at, class, seq)` key.

use crate::cluster::PlacementPlan;
use dz_gpusim::{EventClass, EventQueue};
use dz_tensor::Rng;
use dz_trace::{GaugeSample, StreamingQuantiles, TraceConfig, TraceEvent, TraceTrack, Tracer};
use dz_workload::{Request, Trace};
use std::collections::{BTreeMap, HashMap};

// ---------------------------------------------------------------------------
// Topology.
// ---------------------------------------------------------------------------

/// Where a delta's bytes came from, cheapest tier first.
///
/// The ladder mirrors a real fleet: a warm (host-cache) hit pays nothing
/// extra, a local NVMe read beats pulling from a rack peer over the
/// top-of-rack switch, which beats crossing the regional fabric, which
/// beats the WAN, which beats the shared object store's request latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FetchTier {
    /// The replica's own disk held a copy.
    LocalDisk,
    /// Pulled from a node in the same rack.
    PeerRack,
    /// Pulled from another rack in the same region.
    PeerRegion,
    /// Pulled from a different region.
    CrossRegion,
    /// No replica held a copy: fetched from the shared object store.
    ObjectStore,
}

/// Region → rack → node fleet topology with per-tier bandwidths.
///
/// Replica ids are positional: rack `id / nodes_per_rack`, region
/// `rack / racks_per_region`. Bandwidths are GB/s; latencies are per-fetch
/// setup floors (RTT, request dispatch).
#[derive(Debug, Clone, Copy)]
pub struct FleetTopology {
    /// Nodes (replicas) per rack.
    pub nodes_per_rack: usize,
    /// Racks per region.
    pub racks_per_region: usize,
    /// Local NVMe read bandwidth (GB/s).
    pub local_disk_gbps: f64,
    /// Bandwidth between nodes in one rack (GB/s).
    pub intra_rack_gbps: f64,
    /// Bandwidth between racks in one region (GB/s).
    pub inter_rack_gbps: f64,
    /// Bandwidth between regions (GB/s).
    pub inter_region_gbps: f64,
    /// Shared object-store streaming bandwidth (GB/s).
    pub object_store_gbps: f64,
    /// Per-fetch latency floor for any peer pull (s).
    pub peer_latency_s: f64,
    /// Per-fetch latency floor for an object-store pull (s).
    pub object_store_latency_s: f64,
}

impl Default for FleetTopology {
    /// A mid-size deployment: 16-node racks, 8 racks per region, NVMe
    /// local disk, 40 GbE effective in-rack, oversubscribed regional
    /// fabric, and an S3-like object store (80 ms first-byte, shared
    /// single-stream throughput). Bandwidths descend down the ladder so
    /// each [`FetchTier`] is strictly costlier for delta-sized payloads.
    fn default() -> Self {
        FleetTopology {
            nodes_per_rack: 16,
            racks_per_region: 8,
            local_disk_gbps: 7.0,
            intra_rack_gbps: 5.0,
            inter_rack_gbps: 2.5,
            inter_region_gbps: 1.25,
            object_store_gbps: 0.8,
            peer_latency_s: 0.002,
            object_store_latency_s: 0.08,
        }
    }
}

impl FleetTopology {
    /// `(region, rack)` of a replica id.
    pub fn location(&self, replica: usize) -> (usize, usize) {
        let rack = replica / self.nodes_per_rack.max(1);
        (rack / self.racks_per_region.max(1), rack)
    }

    /// The cheapest tier at which `from` can pull from `holder`.
    pub fn tier_between(&self, from: usize, holder: usize) -> FetchTier {
        if from == holder {
            return FetchTier::LocalDisk;
        }
        let (fr, frack) = self.location(from);
        let (hr, hrack) = self.location(holder);
        if frack == hrack {
            FetchTier::PeerRack
        } else if fr == hr {
            FetchTier::PeerRegion
        } else {
            FetchTier::CrossRegion
        }
    }

    /// Seconds to move `bytes` over `tier` (latency floor + streaming).
    pub fn fetch_time_s(&self, tier: FetchTier, bytes: u64) -> f64 {
        let (gbps, latency) = match tier {
            FetchTier::LocalDisk => (self.local_disk_gbps, 0.0),
            FetchTier::PeerRack => (self.intra_rack_gbps, self.peer_latency_s),
            FetchTier::PeerRegion => (self.inter_rack_gbps, self.peer_latency_s),
            FetchTier::CrossRegion => (self.inter_region_gbps, self.peer_latency_s),
            FetchTier::ObjectStore => (self.object_store_gbps, self.object_store_latency_s),
        };
        latency + bytes as f64 / (gbps.max(1e-9) * 1e9)
    }
}

// ---------------------------------------------------------------------------
// Routing.
// ---------------------------------------------------------------------------

/// Fleet routing policy. The two O(1) policies are the tentpole: routing
/// must not touch all `R` replicas per request or the front end itself
/// stops scaling (see `exp bench-fleet`).
#[derive(Debug, Clone)]
pub enum FleetRouter {
    /// Ignore state, cycle replicas. O(1), placement-blind.
    RoundRobin,
    /// Power-of-two-choices: sample two live replicas, take the cheaper
    /// (backlog + predicted miss penalty). O(1) with near-least-loaded
    /// tail behavior.
    PowerOfTwo {
        /// Sampling seed (independent of the workload seed).
        seed: u64,
    },
    /// Hash the model onto a virtual-node ring: affinity without state.
    /// O(log R) ring lookup, rebuilt only on membership changes.
    ConsistentHash {
        /// Virtual nodes per replica (more → smoother balance).
        vnodes: usize,
    },
    /// Score every live replica (the old `PlacementAwareRouter`-style
    /// global scan). O(R) per request — the scaling baseline.
    GlobalLeastCost,
}

impl FleetRouter {
    fn name(&self) -> &'static str {
        match self {
            FleetRouter::RoundRobin => "round-robin",
            FleetRouter::PowerOfTwo { .. } => "p2c",
            FleetRouter::ConsistentHash { .. } => "consistent-hash",
            FleetRouter::GlobalLeastCost => "global-least-cost",
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// One injected fault: `replica` dies at `at` (losing its warm set) and
/// restarts `down_s` later with a cold cache but an intact disk.
#[derive(Debug, Clone, Copy)]
pub struct FleetFault {
    /// Simulation time of the failure (s).
    pub at: f64,
    /// Replica to kill.
    pub replica: usize,
    /// Seconds until the replica rejoins.
    pub down_s: f64,
}

/// Reactive autoscaling on the fleet's event clock: every `interval_s`
/// a tick samples mean live backlog and activates a dormant replica
/// (above `hi_backlog_s`) or drains the highest-id live one (below
/// `lo_backlog_s`, never under `min_live`).
#[derive(Debug, Clone, Copy)]
pub struct FleetAutoscale {
    /// Seconds between scale ticks.
    pub interval_s: f64,
    /// Mean backlog (s) above which a dormant replica is activated.
    pub hi_backlog_s: f64,
    /// Mean backlog (s) below which a live replica is drained.
    pub lo_backlog_s: f64,
    /// Floor on live replicas.
    pub min_live: usize,
}

/// Configuration for a [`FleetSim`] run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet size (replica ids `0..n_replicas`).
    pub n_replicas: usize,
    /// Physical topology and per-tier bandwidths.
    pub topology: FleetTopology,
    /// Deltas each replica keeps warm (host cache) before LRU eviction.
    pub warm_capacity: usize,
    /// Compressed delta size (bytes); uniform across models.
    pub delta_bytes: u64,
    /// Decode seconds per token (prompt + output) of service time.
    pub per_token_s: f64,
    /// Fixed per-request service floor (s).
    pub startup_s: f64,
    /// Seed for routing randomness (p2c sampling).
    pub seed: u64,
    /// Injected faults, any order; applied on the event clock.
    pub faults: Vec<FleetFault>,
    /// Optional autoscaler driven by scale-tick events.
    pub autoscale: Option<FleetAutoscale>,
    /// On an object-store pull, also replicate the delta to one other
    /// plan home's disk (prefetch-land event, off the critical path).
    pub prefetch_homes: bool,
    /// Record the `(time, class, key)` event log for replay tests.
    pub record_events: bool,
    /// Emit simulation-clock trace events (Chrome-trace exportable).
    pub trace: Option<TraceConfig>,
}

impl FleetConfig {
    /// Defaults sized for the bench sweeps: ~3300 tok/s decode, 850 MB
    /// compressed deltas, 12-delta warm cache.
    pub fn new(n_replicas: usize) -> Self {
        FleetConfig {
            n_replicas,
            topology: FleetTopology::default(),
            warm_capacity: 12,
            delta_bytes: 850 << 20,
            per_token_s: 0.0003,
            startup_s: 0.02,
            seed: 0x0F1E_E7F1,
            faults: Vec::new(),
            autoscale: None,
            prefetch_homes: true,
            record_events: false,
            trace: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------------

/// Per-tier fetch counts of one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FetchCounts {
    /// Misses satisfied from the replica's own disk.
    pub local_disk: u64,
    /// Misses pulled from a rack peer.
    pub peer_rack: u64,
    /// Misses pulled from another rack in-region.
    pub peer_region: u64,
    /// Misses pulled cross-region.
    pub cross_region: u64,
    /// Misses that fell through to the object store.
    pub object_store: u64,
}

impl FetchCounts {
    /// Total misses (any tier).
    pub fn total(&self) -> u64 {
        self.local_disk + self.peer_rack + self.peer_region + self.cross_region + self.object_store
    }
}

/// One entry of the deterministic event log (enabled by
/// [`FleetConfig::record_events`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetLogEntry {
    /// Event timestamp (s).
    pub at: f64,
    /// Event class popped with it (see module docs for the ordering).
    pub class: EventClass,
    /// Stable payload key (request id, replica id, or packed
    /// replica/model for swap events).
    pub key: u64,
}

/// Aggregate results of a [`FleetSim`] run.
#[derive(Debug)]
pub struct FleetReport {
    /// Routing policy name.
    pub router: String,
    /// Fleet size the run was configured with.
    pub n_replicas: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed because no replica was live at arrival.
    pub shed: usize,
    /// Warm (host-cache) routing hits.
    pub warm_hits: u64,
    /// Per-tier miss fetch counts.
    pub fetches: FetchCounts,
    /// Mean end-to-end latency (s).
    pub mean_e2e_s: f64,
    /// Median end-to-end latency (s).
    pub p50_e2e_s: f64,
    /// 99th-percentile end-to-end latency (s).
    pub p99_e2e_s: f64,
    /// Worst end-to-end latency (s).
    pub max_e2e_s: f64,
    /// Time the last request finished (s).
    pub makespan_s: f64,
    /// Total events popped from the global heap.
    pub events: usize,
    /// Peak live-replica count observed (autoscale headroom used).
    pub peak_live: usize,
    /// Deterministic event log, when recording was enabled.
    pub event_log: Option<Vec<FleetLogEntry>>,
    /// Chrome-trace tracks, when tracing was enabled.
    pub tracks: Vec<TraceTrack>,
}

// ---------------------------------------------------------------------------
// The simulator.
// ---------------------------------------------------------------------------

/// Equal-time pops drain faults first (membership changes are visible to
/// everything else at that instant), then landed transfers, then
/// departures (freed capacity is visible), then arrivals, then ticks.
const CLASS_FAULT: EventClass = 0;
const CLASS_LAND: EventClass = 1;
const CLASS_DEPART: EventClass = 2;
const CLASS_ARRIVAL: EventClass = 3;
const CLASS_TICK: EventClass = 4;

enum FleetEvent {
    /// Next trace request (index into `trace.requests`); arrivals are
    /// streamed — popping index `i` pushes index `i + 1`.
    Arrival(usize),
    /// A replica finished a request.
    Depart { replica: usize, id: usize },
    /// A demand delta fetch landed on a replica.
    SwapLand { replica: usize, model: usize },
    /// An edge-replication prefetch landed on a replica's disk.
    PrefetchLand { replica: usize, model: usize },
    /// A fault from the plan fires (kill), or a restart (rejoin).
    Fault { replica: usize, restart: bool },
    /// Autoscale tick.
    Tick,
}

#[derive(Debug, Clone, Default)]
struct FleetReplica {
    alive: bool,
    /// Simulation time the replica drains its queue (s).
    busy_until: f64,
    queue_depth: usize,
    /// Warm set with LRU stamps (bounded by `warm_capacity`). Ordered so
    /// the eviction scan below is iteration-order-deterministic.
    warm: BTreeMap<usize, u64>,
    served: u64,
}

/// The fleet-scale event-driven simulator. See the module docs.
pub struct FleetSim {
    config: FleetConfig,
    plan: PlacementPlan,
    router: FleetRouter,
}

impl FleetSim {
    /// Creates a fleet; the placement plan seeds which replicas hold each
    /// delta on disk at t = 0 (everything else starts object-store-only).
    pub fn new(config: FleetConfig, plan: PlacementPlan, router: FleetRouter) -> Self {
        assert!(config.n_replicas > 0, "fleet needs at least one replica");
        FleetSim {
            config,
            plan,
            router,
        }
    }

    /// Runs the trace to completion and reports fleet-level metrics.
    pub fn run(&mut self, trace: &Trace) -> FleetReport {
        let cfg = self.config.clone();
        let n = cfg.n_replicas;
        let topo = cfg.topology;
        let n_models = trace.spec.n_models.max(1);

        // Replica state. Everyone starts live and idle.
        let mut replicas: Vec<FleetReplica> = (0..n)
            .map(|_| FleetReplica {
                alive: true,
                ..FleetReplica::default()
            })
            .collect();
        // Disk residency index: disk_holders[m] = replicas whose disk has
        // delta m, kept sorted for deterministic nearest-holder scans.
        // Seeded from the placement plan; grows as pulls edge-replicate.
        let mut disk_holders: Vec<Vec<u32>> = vec![Vec::new(); n_models];
        let mut on_disk: Vec<Vec<bool>> = Vec::with_capacity(n);
        on_disk.resize_with(n, || vec![false; n_models]);
        for m in 0..n_models {
            for &h in self.plan.homes(m) {
                if h < n && !on_disk[h][m] {
                    on_disk[h][m] = true;
                    disk_holders[m].push(h as u32);
                }
            }
        }
        // In-flight demand fetches: a request routed to a replica whose
        // fetch for the same delta is still in the air waits for the land
        // instead of paying a second pull.
        let mut inflight: HashMap<(usize, usize), f64> = HashMap::new();

        let mut events: EventQueue<FleetEvent> = EventQueue::new();
        // Arrivals, departures, and transfer lands still in the heap —
        // when this hits zero only faults/ticks remain, so the
        // autoscaler stops rescheduling itself and the run drains.
        let mut work_events = 0usize;
        if !trace.requests.is_empty() {
            events.push_class(trace.requests[0].arrival.max(0.0), CLASS_ARRIVAL, {
                FleetEvent::Arrival(0)
            });
            work_events += 1;
        }
        for f in &cfg.faults {
            if f.replica < n {
                events.push_class(
                    f.at.max(0.0),
                    CLASS_FAULT,
                    FleetEvent::Fault {
                        replica: f.replica,
                        restart: false,
                    },
                );
            }
        }
        let mut fault_down: HashMap<usize, f64> = cfg
            .faults
            .iter()
            .filter(|f| f.replica < n)
            .map(|f| (f.replica, f.down_s))
            .collect();
        if let Some(scale) = cfg.autoscale {
            events.push_class(scale.interval_s.max(1e-3), CLASS_TICK, FleetEvent::Tick);
        }

        let mut rng = Rng::seeded(cfg.seed ^ 0xF1EE_7517);
        let mut rr_cursor = 0usize;
        // Consistent-hash ring: (hash, replica), sorted by hash. Rebuilt
        // lazily after membership changes (fault, restart, scale event).
        let mut ring: Vec<(u64, u32)> = Vec::new();
        let mut ring_dirty = true;
        let mut live_count = n;
        let mut peak_live = n;

        let mut e2e = StreamingQuantiles::new();
        let mut warm_hits = 0u64;
        let mut fetches = FetchCounts::default();
        let mut served = 0usize;
        let mut shed = 0usize;
        let mut makespan = 0.0f64;
        let mut popped = 0usize;
        let mut log: Option<Vec<FleetLogEntry>> = cfg.record_events.then(Vec::new);
        let mut tracer = match &cfg.trace {
            Some(tc) => Tracer::enabled(*tc),
            None => Tracer::disabled(),
        };

        while let Some((t, class, event)) = events.pop_classed() {
            popped += 1;
            if matches!(
                event,
                FleetEvent::Arrival(_)
                    | FleetEvent::Depart { .. }
                    | FleetEvent::SwapLand { .. }
                    | FleetEvent::PrefetchLand { .. }
            ) {
                work_events -= 1;
            }
            if let Some(log) = log.as_mut() {
                let key = match &event {
                    FleetEvent::Arrival(i) => *i as u64,
                    FleetEvent::Depart { id, .. } => *id as u64,
                    FleetEvent::SwapLand { replica, model }
                    | FleetEvent::PrefetchLand { replica, model } => {
                        ((*replica as u64) << 32) | *model as u64
                    }
                    FleetEvent::Fault { replica, .. } => *replica as u64,
                    FleetEvent::Tick => 0,
                };
                log.push(FleetLogEntry { at: t, class, key });
            }
            match event {
                FleetEvent::Fault { replica, restart } => {
                    if restart {
                        replicas[replica].alive = true;
                        replicas[replica].busy_until = t;
                        replicas[replica].queue_depth = 0;
                        live_count += 1;
                    } else if replicas[replica].alive {
                        // Warm cache dies with the process; the disk (and
                        // its holder entries) survives the restart.
                        replicas[replica].alive = false;
                        replicas[replica].warm.clear();
                        live_count -= 1;
                        let down = fault_down.remove(&replica).unwrap_or(10.0);
                        events.push_class(
                            t + down.max(1e-3),
                            CLASS_FAULT,
                            FleetEvent::Fault {
                                replica,
                                restart: true,
                            },
                        );
                    }
                    peak_live = peak_live.max(live_count);
                    ring_dirty = true;
                }
                FleetEvent::SwapLand { replica, model } => {
                    inflight.remove(&(replica, model));
                    tracer.emit(|| TraceEvent::SwapLand {
                        delta: model,
                        at: t,
                        waiters: 0,
                    });
                }
                FleetEvent::PrefetchLand { replica, model } => {
                    if !on_disk[replica][model] {
                        on_disk[replica][model] = true;
                        let r32 = replica as u32;
                        let pos = disk_holders[model].partition_point(|&h| h < r32);
                        disk_holders[model].insert(pos, r32);
                    }
                    tracer.emit(|| TraceEvent::PrefetchLand {
                        delta: model,
                        at: t,
                    });
                }
                FleetEvent::Depart { replica, id: _ } => {
                    let r = &mut replicas[replica];
                    r.queue_depth = r.queue_depth.saturating_sub(1);
                    makespan = makespan.max(t);
                }
                FleetEvent::Tick => {
                    let scale = cfg.autoscale.expect("tick without autoscaler");
                    let (mut backlog, mut live) = (0.0, 0usize);
                    for r in replicas.iter().filter(|r| r.alive) {
                        backlog += (r.busy_until - t).max(0.0);
                        live += 1;
                    }
                    let mean = if live > 0 {
                        backlog / live as f64
                    } else {
                        f64::INFINITY
                    };
                    if mean > scale.hi_backlog_s {
                        // Activate the lowest-id dormant replica.
                        if let Some(i) = replicas.iter().position(|r| !r.alive) {
                            replicas[i].alive = true;
                            replicas[i].busy_until = t;
                            replicas[i].queue_depth = 0;
                            live_count += 1;
                            ring_dirty = true;
                        }
                    } else if mean < scale.lo_backlog_s && live > scale.min_live {
                        // Drain the highest-id live replica.
                        if let Some(i) = replicas.iter().rposition(|r| r.alive) {
                            replicas[i].alive = false;
                            replicas[i].warm.clear();
                            live_count -= 1;
                            ring_dirty = true;
                        }
                    }
                    peak_live = peak_live.max(live_count);
                    tracer.gauge(|| GaugeSample {
                        at: t,
                        queue_depth: replicas.iter().map(|r| r.queue_depth).sum(),
                        batch: 0,
                        blocked: 0,
                        gpu_resident: 0,
                        warmth_disk: 0,
                        warmth_host: replicas.iter().map(|r| r.warm.len()).sum(),
                        warmth_host_decoded: 0,
                        gpu_bytes: 0.0,
                        host_bytes: 0.0,
                        inflight_demand: inflight.len(),
                        inflight_prefetch: 0,
                        live_replicas: live,
                    });
                    // Keep ticking while serving work remains; a heap
                    // holding only faults/ticks must not keep the run
                    // alive (a far-future restart would otherwise tick
                    // the clock forever).
                    if work_events > 0 {
                        events.push_class(
                            t + scale.interval_s.max(1e-3),
                            CLASS_TICK,
                            FleetEvent::Tick,
                        );
                    }
                }
                FleetEvent::Arrival(idx) => {
                    // Stream the next arrival before handling this one so
                    // the heap holds O(replicas + in-flight) entries, not
                    // the whole trace.
                    if idx + 1 < trace.requests.len() {
                        events.push_class(
                            trace.requests[idx + 1].arrival.max(t),
                            CLASS_ARRIVAL,
                            FleetEvent::Arrival(idx + 1),
                        );
                        work_events += 1;
                    }
                    let req = &trace.requests[idx];
                    if live_count == 0 {
                        shed += 1;
                        continue;
                    }
                    let target = self.route_one(
                        req,
                        t,
                        &replicas,
                        &on_disk,
                        &mut rng,
                        &mut rr_cursor,
                        &mut ring,
                        &mut ring_dirty,
                    );
                    let stamp = popped as u64;
                    let r = &mut replicas[target];
                    let start = r.busy_until.max(t);
                    // Miss cost: nearest holder wins; an in-flight fetch
                    // for the same delta is awaited, not re-pulled.
                    let mut fetch_s = 0.0;
                    if let Some(&at) = r.warm.get(&req.model) {
                        let _ = at;
                        warm_hits += 1;
                        r.warm.insert(req.model, stamp);
                    } else if let Some(&land) = inflight.get(&(target, req.model)) {
                        fetch_s = (land - start).max(0.0);
                        Self::warm_insert(r, req.model, stamp, cfg.warm_capacity);
                    } else {
                        let tier = Self::nearest_tier(&topo, target, &disk_holders[req.model]);
                        fetch_s = topo.fetch_time_s(tier, cfg.delta_bytes);
                        match tier {
                            FetchTier::LocalDisk => fetches.local_disk += 1,
                            FetchTier::PeerRack => fetches.peer_rack += 1,
                            FetchTier::PeerRegion => fetches.peer_region += 1,
                            FetchTier::CrossRegion => fetches.cross_region += 1,
                            FetchTier::ObjectStore => fetches.object_store += 1,
                        }
                        let land = start + fetch_s;
                        inflight.insert((target, req.model), land);
                        events.push_class(
                            land,
                            CLASS_LAND,
                            FleetEvent::SwapLand {
                                replica: target,
                                model: req.model,
                            },
                        );
                        work_events += 1;
                        tracer.emit(|| TraceEvent::SwapStart {
                            delta: req.model,
                            at: start,
                            disk_s: fetch_s,
                            pcie_s: 0.0,
                            solo_s: fetch_s,
                        });
                        // The pull lands on the edge disk too.
                        if !on_disk[target][req.model] {
                            on_disk[target][req.model] = true;
                            let r32 = target as u32;
                            let pos = disk_holders[req.model].partition_point(|&h| h < r32);
                            disk_holders[req.model].insert(pos, r32);
                        }
                        Self::warm_insert(r, req.model, stamp, cfg.warm_capacity);
                        // Object-store pulls optionally replicate the
                        // delta to one more plan home off the critical
                        // path (the popular-delta edge-spread story).
                        if tier == FetchTier::ObjectStore && cfg.prefetch_homes {
                            if let Some(&home) = self
                                .plan
                                .homes(req.model)
                                .iter()
                                .find(|&&h| h < n && h != target && !on_disk[h][req.model])
                            {
                                events.push_class(
                                    land + topo
                                        .fetch_time_s(FetchTier::ObjectStore, cfg.delta_bytes),
                                    CLASS_LAND,
                                    FleetEvent::PrefetchLand {
                                        replica: home,
                                        model: req.model,
                                    },
                                );
                                work_events += 1;
                            }
                        }
                    }
                    let service = cfg.startup_s
                        + (req.prompt_tokens + req.output_tokens) as f64 * { cfg.per_token_s };
                    let finish = start + fetch_s + service;
                    let r = &mut replicas[target];
                    r.busy_until = finish;
                    r.queue_depth += 1;
                    r.served += 1;
                    served += 1;
                    e2e.add(finish - req.arrival);
                    events.push_class(
                        finish,
                        CLASS_DEPART,
                        FleetEvent::Depart {
                            replica: target,
                            id: req.id,
                        },
                    );
                    work_events += 1;
                    tracer.emit(|| TraceEvent::RequestQueued {
                        id: req.id,
                        model: req.model,
                        kind: dz_trace::ToppingKind::Delta,
                        at: t,
                    });
                    tracer.emit(|| TraceEvent::RequestFinished {
                        id: req.id,
                        at: finish,
                    });
                }
            }
        }

        let tracks = match tracer.take_log() {
            Some(log) => vec![TraceTrack {
                name: format!("fleet[{}x {}]", n, self.router.name()),
                log,
            }],
            None => Vec::new(),
        };
        FleetReport {
            router: self.router.name().to_string(),
            n_replicas: n,
            served,
            shed,
            warm_hits,
            fetches,
            mean_e2e_s: e2e.mean().unwrap_or(0.0),
            p50_e2e_s: e2e.quantile(0.5).unwrap_or(0.0),
            p99_e2e_s: e2e.quantile(0.99).unwrap_or(0.0),
            max_e2e_s: e2e.quantile(1.0).unwrap_or(0.0),
            makespan_s: makespan,
            events: popped,
            peak_live,
            event_log: log,
            tracks,
        }
    }

    /// LRU-insert `model` into the warm set, evicting the stalest entry
    /// over capacity (the disk copy survives eviction).
    fn warm_insert(r: &mut FleetReplica, model: usize, stamp: u64, capacity: usize) {
        r.warm.insert(model, stamp);
        while r.warm.len() > capacity.max(1) {
            let (&victim, _) = r
                .warm
                .iter()
                .min_by_key(|&(&m, &s)| (s, m))
                .expect("non-empty warm set");
            r.warm.remove(&victim);
        }
    }

    /// Cheapest tier from which `replica` can pull a delta, given the
    /// sorted holder list. O(holders); holders are few exactly for the
    /// cold deltas that reach this scan.
    fn nearest_tier(topo: &FleetTopology, replica: usize, holders: &[u32]) -> FetchTier {
        let mut best = FetchTier::ObjectStore;
        for &h in holders {
            let tier = topo.tier_between(replica, h as usize);
            if tier < best {
                best = tier;
                if best == FetchTier::LocalDisk {
                    break;
                }
            }
        }
        best
    }

    /// Routes one request. O(1) for round-robin / p2c, O(log R) for the
    /// hash ring, O(R) for the global scan.
    #[allow(clippy::too_many_arguments)]
    fn route_one(
        &mut self,
        req: &Request,
        now: f64,
        replicas: &[FleetReplica],
        on_disk: &[Vec<bool>],
        rng: &mut Rng,
        rr_cursor: &mut usize,
        ring: &mut Vec<(u64, u32)>,
        ring_dirty: &mut bool,
    ) -> usize {
        let n = replicas.len();
        let cost = |r: usize| -> f64 {
            let rep = &replicas[r];
            let backlog = (rep.busy_until - now).max(0.0);
            let miss = if rep.warm.contains_key(&req.model) {
                0.0
            } else if on_disk[r][req.model] {
                self.config
                    .topology
                    .fetch_time_s(FetchTier::LocalDisk, self.config.delta_bytes)
            } else {
                // Flat remote penalty: cheap to compute, pessimistic
                // enough to prefer any disk holder.
                self.config
                    .topology
                    .fetch_time_s(FetchTier::ObjectStore, self.config.delta_bytes)
            };
            backlog + miss
        };
        match &mut self.router {
            FleetRouter::RoundRobin => {
                for _ in 0..n {
                    let r = *rr_cursor % n;
                    *rr_cursor += 1;
                    if replicas[r].alive {
                        return r;
                    }
                }
                unreachable!("route_one requires a live replica");
            }
            FleetRouter::PowerOfTwo { .. } => {
                // Rejection-sample two live replicas (bounded), compare.
                let pick = |rng: &mut Rng| -> usize {
                    for _ in 0..64 {
                        let r = (rng.next_u64() % n as u64) as usize;
                        if replicas[r].alive {
                            return r;
                        }
                    }
                    replicas
                        .iter()
                        .position(|r| r.alive)
                        .expect("route_one requires a live replica")
                };
                let a = pick(rng);
                let b = pick(rng);
                if cost(b) < cost(a) {
                    b
                } else {
                    a
                }
            }
            FleetRouter::ConsistentHash { vnodes } => {
                let vnodes = (*vnodes).max(1);
                if *ring_dirty {
                    ring.clear();
                    for (r, rep) in replicas.iter().enumerate() {
                        if !rep.alive {
                            continue;
                        }
                        for v in 0..vnodes {
                            ring.push((splitmix64((r as u64) << 20 | v as u64), r as u32));
                        }
                    }
                    ring.sort_unstable();
                    *ring_dirty = false;
                }
                debug_assert!(!ring.is_empty(), "ring rebuilt with live replicas");
                let h = splitmix64(0xC0FF_EE00 ^ req.model as u64);
                let i = ring.partition_point(|&(rh, _)| rh < h);
                ring[i % ring.len()].1 as usize
            }
            FleetRouter::GlobalLeastCost => (0..n)
                .filter(|&r| replicas[r].alive)
                .min_by(|&a, &b| cost(a).total_cmp(&cost(b)).then(a.cmp(&b)))
                .expect("route_one requires a live replica"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_workload::{PopularityDist, TraceSpec};

    fn small_trace(seed: u64) -> Trace {
        Trace::generate_fast(TraceSpec {
            n_models: 32,
            arrival_rate: 12.0,
            duration_s: 60.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed,
        })
    }

    fn plan_for(trace: &Trace, n: usize) -> PlacementPlan {
        PlacementPlan::from_weights(
            &PopularityDist::Zipf { alpha: 1.2 }.weights(trace.spec.n_models),
            n,
        )
    }

    #[test]
    fn topology_tiers_order_and_price_correctly() {
        let topo = FleetTopology::default();
        // Replicas 0 and 1 share a rack; 0 and 16 share a region only;
        // 0 and 16*8 are cross-region.
        assert_eq!(topo.tier_between(0, 0), FetchTier::LocalDisk);
        assert_eq!(topo.tier_between(0, 1), FetchTier::PeerRack);
        assert_eq!(topo.tier_between(0, 16), FetchTier::PeerRegion);
        assert_eq!(topo.tier_between(0, 16 * 8), FetchTier::CrossRegion);
        let bytes = 1 << 30;
        let mut last = 0.0;
        for tier in [
            FetchTier::LocalDisk,
            FetchTier::PeerRack,
            FetchTier::PeerRegion,
            FetchTier::CrossRegion,
            FetchTier::ObjectStore,
        ] {
            let t = topo.fetch_time_s(tier, bytes);
            assert!(t > last, "{tier:?} must cost more than the tier below");
            last = t;
        }
    }

    #[test]
    fn fleet_serves_every_request_and_is_deterministic() {
        let tr = small_trace(7);
        for router in [
            FleetRouter::RoundRobin,
            FleetRouter::PowerOfTwo { seed: 1 },
            FleetRouter::ConsistentHash { vnodes: 16 },
            FleetRouter::GlobalLeastCost,
        ] {
            let run = |router: FleetRouter| {
                let mut cfg = FleetConfig::new(8);
                cfg.record_events = true;
                let plan = plan_for(&tr, 8);
                FleetSim::new(cfg, plan, router).run(&tr)
            };
            let a = run(router.clone());
            let b = run(router);
            assert_eq!(a.served + a.shed, tr.len(), "{}", a.router);
            assert_eq!(a.shed, 0);
            assert!(a.p99_e2e_s >= a.p50_e2e_s && a.p50_e2e_s > 0.0);
            assert_eq!(
                a.event_log.as_deref(),
                b.event_log.as_deref(),
                "same seed must replay identically ({})",
                a.router
            );
        }
    }

    #[test]
    fn object_store_miss_then_edge_hits() {
        // One replica, tiny plan covering no models: every first touch is
        // an object-store pull, repeats are warm or local-disk.
        let tr = small_trace(11);
        let mut cfg = FleetConfig::new(1);
        cfg.prefetch_homes = false;
        let plan = PlacementPlan::from_weights(&[], 1);
        let rep = FleetSim::new(cfg, plan, FleetRouter::RoundRobin).run(&tr);
        assert!(rep.fetches.object_store > 0);
        assert_eq!(
            rep.fetches.peer_rack + rep.fetches.peer_region + rep.fetches.cross_region,
            0
        );
        // Each model pays the object store at most once: the pull
        // edge-replicates to the local disk.
        assert!(rep.fetches.object_store as usize <= tr.spec.n_models);
        assert!(rep.warm_hits + rep.fetches.local_disk > 0);
    }

    #[test]
    fn faults_lose_warmth_but_not_disk() {
        let tr = small_trace(13);
        let mut cfg = FleetConfig::new(4);
        cfg.faults = vec![FleetFault {
            at: 20.0,
            replica: 0,
            down_s: 5.0,
        }];
        cfg.record_events = true;
        let plan = plan_for(&tr, 4);
        let rep = FleetSim::new(cfg, plan, FleetRouter::PowerOfTwo { seed: 3 }).run(&tr);
        assert_eq!(rep.served + rep.shed, tr.len());
        assert_eq!(rep.shed, 0, "three live replicas remain during the outage");
        let log = rep.event_log.expect("recording enabled");
        // Kill and restart both appear, in order, at the right times.
        let faults: Vec<&FleetLogEntry> = log.iter().filter(|e| e.class == CLASS_FAULT).collect();
        assert_eq!(faults.len(), 2);
        assert!((faults[0].at - 20.0).abs() < 1e-9);
        assert!((faults[1].at - 25.0).abs() < 1e-9);
    }

    #[test]
    fn autoscaler_activates_dormant_capacity_under_load() {
        let tr = Trace::generate_fast(TraceSpec {
            n_models: 16,
            arrival_rate: 40.0,
            duration_s: 30.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed: 17,
        });
        let mut cfg = FleetConfig::new(8);
        // Start with half the fleet drained via an immediate tick policy:
        // high load must activate dormant replicas.
        cfg.autoscale = Some(FleetAutoscale {
            interval_s: 1.0,
            hi_backlog_s: 0.5,
            lo_backlog_s: 0.01,
            min_live: 2,
        });
        cfg.faults = (4..8)
            .map(|r| FleetFault {
                at: 0.0,
                replica: r,
                down_s: 1e9, // never restarts on its own
            })
            .collect();
        let plan = plan_for(&tr, 8);
        let rep = FleetSim::new(cfg, plan, FleetRouter::PowerOfTwo { seed: 5 }).run(&tr);
        assert_eq!(rep.served + rep.shed, tr.len());
        assert!(rep.peak_live > 4, "autoscaler must add capacity");
    }

    #[test]
    fn consistent_hash_gives_affinity() {
        let tr = small_trace(23);
        let mut cfg = FleetConfig::new(16);
        cfg.prefetch_homes = false;
        let plan = PlacementPlan::from_weights(&[], 16);
        let rep = FleetSim::new(cfg, plan, FleetRouter::ConsistentHash { vnodes: 32 }).run(&tr);
        // Affinity: each model lands on exactly one replica, so total
        // misses are bounded by models + warm evictions, far below the
        // round-robin scatter.
        let mut cfg2 = FleetConfig::new(16);
        cfg2.prefetch_homes = false;
        let plan2 = PlacementPlan::from_weights(&[], 16);
        let rr = FleetSim::new(cfg2, plan2, FleetRouter::RoundRobin).run(&tr);
        assert!(
            rep.fetches.total() < rr.fetches.total(),
            "hash affinity {} must out-hit round-robin {}",
            rep.fetches.total(),
            rr.fetches.total()
        );
    }
}
