//! Runtime request state shared by all engines.

use crate::variant::VariantKind;
use dz_trace::Causes;
use dz_workload::Request;

/// Lifecycle phase of a request inside an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// In the queue, not yet scheduled.
    Queued,
    /// Admitted; prompt not yet processed.
    Admitted,
    /// Decoding tokens.
    Running,
    /// All output tokens produced.
    Finished,
}

/// Mutable per-request simulation state.
#[derive(Debug, Clone)]
pub struct ReqState {
    /// The immutable trace request.
    pub req: Request,
    /// Variant kind the request's model is served as (engines with a
    /// [`VariantCatalog`](crate::variant::VariantCatalog) stamp this at
    /// admission; the default is the legacy delta-only kind).
    pub kind: VariantKind,
    /// Current phase.
    pub phase: Phase,
    /// Tokens decoded so far.
    pub tokens_done: usize,
    /// Time the prompt finished processing (TTFT reference: first token).
    pub first_token_at: Option<f64>,
    /// Completion time.
    pub finished_at: Option<f64>,
    /// Time spent waiting in queue before first admission.
    pub first_admitted_at: Option<f64>,
    /// Seconds of delta/model loading this request waited on.
    pub load_wait_s: f64,
    /// Number of times the request was preempted.
    pub preemptions: usize,
    /// Queue id of the parent request (skip-the-line bookkeeping).
    pub parent: Option<usize>,
    /// Critical-path cause ledger (filled by engines that attribute).
    pub causes: Causes,
    /// High-water mark of attributed time: engines accrue
    /// `now - accounted_until` to a cause, then advance this, so the
    /// ledger telescopes to `finished_at - arrival` exactly.
    pub accounted_until: f64,
}

impl ReqState {
    /// Wraps a trace request.
    pub fn new(req: Request) -> Self {
        let arrival = req.arrival;
        ReqState {
            req,
            kind: VariantKind::Delta,
            phase: Phase::Queued,
            tokens_done: 0,
            first_token_at: None,
            finished_at: None,
            first_admitted_at: None,
            load_wait_s: 0.0,
            preemptions: 0,
            parent: None,
            causes: Causes::default(),
            accounted_until: arrival,
        }
    }

    /// Accrues the unaccounted interval up to `now` via `f` (which picks
    /// the cause field), then advances the high-water mark.
    pub fn accrue(&mut self, now: f64, f: impl FnOnce(&mut Causes, f64)) {
        let dt = now - self.accounted_until;
        if dt > 0.0 {
            f(&mut self.causes, dt);
        }
        self.accounted_until = now;
    }

    /// Whether decoding has produced every output token.
    pub fn done(&self) -> bool {
        self.tokens_done >= self.req.output_tokens
    }

    /// Marks admission (idempotent for preempt/resume cycles).
    pub fn admit(&mut self, now: f64) {
        if self.first_admitted_at.is_none() {
            self.first_admitted_at = Some(now);
        }
        self.phase = Phase::Admitted;
    }

    /// Records the first decoded token.
    pub fn record_first_token(&mut self, now: f64) {
        if self.first_token_at.is_none() {
            self.first_token_at = Some(now);
        }
    }

    /// Marks completion.
    pub fn finish(&mut self, now: f64) {
        debug_assert!(self.done());
        self.phase = Phase::Finished;
        self.finished_at = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request {
            id: 0,
            model: 1,
            arrival: 2.0,
            prompt_tokens: 10,
            output_tokens: 3,
        }
    }

    #[test]
    fn lifecycle_progresses() {
        let mut s = ReqState::new(req());
        assert_eq!(s.phase, Phase::Queued);
        s.admit(3.0);
        assert_eq!(s.first_admitted_at, Some(3.0));
        s.record_first_token(3.5);
        s.tokens_done = 3;
        assert!(s.done());
        s.finish(4.0);
        assert_eq!(s.phase, Phase::Finished);
        assert_eq!(s.finished_at, Some(4.0));
    }

    #[test]
    fn first_events_are_sticky() {
        let mut s = ReqState::new(req());
        s.admit(3.0);
        s.admit(9.0);
        assert_eq!(s.first_admitted_at, Some(3.0));
        s.record_first_token(5.0);
        s.record_first_token(8.0);
        assert_eq!(s.first_token_at, Some(5.0));
    }
}
