//! Scheduler policy knobs of the DeltaZip engine.
//!
//! The paper ships one starvation rule (preempt line-skippers when their
//! parent finishes, §5.4) and one resume mechanism (swap intermediate state
//! to CPU memory, §5.4), and flags both as future work in §8: preempting a
//! request that is about to finish is wasted work, and recomputing from
//! scratch may beat swap-and-resume. These enums make each choice explicit
//! so the ablation experiments can sweep them.

/// When line-skipping requests are preempted (§5.4 / §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptionPolicy {
    /// Never preempt — the "FCFS + skip-the-line" arm of Figure 19.
    Never,
    /// Preempt all children of a finished parent (the paper's rule).
    ParentFinish,
    /// Like [`PreemptionPolicy::ParentFinish`], but spare children whose
    /// estimated remaining output is at most `spare_tokens` (§8's output
    /// length prediction fix). The estimate comes from the engine's
    /// [`crate::predictor::LengthEstimator`].
    LengthAware {
        /// Children predicted to finish within this many more tokens keep
        /// their slots.
        spare_tokens: usize,
    },
}

impl PreemptionPolicy {
    /// Whether this policy ever preempts.
    pub fn enabled(&self) -> bool {
        !matches!(self, PreemptionPolicy::Never)
    }
}

/// How a preempted request's state is restored on re-admission (§5.4 / §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumePolicy {
    /// Swap the KV cache to host memory on preemption and back on resume:
    /// the resume charge is a PCIe transfer of the request's KV state.
    /// This is what the paper's implementation does.
    #[default]
    SwapToHost,
    /// Drop the KV cache and recompute it on resume: the resume charge is
    /// a prefill over prompt plus already-generated tokens.
    Recompute,
    /// Per-request, whichever of swap-in or recompute the cost model says
    /// is cheaper (§8's "whether and when recomputing from scratch may be
    /// faster than swap-and-resume").
    CostBased,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_matches_variants() {
        assert!(!PreemptionPolicy::Never.enabled());
        assert!(PreemptionPolicy::ParentFinish.enabled());
        assert!(PreemptionPolicy::LengthAware { spare_tokens: 8 }.enabled());
    }

    #[test]
    fn resume_default_is_the_papers_mechanism() {
        assert_eq!(ResumePolicy::default(), ResumePolicy::SwapToHost);
    }
}
