//! Punica/S-LoRA-style adapter serving (the PEFT side of Figure 14/15).
//!
//! Adapters are orders of magnitude smaller than deltas, so they all live
//! in GPU memory; every request batches into the shared base pass plus an
//! SGMV adapter product. The engine is therefore DeltaZip's scheduler minus
//! swapping and the delta-capacity cap.
//!
//! Setting [`LoraServingConfig::sparse_density`] above zero serves
//! RoSA-style adapters (§8: low-rank pairs plus an unstructured sparse
//! component), which LoRA-only systems cannot host; the sparse part adds
//! per-adapter weight traffic and a gather-SpMM to every iteration.

use crate::cost::CostModel;
use crate::metrics::{Metrics, ToppingsStats};
use crate::request::{Phase, ReqState};
use crate::variant::VariantKind;
use crate::Engine;
use dz_workload::Trace;
use std::collections::BTreeSet;

/// LoRA serving parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoraServingConfig {
    /// Adapter rank.
    pub rank: usize,
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Density of the RoSA sparse component (fraction of non-zeros per
    /// adapted projection); `0.0` serves plain LoRA adapters.
    pub sparse_density: f64,
}

impl Default for LoraServingConfig {
    fn default() -> Self {
        LoraServingConfig {
            rank: 16,
            max_batch: 48,
            sparse_density: 0.0,
        }
    }
}

impl LoraServingConfig {
    /// A RoSA configuration: rank plus a sparse component density.
    pub fn rosa(rank: usize, sparse_density: f64) -> Self {
        LoraServingConfig {
            rank,
            sparse_density,
            ..LoraServingConfig::default()
        }
    }
}

/// The adapter-serving engine.
pub struct LoraEngine {
    /// Cost model.
    pub cost: CostModel,
    /// Configuration.
    pub config: LoraServingConfig,
}

impl LoraEngine {
    /// Creates the engine.
    #[deprecated(
        since = "0.6.0",
        note = "use `EngineBuilder::new(cost).adapters(config).build_adapter_only()` instead"
    )]
    pub fn new(cost: CostModel, config: LoraServingConfig) -> Self {
        crate::builder::EngineBuilder::new(cost)
            .adapters(config)
            .build_adapter_only()
    }
}

impl Engine for LoraEngine {
    fn label(&self) -> String {
        if self.config.sparse_density > 0.0 {
            format!(
                "RoSA(r={},d={})",
                self.config.rank, self.config.sparse_density
            )
        } else {
            format!("LoRA(r={})", self.config.rank)
        }
    }

    fn run(&mut self, trace: &Trace) -> Metrics {
        let cost = self.cost;
        let mut states: Vec<ReqState> = trace.requests.iter().cloned().map(ReqState::new).collect();
        // Every model on this engine is an adapter variant.
        for s in &mut states {
            s.kind = VariantKind::Lora {
                rank: self.config.rank,
            };
        }
        let mut toppings = ToppingsStats::default();
        let mut queue: BTreeSet<usize> = BTreeSet::new();
        let mut running: Vec<usize> = Vec::new();
        let mut next_arrival = 0usize;
        let mut t = 0.0f64;
        loop {
            while next_arrival < states.len() && states[next_arrival].req.arrival <= t {
                queue.insert(next_arrival);
                next_arrival += 1;
            }
            if running.is_empty() && queue.is_empty() {
                if next_arrival >= states.len() {
                    break;
                }
                t = states[next_arrival].req.arrival;
                continue;
            }
            // Admit FCFS up to the batch cap; all adapters are resident.
            while running.len() < self.config.max_batch {
                let Some(&qid) = queue.iter().next() else {
                    break;
                };
                queue.remove(&qid);
                // Attribute the wait ending here (adapter serving never
                // preempts, so this is always initial queueing).
                states[qid].accrue(t, |c, dt| c.queue_s += dt);
                states[qid].admit(t);
                running.push(qid);
            }
            let prompt_tokens: usize = running
                .iter()
                .filter(|&&rid| states[rid].phase == Phase::Admitted)
                .map(|&rid| states[rid].req.prompt_tokens)
                .sum();
            if prompt_tokens > 0 {
                t += cost.prefill_time(prompt_tokens);
            }
            for &rid in &running {
                if states[rid].phase == Phase::Admitted {
                    states[rid].phase = Phase::Running;
                }
            }
            // One decode iteration.
            let mut reqs_per_adapter = vec![0usize; trace.spec.n_models];
            for &rid in &running {
                reqs_per_adapter[states[rid].req.model] += 1;
            }
            t += cost.rosa_decode_iter(
                &reqs_per_adapter,
                self.config.rank,
                self.config.sparse_density,
            );
            toppings.batches += 1;
            let distinct = reqs_per_adapter.iter().filter(|&&n| n > 0).count();
            toppings.max_toppings_in_batch = toppings.max_toppings_in_batch.max(distinct);
            for &rid in &running {
                states[rid].tokens_done += 1;
                states[rid].record_first_token(t);
                // Everything since the accounting boundary was this
                // iteration's prefill + decode.
                states[rid].accrue(t, |c, dt| c.decode_s += dt);
            }
            running.retain(|&rid| {
                if states[rid].done() {
                    states[rid].finish(t);
                    false
                } else {
                    true
                }
            });
        }
        toppings.lora_reqs = states.len();
        Metrics::from_states(self.label(), &states, t).with_toppings(toppings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deltazip::{DeltaZipConfig, DeltaZipEngine};
    use crate::vllm_scb::{VllmScbConfig, VllmScbEngine};
    use dz_gpusim::shapes::ModelShape;
    use dz_gpusim::spec::NodeSpec;
    use dz_workload::{PopularityDist, Trace, TraceSpec};

    fn trace(rate: f64, seed: u64) -> Trace {
        Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: rate,
            duration_s: 60.0,
            popularity: PopularityDist::Uniform,
            seed,
        })
    }

    fn cost() -> CostModel {
        CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
    }

    fn lora(config: LoraServingConfig) -> LoraEngine {
        crate::builder::EngineBuilder::new(cost())
            .adapters(config)
            .build_adapter_only()
    }

    #[test]
    fn serves_everything_with_no_load_waits() {
        let tr = trace(1.0, 1);
        let m = lora(LoraServingConfig::default()).run(&tr);
        assert_eq!(m.len(), tr.len());
        assert!(m.records.iter().all(|r| r.load_s == 0.0));
    }

    #[test]
    fn figure15_ordering_lora_fastest_fullmodel_slowest() {
        let tr = trace(1.5, 2);
        let lora = lora(LoraServingConfig::default()).run(&tr);
        let dz = DeltaZipEngine::new(cost(), DeltaZipConfig::default()).run(&tr);
        let vllm = VllmScbEngine::new(cost(), VllmScbConfig::default()).run(&tr);
        assert!(
            lora.mean_e2e() <= dz.mean_e2e() * 1.05,
            "lora {} vs dz {}",
            lora.mean_e2e(),
            dz.mean_e2e()
        );
        assert!(
            dz.mean_e2e() < vllm.mean_e2e(),
            "dz {} vs vllm {}",
            dz.mean_e2e(),
            vllm.mean_e2e()
        );
    }

    #[test]
    fn higher_rank_is_slightly_slower() {
        let tr = trace(2.0, 3);
        let r16 = lora(LoraServingConfig {
            rank: 16,
            ..LoraServingConfig::default()
        })
        .run(&tr);
        let r64 = lora(LoraServingConfig {
            rank: 64,
            ..LoraServingConfig::default()
        })
        .run(&tr);
        assert!(
            r16.mean_e2e() <= r64.mean_e2e() * 1.01,
            "r16 {} vs r64 {}",
            r16.mean_e2e(),
            r64.mean_e2e()
        );
    }

    #[test]
    fn rosa_serving_sits_between_lora_and_delta() {
        // §8's point: RoSA adapters are servable on the adapter path and
        // cost more than plain LoRA, yet stay well under compressed-delta
        // FMT serving.
        let tr = trace(1.5, 4);
        let rosa = lora(LoraServingConfig::rosa(16, 0.01)).run(&tr);
        let lora = lora(LoraServingConfig::default()).run(&tr);
        let dz = DeltaZipEngine::new(cost(), DeltaZipConfig::default()).run(&tr);
        assert_eq!(rosa.len(), tr.len());
        assert!(
            rosa.mean_e2e() >= lora.mean_e2e(),
            "rosa {} should not undercut lora {}",
            rosa.mean_e2e(),
            lora.mean_e2e()
        );
        assert!(
            rosa.mean_e2e() < dz.mean_e2e() * 1.5,
            "rosa {} should stay near adapter-serving costs, dz {}",
            rosa.mean_e2e(),
            dz.mean_e2e()
        );
    }

    #[test]
    fn rosa_label_reflects_density() {
        let e = lora(LoraServingConfig::rosa(8, 0.02));
        assert_eq!(e.label(), "RoSA(r=8,d=0.02)");
        let plain = lora(LoraServingConfig::default());
        assert_eq!(plain.label(), "LoRA(r=16)");
    }
}
