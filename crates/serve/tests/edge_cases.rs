//! Pathological workloads the schedulers must survive.

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{
    CostModel, DeltaZipConfig, DeltaZipEngine, Engine, PreemptionPolicy, VllmScbConfig,
    VllmScbEngine,
};
use dz_workload::{PopularityDist, Request, Trace, TraceSpec};

fn cost() -> CostModel {
    CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
}

fn spec(n_models: usize) -> TraceSpec {
    TraceSpec {
        n_models,
        arrival_rate: 1.0,
        duration_s: 10.0,
        popularity: PopularityDist::Uniform,
        seed: 0,
    }
}

fn req(id: usize, model: usize, arrival: f64) -> Request {
    Request {
        id,
        model,
        arrival,
        prompt_tokens: 16,
        output_tokens: 8,
    }
}

#[test]
fn simultaneous_arrival_burst() {
    // Everyone arrives at t=0 across 16 models; both engines must drain.
    let requests: Vec<Request> = (0..64).map(|i| req(i, i % 16, 0.0)).collect();
    let trace = Trace {
        spec: spec(16),
        requests,
    };
    let dz = DeltaZipEngine::new(cost(), DeltaZipConfig::default()).run(&trace);
    assert_eq!(dz.len(), 64);
    let vllm = VllmScbEngine::new(cost(), VllmScbConfig::default()).run(&trace);
    assert_eq!(vllm.len(), 64);
    assert!(dz.mean_e2e() < vllm.mean_e2e());
}

#[test]
fn single_model_workload_preemption_is_a_noop() {
    // With one variant nobody can starve (there is no other delta to wait
    // for), so preemption must never trigger and results are identical.
    let requests: Vec<Request> = (0..20).map(|i| req(i, 0, i as f64 * 0.3)).collect();
    let trace = Trace {
        spec: spec(1),
        requests,
    };
    let on = DeltaZipEngine::new(cost(), DeltaZipConfig::default()).run(&trace);
    let off = DeltaZipEngine::new(
        cost(),
        DeltaZipConfig {
            preemption: PreemptionPolicy::Never,
            ..DeltaZipConfig::default()
        },
    )
    .run(&trace);
    assert_eq!(on.mean_e2e(), off.mean_e2e());
    assert_eq!(on.makespan_s, off.makespan_s);
    assert!(on.records.iter().all(|r| r.preemptions == 0));
}

#[test]
fn one_request_per_model_many_models() {
    // 64 models, one request each: maximal swap pressure.
    let requests: Vec<Request> = (0..64).map(|i| req(i, i, i as f64 * 0.05)).collect();
    let trace = Trace {
        spec: spec(64),
        requests,
    };
    let dz = DeltaZipEngine::new(
        cost(),
        DeltaZipConfig {
            max_concurrent_deltas: 8,
            ..DeltaZipConfig::default()
        },
    )
    .run(&trace);
    assert_eq!(dz.len(), 64);
    // Every request needed a cold delta load at least once.
    assert!(dz.records.iter().all(|r| r.load_s > 0.0));
}

#[test]
fn single_token_outputs() {
    let requests: Vec<Request> = (0..8)
        .map(|i| Request {
            id: i,
            model: i % 2,
            arrival: i as f64 * 0.1,
            prompt_tokens: 1,
            output_tokens: 1,
        })
        .collect();
    let trace = Trace {
        spec: spec(2),
        requests,
    };
    let m = DeltaZipEngine::new(cost(), DeltaZipConfig::default()).run(&trace);
    assert_eq!(m.len(), 8);
    for r in &m.records {
        assert!(r.ttft_s > 0.0 && (r.e2e_s - r.ttft_s).abs() < 1e-9);
    }
}

#[test]
fn tiny_batch_cap_still_drains() {
    let requests: Vec<Request> = (0..30).map(|i| req(i, i % 5, 0.0)).collect();
    let trace = Trace {
        spec: spec(5),
        requests,
    };
    let m = DeltaZipEngine::new(
        cost(),
        DeltaZipConfig {
            max_batch: 1,
            max_concurrent_deltas: 1,
            ..DeltaZipConfig::default()
        },
    )
    .run(&trace);
    assert_eq!(m.len(), 30);
}

#[test]
fn huge_outputs_do_not_starve_short_ones() {
    // One long-running request plus a stream of short ones for another
    // model; the short ones must not wait for the long one to finish.
    let mut requests = vec![Request {
        id: 0,
        model: 0,
        arrival: 0.0,
        prompt_tokens: 32,
        output_tokens: 2000,
    }];
    for i in 1..12 {
        requests.push(Request {
            id: i,
            model: 1,
            arrival: 0.2 * i as f64,
            prompt_tokens: 8,
            output_tokens: 8,
        });
    }
    let trace = Trace {
        spec: spec(2),
        requests,
    };
    let m = DeltaZipEngine::new(cost(), DeltaZipConfig::default()).run(&trace);
    let long = &m.records.iter().find(|r| r.id == 0).unwrap();
    let shorts: Vec<_> = m.records.iter().filter(|r| r.id != 0).collect();
    assert!(shorts.iter().all(|r| r.e2e_s < long.e2e_s / 4.0));
}
