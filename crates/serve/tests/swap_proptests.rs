//! Property tests for the bandwidth-shared transfer timeline: concurrent
//! in-flight loads never finish earlier than bandwidth sharing allows,
//! and overlapped loading never loses to the legacy serial-sum charge.

use dz_serve::swap::{LoadKind, LoadProfile, TransferTimeline};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = LoadProfile> {
    (
        0.0f64..0.1,
        0.0f64..5.0,
        0.0f64..5.0,
        0.0f64..2.0,
        0.0f64..6.0,
    )
        .prop_map(|(head_s, disk_s, pcie_s, tail_s, floor_s)| LoadProfile {
            head_s,
            disk_s,
            pcie_s,
            tail_s,
            floor_s,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_loads_respect_bandwidth_sharing(
        profiles in proptest::collection::vec(arb_profile(), 1..8),
    ) {
        let mut tl = TransferTimeline::new();
        for (i, p) in profiles.iter().enumerate() {
            tl.start(*p, LoadKind::Demand { delta: i });
        }
        let adv = tl.advance_to(f64::INFINITY);
        prop_assert_eq!(adv.completions.len(), profiles.len());

        // Lower bounds: each channel moves one solo-second of work per
        // wall second, so the last landing cannot beat either channel's
        // total work — and no load can beat its own uncontended time.
        let last = adv.completions.iter().map(|c| c.at).fold(0.0, f64::max);
        let total_disk: f64 = profiles.iter().map(|p| p.disk_s).sum();
        let total_pcie: f64 = profiles.iter().map(|p| p.pcie_s).sum();
        prop_assert!(last + 1e-9 >= total_disk, "last {last} < disk total {total_disk}");
        prop_assert!(last + 1e-9 >= total_pcie, "last {last} < pcie total {total_pcie}");
        for c in &adv.completions {
            let solo = profiles[c.kind.delta()].solo_s();
            prop_assert!(
                c.at + 1e-9 >= solo,
                "load {} landed at {} before its solo time {solo}",
                c.kind.delta(),
                c.at
            );
        }

        // Upper bound: sharing the channels can never be slower than the
        // legacy serialized charge (running every load back to back), so
        // no request's stall under overlap exceeds the old serial sum.
        let serial_sum: f64 = profiles.iter().map(|p| p.solo_s()).sum();
        prop_assert!(
            last <= serial_sum + 1e-9,
            "last landing {last} exceeds the serial-sum charge {serial_sum}"
        );

        // Busy accounting: the timeline was busy from start to last
        // landing (all loads started at t=0), never longer.
        prop_assert!(adv.busy_s <= last + 1e-9);
    }

    #[test]
    fn piecewise_advance_matches_single_advance(
        profiles in proptest::collection::vec(arb_profile(), 1..6),
        cuts in proptest::collection::vec(0.01f64..4.0, 1..6),
    ) {
        // Advancing in arbitrary increments must land every load at the
        // same instant as one big advance (the engine advances per decode
        // iteration; timing must not depend on iteration boundaries).
        let mut one = TransferTimeline::new();
        let mut many = TransferTimeline::new();
        for (i, p) in profiles.iter().enumerate() {
            one.start(*p, LoadKind::Demand { delta: i });
            many.start(*p, LoadKind::Demand { delta: i });
        }
        let big = one.advance_to(f64::INFINITY);

        let mut t = 0.0;
        let mut landings: Vec<(usize, f64)> = Vec::new();
        for dt in &cuts {
            t += dt;
            for c in many.advance_to(t).completions {
                landings.push((c.kind.delta(), c.at));
            }
        }
        for c in many.advance_to(f64::INFINITY).completions {
            landings.push((c.kind.delta(), c.at));
        }
        prop_assert_eq!(landings.len(), big.completions.len());
        landings.sort_by_key(|&(d, _)| d);
        let mut expect: Vec<(usize, f64)> =
            big.completions.iter().map(|c| (c.kind.delta(), c.at)).collect();
        expect.sort_by_key(|&(d, _)| d);
        for ((d1, at1), (d2, at2)) in landings.iter().zip(&expect) {
            prop_assert_eq!(d1, d2);
            prop_assert!((at1 - at2).abs() < 1e-6, "load {d1}: {at1} vs {at2}");
        }
    }
}
