//! Cluster routing over store-bound replicas: each replica owns a
//! `TieredDeltaStore` budget, and placement-aware routing must turn the
//! fleet's disjoint host caches into fewer disk loads than spraying
//! requests round-robin.

use dz_compress::codec::{CodecId, PackedLayer};
use dz_compress::pack::CompressedMatrix;
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::quant::{quantize_slice, QuantSpec};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::cluster::{
    ClusterConfig, ClusterSim, PlacementAwareRouter, PlacementPlan, RoundRobinRouter, Router,
};
use dz_serve::{CostModel, DeltaStoreBinding, DeltaZipConfig};
use dz_store::{sha256, ArtifactId, Registry, TieredDeltaStore};
use dz_tensor::{Matrix, Rng};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dz-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn tiny_delta(seed: u64, d: usize) -> CompressedDelta {
    let mut rng = Rng::seeded(seed);
    let spec = QuantSpec::new(4, 8);
    let wt = Matrix::randn(d, d, 0.05, &mut rng);
    let mut levels = Vec::new();
    let mut scales = Vec::new();
    for r in 0..d {
        let (l, s) = quantize_slice(wt.row(r), spec);
        levels.extend(l);
        scales.extend(s);
    }
    let cm = CompressedMatrix::from_dense(d, d, &levels, scales, spec);
    let packed = cm.packed_bytes();
    let mut layers = BTreeMap::new();
    layers.insert("w".to_string(), PackedLayer::Quant(cm));
    CompressedDelta {
        layers,
        rest: BTreeMap::new(),
        codec: CodecId::SparseGptStar,
        config: DeltaCompressConfig::starred(4),
        report: SizeReport {
            compressed_linear_bytes: packed,
            uncompressed_rest_bytes: 0,
            full_fp16_bytes: d * d * 2,
            lossless_linear_bytes: None,
        },
    }
}

fn publish_zoo(registry: &Registry, n: usize) -> Vec<ArtifactId> {
    (0..n)
        .map(|i| {
            registry
                .publish_delta(
                    &format!("variant-{i}"),
                    sha256(b"base"),
                    &tiny_delta(100 + i as u64, 16),
                )
                .expect("publish")
        })
        .collect()
}

/// Runs a 3-replica store-bound cluster under `router`; returns
/// (served, total disk loads, aggregate cache hit rate).
fn run_store_cluster(dir: &PathBuf, router: Box<dyn Router>, trace: &Trace) -> (usize, u64, f64) {
    const N_MODELS: usize = 12;
    const N_REPLICAS: usize = 3;
    let registry = Registry::open(dir).expect("open registry");
    let artifacts = publish_zoo(&registry, N_MODELS);
    let max_size = artifacts
        .iter()
        .map(|id| registry.size_of(id).expect("size"))
        .max()
        .expect("nonempty zoo");
    // Each replica's host cache holds ~5 of the 12 artifacts.
    let bindings: Vec<DeltaStoreBinding> = (0..N_REPLICAS)
        .map(|_| {
            let store = TieredDeltaStore::new(registry.clone(), 5 * max_size);
            DeltaStoreBinding::new(store, artifacts.clone())
        })
        .collect();
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama13b());
    let config = ClusterConfig {
        n_replicas: N_REPLICAS,
        engine: DeltaZipConfig {
            max_concurrent_deltas: 2,
            max_batch: 8,
            ..DeltaZipConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(vec![cost; N_REPLICAS], config, router).with_stores(bindings);
    let report = sim.run(trace);
    assert!(
        sim.bindings().is_some_and(|b| b.len() == N_REPLICAS),
        "bindings must be retrievable after the run"
    );
    let stats = report.store_stats.as_ref().expect("store-bound run");
    assert_eq!(stats.len(), N_REPLICAS);
    let disk: u64 = stats.iter().map(|s| s.disk_loads).sum();
    (
        report.merged.len(),
        disk,
        report.cache_hit_rate().expect("store-bound run"),
    )
}

#[test]
fn store_stats_are_per_run_while_bindings_accumulate() {
    // Two runs of the same trace on one sim: the second report must only
    // carry the second run's loads (mostly host hits, caches warm), while
    // the bindings' cumulative totals equal the sum of both reports.
    let trace = Trace::generate(TraceSpec {
        n_models: 6,
        arrival_rate: 1.0,
        duration_s: 20.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: 43,
    });
    let dir = temp_dir("per-run");
    let registry = Registry::open(&dir).expect("open registry");
    let artifacts = publish_zoo(&registry, 6);
    let bindings = vec![DeltaStoreBinding::new(
        TieredDeltaStore::new(registry, 1 << 30),
        artifacts,
    )];
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama13b());
    let mut sim = ClusterSim::new(
        vec![cost],
        ClusterConfig::replicas(1),
        Box::new(RoundRobinRouter::new()),
    )
    .with_stores(bindings);
    let first = sim.run(&trace);
    let second = sim.run(&trace);
    let s1 = first.store_stats.as_ref().expect("store-bound")[0];
    let s2 = second.store_stats.as_ref().expect("store-bound")[0];
    assert!(s1.disk_loads > 0, "first run must touch disk");
    assert_eq!(s2.disk_loads, 0, "second run is fully host-warm");
    assert!(s2.host_hits > 0);
    let cumulative = sim.bindings().expect("bound")[0].store().total_stats();
    assert_eq!(cumulative.disk_loads, s1.disk_loads + s2.disk_loads);
    assert_eq!(cumulative.host_hits, s1.host_hits + s2.host_hits);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn routing_prefetch_hints_move_real_bytes_in_store_bound_clusters() {
    // Placement-aware routing with cluster prefetch enabled: hints must
    // prewarm artifacts through the stores' budgeted prefetch API, and
    // the prewarms must be visible in the stores' own accounting.
    let trace = Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 2.0,
        duration_s: 40.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: 47,
    });
    const N_REPLICAS: usize = 3;
    let dir = temp_dir("hint");
    let registry = Registry::open(&dir).expect("open registry");
    let artifacts = publish_zoo(&registry, 12);
    let max_size = artifacts
        .iter()
        .map(|id| registry.size_of(id).expect("size"))
        .max()
        .expect("nonempty zoo");
    let bindings: Vec<DeltaStoreBinding> = (0..N_REPLICAS)
        .map(|_| {
            let store = TieredDeltaStore::new(registry.clone(), 5 * max_size);
            DeltaStoreBinding::new(store, artifacts.clone())
        })
        .collect();
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama13b());
    let config = ClusterConfig {
        n_replicas: N_REPLICAS,
        engine: DeltaZipConfig {
            max_concurrent_deltas: 2,
            max_batch: 8,
            ..DeltaZipConfig::default()
        },
        prefetch: Some(dz_serve::ClusterPrefetch::default()),
        ..ClusterConfig::default()
    };
    let plan = PlacementPlan::from_popularity(trace.spec.popularity, 12, N_REPLICAS);
    let mut sim = ClusterSim::new(
        vec![cost; N_REPLICAS],
        config,
        Box::new(PlacementAwareRouter::new(plan)),
    )
    .with_stores(bindings);
    let report = sim.run(&trace);
    assert_eq!(report.merged.len(), trace.len());
    assert!(report.routing.prefetch_hints > 0, "hints must be emitted");
    assert!(report.routing.prefetch_issued > 0, "hints must prewarm");
    let store_prefetches: u64 = sim
        .bindings()
        .expect("bound")
        .iter()
        .map(|b| b.store().total_stats().prefetch_loads)
        .sum();
    assert!(
        store_prefetches > 0,
        "hint prewarms must move real bytes through the stores"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn placement_aware_store_cluster_does_fewer_disk_loads_than_round_robin() {
    let trace = Trace::generate(TraceSpec {
        n_models: 12,
        arrival_rate: 2.0,
        duration_s: 40.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed: 41,
    });
    let dir_rr = temp_dir("rr");
    let dir_pa = temp_dir("pa");
    let (served_rr, disk_rr, hit_rr) =
        run_store_cluster(&dir_rr, Box::new(RoundRobinRouter::new()), &trace);
    let plan = PlacementPlan::from_popularity(trace.spec.popularity, 12, 3);
    let (served_pa, disk_pa, hit_pa) =
        run_store_cluster(&dir_pa, Box::new(PlacementAwareRouter::new(plan)), &trace);
    assert_eq!(served_rr, trace.len());
    assert_eq!(served_pa, trace.len());
    assert!(
        disk_pa <= disk_rr,
        "placement-aware routing must not cause more disk loads: {disk_pa} vs {disk_rr}"
    );
    assert!(
        hit_pa >= hit_rr,
        "placement-aware cache hit rate {hit_pa} must be at least round-robin's {hit_rr}"
    );
    std::fs::remove_dir_all(&dir_rr).ok();
    std::fs::remove_dir_all(&dir_pa).ok();
}
