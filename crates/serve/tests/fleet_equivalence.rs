//! Differential oracle: the event-driven `ClusterSim::run` must
//! reproduce the retained lockstep front end
//! (`ClusterSim::run_lockstep_reference`) **bit-identically** on every
//! small-fleet configuration — plain, admission + prefetch, chaos with
//! and without tracing, engine-level prefetch, and store-bound replicas.
//!
//! Both front ends build the same per-replica assignments and share the
//! replay stage, so any divergence is a front-end event-ordering bug:
//! the unified `(at, class, seq)` heap must pop chaos-before-arrival at
//! equal times and preserve per-class insertion order exactly like the
//! old two-heap loop did.

use dz_compress::codec::{CodecId, PackedLayer};
use dz_compress::pack::CompressedMatrix;
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::quant::{quantize_slice, QuantSpec};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::cluster::{
    AdmissionConfig, ClusterConfig, ClusterPrefetch, ClusterReport, ClusterSim, LeastLoadedRouter,
    PlacementAwareRouter, PlacementPlan, RoundRobinRouter,
};
use dz_serve::{
    ChaosConfig, CostModel, DeltaStoreBinding, DeltaZipConfig, FaultEvent, FaultKind, FaultPlan,
    PrefetchPolicy, SloPolicy, TraceConfig,
};
use dz_store::{sha256, ArtifactId, Registry, TieredDeltaStore};
use dz_tensor::{Matrix, Rng};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use std::collections::BTreeMap;

const N_MODELS: usize = 16;

fn cost() -> CostModel {
    CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b())
}

fn trace(seed: u64, rate: f64, duration_s: f64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: rate,
        duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.3 },
        seed,
    })
}

/// Asserts the two reports are the same run, down to the bit on every
/// float. Time sums get an explicit 1e-9 re-check first so a genuine
/// divergence fails with a readable aggregate before the per-record
/// bit compare pinpoints it.
fn assert_same_report(a: &ClusterReport, b: &ClusterReport, tag: &str) {
    let sum = |m: &dz_serve::Metrics| -> f64 { m.records.iter().map(|r| r.e2e_s).sum() };
    assert!(
        (sum(&a.merged) - sum(&b.merged)).abs() <= 1e-9,
        "{tag}: e2e sums diverge: {} vs {}",
        sum(&a.merged),
        sum(&b.merged)
    );
    assert_eq!(a.merged.len(), b.merged.len(), "{tag}: merged len");
    for (ra, rb) in a.merged.records.iter().zip(&b.merged.records) {
        assert_eq!(ra.id, rb.id, "{tag}: record id");
        assert_eq!(ra.model, rb.model, "{tag}: model of {}", ra.id);
        assert_eq!(
            ra.arrival.to_bits(),
            rb.arrival.to_bits(),
            "{tag}: arrival of {}",
            ra.id
        );
        assert_eq!(
            ra.e2e_s.to_bits(),
            rb.e2e_s.to_bits(),
            "{tag}: e2e of {} ({} vs {})",
            ra.id,
            ra.e2e_s,
            rb.e2e_s
        );
        assert_eq!(
            ra.ttft_s.to_bits(),
            rb.ttft_s.to_bits(),
            "{tag}: ttft of {}",
            ra.id
        );
        assert_eq!(
            ra.queue_s.to_bits(),
            rb.queue_s.to_bits(),
            "{tag}: queue of {}",
            ra.id
        );
        assert_eq!(
            ra.load_s.to_bits(),
            rb.load_s.to_bits(),
            "{tag}: load of {}",
            ra.id
        );
        assert_eq!(
            ra.output_tokens, rb.output_tokens,
            "{tag}: tokens of {}",
            ra.id
        );
        assert_eq!(
            ra.preemptions, rb.preemptions,
            "{tag}: preemptions of {}",
            ra.id
        );
    }
    assert_eq!(
        a.per_replica.len(),
        b.per_replica.len(),
        "{tag}: replica count"
    );
    for (i, (ma, mb)) in a.per_replica.iter().zip(&b.per_replica).enumerate() {
        assert_eq!(ma.len(), mb.len(), "{tag}: replica {i} len");
        assert_eq!(
            sum(ma).to_bits(),
            sum(mb).to_bits(),
            "{tag}: replica {i} e2e sum"
        );
    }
    assert_eq!(a.shed.len(), b.shed.len(), "{tag}: shed count");
    for (sa, sb) in a.shed.iter().zip(&b.shed) {
        assert_eq!(
            (sa.id, sa.model, sa.class),
            (sb.id, sb.model, sb.class),
            "{tag}: shed"
        );
        assert_eq!(
            sa.arrival.to_bits(),
            sb.arrival.to_bits(),
            "{tag}: shed arrival of {}",
            sa.id
        );
    }
    assert_eq!(
        a.routing.per_replica_requests, b.routing.per_replica_requests,
        "{tag}: per-replica routing"
    );
    assert_eq!(
        a.routing.warm_routed, b.routing.warm_routed,
        "{tag}: warm routed"
    );
    assert_eq!(
        a.routing.cold_routed, b.routing.cold_routed,
        "{tag}: cold routed"
    );
    assert_eq!(
        a.routing.placement_misses, b.routing.placement_misses,
        "{tag}: placement misses"
    );
    assert_eq!(
        a.routing.defer_events, b.routing.defer_events,
        "{tag}: defers"
    );
    assert_eq!(a.routing.shed, b.routing.shed, "{tag}: routing shed");
    assert_eq!(
        a.routing.prefetch_hints, b.routing.prefetch_hints,
        "{tag}: prefetch hints"
    );
    assert_eq!(
        a.routing.prefetch_issued, b.routing.prefetch_issued,
        "{tag}: prefetch issued"
    );
    assert_eq!(
        a.routing.prefetch_hits, b.routing.prefetch_hits,
        "{tag}: prefetch hits"
    );
    assert_eq!(a.store_stats, b.store_stats, "{tag}: store stats");
    assert_eq!(a.chaos, b.chaos, "{tag}: chaos stats");
}

/// Runs `build()`'s sim through both front ends (fresh sim each — the
/// router keeps state) and asserts identical reports.
fn differential(tag: &str, tr: &Trace, build: impl Fn() -> ClusterSim) {
    let event_driven = build().run(tr);
    let lockstep = build().run_lockstep_reference(tr);
    assert_same_report(&event_driven, &lockstep, tag);
}

#[test]
fn plain_round_robin_matches_lockstep() {
    let tr = trace(31, 3.0, 40.0);
    differential("rr-2x", &tr, || {
        ClusterSim::new(
            vec![cost(); 2],
            ClusterConfig {
                n_replicas: 2,
                ..ClusterConfig::default()
            },
            Box::new(RoundRobinRouter::new()),
        )
    });
}

#[test]
fn placement_prefetch_admission_matches_lockstep() {
    // The busiest healthy path: placement-aware routing with migrations,
    // routing-time prefetch, and admission control (defer re-pushes ride
    // the same heap as arrivals).
    let tr = trace(37, 6.0, 50.0);
    differential("pa-3x-admission", &tr, || {
        ClusterSim::new(
            vec![cost(); 3],
            ClusterConfig {
                n_replicas: 3,
                engine: DeltaZipConfig {
                    host_capacity_deltas: Some(5),
                    ..DeltaZipConfig::default()
                },
                admission: Some(AdmissionConfig {
                    defer_depth: 4,
                    defer_s: 2.0,
                    max_defers: 3,
                    shed_depth: 12,
                    ..AdmissionConfig::new(SloPolicy::tiered(N_MODELS, 4))
                }),
                prefetch: Some(ClusterPrefetch::default()),
                ..ClusterConfig::default()
            },
            Box::new(PlacementAwareRouter::new(PlacementPlan::from_popularity(
                PopularityDist::Zipf { alpha: 1.3 },
                N_MODELS,
                3,
            ))),
        )
    });
}

fn chaos_config() -> ChaosConfig {
    ChaosConfig::faults(
        FaultPlan::scripted(vec![
            FaultEvent {
                at: 10.0,
                kind: FaultKind::Crash {
                    replica: 0,
                    restart_after_s: Some(8.0),
                },
            },
            FaultEvent {
                at: 25.0,
                kind: FaultKind::Crash {
                    replica: 2,
                    restart_after_s: None,
                },
            },
        ]),
        0xD1FF,
    )
}

#[test]
fn chaos_matches_lockstep() {
    // Crashes requeue in-flight work and schedule restarts: the
    // chaos-before-arrival tie rule and the re-push ordering must match
    // the old two-heap loop exactly.
    let tr = trace(41, 4.0, 60.0);
    differential("chaos-3x", &tr, || {
        ClusterSim::new(
            vec![cost(); 3],
            ClusterConfig {
                n_replicas: 3,
                ..ClusterConfig::default()
            },
            Box::new(RoundRobinRouter::new()),
        )
        .with_chaos(chaos_config())
    });
}

#[test]
fn chaos_with_tracing_matches_lockstep() {
    // Tracing rides the front end (gauges at every arrival) but must not
    // perturb the simulation: traced event-driven == traced lockstep.
    let tr = trace(43, 4.0, 60.0);
    differential("chaos-traced-2x", &tr, || {
        ClusterSim::new(
            vec![cost(); 2],
            ClusterConfig {
                n_replicas: 2,
                ..ClusterConfig::default()
            },
            Box::new(PlacementAwareRouter::new(PlacementPlan::from_popularity(
                PopularityDist::Zipf { alpha: 1.3 },
                N_MODELS,
                2,
            ))),
        )
        .with_chaos(chaos_config())
        .with_tracing(TraceConfig::default())
    });
}

#[test]
fn engine_prefetch_policy_matches_lockstep() {
    let tr = trace(47, 3.0, 40.0);
    differential("ll-prefetch-2x", &tr, || {
        ClusterSim::new(
            vec![cost(); 2],
            ClusterConfig {
                n_replicas: 2,
                prefetch_policy: Some(PrefetchPolicy::Popularity { top_k: 4 }),
                ..ClusterConfig::default()
            },
            Box::new(LeastLoadedRouter::new()),
        )
    });
}

// -- store-bound ----------------------------------------------------------

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dz-fleet-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn tiny_delta(seed: u64, d: usize) -> CompressedDelta {
    let mut rng = Rng::seeded(seed);
    let spec = QuantSpec::new(4, 8);
    let wt = Matrix::randn(d, d, 0.05, &mut rng);
    let mut levels = Vec::new();
    let mut scales = Vec::new();
    for r in 0..d {
        let (l, s) = quantize_slice(wt.row(r), spec);
        levels.extend(l);
        scales.extend(s);
    }
    let cm = CompressedMatrix::from_dense(d, d, &levels, scales, spec);
    let packed = cm.packed_bytes();
    let mut layers = BTreeMap::new();
    layers.insert("w".to_string(), PackedLayer::Quant(cm));
    CompressedDelta {
        layers,
        rest: BTreeMap::new(),
        codec: CodecId::SparseGptStar,
        config: DeltaCompressConfig::starred(4),
        report: SizeReport {
            compressed_linear_bytes: packed,
            uncompressed_rest_bytes: 0,
            full_fp16_bytes: d * d * 2,
            lossless_linear_bytes: None,
        },
    }
}

fn publish_zoo(registry: &Registry, n: usize) -> Vec<ArtifactId> {
    (0..n)
        .map(|i| {
            registry
                .publish_delta(
                    &format!("variant-{i}"),
                    sha256(b"base"),
                    &tiny_delta(900 + i as u64, 16),
                )
                .expect("publish")
        })
        .collect()
}

#[test]
fn store_bound_matches_lockstep() {
    // Store-bound replicas charge real artifact bytes; the replay stage
    // mutates the stores, so each front end gets its own registry copy.
    let tr = trace(53, 3.0, 30.0);
    let build = |tag: &str| {
        let dir = temp_dir(tag);
        let registry = Registry::open(&dir).expect("registry");
        let artifacts = publish_zoo(&registry, N_MODELS);
        let bindings: Vec<DeltaStoreBinding> = (0..2)
            .map(|_| {
                let store = TieredDeltaStore::new(
                    Registry::open(&dir).expect("registry"),
                    64 << 10, // few-delta budget: evictions + disk misses
                );
                DeltaStoreBinding::new(store, artifacts.clone())
            })
            .collect();
        ClusterSim::new(
            vec![cost(); 2],
            ClusterConfig {
                n_replicas: 2,
                prefetch: Some(ClusterPrefetch::default()),
                ..ClusterConfig::default()
            },
            Box::new(PlacementAwareRouter::new(PlacementPlan::from_popularity(
                PopularityDist::Zipf { alpha: 1.3 },
                N_MODELS,
                2,
            ))),
        )
        .with_stores(bindings)
    };
    let event_driven = build("ed").run(&tr);
    let lockstep = build("ls").run_lockstep_reference(&tr);
    assert_same_report(&event_driven, &lockstep, "store-2x");
}
