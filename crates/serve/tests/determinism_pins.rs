//! Golden determinism pins across the HashMap -> BTreeMap container
//! swap (PR 10): each scenario below ran on the pre-swap tree and its
//! per-request floats were folded (via `to_bits`) into one FNV-1a
//! checksum. The constants pin that the deterministic-container
//! conversion in `fleet.rs` / `cluster.rs` / `deltazip.rs` /
//! `predictor.rs` / `tiered.rs` changed **no** simulation result, and
//! that future refactors keep every run replayable bit-for-bit.
//!
//! If a PR changes one of these values *on purpose* (a scheduling or
//! cost-model change), re-pin deliberately: run with
//! `DZ_PRINT_PINS=1 cargo test -p dz-serve --test determinism_pins -- --nocapture`
//! and paste the printed hashes.

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::cluster::{ClusterConfig, ClusterSim, PlacementAwareRouter, PlacementPlan};
use dz_serve::fleet::{FleetConfig, FleetRouter, FleetSim};
use dz_serve::{CostModel, DeltaZipConfig, Engine, EngineBuilder, Metrics, VariantCatalog};
use dz_workload::{PopularityDist, Trace, TraceSpec};

const N_MODELS: usize = 16;

/// FNV-1a over a stream of u64 words — stable, dependency-free way to
/// pin a whole run's worth of floats in one constant.
struct Pin(u64);

impl Pin {
    fn new() -> Self {
        Pin(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        let mut h = self.0;
        for i in 0..8 {
            h ^= (w >> (i * 8)) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }
    fn metrics(&mut self, m: &Metrics) {
        self.word(m.len() as u64);
        self.f64(m.makespan_s);
        for r in &m.records {
            self.word(r.id as u64);
            self.word(r.model as u64);
            self.f64(r.e2e_s);
            self.f64(r.ttft_s);
            self.f64(r.queue_s);
            self.f64(r.load_s);
        }
    }
}

fn check(tag: &str, got: u64, pinned: u64) {
    if std::env::var("DZ_PRINT_PINS").is_ok() {
        println!("const PIN_{}: u64 = 0x{got:016x};", tag.to_uppercase());
        return;
    }
    assert_eq!(
        got, pinned,
        "{tag}: run checksum 0x{got:016x} != pinned 0x{pinned:016x} — \
         a container/ordering change altered simulation results"
    );
}

fn cost() -> CostModel {
    CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b())
}

fn trace(seed: u64, rate: f64, duration_s: f64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: rate,
        duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.3 },
        seed,
    })
}

const PIN_FLEET: u64 = 0x12c99df2cbd0593c;
const PIN_TOPPINGS: u64 = 0x01e21a5090efc51a;
const PIN_CLUSTER: u64 = 0xafbf0b924db84839;

/// Fleet-scale event core: p2c routing over 24 replicas exercises the
/// per-replica warm-set LRU (`FleetReplica::warm`) on every request.
#[test]
fn fleet_run_is_pinned() {
    let tr = trace(7, 40.0, 60.0);
    let weights = PopularityDist::Zipf { alpha: 1.3 }.weights(N_MODELS);
    let plan = PlacementPlan::from_weights(&weights, 24);
    let mut cfg = FleetConfig::new(24);
    cfg.warm_capacity = 3; // small cap => constant LRU eviction churn
    let report = FleetSim::new(cfg, plan, FleetRouter::PowerOfTwo { seed: 99 }).run(&tr);
    let mut pin = Pin::new();
    pin.word(report.served as u64);
    pin.word(report.warm_hits);
    pin.word(report.fetches.local_disk);
    pin.word(report.fetches.object_store);
    pin.f64(report.mean_e2e_s);
    pin.f64(report.p99_e2e_s);
    pin.f64(report.makespan_s);
    check("fleet", pin.0, PIN_FLEET);
}

/// Toppings engine: interleaved base/LoRA/delta/stacked catalog with a
/// tight host cap exercises `evict_gpu_lru` / `enforce_host_cap` (the
/// LRU scans that used to iterate HashMaps).
#[test]
fn toppings_run_is_pinned() {
    let tr = trace(11, 1.2, 90.0);
    let cfg = DeltaZipConfig {
        max_concurrent_deltas: 3,
        host_capacity_deltas: Some(4),
        max_toppings_per_batch: Some(5),
        ..DeltaZipConfig::default()
    };
    let m = EngineBuilder::new(cost())
        .scheduler(cfg)
        .catalog(VariantCatalog::interleaved(N_MODELS, 16))
        .build()
        .run(&tr);
    let mut pin = Pin::new();
    pin.metrics(&m);
    check("toppings", pin.0, PIN_TOPPINGS);
}

/// Cluster front end: placement-aware routing exercises the predicted
/// warm-set LRU (`ReplicaFrontendState::warm`) on every decision.
#[test]
fn cluster_run_is_pinned() {
    let tr = trace(13, 2.0, 80.0);
    let weights = PopularityDist::Zipf { alpha: 1.3 }.weights(N_MODELS);
    let plan = PlacementPlan::from_weights(&weights, 4);
    let costs = vec![cost(); 4];
    let router = PlacementAwareRouter::new(plan);
    let config = ClusterConfig {
        n_replicas: 4,
        ..ClusterConfig::default()
    };
    let report = ClusterSim::new(costs, config, Box::new(router)).run(&tr);
    let mut pin = Pin::new();
    pin.metrics(&report.merged);
    pin.word(report.routing.per_replica_requests.iter().sum::<usize>() as u64);
    check("cluster", pin.0, PIN_CLUSTER);
}
