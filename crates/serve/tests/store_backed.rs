//! The DeltaZip engine bound to a real artifact store: load charges must
//! come from actual `.dza` byte sizes, with host hits strictly cheaper
//! than disk misses.

use dz_compress::codec::{CodecId, PackedLayer};
use dz_compress::pack::CompressedMatrix;
use dz_compress::pipeline::{CompressedDelta, DeltaCompressConfig, SizeReport};
use dz_compress::quant::{quantize_slice, QuantSpec};
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{CostModel, DeltaStoreBinding, DeltaZipConfig, Engine, EngineBuilder};
use dz_store::{sha256, ArtifactId, FetchTier, Registry, TieredDeltaStore};
use dz_tensor::{Matrix, Rng};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dz-serve-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn tiny_delta(seed: u64, d: usize) -> CompressedDelta {
    let mut rng = Rng::seeded(seed);
    let spec = QuantSpec::new(4, 8);
    let wt = Matrix::randn(d, d, 0.05, &mut rng);
    let mut levels = Vec::new();
    let mut scales = Vec::new();
    for r in 0..d {
        let (l, s) = quantize_slice(wt.row(r), spec);
        levels.extend(l);
        scales.extend(s);
    }
    let cm = CompressedMatrix::from_dense(d, d, &levels, scales, spec);
    let packed = cm.packed_bytes();
    let mut layers = BTreeMap::new();
    layers.insert("w".to_string(), PackedLayer::Quant(cm));
    CompressedDelta {
        layers,
        rest: BTreeMap::new(),
        codec: CodecId::SparseGptStar,
        config: DeltaCompressConfig::starred(4),
        report: SizeReport {
            compressed_linear_bytes: packed,
            uncompressed_rest_bytes: 0,
            full_fp16_bytes: d * d * 2,
            lossless_linear_bytes: None,
        },
    }
}

fn publish_zoo(registry: &Registry, n: usize) -> Vec<ArtifactId> {
    (0..n)
        .map(|i| {
            registry
                .publish_delta(
                    &format!("variant-{i}"),
                    sha256(b"base"),
                    &tiny_delta(100 + i as u64, 16),
                )
                .expect("publish")
        })
        .collect()
}

fn trace(n_models: usize, rate: f64, seed: u64) -> Trace {
    Trace::generate(TraceSpec {
        n_models,
        arrival_rate: rate,
        duration_s: 30.0,
        popularity: PopularityDist::Zipf { alpha: 1.5 },
        seed,
    })
}

fn cost() -> CostModel {
    CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
}

#[test]
fn store_backed_engine_charges_real_artifact_bytes() {
    let dir = temp_dir("charge");
    let registry = Registry::open(&dir).expect("open");
    let artifacts = publish_zoo(&registry, 4);
    let sizes: Vec<u64> = artifacts
        .iter()
        .map(|id| registry.size_of(id).expect("size"))
        .collect();
    let store = TieredDeltaStore::new(registry, 1 << 30);
    let t = trace(4, 1.0, 5);
    let mut engine = EngineBuilder::new(cost())
        .store(DeltaStoreBinding::new(store, artifacts.clone()))
        .build();
    let metrics = engine.run(&t);
    assert_eq!(metrics.len(), t.len());

    let binding = engine.delta_store.as_ref().expect("binding");
    let total = binding.store().total_stats();
    // Every model that received traffic was loaded from disk exactly once
    // (the cache fits everything), then hit in host memory on re-loads.
    let models_used: std::collections::BTreeSet<usize> =
        t.requests.iter().map(|r| r.model).collect();
    assert_eq!(total.disk_loads as usize, models_used.len());
    let expected_disk: u64 = models_used.iter().map(|&m| sizes[m]).sum();
    assert_eq!(total.disk_bytes, expected_disk);
    // The per-request load waits are consistent with at least the
    // physical floor of each first-touched artifact's cold load: under
    // the measured pipeline model (max of transfer and decode), an
    // infinitely fast decoder still pays the disk + PCIe path.
    let cm = cost();
    let min_cold: f64 = models_used
        .iter()
        .map(|&m| cm.delta_cold_load_time_measured(sizes[m] as f64, Some(1e12)))
        .sum();
    let total_wait: f64 = metrics.records.iter().map(|r| r.load_s).sum();
    assert!(
        total_wait >= min_cold * 0.99,
        "observed load waits {total_wait} cannot be below the cold floor {min_cold}"
    );
    // The fetches ran the real decode pipeline, so the binding reports a
    // measured throughput the engine's charges were derived from.
    assert!(
        binding.measured_decode_gbps().is_some(),
        "store-backed loads must surface measured decode GB/s"
    );
    let decode = binding.store().decode_throughput();
    assert_eq!(decode.loads, models_used.len() as u64);
    assert!(decode.stats.wall_s > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn host_hits_are_strictly_cheaper_than_misses_end_to_end() {
    // Same trace, two cache budgets: a host cache that fits the whole zoo
    // vs one that fits a single artifact. The thrashing store must do more
    // disk loads, and the engine must accumulate more load wait.
    let dir_big = temp_dir("big");
    let dir_small = temp_dir("small");
    let t = trace(6, 2.0, 9);

    let run = |dir: &PathBuf, budget_artifacts: u64| {
        let registry = Registry::open(dir).expect("open");
        let artifacts = publish_zoo(&registry, 6);
        let max_size = artifacts
            .iter()
            .map(|id| registry.size_of(id).expect("size"))
            .max()
            .expect("nonempty");
        let store = TieredDeltaStore::new(registry, budget_artifacts * max_size);
        // A single small GPU: only ~N deltas stay GPU-resident, so evicted
        // deltas get re-fetched and the host tier actually matters.
        let tight_cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama13b());
        let mut engine = EngineBuilder::new(tight_cost)
            .scheduler(DeltaZipConfig {
                max_concurrent_deltas: 2,
                max_batch: 8,
                ..DeltaZipConfig::default()
            })
            .store(DeltaStoreBinding::new(store, artifacts))
            .build();
        let m = engine.run(&t);
        let stats = engine
            .delta_store
            .as_ref()
            .expect("binding")
            .store()
            .total_stats();
        let wait: f64 = m.records.iter().map(|r| r.load_s).sum();
        (m.len(), stats, wait)
    };

    let (n_big, stats_big, wait_big) = run(&dir_big, 16);
    let (n_small, stats_small, wait_small) = run(&dir_small, 1);
    assert_eq!(n_big, t.len());
    assert_eq!(n_small, t.len());
    assert!(
        stats_small.disk_loads > stats_big.disk_loads,
        "a one-artifact cache must thrash: {} vs {} disk loads",
        stats_small.disk_loads,
        stats_big.disk_loads
    );
    assert!(
        wait_small > wait_big,
        "more disk misses must mean more load wait: {wait_small} vs {wait_big}"
    );
    std::fs::remove_dir_all(&dir_big).ok();
    std::fs::remove_dir_all(&dir_small).ok();
}

#[test]
fn fetch_tiers_follow_store_residency() {
    let dir = temp_dir("tiers");
    let registry = Registry::open(&dir).expect("open");
    let artifacts = publish_zoo(&registry, 2);
    let mut store = TieredDeltaStore::new(registry, 1 << 30);
    assert_eq!(
        store.fetch(&artifacts[0]).expect("cold").tier,
        FetchTier::DiskMiss
    );
    assert_eq!(
        store.fetch(&artifacts[0]).expect("warm").tier,
        FetchTier::HostHit
    );
    std::fs::remove_dir_all(store.registry().root()).ok();
}
