//! Chaos & elasticity: replica crashes, zero-capacity degradation,
//! autoscaling, brownouts, and rolling rollouts against the cluster
//! simulator — plus the liveness contracts the routers must honor.

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::cluster::{
    AdmissionConfig, ClusterConfig, ClusterPrefetch, ClusterSim, LeastLoadedRouter,
    PlacementAwareRouter, PlacementPlan, ReplicaView, RoundRobinRouter, Router,
};
use dz_serve::{
    Autoscaler, ChaosConfig, CostModel, DeltaZipConfig, FaultEvent, FaultKind, FaultPlan, Rollout,
    SloClass, SloPolicy, TraceConfig,
};
use dz_workload::{PopularityDist, Request, Trace, TraceSpec};

fn cost() -> CostModel {
    CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b())
}

fn trace(seed: u64, rate: f64, duration_s: f64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: 16,
        arrival_rate: rate,
        duration_s,
        popularity: PopularityDist::Zipf { alpha: 1.3 },
        seed,
    })
}

fn config(n: usize) -> ClusterConfig {
    ClusterConfig {
        n_replicas: n,
        engine: DeltaZipConfig {
            host_capacity_deltas: Some(6),
            ..DeltaZipConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn crash(at: f64, replica: usize, restart_after_s: Option<f64>) -> FaultEvent {
    FaultEvent {
        at,
        kind: FaultKind::Crash {
            replica,
            restart_after_s,
        },
    }
}

// -- crash / restart ------------------------------------------------------

#[test]
fn crash_requeues_in_flight_and_serves_everything_after_restart() {
    let tr = trace(11, 3.0, 60.0);
    let plan = FaultPlan::scripted(vec![crash(20.0, 0, Some(15.0))]);
    let mut sim = ClusterSim::new(
        vec![cost(); 2],
        config(2),
        Box::new(LeastLoadedRouter::new()),
    )
    .with_chaos(ChaosConfig::faults(plan, 42));
    let report = sim.run(&tr);
    let chaos = report.chaos.expect("chaos stats must be reported");
    assert_eq!(chaos.crashes, 1);
    assert_eq!(chaos.restarts, 1);
    assert!(
        chaos.lost_in_flight > 0,
        "a loaded replica has in-flight work"
    );
    assert_eq!(chaos.min_live, 1);
    assert_eq!(chaos.max_live, 2);
    // Nothing is lost for good: every request is served exactly once.
    let mut ids: Vec<usize> = report.merged.records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..tr.len()).collect::<Vec<_>>());
    assert!(report.shed.is_empty());
    // Requeued requests pay the wasted wait as queue time and the
    // ledger still telescopes to e2e.
    for r in &report.merged.records {
        assert!(r.causes.total() <= r.e2e_s + 1e-6, "ledger overflows e2e");
        assert!(r.queue_s <= r.e2e_s + 1e-9);
    }
}

#[test]
fn crash_without_restart_leaves_the_survivors_serving() {
    let tr = trace(13, 2.0, 50.0);
    let plan = FaultPlan::scripted(vec![crash(10.0, 1, None)]);
    let mut sim = ClusterSim::new(
        vec![cost(); 3],
        config(3),
        Box::new(LeastLoadedRouter::new()),
    )
    .with_chaos(ChaosConfig::faults(plan, 7));
    let report = sim.run(&tr);
    let chaos = report.chaos.expect("chaos stats");
    assert_eq!(chaos.crashes, 1);
    assert_eq!(chaos.restarts, 0);
    assert_eq!(chaos.min_live, 2);
    assert_eq!(report.merged.len(), tr.len());
    // After the crash instant, replica 1 receives nothing new: its share
    // of routed requests must be strictly below a fair third.
    let share = report.routing.per_replica_requests[1] as f64 / tr.len() as f64;
    assert!(
        share < 1.0 / 3.0,
        "dead replica kept receiving traffic: {share}"
    );
}

#[test]
fn all_replicas_down_parks_requests_until_the_restart() {
    let tr = trace(17, 1.5, 40.0);
    // Both replicas die at 10 s; one comes back at 25 s.
    let plan = FaultPlan::scripted(vec![crash(10.0, 0, Some(15.0)), crash(10.0, 1, None)]);
    let mut sim = ClusterSim::new(
        vec![cost(); 2],
        config(2),
        Box::new(RoundRobinRouter::new()),
    )
    .with_chaos(ChaosConfig::faults(plan, 3));
    let report = sim.run(&tr);
    // Nothing sheds: requests arriving in the dark window wait for the
    // restart and their wait shows up as queue time.
    assert!(
        report.shed.is_empty(),
        "a scheduled restart means no shedding"
    );
    assert_eq!(report.merged.len(), tr.len());
    let waited = report
        .merged
        .records
        .iter()
        .filter(|r| r.arrival > 10.0 && r.arrival < 25.0)
        .map(|r| r.queue_s)
        .fold(0.0f64, f64::max);
    assert!(
        waited >= 5.0,
        "outage waits must appear as queue time: {waited}"
    );
    let chaos = report.chaos.expect("chaos stats");
    assert_eq!(chaos.min_live, 0);
}

#[test]
fn zero_capacity_forever_sheds_gracefully_instead_of_hanging() {
    let tr = trace(19, 1.0, 30.0);
    // Every replica dies at 5 s and nothing ever comes back.
    let plan = FaultPlan::scripted(vec![crash(5.0, 0, None), crash(5.0, 1, None)]);
    let slo = SloPolicy::tiered(16, 4);
    let mut sim = ClusterSim::new(
        vec![cost(); 2],
        ClusterConfig {
            admission: Some(AdmissionConfig::new(slo.clone())),
            ..config(2)
        },
        Box::new(LeastLoadedRouter::new()),
    )
    .with_chaos(ChaosConfig::faults(plan, 5));
    let report = sim.run(&tr);
    let chaos = report.chaos.expect("chaos stats");
    // Everything offered after the blackout is refused, not hung:
    // Batch through defer→shed (zero live capacity counts as saturated
    // depth), the rest through the no-capacity last resort.
    assert_eq!(report.merged.len() + report.shed.len(), tr.len());
    assert!(chaos.shed_no_capacity > 0, "non-batch must shed eventually");
    let batch_shed = report
        .shed
        .iter()
        .filter(|s| slo.class_of(s.model) == SloClass::Batch)
        .count();
    assert!(batch_shed > 0, "batch must shed through defer budget");
    assert!(
        report.routing.defer_events > 0,
        "batch must defer before shedding at zero capacity"
    );
    // Served requests (pre-crash) still telescope.
    for r in &report.merged.records {
        assert!((r.causes.total() - r.e2e_s).abs() < 1e-6 || r.causes.total() <= r.e2e_s);
    }
}

// -- router liveness (satellite) ------------------------------------------

fn live_view(id: usize, alive: bool, warm: bool) -> ReplicaView {
    ReplicaView {
        id,
        queue_depth: if alive { 3 } else { 0 },
        backlog_s: if alive { 5.0 } else { 0.0 },
        warm,
        decoded: false,
        cold_load_s: 2.0,
        warm_load_s: 0.5,
        alive,
    }
}

#[test]
fn no_router_ever_selects_a_dead_replica() {
    // The dead replica looks maximally attractive (empty queue, zero
    // backlog, delta warm) — routers must still refuse it.
    let views = vec![
        live_view(0, true, false),
        live_view(1, false, true),
        live_view(2, true, false),
        live_view(3, false, true),
    ];
    let plan = PlacementPlan::from_weights(&[1.0; 16], 4);
    let mut routers: Vec<Box<dyn Router>> = vec![
        Box::new(RoundRobinRouter::new()),
        Box::new(LeastLoadedRouter::new()),
        Box::new(PlacementAwareRouter::new(plan)),
    ];
    for router in &mut routers {
        for m in 0..64 {
            let req = Request {
                id: m,
                model: m % 16,
                arrival: m as f64,
                prompt_tokens: 16,
                output_tokens: 16,
            };
            let r = router.route(&req, &views);
            assert!(
                views[r].alive,
                "{} routed to dead replica {r}",
                router.name()
            );
        }
    }
}

#[test]
fn placement_hints_never_target_dead_replicas() {
    // The hot model is replicated everywhere; two of its homes are dead
    // and cold — prime hint targets, were they alive.
    let plan = PlacementPlan::from_weights(&[4.0, 1.0, 1.0, 1.0], 4);
    let mut router = PlacementAwareRouter::new(plan).pinned();
    let views = vec![
        live_view(0, true, true),
        live_view(1, false, false),
        live_view(2, true, false),
        live_view(3, false, false),
    ];
    let req = Request {
        id: 0,
        model: 0,
        arrival: 0.0,
        prompt_tokens: 16,
        output_tokens: 16,
    };
    let routed = router.route(&req, &views);
    let hints = router.prefetch_hints(&req, &views, routed);
    for h in &hints {
        assert!(
            views[h.replica].alive,
            "hint leaked to dead replica {}",
            h.replica
        );
    }
}

#[test]
fn cluster_counts_dropped_hints_to_dead_replicas() {
    // Force a custom router to hint at a dead replica: the front end
    // must drop (and count) the hint rather than prewarm a corpse.
    struct BadHinter;
    impl Router for BadHinter {
        fn name(&self) -> String {
            "bad-hinter".into()
        }
        fn route(&mut self, _req: &Request, views: &[ReplicaView]) -> usize {
            views.iter().find(|v| v.alive).expect("live replica").id
        }
        fn prefetch_hints(
            &mut self,
            req: &Request,
            views: &[ReplicaView],
            routed: usize,
        ) -> Vec<dz_serve::cluster::PrefetchHint> {
            // Hint every replica except the routed one, dead or not.
            views
                .iter()
                .filter(|v| v.id != routed)
                .map(|v| dz_serve::cluster::PrefetchHint {
                    replica: v.id,
                    model: req.model,
                })
                .collect()
        }
    }
    let tr = trace(23, 2.0, 40.0);
    let plan = FaultPlan::scripted(vec![crash(5.0, 1, None)]);
    let mut sim = ClusterSim::new(
        vec![cost(); 2],
        ClusterConfig {
            prefetch: Some(ClusterPrefetch::default()),
            ..config(2)
        },
        Box::new(BadHinter),
    )
    .with_chaos(ChaosConfig::faults(plan, 1));
    let report = sim.run(&tr);
    let chaos = report.chaos.expect("chaos stats");
    assert!(
        chaos.dropped_hints > 0,
        "hints to the dead replica must be dropped"
    );
    assert_eq!(report.merged.len(), tr.len());
}

// -- autoscaling ----------------------------------------------------------

#[test]
fn autoscaler_activates_cold_spares_under_pressure() {
    // One live replica against a four-replica fleet and a heavy trace:
    // the backlog climbs, the autoscaler must bring spares in, and the
    // fleet must still serve everything.
    let tr = trace(29, 6.0, 60.0);
    let chaos = ChaosConfig {
        autoscaler: Some(Autoscaler {
            up_backlog_s: 10.0,
            down_backlog_s: 0.5,
            interval_s: 2.0,
            cooldown_s: 4.0,
            ..Autoscaler::new(1, 4)
        }),
        initial_replicas: Some(1),
        seed: 9,
        ..ChaosConfig::default()
    };
    let mut sim = ClusterSim::new(
        vec![cost(); 4],
        config(4),
        Box::new(LeastLoadedRouter::new()),
    )
    .with_chaos(chaos);
    let report = sim.run(&tr);
    let stats = report.chaos.expect("chaos stats");
    assert!(stats.scale_ups > 0, "pressure must scale the fleet up");
    assert!(stats.max_live > 1, "spares must actually come live");
    assert_eq!(report.merged.len(), tr.len());
    // Scaled-up replicas actually absorbed traffic.
    let used = report
        .routing
        .per_replica_requests
        .iter()
        .filter(|&&c| c > 0)
        .count();
    assert!(used > 1, "traffic must spread onto activated spares");
}

#[test]
fn autoscaler_drains_idle_replicas() {
    // A light trace on a fully-live fleet: mean backlog sits near zero,
    // so the scaler must drain down to its floor — and draining must
    // not lose any in-flight work.
    let tr = trace(31, 0.5, 60.0);
    let chaos = ChaosConfig {
        autoscaler: Some(Autoscaler {
            up_backlog_s: 1e9,
            down_backlog_s: 1.0,
            interval_s: 2.0,
            cooldown_s: 2.0,
            ..Autoscaler::new(1, 3)
        }),
        seed: 2,
        ..ChaosConfig::default()
    };
    let mut sim = ClusterSim::new(
        vec![cost(); 3],
        config(3),
        Box::new(LeastLoadedRouter::new()),
    )
    .with_chaos(chaos);
    let report = sim.run(&tr);
    let stats = report.chaos.expect("chaos stats");
    assert!(stats.scale_downs >= 2, "idle fleet must drain: {stats:?}");
    assert_eq!(stats.min_live, 1, "drains stop at the floor");
    assert_eq!(report.merged.len(), tr.len(), "draining loses nothing");
}

// -- rollouts -------------------------------------------------------------

#[test]
fn rollout_ramps_traffic_onto_v2() {
    let tr = trace(37, 3.0, 80.0);
    // Model 0 is the Zipf head; roll it to model 15 over 20 s.
    let chaos = ChaosConfig {
        rollouts: vec![Rollout {
            model: 0,
            v2: 15,
            start_s: 20.0,
            duration_s: 20.0,
        }],
        seed: 99,
        ..ChaosConfig::default()
    };
    let mut sim = ClusterSim::new(
        vec![cost(); 2],
        config(2),
        Box::new(LeastLoadedRouter::new()),
    )
    .with_chaos(chaos);
    let report = sim.run(&tr);
    let stats = report.chaos.expect("chaos stats");
    assert!(stats.rollout_remapped > 0, "the ramp must remap traffic");
    // After the window every request for model 0 serves as v2.
    let late_v1 = report
        .merged
        .records
        .iter()
        .filter(|r| r.arrival > 40.0 && r.model == 0)
        .count();
    assert_eq!(late_v1, 0, "post-window v1 traffic must be fully remapped");
    let v2_served = report
        .merged
        .records
        .iter()
        .filter(|r| r.model == 15)
        .count();
    assert!(
        v2_served >= stats.rollout_remapped,
        "remapped requests serve as v2"
    );
}

#[test]
fn rollout_is_reproducible_from_the_seed() {
    let tr = trace(41, 2.0, 60.0);
    let run = |seed: u64| {
        let chaos = ChaosConfig {
            rollouts: vec![Rollout {
                model: 0,
                v2: 15,
                start_s: 10.0,
                duration_s: 30.0,
            }],
            seed,
            ..ChaosConfig::default()
        };
        let mut sim = ClusterSim::new(
            vec![cost(); 2],
            config(2),
            Box::new(LeastLoadedRouter::new()),
        )
        .with_chaos(chaos);
        sim.run(&tr)
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(
        a.chaos.as_ref().unwrap().rollout_remapped,
        b.chaos.as_ref().unwrap().rollout_remapped
    );
    for (x, y) in a.merged.records.iter().zip(&b.merged.records) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.model, y.model);
        assert_eq!(
            x.e2e_s.to_bits(),
            y.e2e_s.to_bits(),
            "runs must be bit-identical"
        );
    }
    let c = run(124);
    assert!(
        c.chaos.as_ref().unwrap().rollout_remapped != a.chaos.as_ref().unwrap().rollout_remapped
            || c.merged
                .records
                .iter()
                .zip(&a.merged.records)
                .any(|(x, y)| x.model != y.model),
        "a different seed should flip at least one coin differently"
    );
}

// -- brownouts ------------------------------------------------------------

#[test]
fn disk_brownout_inflates_latency_on_the_degraded_replica() {
    let tr = trace(43, 2.0, 60.0);
    let run = |plan: FaultPlan| {
        let mut sim = ClusterSim::new(
            vec![cost(); 1],
            ClusterConfig {
                n_replicas: 1,
                engine: DeltaZipConfig {
                    host_capacity_deltas: Some(3),
                    ..DeltaZipConfig::default()
                },
                ..ClusterConfig::default()
            },
            Box::new(RoundRobinRouter::new()),
        )
        .with_chaos(ChaosConfig::faults(plan, 0));
        sim.run(&tr)
    };
    let healthy = run(FaultPlan::none());
    let browned = run(FaultPlan::scripted(vec![FaultEvent {
        at: 10.0,
        kind: FaultKind::Degrade {
            replica: 0,
            brownout: dz_serve::Brownout {
                start_s: 10.0,
                end_s: 50.0,
                disk_rate: 0.05,
                pcie_rate: 0.5,
            },
        },
    }]));
    assert_eq!(browned.chaos.as_ref().unwrap().brownouts, 1);
    assert_eq!(browned.merged.len(), tr.len());
    assert!(
        browned.merged.mean_e2e() > healthy.merged.mean_e2e(),
        "a 20x disk brownout must hurt: {} vs {}",
        browned.merged.mean_e2e(),
        healthy.merged.mean_e2e()
    );
}

// -- tracing equivalence --------------------------------------------------

#[test]
fn traced_chaos_run_is_bit_identical_to_untraced() {
    let tr = trace(47, 3.0, 60.0);
    let build = || {
        let plan = FaultPlan::scripted(vec![crash(15.0, 0, Some(10.0))]);
        let chaos = ChaosConfig {
            plan,
            autoscaler: Some(Autoscaler::new(1, 2)),
            rollouts: vec![Rollout {
                model: 1,
                v2: 14,
                start_s: 20.0,
                duration_s: 15.0,
            }],
            seed: 77,
            initial_replicas: None,
        };
        ClusterSim::new(
            vec![cost(); 2],
            config(2),
            Box::new(PlacementAwareRouter::new(PlacementPlan::from_popularity(
                tr.spec.popularity,
                16,
                2,
            ))),
        )
        .with_chaos(chaos)
    };
    let untraced = build().run(&tr);
    let mut traced_sim = build().with_tracing(TraceConfig::default());
    let traced = traced_sim.run(&tr);
    let tracks = traced_sim.take_trace();
    assert!(!tracks.is_empty(), "traced run must capture tracks");
    assert!(
        tracks[0]
            .log
            .events()
            .any(|e| matches!(e, dz_serve::TraceEvent::ReplicaDown { .. })),
        "front-end lane must record the crash"
    );
    assert_eq!(untraced.merged.len(), traced.merged.len());
    for (a, b) in untraced.merged.records.iter().zip(&traced.merged.records) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.e2e_s.to_bits(),
            b.e2e_s.to_bits(),
            "tracing must not perturb the simulation"
        );
        assert_eq!(a.causes, b.causes);
    }
    assert_eq!(untraced.chaos, traced.chaos);
}
