//! Property-based invariants for the fleet event core: the global event
//! heap never observes time going backwards, the `(time, class, seq)`
//! tie-break is deterministic, and a same-seed [`FleetSim`] replay
//! produces an identical event log.

use dz_gpusim::EventQueue;
use dz_serve::cluster::PlacementPlan;
use dz_serve::{FleetAutoscale, FleetConfig, FleetFault, FleetRouter, FleetSim};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use proptest::prelude::*;

/// An arbitrary schedule: absolute times (finite, non-negative) with
/// priority classes, pushed in the generated order.
fn arb_schedule() -> impl Strategy<Value = Vec<(f64, u8)>> {
    proptest::collection::vec((0.0f64..1e6, 0u8..5), 1..64)
}

fn arb_router() -> impl Strategy<Value = FleetRouter> {
    prop_oneof![
        Just(FleetRouter::RoundRobin),
        (1usize..64).prop_map(|vnodes| FleetRouter::ConsistentHash { vnodes }),
        any::<u64>().prop_map(|seed| FleetRouter::PowerOfTwo { seed }),
        Just(FleetRouter::GlobalLeastCost),
    ]
}

fn arb_faults(n_replicas: usize) -> impl Strategy<Value = Vec<FleetFault>> {
    proptest::collection::vec(
        (0.0f64..40.0, 0..n_replicas as u32, 1.0f64..30.0).prop_map(|(at, replica, down_s)| {
            FleetFault {
                at,
                replica: replica as usize,
                down_s,
            }
        }),
        0..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Popping any arbitrary schedule never moves the clock backwards,
    /// and the pop order is the lexicographic `(time, class, seq)` order.
    #[test]
    fn heap_time_is_monotone_and_tiebreak_is_lexicographic(schedule in arb_schedule()) {
        let mut q = EventQueue::new();
        for (i, &(at, class)) in schedule.iter().enumerate() {
            q.push_class(at, class, i);
        }
        let mut popped = Vec::new();
        let mut last_now = q.now();
        while let Some((t, class, i)) = q.pop_classed() {
            prop_assert!(t >= last_now, "clock went backwards: {t} < {last_now}");
            prop_assert!((q.now() - t).abs() < 1e-12);
            last_now = t;
            popped.push((schedule[i].0, class, i));
        }
        prop_assert_eq!(popped.len(), schedule.len());
        // The observed order must equal the explicit sort by
        // (time, class, insertion seq) — the tie-break contract.
        let mut expect: Vec<(f64, u8, usize)> = schedule
            .iter()
            .enumerate()
            .map(|(i, &(at, class))| (at, class, i))
            .collect();
        expect.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        prop_assert_eq!(popped, expect);
    }

    /// Two pushes at the same `(time, class)` always pop in insertion
    /// order, regardless of what else is in the heap.
    #[test]
    fn equal_time_equal_class_pops_in_insertion_order(
        noise in arb_schedule(),
        at in 0.0f64..1e6,
        class in 0u8..5,
    ) {
        let mut q = EventQueue::new();
        for &(t, c) in &noise {
            q.push_class(t, c, usize::MAX);
        }
        q.push_class(at, class, 0usize);
        q.push_class(at, class, 1usize);
        let mut marked = Vec::new();
        while let Some((_, _, p)) = q.pop_classed() {
            if p != usize::MAX {
                marked.push(p);
            }
        }
        prop_assert_eq!(marked, vec![0, 1]);
    }

    /// Replaying a [`FleetSim`] with the same seed, trace, faults, and
    /// router yields a bit-identical event log and tail.
    #[test]
    fn same_seed_fleet_replay_is_bit_identical(
        seed in any::<u64>(),
        n_replicas in 2usize..8,
        rate in 1.0f64..8.0,
        router in arb_router(),
        faults in arb_faults(8),
        autoscale in any::<bool>(),
    ) {
        let trace = Trace::generate_fast(TraceSpec {
            n_models: 32,
            arrival_rate: rate,
            duration_s: 30.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed,
        });
        let weights = PopularityDist::Zipf { alpha: 1.2 }.weights(32);
        let run = || {
            let mut cfg = FleetConfig::new(n_replicas);
            cfg.seed = seed;
            cfg.faults = faults.clone();
            cfg.record_events = true;
            if autoscale {
                cfg.autoscale = Some(FleetAutoscale {
                    interval_s: 5.0,
                    hi_backlog_s: 1.0,
                    lo_backlog_s: 0.1,
                    min_live: 1,
                });
            }
            let plan = PlacementPlan::from_weights(&weights, n_replicas);
            FleetSim::new(cfg, plan, router.clone()).run(&trace)
        };
        let a = run();
        let b = run();
        let log_a = a.event_log.as_deref().expect("recording enabled");
        let log_b = b.event_log.as_deref().expect("recording enabled");
        prop_assert_eq!(log_a.len(), log_b.len());
        for (ea, eb) in log_a.iter().zip(log_b) {
            prop_assert_eq!(ea.at.to_bits(), eb.at.to_bits());
            prop_assert_eq!(ea.class, eb.class);
            prop_assert_eq!(ea.key, eb.key);
        }
        prop_assert_eq!(a.served, b.served);
        prop_assert_eq!(a.shed, b.shed);
        prop_assert_eq!(a.p99_e2e_s.to_bits(), b.p99_e2e_s.to_bits());
        // And the log itself is time-monotone: the heap's clock contract
        // holds end-to-end through every handler.
        for w in log_a.windows(2) {
            prop_assert!(w[1].at >= w[0].at, "log time went backwards");
        }
    }
}
