//! Differential oracle for the unified toppings engine: with an
//! all-`Delta` catalog the variant-aware scheduler must reproduce the
//! legacy delta-only `DeltaZipEngine` **bit-identically** on every
//! scheduling configuration — the catalog filters, the toppings cap, and
//! the mixed-kind kernel costing all have to degenerate to the exact
//! legacy code path when every model is a delta.
//!
//! Property tests then pin the mixed-kind invariants: packing never
//! exceeds `max_toppings_per_batch`, per-kind request accounting sums to
//! the trace total, and segregated pools never co-batch delta-backed and
//! pure-LoRA toppings.

use dz_gpusim::kernel::BatchedImpl;
use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{
    CostModel, DeltaZipConfig, DeltaZipEngine, Engine, EngineBuilder, Metrics, PreemptionPolicy,
    ResumePolicy, VariantCatalog, VariantKind,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use proptest::prelude::*;

const N_MODELS: usize = 16;

fn cost() -> CostModel {
    CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b())
}

fn trace(seed: u64, rate: f64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: rate,
        duration_s: 40.0,
        popularity: PopularityDist::Zipf { alpha: 1.3 },
        seed,
    })
}

/// Asserts two runs are the same simulation, down to the bit on every
/// per-request float, plus identical swap and toppings accounting.
fn assert_same_metrics(a: &Metrics, b: &Metrics, tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: record count");
    assert_eq!(
        a.makespan_s.to_bits(),
        b.makespan_s.to_bits(),
        "{tag}: makespan {} vs {}",
        a.makespan_s,
        b.makespan_s
    );
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.id, rb.id, "{tag}: record id");
        assert_eq!(ra.model, rb.model, "{tag}: model of {}", ra.id);
        assert_eq!(
            ra.arrival.to_bits(),
            rb.arrival.to_bits(),
            "{tag}: arrival of {}",
            ra.id
        );
        assert_eq!(
            ra.e2e_s.to_bits(),
            rb.e2e_s.to_bits(),
            "{tag}: e2e of {} ({} vs {})",
            ra.id,
            ra.e2e_s,
            rb.e2e_s
        );
        assert_eq!(
            ra.ttft_s.to_bits(),
            rb.ttft_s.to_bits(),
            "{tag}: ttft of {}",
            ra.id
        );
        assert_eq!(
            ra.queue_s.to_bits(),
            rb.queue_s.to_bits(),
            "{tag}: queue of {}",
            ra.id
        );
        assert_eq!(
            ra.load_s.to_bits(),
            rb.load_s.to_bits(),
            "{tag}: load of {}",
            ra.id
        );
        assert_eq!(
            ra.output_tokens, rb.output_tokens,
            "{tag}: tokens of {}",
            ra.id
        );
        assert_eq!(
            ra.preemptions, rb.preemptions,
            "{tag}: preemptions of {}",
            ra.id
        );
    }
    assert_eq!(a.swap.demand_loads, b.swap.demand_loads, "{tag}: loads");
    assert_eq!(
        a.swap.stall_s.to_bits(),
        b.swap.stall_s.to_bits(),
        "{tag}: swap stall"
    );
    assert_eq!(a.toppings.batches, b.toppings.batches, "{tag}: batches");
    assert_eq!(
        a.toppings.sbmm_s.to_bits(),
        b.toppings.sbmm_s.to_bits(),
        "{tag}: sbmm seconds"
    );
    assert_eq!(
        a.toppings.base_gemm_s.to_bits(),
        b.toppings.base_gemm_s.to_bits(),
        "{tag}: base GEMM seconds"
    );
}

/// Runs `config` through the legacy constructor (no catalog) and through
/// the builder with an explicit all-delta catalog; the reports must match
/// bit for bit.
fn differential(tag: &str, tr: &Trace, config: DeltaZipConfig) {
    let legacy = DeltaZipEngine::new(cost(), config).run(tr);
    let unified = EngineBuilder::new(cost())
        .scheduler(config)
        .catalog(VariantCatalog::all_delta(N_MODELS))
        .build()
        .run(tr);
    assert_same_metrics(&legacy, &unified, tag);
    // The legacy engine stamps every request `Delta` by default, so even
    // the per-kind tallies must agree.
    assert_eq!(
        legacy.toppings.delta_reqs, unified.toppings.delta_reqs,
        "{tag}: delta request tally"
    );
    assert_eq!(unified.toppings.delta_reqs, tr.len(), "{tag}: all delta");
    assert_eq!(unified.toppings.mixed_batches, 0, "{tag}: no mixed batches");
}

#[test]
fn all_delta_catalog_matches_legacy_default_config() {
    let tr = trace(71, 2.0);
    differential("default", &tr, DeltaZipConfig::default());
}

#[test]
fn all_delta_catalog_matches_legacy_across_policies() {
    let tr = trace(73, 3.0);
    for (tag, config) in [
        (
            "fcfs",
            DeltaZipConfig {
                skip_the_line: false,
                ..DeltaZipConfig::default()
            },
        ),
        (
            "never-preempt",
            DeltaZipConfig {
                preemption: PreemptionPolicy::Never,
                ..DeltaZipConfig::default()
            },
        ),
        (
            "length-aware",
            DeltaZipConfig {
                preemption: PreemptionPolicy::LengthAware { spare_tokens: 8 },
                resume: ResumePolicy::Recompute,
                ..DeltaZipConfig::default()
            },
        ),
        (
            "serialized-swaps",
            DeltaZipConfig {
                overlap_swaps: false,
                ..DeltaZipConfig::default()
            },
        ),
        (
            "tight",
            DeltaZipConfig {
                max_concurrent_deltas: 2,
                max_batch: 8,
                host_capacity_deltas: Some(4),
                ..DeltaZipConfig::default()
            },
        ),
        (
            "sbmm-base",
            DeltaZipConfig {
                strategy: BatchedImpl::Sbmm,
                ..DeltaZipConfig::default()
            },
        ),
    ] {
        differential(tag, &tr, config);
    }
}

#[test]
fn unbinding_toppings_cap_is_a_no_op_for_all_delta() {
    // A cap at least as large as the model count can never bind, so the
    // capped run must still be bit-identical to the uncapped legacy run.
    let tr = trace(79, 2.5);
    differential(
        "cap-unbound",
        &tr,
        DeltaZipConfig {
            max_toppings_per_batch: Some(N_MODELS),
            ..DeltaZipConfig::default()
        },
    );
}

// -- mixed-kind properties -------------------------------------------------

fn mixed_metrics(seed: u64, rate: f64, cap: Option<usize>, segregate: bool) -> (Trace, Metrics) {
    let tr = trace(seed, rate);
    let m = EngineBuilder::new(cost())
        .scheduler(DeltaZipConfig {
            max_toppings_per_batch: cap,
            segregate_kinds: segregate,
            ..DeltaZipConfig::default()
        })
        .catalog(VariantCatalog::interleaved(N_MODELS, 16))
        .build()
        .run(&tr);
    (tr, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mixed_packing_never_exceeds_toppings_cap(
        seed in any::<u64>(),
        rate in 0.5f64..3.0,
        cap in 1usize..6,
        segregate in any::<bool>(),
    ) {
        let (tr, m) = mixed_metrics(seed, rate, Some(cap), segregate);
        prop_assert_eq!(m.len(), tr.len());
        prop_assert!(
            m.toppings.max_toppings_in_batch <= cap,
            "observed {} distinct toppings under cap {}",
            m.toppings.max_toppings_in_batch,
            cap
        );
    }

    #[test]
    fn per_kind_tallies_sum_to_trace_total(
        seed in any::<u64>(),
        rate in 0.5f64..3.0,
        cap in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
    ) {
        let (tr, m) = mixed_metrics(seed, rate, cap, false);
        prop_assert_eq!(m.toppings.total_reqs(), tr.len());
        // Each kind's tally equals the catalog-derived request count.
        let catalog = VariantCatalog::interleaved(N_MODELS, 16);
        let count = |pred: fn(VariantKind) -> bool| {
            tr.requests.iter().filter(|r| pred(catalog.kind_of(r.model))).count()
        };
        prop_assert_eq!(
            m.toppings.base_reqs,
            count(|k| matches!(k, VariantKind::Base))
        );
        prop_assert_eq!(
            m.toppings.lora_reqs,
            count(|k| matches!(k, VariantKind::Lora { .. }))
        );
        prop_assert_eq!(
            m.toppings.delta_reqs,
            count(|k| matches!(k, VariantKind::Delta))
        );
        prop_assert_eq!(
            m.toppings.stacked_reqs,
            count(|k| matches!(k, VariantKind::Stacked { .. }))
        );
        // Kernel charges decompose: every batch paid base GEMM, and the
        // mixed pool exercised both topping kernels somewhere.
        prop_assert!(m.toppings.kernel_total_s() >= m.toppings.base_gemm_s);
    }

    #[test]
    fn segregated_pools_never_mix_kinds(
        seed in any::<u64>(),
        rate in 0.5f64..3.0,
        cap in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
    ) {
        let (tr, m) = mixed_metrics(seed, rate, cap, true);
        prop_assert_eq!(m.len(), tr.len());
        prop_assert_eq!(
            m.toppings.mixed_batches,
            0,
            "segregated pools co-batched deltas and adapters"
        );
    }
}
