//! Attribution and tracing invariants of the DeltaZip engine.
//!
//! * Every finished request's cause ledger (queue / own-delta stall /
//!   contention / decode / preempt) telescopes to its end-to-end latency
//!   to within 1e-9, across arbitrary engine configurations.
//! * Enabling tracing is a metrics no-op: a traced run produces
//!   bit-identical metrics to an untraced one.
//! * Cluster-level swap aggregation is a field-wise sum of the replica
//!   stats, with rate fields recomputed from the pooled numerators.

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::cluster::{ClusterConfig, ClusterSim, LeastLoadedRouter};
use dz_serve::swap::{PopularityPrefetch, QueueLookahead};
use dz_serve::{CostModel, DeltaZipConfig, DeltaZipEngine, Engine, Metrics, TraceConfig};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use proptest::prelude::*;
use serde::Serialize;

const N_MODELS: usize = 12;

fn trace(rate: f64, alpha: f64, seed: u64) -> Trace {
    Trace::generate(TraceSpec {
        n_models: N_MODELS,
        arrival_rate: rate,
        duration_s: 30.0,
        popularity: PopularityDist::Zipf { alpha },
        seed,
    })
}

/// Builds the engine for one sampled configuration. `prefetcher`: 0 =
/// none, 1 = queue-lookahead, 2 = popularity.
fn engine(overlap: bool, host_cap: Option<usize>, prefetcher: u8, alpha: f64) -> DeltaZipEngine {
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
    let config = DeltaZipConfig {
        max_concurrent_deltas: 2,
        max_batch: 16,
        host_capacity_deltas: host_cap,
        overlap_swaps: overlap,
        ..DeltaZipConfig::default()
    };
    let e = DeltaZipEngine::new(cost, config);
    match prefetcher {
        1 => e.with_prefetcher(Box::new(QueueLookahead::new(4))),
        2 => e.with_prefetcher(Box::new(PopularityPrefetch::new(
            PopularityDist::Zipf { alpha },
            N_MODELS,
            4,
        ))),
        _ => e,
    }
}

fn assert_causes_telescope(m: &Metrics) {
    assert!(!m.is_empty(), "engine must finish requests");
    for r in &m.records {
        let sum = r.causes.total();
        assert!(
            (sum - r.e2e_s).abs() < 1e-9,
            "request {}: causes sum {} != e2e {} (ledger {:?})",
            r.id,
            sum,
            r.e2e_s,
            r.causes
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: attributed causes partition e2e exactly
    /// (to within accumulated float noise) for arbitrary engine runs.
    #[test]
    fn causes_sum_to_e2e(
        rate in 0.3f64..2.0,
        alpha in 0.5f64..1.8,
        seed in any::<u32>(),
        overlap in any::<bool>(),
        host_cap in 0usize..8,
        prefetcher in 0u8..3,
    ) {
        // host_cap 0 samples the unbounded host cache.
        let host_cap = (host_cap > 0).then_some(host_cap);
        let t = trace(rate, alpha, seed as u64);
        let m = engine(overlap, host_cap, prefetcher, alpha).run(&t);
        assert_causes_telescope(&m);
    }
}

#[test]
fn tracing_off_and_on_produce_identical_metrics() {
    // Overlapped and serialized paths instrument different code; both
    // must be unperturbed by tracing (asserted bit-for-bit through the
    // serialized metrics tree).
    for overlap in [true, false] {
        let t = trace(1.2, 1.2, 0x7ACE);
        let plain = engine(overlap, Some(4), 1, 1.2).run(&t);
        let mut traced_engine =
            engine(overlap, Some(4), 1, 1.2).with_tracing(TraceConfig::default());
        let traced = traced_engine.run(&t);
        assert!(
            traced_engine
                .tracer
                .take_log()
                .is_some_and(|l| !l.is_empty()),
            "traced run must record events"
        );
        assert_eq!(
            plain.to_value().to_json(),
            traced.to_value().to_json(),
            "tracing must not perturb metrics (overlap={overlap})"
        );
    }
}

#[test]
fn cluster_swap_stats_are_fieldwise_sums_of_replicas() {
    let cost = CostModel::new(NodeSpec::rtx3090_node(1), ModelShape::llama7b());
    let config = ClusterConfig {
        n_replicas: 3,
        engine: DeltaZipConfig {
            max_concurrent_deltas: 2,
            max_batch: 16,
            host_capacity_deltas: Some(4),
            ..DeltaZipConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut sim = ClusterSim::new(vec![cost; 3], config, Box::new(LeastLoadedRouter::new()));
    let report = sim.run(&trace(1.8, 1.2, 0xC1A5));

    let merged = &report.merged.swap;
    let sum_usize = |f: fn(&dz_serve::SwapStats) -> usize| -> usize {
        report.per_replica.iter().map(|m| f(&m.swap)).sum()
    };
    let sum_f64 = |f: fn(&dz_serve::SwapStats) -> f64| -> f64 {
        report.per_replica.iter().map(|m| f(&m.swap)).sum()
    };
    assert!(merged.demand_loads > 0, "run must swap");
    assert_eq!(merged.demand_loads, sum_usize(|s| s.demand_loads));
    assert_eq!(merged.prefetch_issued, sum_usize(|s| s.prefetch_issued));
    assert_eq!(
        merged.prefetch_completed,
        sum_usize(|s| s.prefetch_completed)
    );
    assert_eq!(merged.prefetch_hits, sum_usize(|s| s.prefetch_hits));
    for (got, want) in [
        (merged.load_busy_s, sum_f64(|s| s.load_busy_s)),
        (merged.overlapped_s, sum_f64(|s| s.overlapped_s)),
        (merged.blocked_s, sum_f64(|s| s.blocked_s)),
        (merged.stall_s, sum_f64(|s| s.stall_s)),
        (merged.serialized_stall_s, sum_f64(|s| s.serialized_stall_s)),
    ] {
        assert!((got - want).abs() < 1e-9, "{got} != {want}");
    }
    // The rate field is recomputed from the pooled numerators — NOT an
    // average of per-replica fractions.
    let pooled = dz_trace::stats::ratio_or(merged.overlapped_s, merged.load_busy_s, 0.0);
    assert!((merged.overlap_fraction() - pooled).abs() < 1e-12);

    // Cluster-merged records keep the telescoping invariant (deferral
    // delay is folded into both e2e and the queue cause).
    assert_causes_telescope(&report.merged);
}
