//! Property-based scheduler invariants: for arbitrary traces and configs,
//! every engine conserves requests and produces physical latencies.

use dz_gpusim::shapes::ModelShape;
use dz_gpusim::spec::NodeSpec;
use dz_serve::{
    CostModel, DeltaZipConfig, DeltaZipEngine, Engine, EngineBuilder, LoraServingConfig,
    PreemptionPolicy, VllmScbConfig, VllmScbEngine,
};
use dz_workload::{PopularityDist, Trace, TraceSpec};
use proptest::prelude::*;

fn arb_pop() -> impl Strategy<Value = PopularityDist> {
    prop_oneof![
        Just(PopularityDist::Uniform),
        (1.0f64..3.0).prop_map(|alpha| PopularityDist::Zipf { alpha }),
        Just(PopularityDist::AzureLike),
    ]
}

fn check(trace: &Trace, m: &dz_serve::Metrics) {
    assert_eq!(m.len(), trace.len());
    for r in &m.records {
        assert!(r.e2e_s > 0.0 && r.e2e_s.is_finite());
        assert!(r.ttft_s > 0.0 && r.ttft_s <= r.e2e_s + 1e-9);
        assert!(r.queue_s >= -1e-9);
        assert!(r.load_s >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn deltazip_invariants(seed in any::<u64>(), rate in 0.2f64..3.0, pop in arb_pop(),
                           n in 1usize..12, batch in 4usize..64,
                           preempt in any::<bool>(), skip in any::<bool>()) {
        let trace = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: rate,
            duration_s: 30.0,
            popularity: pop,
            seed,
        });
        let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        let m = DeltaZipEngine::new(cost, DeltaZipConfig {
            max_concurrent_deltas: n,
            max_batch: batch,
            preemption: if preempt {
                PreemptionPolicy::ParentFinish
            } else {
                PreemptionPolicy::Never
            },
            skip_the_line: skip,
            ..DeltaZipConfig::default()
        }).run(&trace);
        check(&trace, &m);
    }

    #[test]
    fn vllm_invariants(seed in any::<u64>(), rate in 0.2f64..2.0, pop in arb_pop()) {
        let trace = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: rate,
            duration_s: 30.0,
            popularity: pop,
            seed,
        });
        let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        let m = VllmScbEngine::new(cost, VllmScbConfig::default()).run(&trace);
        check(&trace, &m);
    }

    #[test]
    fn lora_invariants(seed in any::<u64>(), rate in 0.2f64..3.0, rank in 1usize..128) {
        let trace = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: rate,
            duration_s: 30.0,
            popularity: PopularityDist::Uniform,
            seed,
        });
        let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        let m = EngineBuilder::new(cost)
            .adapters(LoraServingConfig { rank, ..LoraServingConfig::default() })
            .build_adapter_only()
            .run(&trace);
        check(&trace, &m);
    }
}

// Policy-surface invariants: every combination of the §8 extension knobs
// must still conserve requests and produce physical latencies.
fn arb_preemption() -> impl Strategy<Value = PreemptionPolicy> {
    prop_oneof![
        Just(PreemptionPolicy::Never),
        Just(PreemptionPolicy::ParentFinish),
        (0usize..64).prop_map(|spare_tokens| PreemptionPolicy::LengthAware { spare_tokens }),
    ]
}

fn arb_resume() -> impl Strategy<Value = dz_serve::ResumePolicy> {
    prop_oneof![
        Just(dz_serve::ResumePolicy::SwapToHost),
        Just(dz_serve::ResumePolicy::Recompute),
        Just(dz_serve::ResumePolicy::CostBased),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn policy_combination_invariants(
        seed in any::<u64>(),
        rate in 1.0f64..4.0,
        preemption in arb_preemption(),
        resume in arb_resume(),
        host_cap in prop_oneof![Just(None), (1usize..16).prop_map(Some)],
        oracle in any::<bool>(),
    ) {
        let trace = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: rate,
            duration_s: 30.0,
            popularity: PopularityDist::Zipf { alpha: 1.5 },
            seed,
        });
        let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        let mut engine = DeltaZipEngine::new(cost, DeltaZipConfig {
            max_concurrent_deltas: 3,
            max_batch: 24,
            preemption,
            resume,
            host_capacity_deltas: host_cap,
            ..DeltaZipConfig::default()
        });
        if oracle {
            engine = engine.with_estimator(dz_serve::LengthEstimator::Oracle);
        }
        let m = engine.run(&trace);
        check(&trace, &m);
    }

    #[test]
    fn slo_and_dynamic_n_invariants(
        seed in any::<u64>(),
        rate in 0.5f64..3.0,
        n_interactive in 0usize..16,
        start_n in 1usize..12,
    ) {
        let trace = Trace::generate(TraceSpec {
            n_models: 16,
            arrival_rate: rate,
            duration_s: 30.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed,
        });
        let cost = CostModel::new(NodeSpec::a800_node(4), ModelShape::llama13b());
        let policy = dz_serve::SloPolicy::tiered(16, n_interactive);
        let controller = dz_serve::tuning::DynamicN::new(
            dz_serve::tuning::DynamicNConfig::default(),
            start_n,
        );
        let m = DeltaZipEngine::new(cost, DeltaZipConfig::default())
            .with_slo_policy(policy.clone())
            .with_dynamic_n(controller)
            .run(&trace);
        check(&trace, &m);
        // Per-class views partition the records.
        let total: usize = policy.split_metrics(&m).iter().map(|(_, s)| s.len()).sum();
        prop_assert_eq!(total, m.len());
    }

    #[test]
    fn p2_quantile_tracks_exact_quantile(
        mut values in proptest::collection::vec(0.0f64..1e4, 64..512),
        q in 0.1f64..0.9,
    ) {
        let mut est = dz_serve::predictor::P2Quantile::new(q);
        for &v in &values {
            est.observe(v);
        }
        let got = est.estimate().expect("estimate after stream");
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        // Exact quantile and a generous tolerance band: P² is approximate,
        // but must stay within the observed range and near the true rank.
        let lo_idx = ((q - 0.25).max(0.0) * (values.len() - 1) as f64) as usize;
        let hi_idx = ((q + 0.25).min(1.0) * (values.len() - 1) as f64) as usize;
        prop_assert!(got >= values[0] && got <= values[values.len() - 1]);
        prop_assert!(
            got >= values[lo_idx] && got <= values[hi_idx],
            "estimate {} outside [{}, {}] for q={}",
            got, values[lo_idx], values[hi_idx], q
        );
    }
}
