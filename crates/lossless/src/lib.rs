//! A from-scratch lossless codec standing in for nvcomp's GDeflate.
//!
//! DeltaZip's compression pipeline has an optional Step 4: lossless
//! compression of the packed delta so that disk- or NFS-bound deployments
//! trade decompression compute for I/O. The paper uses GDeflate, whose
//! defining property (vs. plain DEFLATE) is that the stream is split into
//! independently decodable pages so a GPU can decompress them in parallel.
//!
//! This crate reproduces that design in safe Rust:
//!
//! * [`lz77`] — greedy hash-chain LZ77 matcher (window 32 KiB, matches
//!   3..=258 bytes, DEFLATE-compatible limits),
//! * [`huffman`] — length-limited canonical Huffman codes built with the
//!   package-merge algorithm,
//! * [`bitio`] — LSB-first bit reader/writer,
//! * [`page`] — the paged container: each page compresses independently and
//!   records its compressed size, so pages can be decoded in parallel.
//!
//! The container format is custom (simpler than RFC 1951 — code lengths are
//! stored verbatim rather than RLE-encoded) but the algorithmic content is
//! the same, so compression ratios land in the same regime.
//!
//! Decoding is built for throughput: a word-filling bit reader
//! (`peek`/`consume`, no per-bit branching), a two-level lookup-table
//! Huffman decoder ([`huffman::LutDecoder`]; single probe for codes up to
//! [`huffman::LUT_BITS`] bits), slicing-by-16 CRC32, and [`decompress`]
//! fans independent pages out across scoped threads once the stream is
//! large enough to amortize spawns. The original serial tree-walk path is
//! retained as [`decompress_reference`] and property-tested against the
//! fast path.
//!
//! # Examples
//!
//! ```
//! let data = b"abcabcabcabc-the quick brown fox-abcabcabc".repeat(20);
//! let compressed = dz_lossless::compress(&data);
//! assert!(compressed.len() < data.len());
//! let restored = dz_lossless::decompress(&compressed).unwrap();
//! assert_eq!(restored, data);
//! ```

pub mod bitio;
pub mod crc;
pub mod huffman;
pub mod lz77;
pub mod page;

pub use page::{
    compress, compress_with_page_size, decompress, decompress_reference, decompress_with_threads,
    CodecError, DEFAULT_PAGE_SIZE,
};

/// Compression statistics for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ratio {
    /// Bytes in.
    pub raw: usize,
    /// Bytes out.
    pub compressed: usize,
}

impl Ratio {
    /// `raw / compressed`; `1.0` for empty input.
    pub fn factor(&self) -> f64 {
        if self.compressed == 0 {
            1.0
        } else {
            self.raw as f64 / self.compressed as f64
        }
    }
}

/// Compresses and reports the ratio in one call.
pub fn compress_stats(data: &[u8]) -> (Vec<u8>, Ratio) {
    let out = compress(data);
    let ratio = Ratio {
        raw: data.len(),
        compressed: out.len(),
    };
    (out, ratio)
}
