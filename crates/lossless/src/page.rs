//! The paged container tying LZ77 and Huffman together.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "DZLC" | version u8 | page_size u32 | raw_len u64 | n_pages u32
//! page table: n_pages x { comp_len u32, mode u8 }
//! page payloads, back to back
//! ```
//!
//! Each page compresses `page_size` raw bytes independently (the last page
//! may be shorter). A page is stored raw (`mode = 1`) when entropy coding
//! would not help, mirroring DEFLATE's stored blocks. Independent pages are
//! what makes GDeflate GPU-friendly: a decompression engine assigns one page
//! per thread block. Here they let `decompress` be trivially parallelizable
//! and bound the memory of the matcher.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{code_lengths, DecodeError, Decoder, Encoder, LutDecoder, MAX_CODE_LEN};
use crate::lz77::{tokenize, Token, MAX_MATCH, MIN_MATCH};

/// Default page size (64 KiB, as GDeflate uses).
pub const DEFAULT_PAGE_SIZE: usize = 64 * 1024;

/// Minimum raw bytes before page decoding goes multi-threaded; below this
/// the thread spawn cost outweighs the decode work (same reasoning as the
/// FLOP threshold in `dz-tensor`'s parallel GEMM).
const PARALLEL_BYTE_THRESHOLD: usize = 256 * 1024;

/// Maximum number of worker threads used by the parallel decode path.
const MAX_DECODE_THREADS: usize = 8;

const MAGIC: &[u8; 4] = b"DZLC";
const VERSION: u8 = 2;
const MODE_HUFFMAN: u8 = 0;
const MODE_STORED: u8 = 1;

/// Number of literal/length symbols (256 literals + EOB + 29 length codes).
const NUM_LITLEN: usize = 286;
/// End-of-block symbol.
const EOB: usize = 256;
/// Number of distance symbols.
const NUM_DIST: usize = 30;

/// `(base_length, extra_bits)` for length codes 257..=285.
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// `(base_distance, extra_bits)` for distance codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Errors surfaced while decoding a compressed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Stream does not start with the container magic.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u8),
    /// Stream is shorter than its headers claim.
    Truncated,
    /// A page failed to entropy-decode.
    Corrupt(&'static str),
    /// The decoded payload does not match the stored checksum.
    ChecksumMismatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::Truncated => write!(f, "truncated stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<DecodeError> for CodecError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::OutOfBits => CodecError::Truncated,
            DecodeError::BadCode => CodecError::Corrupt("invalid huffman code"),
        }
    }
}

fn length_to_symbol(len: u16) -> (usize, u16, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
    // Find the last code whose base <= len.
    let mut idx = 0;
    for (i, (base, _)) in LEN_TABLE.iter().enumerate() {
        if *base <= len {
            idx = i;
        } else {
            break;
        }
    }
    let (base, extra) = LEN_TABLE[idx];
    (257 + idx, len - base, extra)
}

fn dist_to_symbol(dist: u16) -> (usize, u16, u8) {
    let mut idx = 0;
    for (i, (base, _)) in DIST_TABLE.iter().enumerate() {
        if *base <= dist {
            idx = i;
        } else {
            break;
        }
    }
    let (base, extra) = DIST_TABLE[idx];
    (idx, dist - base, extra)
}

/// Compresses one page; returns `(mode, payload)`.
fn compress_page(raw: &[u8]) -> (u8, Vec<u8>) {
    let tokens = tokenize(raw);
    // Gather symbol frequencies.
    let mut lit_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_to_symbol(len).0] += 1;
                dist_freq[dist_to_symbol(dist).0] += 1;
            }
        }
    }
    lit_freq[EOB] += 1;
    let lit_lens = code_lengths(&lit_freq, MAX_CODE_LEN);
    let dist_lens = code_lengths(&dist_freq, MAX_CODE_LEN);
    let lit_enc = Encoder::from_lengths(&lit_lens);
    let dist_enc = Encoder::from_lengths(&dist_lens);

    let mut w = BitWriter::new();
    // Header: code lengths, 4 bits each (max length is 15).
    for &l in &lit_lens {
        w.write_bits(l, 4);
    }
    for &l in &dist_lens {
        w.write_bits(l, 4);
    }
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_enc.encode(&mut w, b as usize),
            Token::Match { len, dist } => {
                let (sym, extra_val, extra_bits) = length_to_symbol(len);
                lit_enc.encode(&mut w, sym);
                if extra_bits > 0 {
                    w.write_bits(extra_val as u32, extra_bits as u32);
                }
                let (dsym, dextra_val, dextra_bits) = dist_to_symbol(dist);
                dist_enc.encode(&mut w, dsym);
                if dextra_bits > 0 {
                    w.write_bits(dextra_val as u32, dextra_bits as u32);
                }
            }
        }
    }
    lit_enc.encode(&mut w, EOB);
    let payload = w.finish();
    if payload.len() >= raw.len() {
        (MODE_STORED, raw.to_vec())
    } else {
        (MODE_HUFFMAN, payload)
    }
}

/// Reference page decoder: the original bit-at-a-time tree-walk path,
/// retained as the correctness oracle for the LUT fast path.
fn decompress_page_reference(
    payload: &[u8],
    mode: u8,
    raw_len: usize,
) -> Result<Vec<u8>, CodecError> {
    match mode {
        MODE_STORED => {
            if payload.len() != raw_len {
                return Err(CodecError::Corrupt("stored page length mismatch"));
            }
            Ok(payload.to_vec())
        }
        MODE_HUFFMAN => {
            let mut r = BitReader::new(payload);
            let mut lit_lens = vec![0u32; NUM_LITLEN];
            for l in lit_lens.iter_mut() {
                *l = r.read_bits(4).map_err(|_| CodecError::Truncated)?;
            }
            let mut dist_lens = vec![0u32; NUM_DIST];
            for l in dist_lens.iter_mut() {
                *l = r.read_bits(4).map_err(|_| CodecError::Truncated)?;
            }
            let lit_dec = Decoder::from_lengths(&lit_lens);
            let dist_dec = Decoder::from_lengths(&dist_lens);
            let mut out = Vec::with_capacity(raw_len);
            loop {
                let sym = lit_dec.decode(&mut r)? as usize;
                if sym == EOB {
                    break;
                }
                if sym < 256 {
                    out.push(sym as u8);
                } else {
                    let idx = sym - 257;
                    if idx >= LEN_TABLE.len() {
                        return Err(CodecError::Corrupt("bad length symbol"));
                    }
                    let (base, extra) = LEN_TABLE[idx];
                    let len = base as usize
                        + r.read_bits(extra as u32)
                            .map_err(|_| CodecError::Truncated)? as usize;
                    let dsym = dist_dec.decode(&mut r)? as usize;
                    if dsym >= DIST_TABLE.len() {
                        return Err(CodecError::Corrupt("bad distance symbol"));
                    }
                    let (dbase, dextra) = DIST_TABLE[dsym];
                    let dist = dbase as usize
                        + r.read_bits(dextra as u32)
                            .map_err(|_| CodecError::Truncated)? as usize;
                    if dist == 0 || dist > out.len() {
                        return Err(CodecError::Corrupt("distance before start"));
                    }
                    let start = out.len() - dist;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
                if out.len() > raw_len {
                    return Err(CodecError::Corrupt("page overflow"));
                }
            }
            if out.len() != raw_len {
                return Err(CodecError::Corrupt("page length mismatch"));
            }
            Ok(out)
        }
        _ => Err(CodecError::Corrupt("unknown page mode")),
    }
}

/// Fast-path page decoder: LUT Huffman decoding straight into the caller's
/// output slice (whose length is the page's expected raw length), with
/// `copy_within` for non-overlapping match copies.
fn decompress_page_into(payload: &[u8], mode: u8, out: &mut [u8]) -> Result<(), CodecError> {
    match mode {
        MODE_STORED => {
            if payload.len() != out.len() {
                return Err(CodecError::Corrupt("stored page length mismatch"));
            }
            out.copy_from_slice(payload);
            Ok(())
        }
        MODE_HUFFMAN => {
            let mut r = BitReader::new(payload);
            let mut lit_lens = vec![0u32; NUM_LITLEN];
            for l in lit_lens.iter_mut() {
                *l = r.read_bits(4).map_err(|_| CodecError::Truncated)?;
            }
            let mut dist_lens = vec![0u32; NUM_DIST];
            for l in dist_lens.iter_mut() {
                *l = r.read_bits(4).map_err(|_| CodecError::Truncated)?;
            }
            let lit_dec = LutDecoder::from_lengths(&lit_lens);
            let dist_dec = LutDecoder::from_lengths(&dist_lens);
            let mut filled = 0usize;
            loop {
                // One 32-bit peek covers the longest code (15 bits) plus its
                // extra bits, so each symbol costs a single probe and a
                // single consume.
                let peek = r.peek_bits(32);
                let (sym, clen) = lit_dec.probe(peek)?;
                let sym = sym as usize;
                if sym == EOB {
                    r.consume(clen).map_err(|_| CodecError::Truncated)?;
                    break;
                }
                if sym < 256 {
                    r.consume(clen).map_err(|_| CodecError::Truncated)?;
                    if filled == out.len() {
                        return Err(CodecError::Corrupt("page overflow"));
                    }
                    out[filled] = sym as u8;
                    filled += 1;
                } else {
                    let idx = sym - 257;
                    if idx >= LEN_TABLE.len() {
                        return Err(CodecError::Corrupt("bad length symbol"));
                    }
                    let (base, extra) = LEN_TABLE[idx];
                    let extra = extra as u32;
                    let len = base as usize + ((peek >> clen) & ((1u32 << extra) - 1)) as usize;
                    r.consume(clen + extra).map_err(|_| CodecError::Truncated)?;
                    let dpeek = r.peek_bits(32);
                    let (dsym, dclen) = dist_dec.probe(dpeek)?;
                    let dsym = dsym as usize;
                    if dsym >= DIST_TABLE.len() {
                        return Err(CodecError::Corrupt("bad distance symbol"));
                    }
                    let (dbase, dextra) = DIST_TABLE[dsym];
                    let dextra = dextra as u32;
                    let dist =
                        dbase as usize + ((dpeek >> dclen) & ((1u32 << dextra) - 1)) as usize;
                    r.consume(dclen + dextra)
                        .map_err(|_| CodecError::Truncated)?;
                    if dist == 0 || dist > filled {
                        return Err(CodecError::Corrupt("distance before start"));
                    }
                    if len > out.len() - filled {
                        return Err(CodecError::Corrupt("page overflow"));
                    }
                    let start = filled - dist;
                    if dist >= len {
                        out.copy_within(start..start + len, filled);
                    } else {
                        // Overlapping run (dist < len): the output repeats a
                        // dist-byte pattern. Replicate it by doubling — each
                        // copy's source ends where the previous one finished,
                        // so every copy_within is non-overlapping and the
                        // whole run costs O(log(len/dist)) memmoves instead
                        // of len byte stores.
                        let mut w = 0usize;
                        while w < len {
                            let chunk = (dist + w).min(len - w);
                            out.copy_within(start..start + chunk, filled + w);
                            w += chunk;
                        }
                    }
                    filled += len;
                }
            }
            if filled != out.len() {
                return Err(CodecError::Corrupt("page length mismatch"));
            }
            Ok(())
        }
        _ => Err(CodecError::Corrupt("unknown page mode")),
    }
}

/// Compresses `data` with the default page size.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with_page_size(data, DEFAULT_PAGE_SIZE)
}

/// Compresses `data` with an explicit page size.
///
/// # Panics
///
/// Panics if `page_size == 0`.
pub fn compress_with_page_size(data: &[u8], page_size: usize) -> Vec<u8> {
    assert!(page_size > 0, "page size must be positive");
    let n_pages = data.len().div_ceil(page_size);
    let mut pages = Vec::with_capacity(n_pages);
    for chunk in data.chunks(page_size) {
        pages.push(compress_page(chunk));
    }
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(page_size as u32).to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&crate::crc::crc32(data).to_le_bytes());
    out.extend_from_slice(&(n_pages as u32).to_le_bytes());
    for (mode, payload) in &pages {
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.push(*mode);
    }
    for (_, payload) in &pages {
        out.extend_from_slice(payload);
    }
    out
}

/// A parsed container: header fields plus per-page payload slices.
struct ParsedStream<'a> {
    page_size: usize,
    raw_len: usize,
    stored_crc: u32,
    /// `(payload, mode)` per page, in order.
    pages: Vec<(&'a [u8], u8)>,
}

fn parse_stream(stream: &[u8]) -> Result<ParsedStream<'_>, CodecError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], CodecError> {
        if *pos + n > stream.len() {
            return Err(CodecError::Truncated);
        }
        let s = &stream[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = take(&mut pos, 1)?[0];
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let page_size = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let raw_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    let n_pages = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    if page_size == 0 && raw_len > 0 {
        return Err(CodecError::Corrupt("zero page size"));
    }
    if n_pages != raw_len.div_ceil(page_size.max(1)) {
        return Err(CodecError::Corrupt("page count mismatch"));
    }
    let mut table = Vec::with_capacity(n_pages);
    for _ in 0..n_pages {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mode = take(&mut pos, 1)?[0];
        table.push((len, mode));
    }
    let mut pages = Vec::with_capacity(n_pages);
    for (len, mode) in table {
        pages.push((take(&mut pos, len)?, mode));
    }
    Ok(ParsedStream {
        page_size,
        raw_len,
        stored_crc,
        pages,
    })
}

/// Decompresses a stream produced by [`compress`].
///
/// This is the fast path: LUT Huffman decoding per page, and pages fanned
/// out across scoped threads once the stream is large enough to amortize
/// spawn costs (pages carry independent Huffman tables, so decoding them
/// concurrently is exactly the parallelism the page format was designed
/// for).
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, CodecError> {
    decompress_with_threads(stream, MAX_DECODE_THREADS)
}

/// Decompresses with an explicit worker-thread cap (`1` forces the
/// single-threaded LUT path; the cap is further limited by the page count
/// and the machine's available parallelism).
pub fn decompress_with_threads(stream: &[u8], max_threads: usize) -> Result<Vec<u8>, CodecError> {
    let parsed = parse_stream(stream)?;
    let mut out = vec![0u8; parsed.raw_len];
    let threads = if parsed.raw_len >= PARALLEL_BYTE_THRESHOLD {
        max_threads
            .max(1)
            .min(parsed.pages.len())
            .min(std::thread::available_parallelism().map_or(1, |p| p.get()))
    } else {
        1
    };
    if threads <= 1 {
        if parsed.raw_len > 0 {
            for ((payload, mode), chunk) in parsed
                .pages
                .iter()
                .zip(out.chunks_mut(parsed.page_size.max(1)))
            {
                decompress_page_into(payload, *mode, chunk)?;
            }
        }
    } else {
        // One decode job per page: payload, mode, destination chunk.
        type PageJob<'p, 'o> = (&'p [u8], u8, &'o mut [u8]);
        let mut jobs: Vec<PageJob<'_, '_>> = parsed
            .pages
            .iter()
            .zip(out.chunks_mut(parsed.page_size))
            .map(|(&(payload, mode), chunk)| (payload, mode, chunk))
            .collect();
        let per_thread = jobs.len().div_ceil(threads);
        let mut groups: Vec<Vec<PageJob<'_, '_>>> = Vec::with_capacity(threads);
        while !jobs.is_empty() {
            let n = per_thread.min(jobs.len());
            groups.push(jobs.drain(..n).collect());
        }
        std::thread::scope(|scope| -> Result<(), CodecError> {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || -> Result<(), CodecError> {
                        for (payload, mode, chunk) in group {
                            decompress_page_into(payload, mode, chunk)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            // First failing group (lowest page range) wins, matching the
            // serial path's error order.
            for h in handles {
                h.join().expect("page decode worker panicked")?;
            }
            Ok(())
        })?;
    }
    if crate::crc::crc32(&out) != parsed.stored_crc {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(out)
}

/// Decompresses through the retained serial reference path (bit-at-a-time
/// tree-walk decoder, pages in order). Kept as the oracle the fast path is
/// property-tested against; byte-identical to [`decompress`] on success and
/// erring on every input the fast path rejects.
pub fn decompress_reference(stream: &[u8]) -> Result<Vec<u8>, CodecError> {
    let parsed = parse_stream(stream)?;
    let n_pages = parsed.pages.len();
    let mut out = Vec::with_capacity(parsed.raw_len);
    for (i, (payload, mode)) in parsed.pages.iter().enumerate() {
        let expected = if i + 1 == n_pages {
            parsed.raw_len - parsed.page_size * (n_pages - 1)
        } else {
            parsed.page_size
        };
        out.extend(decompress_page_reference(payload, *mode, expected)?);
    }
    if crate::crc::crc32_bytewise(&out) != parsed.stored_crc {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data);
        // The retained serial reference path must agree byte for byte.
        let r = decompress_reference(&c).expect("reference decompress");
        assert_eq!(r, data);
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
    }

    #[test]
    fn small_text() {
        round_trip(b"hello world, hello world, hello world");
    }

    #[test]
    fn compresses_repetitive_data_well() {
        let data = b"0123456789abcdef".repeat(4096);
        let c = compress(&data);
        assert!(
            (c.len() as f64) < data.len() as f64 * 0.1,
            "only {} -> {}",
            data.len(),
            c.len()
        );
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_stays_near_raw() {
        let mut x = 0x2545F4914F6CDD1Du64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let c = compress(&data);
        // Stored-mode fallback bounds expansion to the page table overhead.
        assert!(c.len() < data.len() + 64 + data.len() / DEFAULT_PAGE_SIZE * 8);
        round_trip(&data);
    }

    #[test]
    fn multi_page_boundaries() {
        let data: Vec<u8> = (0..DEFAULT_PAGE_SIZE * 2 + 17)
            .map(|i| (i % 251) as u8)
            .collect();
        round_trip(&data);
        // Tiny pages stress the page table path.
        let c = compress_with_page_size(&data[..1000], 64);
        assert_eq!(decompress(&c).unwrap(), &data[..1000]);
    }

    #[test]
    fn parallel_decode_crosses_thread_threshold() {
        // Enough pages and raw bytes to actually fan out, with mixed
        // Huffman and stored pages.
        let mut data = b"multi page parallel decode ".repeat(40_000);
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        data.extend((0..PARALLEL_BYTE_THRESHOLD).map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        }));
        assert!(data.len() > PARALLEL_BYTE_THRESHOLD * 2);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert_eq!(decompress_with_threads(&c, 1).unwrap(), data);
        assert_eq!(decompress_with_threads(&c, 3).unwrap(), data);
        assert_eq!(decompress_reference(&c).unwrap(), data);
    }

    #[test]
    fn parallel_decode_rejects_corruption_like_serial() {
        let data = b"corruption must never pass ".repeat(40_000);
        let c = compress(&data);
        for pos in [8, c.len() / 2, c.len() - 3] {
            let mut bad = c.clone();
            bad[pos] ^= 0x40;
            let fast = decompress(&bad);
            let slow = decompress_reference(&bad);
            // Either both recover the exact data (flip in dead padding) or
            // both refuse; never silent corruption, never divergence.
            match (fast, slow) {
                (Ok(f), Ok(s)) => {
                    assert_eq!(f, data);
                    assert_eq!(s, data);
                }
                (Err(_), Err(_)) => {}
                (f, s) => panic!("fast {f:?} vs reference {s:?} at byte {pos}"),
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decompress(b"NOPE"), Err(CodecError::BadMagic));
        assert_eq!(decompress(b"DZ"), Err(CodecError::Truncated));
        let mut c = compress(b"data data data");
        c[0] = b'X';
        assert_eq!(decompress(&c), Err(CodecError::BadMagic));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data = b"the same phrase repeats; the same phrase repeats".repeat(10);
        let c = compress(&data);
        for cut in [5, 12, 20, c.len() - 1] {
            let r = decompress(&c[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_version_bump() {
        let mut c = compress(b"abc");
        c[4] = 9;
        assert_eq!(decompress(&c), Err(CodecError::BadVersion(9)));
    }

    #[test]
    fn length_symbol_tables_cover_all_lengths() {
        for len in MIN_MATCH as u16..=MAX_MATCH as u16 {
            let (sym, extra_val, extra_bits) = length_to_symbol(len);
            assert!((257..286).contains(&sym));
            let (base, eb) = LEN_TABLE[sym - 257];
            assert_eq!(eb, extra_bits);
            assert_eq!(base + extra_val, len);
            assert!(extra_val < (1 << extra_bits) || extra_bits == 0);
        }
    }

    #[test]
    fn distance_symbol_tables_cover_window() {
        for dist in [1u16, 2, 3, 4, 5, 100, 1024, 4096, 16384, 32767] {
            let (sym, extra_val, extra_bits) = dist_to_symbol(dist);
            let (base, eb) = DIST_TABLE[sym];
            assert_eq!(eb, extra_bits);
            assert_eq!(base + extra_val, dist);
        }
    }

    #[test]
    fn float_delta_bytes_compress() {
        // A packed, quantized delta looks like low-entropy integer data; the
        // codec must find structure in repeated scale bytes.
        let mut data = Vec::new();
        for i in 0..20_000u32 {
            data.extend_from_slice(&((i % 7) as u8).to_le_bytes());
            data.push(0);
            data.push(0);
        }
        let c = compress(&data);
        assert!(c.len() * 4 < data.len());
        round_trip(&data);
    }
}
