//! Greedy LZ77 matching with hash chains (DEFLATE limits).
//!
//! Produces a token stream of literals and `(length, distance)` matches with
//! `length` in `3..=258` and `distance` in `1..=32768`. The matcher hashes
//! 3-byte prefixes into chains and walks a bounded number of candidates,
//! which is the classic zlib "good enough" strategy.

/// Maximum look-back distance.
pub const WINDOW: usize = 32 * 1024;
/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Maximum match length.
pub const MAX_MATCH: usize = 258;
/// Maximum chain positions examined per match attempt.
const MAX_CHAIN: usize = 64;
/// "Good enough" match length: once a candidate reaches this, stop walking
/// the chain (zlib's `nice_length`). Long-run inputs otherwise burn the
/// whole chain budget polishing matches that are already near-optimal; the
/// token stream may differ slightly but expansion is identical.
const NICE_LEN: usize = 66;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single byte emitted verbatim.
    Literal(u8),
    /// A back-reference copying `len` bytes from `dist` bytes back.
    Match {
        /// Copy length, `3..=258`.
        len: u16,
        /// Back-reference distance, `1..=32768`.
        dist: u16,
    },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Tokenizes `data` greedily.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 4);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h (+1; 0 = empty).
    let mut head = vec![0u32; HASH_SIZE];
    // prev[i & (WINDOW-1)] = previous position in this chain (+1; 0 = none).
    let mut prev = vec![0u32; WINDOW];

    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h] as usize;
            let mut chain = 0;
            while cand > 0 && chain < MAX_CHAIN {
                let pos = cand - 1;
                if i - pos > WINDOW {
                    break;
                }
                let limit = (n - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[pos + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - pos;
                    if l >= limit || l >= NICE_LEN {
                        break;
                    }
                }
                cand = prev[pos & (WINDOW - 1)] as usize;
                chain += 1;
            }
            // Insert current position into the chain.
            prev[i & (WINDOW - 1)] = head[h];
            head[h] = (i + 1) as u32;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert the skipped positions so future matches can find them.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                let h = hash3(data, j);
                prev[j & (WINDOW - 1)] = head[h];
                head[h] = (j + 1) as u32;
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Expands a token stream back into bytes.
///
/// Returns `None` if a match refers before the start of the output.
pub fn expand(tokens: &[Token]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                // Byte-by-byte copy: overlapping matches (dist < len) must
                // see bytes produced earlier in this same copy.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let tokens = tokenize(data);
        let restored = expand(&tokens).expect("expand failed");
        assert_eq!(restored, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "{tokens:?}"
        );
        round_trip(data);
    }

    #[test]
    fn overlapping_match_run() {
        // "aaaa..." forces dist=1 matches with len > dist.
        let data = vec![b'a'; 1000];
        let tokens = tokenize(&data);
        assert!(
            tokens.len() < 20,
            "run should compress to few tokens: {}",
            tokens.len()
        );
        round_trip(&data);
    }

    #[test]
    fn random_bytes_round_trip() {
        // Pseudo-random (incompressible) data must still round-trip.
        let mut x = 123456789u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn long_match_capped_at_max() {
        let data = vec![b'z'; MAX_MATCH * 3 + 10];
        for t in tokenize(&data) {
            if let Token::Match { len, .. } = t {
                assert!((len as usize) <= MAX_MATCH);
            }
        }
        round_trip(&data);
    }

    #[test]
    fn distant_repeat_found_within_window() {
        let mut data = Vec::new();
        data.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        data.extend(std::iter::repeat_n(b'.', 1024));
        data.extend_from_slice(b"the quick brown fox jumps over the lazy dog");
        let tokens = tokenize(&data);
        let matched: usize = tokens
            .iter()
            .map(|t| match t {
                Token::Match { len, .. } => *len as usize,
                _ => 0,
            })
            .sum();
        assert!(matched > 1000, "matched only {matched} bytes");
        round_trip(&data);
    }

    #[test]
    fn nice_len_keeps_long_runs_compact() {
        // A long run still collapses to few tokens even though chaining
        // stops at the first NICE_LEN-byte candidate.
        let data = vec![b'q'; 64 * 1024];
        let tokens = tokenize(&data);
        let matched: usize = tokens
            .iter()
            .map(|t| match t {
                Token::Match { len, .. } => *len as usize,
                _ => 0,
            })
            .sum();
        assert!(matched + 16 >= data.len(), "matched only {matched}");
        round_trip(&data);
    }

    #[test]
    fn expand_rejects_bad_distance() {
        let bad = vec![Token::Match { len: 3, dist: 5 }];
        assert_eq!(expand(&bad), None);
    }

    #[test]
    fn text_like_data_round_trip() {
        let data = "DeltaZip serves many fine-tuned variants. ".repeat(200);
        round_trip(data.as_bytes());
    }
}
