//! LSB-first bit-level I/O, DEFLATE style.
//!
//! Bits are written into bytes starting at the least significant position;
//! multi-bit values are written least-significant-bit first. This matches
//! RFC 1951 conventions so the Huffman layer can reuse the standard
//! canonical-code bit order (codes are written MSB-first via explicit
//! reversal in the Huffman encoder).

/// Accumulates bits into a byte vector, LSB first.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `n` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn write_bits(&mut self, value: u32, n: u32) {
        assert!(n <= 32, "write_bits supports at most 32 bits");
        debug_assert!(
            n == 32 || value < (1u32 << n),
            "value {value} wider than {n} bits"
        );
        self.acc |= (value as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Number of complete bytes plus a partial byte, in bits.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Flushes any partial byte (zero-padded) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

/// Reads bits from a byte slice, LSB first.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

/// Error returned when a reader runs out of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit stream exhausted")
    }
}

impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Tops the accumulator up to at least 56 valid bits (or until the
    /// input is exhausted). The hot path loads a whole little-endian `u64`
    /// and advances by however many bytes fit — no per-bit or per-byte
    /// branching; the byte-at-a-time loop only runs within the final seven
    /// bytes of the input.
    #[inline]
    fn refill(&mut self) {
        if self.nbits >= 56 {
            return;
        }
        if self.pos + 8 <= self.data.len() {
            let word = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
            self.acc |= word << self.nbits;
            // Bytes that fit into the free top of the accumulator.
            self.pos += ((63 - self.nbits) >> 3) as usize;
            self.nbits |= 56;
        } else {
            while self.nbits <= 56 && self.pos < self.data.len() {
                self.acc |= (self.data[self.pos] as u64) << self.nbits;
                self.pos += 1;
                self.nbits += 8;
            }
        }
    }

    /// Returns the next `n` bits (`n <= 32`) without consuming them, LSB
    /// first. Near the end of the stream the value is zero-padded; pair
    /// with [`consume`](Self::consume) (which does bounds-check) to detect
    /// truncation.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 32, "peek_bits supports at most 32 bits");
        if self.nbits < n {
            self.refill();
        }
        let mask = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
        (self.acc as u32) & mask
    }

    /// Consumes `n` previously peeked bits.
    ///
    /// Returns [`OutOfBits`] if fewer than `n` bits remain in the stream.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<(), OutOfBits> {
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(OutOfBits);
            }
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Reads `n` bits (`n <= 32`), LSB first.
    ///
    /// Returns [`OutOfBits`] if fewer than `n` bits remain.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32, OutOfBits> {
        assert!(n <= 32, "read_bits supports at most 32 bits");
        if n == 0 {
            return Ok(0);
        }
        let v = self.peek_bits(n);
        self.consume(n)?;
        Ok(v)
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> Result<u32, OutOfBits> {
        self.read_bits(1)
    }

    /// Total bits remaining (including buffered ones).
    pub fn bits_remaining(&self) -> usize {
        (self.data.len() - self.pos) * 8 + self.nbits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b1010, 4);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 3);
        w.write_bits(0x12345678, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bits(3).unwrap(), 0);
        assert_eq!(r.read_bits(32).unwrap(), 0x12345678);
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        // Writing 1,0,1,1 as single bits should give 0b...1101 = 13.
        w.write_bits(1, 1);
        w.write_bits(0, 1);
        w.write_bits(1, 1);
        w.write_bits(1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_1101]);
    }

    #[test]
    fn out_of_bits_detected() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        // Padding bits of the final byte are readable...
        assert!(r.read_bits(5).is_ok());
        // ...but past the final byte we must fail.
        assert_eq!(r.read_bits(1), Err(OutOfBits));
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0, 9);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn empty_reader() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(1), Err(OutOfBits));
        assert_eq!(r.bits_remaining(), 0);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(8), 0xCD);
        assert_eq!(r.peek_bits(16), 0xABCD);
        r.consume(4).unwrap();
        assert_eq!(r.peek_bits(12), 0xABC);
        r.consume(12).unwrap();
        assert_eq!(r.consume(1), Err(OutOfBits));
    }

    #[test]
    fn peek_past_end_is_zero_padded() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.peek_bits(16), 0x00FF);
        assert!(r.consume(8).is_ok());
        assert_eq!(r.consume(1), Err(OutOfBits));
    }

    #[test]
    fn word_refill_matches_byte_refill_on_long_streams() {
        // Drive the reader across many refills with mixed widths; values
        // must reproduce the written sequence exactly.
        let mut w = BitWriter::new();
        let widths = [1u32, 3, 7, 8, 11, 13, 16, 24, 32, 5];
        let mut expect = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for round in 0..200 {
            let n = widths[round % widths.len()];
            x ^= x << 7;
            x ^= x >> 9;
            let mask = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
            let v = (x as u32) & mask;
            w.write_bits(v, n);
            expect.push((v, n));
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in expect {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }
}
