//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The page container stores a checksum of the raw payload so corruption
//! that still entropy-decodes (e.g. a flipped literal bit) is caught
//! instead of silently producing wrong weights. Slicing-by-16: sixteen
//! 256-entry tables (built at compile time) let the hot loop fold sixteen
//! input bytes per iteration with no inter-byte dependency chain, which is
//! what keeps CRC off the critical path of stored-page decodes.

const POLY: u32 = 0xEDB8_8320;

/// Bytes folded per hot-loop iteration.
const SLICES: usize = 16;

/// `TABLES[k][b]` advances the CRC of byte `b` through `k` further zero
/// bytes, so sixteen lane lookups XOR-combine into one 16-byte step.
static TABLES: [[u32; 256]; SLICES] = build_tables();

const fn build_tables() -> [[u32; 256]; SLICES] {
    let mut t = [[0u32; 256]; SLICES];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1usize;
    while k < SLICES {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

/// Byte-at-a-time CRC-32: the seed implementation, retained as the
/// reference the slicing tables are tested against and as the faithful
/// baseline for the reference decode path in benchmarks.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(SLICES);
    for chunk in &mut chunks {
        let w0 = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let w1 = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let w2 = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        let w3 = u32::from_le_bytes(chunk[12..16].try_into().unwrap());
        c = TABLES[15][(w0 & 0xFF) as usize]
            ^ TABLES[14][((w0 >> 8) & 0xFF) as usize]
            ^ TABLES[13][((w0 >> 16) & 0xFF) as usize]
            ^ TABLES[12][(w0 >> 24) as usize]
            ^ TABLES[11][(w1 & 0xFF) as usize]
            ^ TABLES[10][((w1 >> 8) & 0xFF) as usize]
            ^ TABLES[9][((w1 >> 16) & 0xFF) as usize]
            ^ TABLES[8][(w1 >> 24) as usize]
            ^ TABLES[7][(w2 & 0xFF) as usize]
            ^ TABLES[6][((w2 >> 8) & 0xFF) as usize]
            ^ TABLES[5][((w2 >> 16) & 0xFF) as usize]
            ^ TABLES[4][(w2 >> 24) as usize]
            ^ TABLES[3][(w3 & 0xFF) as usize]
            ^ TABLES[2][((w3 >> 8) & 0xFF) as usize]
            ^ TABLES[1][((w3 >> 16) & 0xFF) as usize]
            ^ TABLES[0][(w3 >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn concatenation_differs_from_parts() {
        assert_ne!(crc32(b"ab"), crc32(b"a") ^ crc32(b"b"));
    }

    #[test]
    fn slicing_matches_bytewise_at_every_alignment() {
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        let data: Vec<u8> = (0..1024)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 40) as u8
            })
            .collect();
        // Lengths straddling the 16-byte fold boundary in both directions.
        for n in 0..64 {
            assert_eq!(crc32(&data[..n]), crc32_bytewise(&data[..n]), "len {n}");
        }
        for n in [65, 127, 128, 255, 512, 1000, 1024] {
            assert_eq!(crc32(&data[..n]), crc32_bytewise(&data[..n]), "len {n}");
        }
    }
}
