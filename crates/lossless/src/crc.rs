//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The page container stores a checksum of the raw payload so corruption
//! that still entropy-decodes (e.g. a flipped literal bit) is caught
//! instead of silently producing wrong weights. Table-driven, one table
//! built at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn concatenation_differs_from_parts() {
        assert_ne!(crc32(b"ab"), crc32(b"a") ^ crc32(b"b"));
    }
}
