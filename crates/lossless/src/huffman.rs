//! Length-limited canonical Huffman coding.
//!
//! Code lengths are derived with the package-merge algorithm, which produces
//! optimal codes under a maximum-length constraint (15 bits, as in DEFLATE).
//! Codes are canonical: within a length, symbols are assigned consecutive
//! codes in symbol order, so a decoder only needs the length array.
//!
//! Encoded codes are emitted most-significant-bit first into the LSB-first
//! bit stream (i.e. the code bits are reversed before writing), matching the
//! convention DEFLATE uses and making the decoder a simple first-code walk.

use crate::bitio::{BitReader, BitWriter, OutOfBits};

/// Maximum code length in bits.
pub const MAX_CODE_LEN: u32 = 15;

/// Computes optimal length-limited code lengths for the given frequencies.
///
/// Symbols with zero frequency get length 0 (no code). If only one symbol
/// has nonzero frequency it is assigned length 1 so the stream remains
/// decodable. The result always satisfies the Kraft equality when two or
/// more symbols are present.
pub fn code_lengths(freqs: &[u64], max_len: u32) -> Vec<u32> {
    assert!((1..=MAX_CODE_LEN).contains(&max_len));
    let active: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u32; freqs.len()];
    match active.len() {
        0 => return lens,
        1 => {
            lens[active[0]] = 1;
            return lens;
        }
        _ => {}
    }
    assert!(
        (active.len() as u64) <= (1u64 << max_len),
        "too many symbols for the length limit"
    );

    // Package-merge. Items are (weight, set of symbol indices represented as
    // counts). To avoid set bookkeeping we track, per level, how many times
    // each original symbol is contained in each package.
    #[derive(Clone)]
    struct Pkg {
        weight: u64,
        // Indices into `active` covered by this package (with multiplicity
        // folded into the count of level-crossings, i.e. each containment
        // adds one to the symbol's code length).
        syms: Vec<u32>,
    }

    let mut level: Vec<Pkg> = Vec::new();
    for _ in 0..max_len {
        // Fresh leaves for this level.
        let mut merged: Vec<Pkg> = active
            .iter()
            .enumerate()
            .map(|(ai, &i)| Pkg {
                weight: freqs[i],
                syms: vec![ai as u32],
            })
            .collect();
        // Plus packages carried from the previous level, paired up.
        let mut iter = level.into_iter();
        while let Some(a) = iter.next() {
            let Some(b) = iter.next() else { break };
            let mut syms = a.syms;
            syms.extend_from_slice(&b.syms);
            merged.push(Pkg {
                weight: a.weight + b.weight,
                syms,
            });
        }
        merged.sort_by_key(|p| p.weight);
        level = merged;
    }

    // Take the first 2n-2 packages; each containment of a symbol adds 1 to
    // its code length.
    let n = active.len();
    for pkg in level.iter().take(2 * n - 2) {
        for &ai in &pkg.syms {
            lens[active[ai as usize]] += 1;
        }
    }
    debug_assert!(lens.iter().all(|&l| l <= max_len));
    debug_assert!(kraft_ok(&lens));
    lens
}

fn kraft_ok(lens: &[u32]) -> bool {
    let sum: u64 = lens
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| 1u64 << (MAX_CODE_LEN - l))
        .sum();
    sum <= 1u64 << MAX_CODE_LEN
}

/// Canonical Huffman encoder table.
#[derive(Debug, Clone)]
pub struct Encoder {
    /// Per-symbol code bits (MSB-first semantics, stored reversed for the
    /// LSB-first writer) and lengths.
    codes: Vec<(u32, u32)>,
}

/// Assigns canonical codes from lengths; returns `(code, len)` per symbol.
fn canonical_codes(lens: &[u32]) -> Vec<(u32, u32)> {
    let max_len = lens.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max_len + 1) as usize];
    for &l in lens {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max_len + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lens.iter()
        .map(|&l| {
            if l == 0 {
                (0, 0)
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                (c, l)
            }
        })
        .collect()
}

impl Encoder {
    /// Builds an encoder from code lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        let canonical = canonical_codes(lens);
        let codes = canonical
            .into_iter()
            .map(|(code, len)| {
                // Reverse the bits so an LSB-first writer emits MSB-first codes.
                let rev = if len == 0 {
                    0
                } else {
                    code.reverse_bits() >> (32 - len)
                };
                (rev, len)
            })
            .collect();
        Self { codes }
    }

    /// Writes the code for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol has no code (zero frequency at build time).
    pub fn encode(&self, w: &mut BitWriter, sym: usize) {
        let (code, len) = self.codes[sym];
        assert!(len > 0, "symbol {sym} has no code");
        w.write_bits(code, len);
    }

    /// Code length of `sym` in bits (0 when absent).
    pub fn len_of(&self, sym: usize) -> u32 {
        self.codes[sym].1
    }
}

/// Canonical Huffman decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `first_code[l]`, `first_index[l]` per length, plus symbol order.
    first_code: Vec<u32>,
    first_index: Vec<u32>,
    symbols: Vec<u32>,
    max_len: u32,
}

/// Decode-side error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The bit stream ended mid-code.
    OutOfBits,
    /// No symbol matches the read prefix.
    BadCode,
}

impl From<OutOfBits> for DecodeError {
    fn from(_: OutOfBits) -> Self {
        DecodeError::OutOfBits
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::OutOfBits => write!(f, "bit stream exhausted mid-code"),
            DecodeError::BadCode => write!(f, "invalid Huffman code"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Decoder {
    /// Builds a decoder from code lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0);
        let mut symbols: Vec<u32> = (0..lens.len() as u32)
            .filter(|&s| lens[s as usize] > 0)
            .collect();
        symbols.sort_by_key(|&s| (lens[s as usize], s));
        let mut first_code = vec![0u32; (max_len + 2) as usize];
        let mut first_index = vec![0u32; (max_len + 2) as usize];
        let mut bl_count = vec![0u32; (max_len + 1) as usize];
        for &l in lens {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut code = 0u32;
        let mut index = 0u32;
        for bits in 1..=max_len {
            code = (code
                + if bits >= 1 {
                    bl_count.get((bits - 1) as usize).copied().unwrap_or(0)
                } else {
                    0
                })
                << 1;
            first_code[bits as usize] = code;
            first_index[bits as usize] = index;
            index += bl_count[bits as usize];
        }
        Self {
            first_code,
            first_index,
            symbols,
            max_len,
        }
    }

    /// Decodes one symbol from the reader.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, DecodeError> {
        if self.max_len == 0 {
            return Err(DecodeError::BadCode);
        }
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = (code << 1) | r.read_bit()?;
            let count = self.count_at(len);
            if count > 0 {
                let first = self.first_code[len as usize];
                if code < first + count {
                    if code < first {
                        return Err(DecodeError::BadCode);
                    }
                    let idx = self.first_index[len as usize] + (code - first);
                    return Ok(self.symbols[idx as usize]);
                }
            }
        }
        Err(DecodeError::BadCode)
    }

    fn count_at(&self, len: u32) -> u32 {
        let start = self.first_index[len as usize];
        let end = if len == self.max_len {
            self.symbols.len() as u32
        } else {
            self.first_index[(len + 1) as usize]
        };
        end - start
    }
}

/// Width of the first-level lookup table, in bits. Codes no longer than
/// this resolve with a single probe; longer codes take one extra probe
/// into a compact per-prefix second-level table.
pub const LUT_BITS: u32 = 10;

/// Entry sentinel for "no code maps here".
const LUT_INVALID: u32 = u32::MAX;
/// Flag bit marking a first-level entry as a second-level pointer.
const LUT_SUB: u32 = 0x8000_0000;

/// Table-driven canonical Huffman decoder.
///
/// Decoding is a peek of up to [`MAX_CODE_LEN`] bits followed by one table
/// probe (two for codes longer than [`LUT_BITS`]) and a single `consume` —
/// no per-bit branching. Built from the same code-length array as
/// [`Decoder`] and bit-exactly equivalent to it on every input; the
/// tree-walk decoder is retained as the reference implementation.
///
/// Layout: `primary` has `2^min(max_len, LUT_BITS)` entries indexed by the
/// next bits of the stream in read order (codes are emitted MSB-first into
/// the LSB-first stream, so stream order *is* code order). A direct entry
/// packs `(len << 16) | sym`; a pointer entry (flag `LUT_SUB`) packs the
/// sub-table width in bits 24..31 and its offset into `secondary` in bits
/// 0..24.
#[derive(Debug, Clone)]
pub struct LutDecoder {
    primary: Vec<u32>,
    secondary: Vec<u32>,
    primary_bits: u32,
    max_len: u32,
}

impl LutDecoder {
    /// Builds the lookup tables from code lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0);
        let primary_bits = max_len.min(LUT_BITS);
        let mut primary = vec![LUT_INVALID; 1usize << primary_bits];
        let mut secondary = Vec::new();
        if max_len == 0 {
            return LutDecoder {
                primary,
                secondary,
                primary_bits,
                max_len,
            };
        }
        let codes = canonical_codes(lens);
        // Short codes fill every primary slot sharing their low bits; the
        // stream carries the code bits reversed (MSB-first emission into an
        // LSB-first stream), so the slot index's low `len` bits are the
        // reversed canonical code.
        for (sym, &(code, len)) in codes.iter().enumerate() {
            if len == 0 || len > primary_bits {
                continue;
            }
            let rev = (code.reverse_bits() >> (32 - len)) as usize;
            let entry = (len << 16) | sym as u32;
            let mut hi = 0usize;
            while hi < (1usize << (primary_bits - len)) {
                primary[rev | (hi << len)] = entry;
                hi += 1;
            }
        }
        // Long codes: group by their first `primary_bits` stream bits and
        // build one compact sub-table per group, sized by the group's
        // longest tail.
        if max_len > primary_bits {
            // tail_bits[p] = longest code tail behind primary prefix p.
            let mut tail_bits = vec![0u32; 1usize << primary_bits];
            for &(code, len) in &codes {
                if len <= primary_bits {
                    continue;
                }
                let rev = (code.reverse_bits() >> (32 - len)) as usize;
                let prefix = rev & ((1 << primary_bits) - 1);
                tail_bits[prefix] = tail_bits[prefix].max(len - primary_bits);
            }
            for (prefix, &tb) in tail_bits.iter().enumerate() {
                if tb == 0 {
                    continue;
                }
                let offset = secondary.len() as u32;
                debug_assert!(offset < (1 << 24) && tb < (1 << 7));
                primary[prefix] = LUT_SUB | (tb << 24) | offset;
                secondary.resize(secondary.len() + (1usize << tb), LUT_INVALID);
            }
            for (sym, &(code, len)) in codes.iter().enumerate() {
                if len <= primary_bits {
                    continue;
                }
                let rev = (code.reverse_bits() >> (32 - len)) as usize;
                let prefix = rev & ((1 << primary_bits) - 1);
                let entry = primary[prefix];
                debug_assert!(entry & LUT_SUB != 0);
                let tb = (entry >> 24) & 0x7F;
                let offset = (entry & 0x00FF_FFFF) as usize;
                let tail = rev >> primary_bits;
                let sub_entry = (len << 16) | sym as u32;
                let tail_len = len - primary_bits;
                let mut hi = 0usize;
                while hi < (1usize << (tb - tail_len)) {
                    secondary[offset + (tail | (hi << tail_len))] = sub_entry;
                    hi += 1;
                }
            }
        }
        LutDecoder {
            primary,
            secondary,
            primary_bits,
            max_len,
        }
    }

    /// Resolves a symbol from peeked stream bits **without consuming**.
    ///
    /// `peek` must hold at least [`MAX_CODE_LEN`] valid next bits of the
    /// stream in its low bits (zero-padded near the end of input). Returns
    /// `(symbol, code_len)`; the caller consumes `code_len` bits — possibly
    /// folded with the following extra bits into one `consume`, which is
    /// what the page decoder's hot loop does.
    #[inline]
    pub fn probe(&self, peek: u32) -> Result<(u32, u32), DecodeError> {
        let entry = self.primary[(peek & ((1 << self.primary_bits) - 1)) as usize];
        let hit = if entry == LUT_INVALID {
            return Err(DecodeError::BadCode);
        } else if entry & LUT_SUB != 0 {
            let tb = (entry >> 24) & 0x7F;
            let offset = (entry & 0x00FF_FFFF) as usize;
            let tail = ((peek >> self.primary_bits) & ((1 << tb) - 1)) as usize;
            let sub = self.secondary[offset + tail];
            if sub == LUT_INVALID {
                return Err(DecodeError::BadCode);
            }
            sub
        } else {
            entry
        };
        Ok((hit & 0xFFFF, hit >> 16))
    }

    /// Decodes one symbol from the reader.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, DecodeError> {
        if self.max_len == 0 {
            return Err(DecodeError::BadCode);
        }
        let peek = r.peek_bits(self.max_len);
        let (sym, len) = self.probe(peek)?;
        r.consume(len)?;
        Ok(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], message: &[usize]) {
        let lens = code_lengths(freqs, MAX_CODE_LEN);
        let enc = Encoder::from_lengths(&lens);
        let dec = Decoder::from_lengths(&lens);
        let lut = LutDecoder::from_lengths(&lens);
        let mut w = BitWriter::new();
        for &s in message {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in message {
            assert_eq!(dec.decode(&mut r).unwrap(), s as u32);
        }
        // The LUT decoder must agree symbol for symbol.
        let mut r = BitReader::new(&bytes);
        for &s in message {
            assert_eq!(lut.decode(&mut r).unwrap(), s as u32);
        }
    }

    #[test]
    fn two_symbols() {
        round_trip(&[5, 3], &[0, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lens = code_lengths(&[0, 9, 0], MAX_CODE_LEN);
        assert_eq!(lens, vec![0, 1, 0]);
        round_trip(&[0, 9, 0], &[1, 1, 1]);
    }

    #[test]
    fn skewed_frequencies_give_short_codes_to_common_symbols() {
        let freqs = [1000, 10, 10, 10, 1, 1];
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        assert!(lens[0] < lens[4], "{lens:?}");
        round_trip(&freqs, &[0, 0, 0, 4, 5, 1, 2, 3, 0]);
    }

    #[test]
    fn kraft_equality_holds() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-9, "kraft {kraft}");
    }

    #[test]
    fn length_limit_respected_on_pathological_input() {
        // Fibonacci-like frequencies force long codes in unlimited Huffman.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs, 15);
        assert!(lens.iter().all(|&l| l <= 15 && l > 0), "{lens:?}");
        let kraft: f64 = lens.iter().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9);
        round_trip(&freqs, &(0..40).collect::<Vec<_>>());
    }

    #[test]
    fn optimality_matches_entropy_bound() {
        // Average code length must be within 1 bit of the entropy.
        let freqs = [50u64, 25, 12, 13];
        let total: u64 = freqs.iter().sum();
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let avg: f64 = freqs
            .iter()
            .zip(lens.iter())
            .map(|(&f, &l)| f as f64 * l as f64)
            .sum::<f64>()
            / total as f64;
        let entropy: f64 = freqs
            .iter()
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        assert!(avg >= entropy - 1e-9);
        assert!(avg <= entropy + 1.0);
    }

    #[test]
    fn bad_code_detected() {
        // Build a decoder that only knows symbol lengths {1}, then feed it a
        // stream of the other prefix.
        let lens = vec![1, 1];
        let dec = Decoder::from_lengths(&lens);
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode(&mut r).is_ok());
    }

    #[test]
    fn empty_alphabet_yields_no_codes() {
        let lens = code_lengths(&[0, 0, 0], MAX_CODE_LEN);
        assert_eq!(lens, vec![0, 0, 0]);
        let dec = Decoder::from_lengths(&lens);
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(dec.decode(&mut r), Err(DecodeError::BadCode));
        let lut = LutDecoder::from_lengths(&lens);
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(lut.decode(&mut r), Err(DecodeError::BadCode));
    }

    #[test]
    fn lut_uses_second_level_for_long_codes() {
        // Fibonacci-like frequencies push codes past LUT_BITS, forcing the
        // two-level path; every symbol must still round-trip.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        assert!(
            lens.iter().any(|&l| l > LUT_BITS),
            "need codes beyond the first level: {lens:?}"
        );
        round_trip(&freqs, &(0..40).collect::<Vec<_>>());
    }

    #[test]
    fn lut_and_tree_walk_agree_on_garbage_streams() {
        // On arbitrary byte streams both decoders must yield the same
        // symbol sequence up to the first error, and then both must error.
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let dec = Decoder::from_lengths(&lens);
        let lut = LutDecoder::from_lengths(&lens);
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for trial in 0..50 {
            let bytes: Vec<u8> = (0..17)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> 24) as u8
                })
                .collect();
            let mut ra = BitReader::new(&bytes);
            let mut rb = BitReader::new(&bytes);
            loop {
                let a = dec.decode(&mut ra);
                let b = lut.decode(&mut rb);
                match (a, b) {
                    (Ok(sa), Ok(sb)) => assert_eq!(sa, sb, "trial {trial}"),
                    (Err(_), Err(_)) => break,
                    (a, b) => panic!("trial {trial}: tree-walk {a:?} vs lut {b:?}"),
                }
            }
        }
    }

    #[test]
    fn lut_truncation_errors_like_tree_walk_succeeds_or_errs() {
        // A stream cut mid-code must error from both decoders, never panic.
        let freqs = [1000u64, 10, 10, 10, 1, 1];
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let enc = Encoder::from_lengths(&lens);
        let lut = LutDecoder::from_lengths(&lens);
        let mut w = BitWriter::new();
        for s in [4usize, 5, 4] {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..bytes.len() - 1]);
        let mut decoded = 0;
        while lut.decode(&mut r).is_ok() {
            decoded += 1;
            assert!(decoded <= 3, "decoded past the truncation");
        }
    }
}
