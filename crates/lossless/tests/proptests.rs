//! Property-based tests: the codec must be the identity on arbitrary bytes.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = dz_lossless::compress(&data);
        let d = dz_lossless::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn round_trip_small_pages(data in proptest::collection::vec(any::<u8>(), 0..4_000), page in 1usize..512) {
        let c = dz_lossless::compress_with_page_size(&data, page);
        let d = dz_lossless::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn round_trip_structured_bytes(seed in any::<u64>(), n in 0usize..30_000) {
        // Runs and repeats: the kind of data packed deltas produce.
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let b = (x & 0x0F) as u8;
            let run = ((x >> 8) & 0x3F) as usize + 1;
            for _ in 0..run.min(n - data.len()) {
                data.push(b);
            }
        }
        let c = dz_lossless::compress(&data);
        let d = dz_lossless::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn truncation_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2_000), cut in 0usize..2_000) {
        let c = dz_lossless::compress(&data);
        let cut = cut.min(c.len());
        // Must return an error or (for cut == len) the original data; never panic.
        if let Ok(d) = dz_lossless::decompress(&c[..cut]) { prop_assert_eq!(d, data) }
    }

    #[test]
    fn garbage_input_never_panics(data in proptest::collection::vec(any::<u8>(), 0..1_000)) {
        let _ = dz_lossless::decompress(&data);
    }

    #[test]
    fn single_byte_corruption_is_never_silent(
        data in proptest::collection::vec(any::<u8>(), 1..2_000),
        pos in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        // Failure injection: flip one byte anywhere in the stream. The
        // decoder must either error out or still return the exact original
        // (it must never hand back silently corrupted weights).
        let c = dz_lossless::compress(&data);
        let mut corrupted = c.clone();
        let i = pos.index(corrupted.len());
        corrupted[i] ^= flip;
        if let Ok(d) = dz_lossless::decompress(&corrupted) { prop_assert_eq!(d, data) }
    }
}
