//! Property-based tests: the codec must be the identity on arbitrary bytes,
//! and the fast decode pipeline (LUT Huffman, parallel pages) must be
//! indistinguishable from the retained serial reference path.

use dz_lossless::bitio::{BitReader, BitWriter};
use dz_lossless::huffman::{code_lengths, Decoder, Encoder, LutDecoder, MAX_CODE_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = dz_lossless::compress(&data);
        let d = dz_lossless::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn round_trip_small_pages(data in proptest::collection::vec(any::<u8>(), 0..4_000), page in 1usize..512) {
        let c = dz_lossless::compress_with_page_size(&data, page);
        let d = dz_lossless::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn round_trip_structured_bytes(seed in any::<u64>(), n in 0usize..30_000) {
        // Runs and repeats: the kind of data packed deltas produce.
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let b = (x & 0x0F) as u8;
            let run = ((x >> 8) & 0x3F) as usize + 1;
            for _ in 0..run.min(n - data.len()) {
                data.push(b);
            }
        }
        let c = dz_lossless::compress(&data);
        let d = dz_lossless::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn truncation_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2_000), cut in 0usize..2_000) {
        let c = dz_lossless::compress(&data);
        let cut = cut.min(c.len());
        // Must return an error or (for cut == len) the original data; never panic.
        if let Ok(d) = dz_lossless::decompress(&c[..cut]) { prop_assert_eq!(d, data) }
    }

    #[test]
    fn garbage_input_never_panics(data in proptest::collection::vec(any::<u8>(), 0..1_000)) {
        let _ = dz_lossless::decompress(&data);
    }

    #[test]
    fn parallel_decode_is_byte_identical_to_serial_reference(
        data in proptest::collection::vec(any::<u8>(), 0..60_000),
        page in 1usize..2_048,
        threads in 1usize..6,
    ) {
        // The fast path (LUT decoder, optional page fan-out) and the
        // retained tree-walk reference must agree byte for byte.
        let c = dz_lossless::compress_with_page_size(&data, page);
        let fast = dz_lossless::decompress_with_threads(&c, threads).unwrap();
        let slow = dz_lossless::decompress_reference(&c).unwrap();
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast, data);
    }

    #[test]
    fn corrupted_streams_never_diverge_between_fast_and_reference(
        data in proptest::collection::vec(any::<u8>(), 1..8_000),
        pos in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
        cut in any::<proptest::sample::Index>(),
    ) {
        // Bit flips and truncation: both paths must accept (returning the
        // exact original) or both must reject — never panic, never differ.
        let c = dz_lossless::compress(&data);
        let mut corrupted = c.clone();
        let i = pos.index(corrupted.len());
        corrupted[i] ^= flip;
        corrupted.truncate(cut.index(corrupted.len() + 1));
        let fast = dz_lossless::decompress(&corrupted);
        let slow = dz_lossless::decompress_reference(&corrupted);
        match (fast, slow) {
            (Ok(f), Ok(s)) => {
                prop_assert_eq!(&f, &data);
                prop_assert_eq!(&s, &data);
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "fast {f:?} vs reference {s:?}"),
        }
    }

    #[test]
    fn lut_decoder_agrees_with_tree_walk_on_valid_codes(
        freqs in proptest::collection::vec(0u64..1_000, 2..300),
        message in proptest::collection::vec(any::<proptest::sample::Index>(), 0..400),
    ) {
        // Arbitrary frequency sets induce arbitrary valid length-limited
        // code sets; both decoders must reproduce the encoded stream.
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let coded: Vec<usize> = (0..freqs.len()).filter(|&s| lens[s] > 0).collect();
        if coded.is_empty() {
            return Ok(());
        }
        let enc = Encoder::from_lengths(&lens);
        let tree = Decoder::from_lengths(&lens);
        let lut = LutDecoder::from_lengths(&lens);
        let mut w = BitWriter::new();
        let message: Vec<usize> = message.iter().map(|ix| coded[ix.index(coded.len())]).collect();
        for &s in &message {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut ra = BitReader::new(&bytes);
        let mut rb = BitReader::new(&bytes);
        for &s in &message {
            prop_assert_eq!(tree.decode(&mut ra).unwrap(), s as u32);
            prop_assert_eq!(lut.decode(&mut rb).unwrap(), s as u32);
        }
    }

    #[test]
    fn lut_decoder_matches_tree_walk_on_mangled_streams(
        freqs in proptest::collection::vec(0u64..100, 2..80),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // On arbitrary (possibly truncated mid-code, possibly invalid)
        // streams the decoders must emit the same symbols and then both
        // error; neither may panic.
        let lens = code_lengths(&freqs, MAX_CODE_LEN);
        let tree = Decoder::from_lengths(&lens);
        let lut = LutDecoder::from_lengths(&lens);
        let mut ra = BitReader::new(&garbage);
        let mut rb = BitReader::new(&garbage);
        for _ in 0..(garbage.len() * 8 + 2) {
            match (tree.decode(&mut ra), lut.decode(&mut rb)) {
                (Ok(sa), Ok(sb)) => prop_assert_eq!(sa, sb),
                (Err(_), Err(_)) => break,
                (a, b) => prop_assert!(false, "tree-walk {a:?} vs lut {b:?}"),
            }
        }
    }

    #[test]
    fn single_byte_corruption_is_never_silent(
        data in proptest::collection::vec(any::<u8>(), 1..2_000),
        pos in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        // Failure injection: flip one byte anywhere in the stream. The
        // decoder must either error out or still return the exact original
        // (it must never hand back silently corrupted weights).
        let c = dz_lossless::compress(&data);
        let mut corrupted = c.clone();
        let i = pos.index(corrupted.len());
        corrupted[i] ^= flip;
        if let Ok(d) = dz_lossless::decompress(&corrupted) { prop_assert_eq!(d, data) }
    }
}
