//! Shared descriptive-statistics helpers.
//!
//! Single source of truth for the percentile / mean / ratio math that
//! previously lived (twice, with subtly different edge cases) in
//! `dz_serve::metrics::Metrics` and `ClusterReport`.

/// Linear-interpolation percentile (the `numpy` default), `q` in `0..=1`.
///
/// Nearest-rank with `.round()` collapsed small-sample p99 to the max and
/// biased the two-sample p50 high; interpolating between the bracketing
/// order statistics fixes both. Returns `None` on an empty sample: empty
/// per-window metrics are routine during outages, and a silent `0.0`
/// there reads as a perfect latency rather than "no data".
///
/// This is the **exact** path: it materializes and sorts the full sample,
/// so cost is O(n log n) time and O(n) resident memory. That is fine up
/// to a few million samples (a 1M-sample call sorts 8 MB and completes in
/// tens of milliseconds) but it holds every sample alive; fleet-scale
/// simulations that stream tens of millions of latencies use
/// [`StreamingQuantiles`] instead and accept ≲1% relative quantile error.
pub fn percentile(mut values: Vec<f64>, q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let pos = q.clamp(0.0, 1.0) * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Some(values[lo] + (values[hi] - values[lo]) * (pos - lo as f64))
}

/// Arithmetic mean; `None` on an empty sample (see [`percentile`]).
pub fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Fraction of samples `<= limit`; `0.0` on an empty sample.
pub fn fraction_within(values: impl Iterator<Item = f64>, limit: f64) -> f64 {
    let mut ok = 0usize;
    let mut n = 0usize;
    for v in values {
        if v <= limit {
            ok += 1;
        }
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        ok as f64 / n as f64
    }
}

/// `numerator / denominator`, or `when_empty` when the denominator is not
/// positive. The goodput-style ratio: an *offered load of zero* should
/// read as perfect goodput (`when_empty = 1.0`), while an *overlap
/// fraction with no loads* should read as zero (`when_empty = 0.0`).
pub fn ratio_or(numerator: f64, denominator: f64, when_empty: f64) -> f64 {
    if denominator > 0.0 {
        numerator / denominator
    } else {
        when_empty
    }
}

/// A bounded-memory quantile sketch (merging t-digest).
///
/// Samples are buffered and periodically compressed into centroids whose
/// weight is capped by the scale function `4·n·q·(1−q)/δ` (δ = the
/// `compression` parameter), so the sketch is finest at the tails —
/// exactly where p99/p999 live. Memory is O(δ) regardless of how many
/// samples stream through; quantile error is relative to rank and in
/// practice ≲1% at the tails for δ = 200.
///
/// Determinism: insertion order determines centroid boundaries, so two
/// identical sample streams produce bit-identical sketches (no RNG, no
/// hashing) — the fleet simulator's same-seed replay test relies on this.
#[derive(Debug, Clone)]
pub struct StreamingQuantiles {
    compression: f64,
    /// Sorted (mean, weight) centroids.
    centroids: Vec<(f64, f64)>,
    buffer: Vec<f64>,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingQuantiles {
    /// A sketch with the default compression (δ = 200, ~1 KB resident).
    pub fn new() -> Self {
        Self::with_compression(200.0)
    }

    /// A sketch with an explicit compression δ (higher = more centroids,
    /// lower error). Values below 20 are clamped up.
    pub fn with_compression(compression: f64) -> Self {
        let compression = compression.max(20.0);
        StreamingQuantiles {
            compression,
            centroids: Vec::new(),
            // Buffer several multiples of δ between compressions: the
            // amortized cost per sample stays O(log δ).
            buffer: Vec::with_capacity(8 * compression as usize),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Streams one sample into the sketch. Non-finite samples panic.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "quantile samples must be finite: {x}");
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.buffer.push(x);
        if self.buffer.len() == self.buffer.capacity() {
            self.compress();
        }
    }

    /// Number of samples streamed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimated `q`-quantile (`q` in `0..=1`); `None` when empty.
    ///
    /// Exact for the extremes (`q = 0` / `q = 1` return the true min/max)
    /// and interpolated between centroid means elsewhere.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        self.compress();
        let q = q.clamp(0.0, 1.0);
        // dz-lint: allow(float-eq, "exact endpoint after clamp(0.0, 1.0)")
        if q == 0.0 {
            return Some(self.min);
        }
        // dz-lint: allow(float-eq, "exact endpoint after clamp(0.0, 1.0)")
        if q == 1.0 {
            return Some(self.max);
        }
        let total: f64 = self.centroids.iter().map(|&(_, w)| w).sum();
        let target = q * total;
        // Walk centroids, interpolating between adjacent centroid means
        // at the target cumulative rank.
        let mut cum = 0.0;
        for (i, &(mean, weight)) in self.centroids.iter().enumerate() {
            let mid = cum + weight / 2.0;
            if target <= mid {
                if i == 0 {
                    // Below the first centroid's midpoint: interpolate
                    // from the true minimum.
                    let frac = if mid > 0.0 { target / mid } else { 1.0 };
                    return Some(self.min + (mean - self.min) * frac);
                }
                let (prev_mean, prev_weight) = self.centroids[i - 1];
                let prev_mid = cum - prev_weight / 2.0;
                let span = mid - prev_mid;
                let frac = if span > 0.0 {
                    (target - prev_mid) / span
                } else {
                    1.0
                };
                return Some(prev_mean + (mean - prev_mean) * frac);
            }
            cum += weight;
        }
        Some(self.max)
    }

    /// Folds the buffered samples into the centroid list, re-clustering
    /// under the tail-biased weight bound.
    fn compress(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut merged: Vec<(f64, f64)> =
            Vec::with_capacity(self.centroids.len() + self.buffer.len());
        merged.append(&mut self.centroids);
        merged.extend(self.buffer.drain(..).map(|x| (x, 1.0)));
        merged.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite samples"));
        let total: f64 = merged.iter().map(|&(_, w)| w).sum();
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut cum = 0.0;
        for (mean, weight) in merged {
            match out.last_mut() {
                Some((last_mean, last_weight)) => {
                    let proposed = *last_weight + weight;
                    // Midpoint rank of the would-be merged centroid.
                    let q = (cum + proposed / 2.0) / total;
                    let bound = (4.0 * total * q * (1.0 - q) / self.compression).max(1.0);
                    if proposed <= bound {
                        // Weighted-mean merge keeps the centroid exact.
                        *last_mean = (*last_mean * *last_weight + mean * weight) / proposed;
                        *last_weight = proposed;
                    } else {
                        cum += *last_weight;
                        out.push((mean, weight));
                    }
                }
                None => out.push((mean, weight)),
            }
        }
        self.centroids = out;
    }
}

impl Default for StreamingQuantiles {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_single_sample_is_constant() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(vec![3.0], q), Some(3.0));
        }
    }

    #[test]
    fn percentile_two_samples_interpolates() {
        // Nearest-rank-with-round reported p50 of {1, 3} as 3 (biased
        // high); linear interpolation gives the midpoint.
        assert!((percentile(vec![1.0, 3.0], 0.5).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(percentile(vec![1.0, 3.0], 0.0), Some(1.0));
        assert_eq!(percentile(vec![1.0, 3.0], 1.0), Some(3.0));
        let p99 = percentile(vec![1.0, 3.0], 0.99).unwrap();
        assert!(p99 < 3.0 && p99 > 2.9, "{p99}");
    }

    #[test]
    fn percentile_four_samples_interpolates() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        // pos = 0.5 * 3 = 1.5 -> midpoint of 20 and 30.
        assert!((percentile(v.clone(), 0.5).unwrap() - 25.0).abs() < 1e-12);
        // pos = 0.99 * 3 = 2.97 -> 30 + 0.97 * 10, strictly below max.
        assert!((percentile(v.clone(), 0.99).unwrap() - 39.7).abs() < 1e-9);
        assert!(percentile(v.clone(), 0.99).unwrap() < 40.0);
        // pos = 0.25 * 3 = 0.75 -> 10 + 0.75 * 10.
        assert!((percentile(v, 0.25).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_ignores_input_order() {
        assert_eq!(
            percentile(vec![40.0, 10.0, 30.0, 20.0], 0.5),
            percentile(vec![10.0, 20.0, 30.0, 40.0], 0.5)
        );
    }

    #[test]
    fn percentile_empty_is_none() {
        // Empty windows happen during outages; `None` (not a fake 0.0,
        // not a panic, not NaN) is the only honest answer.
        assert_eq!(percentile(vec![], 0.99), None);
    }

    #[test]
    fn mean_and_fraction_edges() {
        assert_eq!(mean(std::iter::empty()), None);
        assert!((mean([2.0, 4.0].into_iter()).unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(fraction_within(std::iter::empty(), 1.0), 0.0);
        assert!((fraction_within([1.0, 2.0, 3.0].into_iter(), 2.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_quantiles_empty_and_single() {
        let mut sq = StreamingQuantiles::new();
        assert_eq!(sq.quantile(0.5), None);
        assert_eq!(sq.mean(), None);
        sq.add(7.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(sq.quantile(q), Some(7.0));
        }
        assert_eq!(sq.count(), 1);
        assert_eq!(sq.mean(), Some(7.0));
    }

    #[test]
    fn streaming_quantiles_exact_extremes() {
        let mut sq = StreamingQuantiles::new();
        for i in 0..10_000 {
            sq.add((i as f64 * 7919.0) % 1000.0);
        }
        assert_eq!(sq.quantile(0.0), sq.min());
        assert_eq!(sq.quantile(1.0), sq.max());
    }

    #[test]
    fn streaming_quantiles_monotone_in_q() {
        let mut sq = StreamingQuantiles::new();
        for i in 0..50_000u64 {
            // Deterministic pseudo-random stream (xorshift).
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            x ^= x >> 33;
            sq.add((x % 1_000_000) as f64 / 1000.0);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = sq.quantile(q).unwrap();
            assert!(v >= last, "quantiles must be monotone: q={q} {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn streaming_quantiles_match_exact_on_million_samples() {
        // The fleet-scale path: one million samples from a heavy-tailed
        // deterministic stream. The sketch must land within 1% relative
        // error of the exact sorted percentile at the quantiles the
        // benchmarks report, while holding only O(compression) memory.
        let n = 1_000_000u64;
        let mut sq = StreamingQuantiles::new();
        let mut exact = Vec::with_capacity(n as usize);
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            // Pareto-ish tail: most mass near 0.1s, rare multi-second outliers.
            let x = 0.1 / (1.0 - u).powf(0.35);
            sq.add(x);
            exact.push(x);
        }
        assert_eq!(sq.count(), n);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let approx = sq.quantile(q).unwrap();
            let truth = percentile(exact.clone(), q).unwrap();
            let rel = (approx - truth).abs() / truth;
            assert!(
                rel < 0.01,
                "q={q}: approx {approx} vs exact {truth} ({rel:.4} rel)"
            );
        }
        // Bounded memory: centroid count stays O(compression), nowhere
        // near the million samples streamed through.
        assert!(sq.centroids.len() < 2_000, "{}", sq.centroids.len());
    }

    #[test]
    fn streaming_quantiles_deterministic_replay() {
        let feed = |sq: &mut StreamingQuantiles| {
            for i in 0..25_000u64 {
                sq.add(((i.wrapping_mul(2654435761)) % 100_000) as f64);
            }
        };
        let mut a = StreamingQuantiles::new();
        let mut b = StreamingQuantiles::new();
        feed(&mut a);
        feed(&mut b);
        for i in 0..=1000 {
            let q = i as f64 / 1000.0;
            assert_eq!(a.quantile(q), b.quantile(q), "q={q}");
        }
    }

    #[test]
    fn ratio_or_uses_fallback_only_when_empty() {
        assert!((ratio_or(3.0, 4.0, 1.0) - 0.75).abs() < 1e-12);
        assert_eq!(ratio_or(0.0, 0.0, 1.0), 1.0);
        assert_eq!(ratio_or(0.0, 0.0, 0.0), 0.0);
        assert_eq!(ratio_or(5.0, -1.0, 0.5), 0.5);
    }
}
