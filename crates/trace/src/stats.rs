//! Shared descriptive-statistics helpers.
//!
//! Single source of truth for the percentile / mean / ratio math that
//! previously lived (twice, with subtly different edge cases) in
//! `dz_serve::metrics::Metrics` and `ClusterReport`.

/// Linear-interpolation percentile (the `numpy` default), `q` in `0..=1`.
///
/// Nearest-rank with `.round()` collapsed small-sample p99 to the max and
/// biased the two-sample p50 high; interpolating between the bracketing
/// order statistics fixes both. Returns `None` on an empty sample: empty
/// per-window metrics are routine during outages, and a silent `0.0`
/// there reads as a perfect latency rather than "no data".
pub fn percentile(mut values: Vec<f64>, q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let pos = q.clamp(0.0, 1.0) * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Some(values[lo] + (values[hi] - values[lo]) * (pos - lo as f64))
}

/// Arithmetic mean; `None` on an empty sample (see [`percentile`]).
pub fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Fraction of samples `<= limit`; `0.0` on an empty sample.
pub fn fraction_within(values: impl Iterator<Item = f64>, limit: f64) -> f64 {
    let mut ok = 0usize;
    let mut n = 0usize;
    for v in values {
        if v <= limit {
            ok += 1;
        }
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        ok as f64 / n as f64
    }
}

/// `numerator / denominator`, or `when_empty` when the denominator is not
/// positive. The goodput-style ratio: an *offered load of zero* should
/// read as perfect goodput (`when_empty = 1.0`), while an *overlap
/// fraction with no loads* should read as zero (`when_empty = 0.0`).
pub fn ratio_or(numerator: f64, denominator: f64, when_empty: f64) -> f64 {
    if denominator > 0.0 {
        numerator / denominator
    } else {
        when_empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_single_sample_is_constant() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(vec![3.0], q), Some(3.0));
        }
    }

    #[test]
    fn percentile_two_samples_interpolates() {
        // Nearest-rank-with-round reported p50 of {1, 3} as 3 (biased
        // high); linear interpolation gives the midpoint.
        assert!((percentile(vec![1.0, 3.0], 0.5).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(percentile(vec![1.0, 3.0], 0.0), Some(1.0));
        assert_eq!(percentile(vec![1.0, 3.0], 1.0), Some(3.0));
        let p99 = percentile(vec![1.0, 3.0], 0.99).unwrap();
        assert!(p99 < 3.0 && p99 > 2.9, "{p99}");
    }

    #[test]
    fn percentile_four_samples_interpolates() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        // pos = 0.5 * 3 = 1.5 -> midpoint of 20 and 30.
        assert!((percentile(v.clone(), 0.5).unwrap() - 25.0).abs() < 1e-12);
        // pos = 0.99 * 3 = 2.97 -> 30 + 0.97 * 10, strictly below max.
        assert!((percentile(v.clone(), 0.99).unwrap() - 39.7).abs() < 1e-9);
        assert!(percentile(v.clone(), 0.99).unwrap() < 40.0);
        // pos = 0.25 * 3 = 0.75 -> 10 + 0.75 * 10.
        assert!((percentile(v, 0.25).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_ignores_input_order() {
        assert_eq!(
            percentile(vec![40.0, 10.0, 30.0, 20.0], 0.5),
            percentile(vec![10.0, 20.0, 30.0, 40.0], 0.5)
        );
    }

    #[test]
    fn percentile_empty_is_none() {
        // Empty windows happen during outages; `None` (not a fake 0.0,
        // not a panic, not NaN) is the only honest answer.
        assert_eq!(percentile(vec![], 0.99), None);
    }

    #[test]
    fn mean_and_fraction_edges() {
        assert_eq!(mean(std::iter::empty()), None);
        assert!((mean([2.0, 4.0].into_iter()).unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(fraction_within(std::iter::empty(), 1.0), 0.0);
        assert!((fraction_within([1.0, 2.0, 3.0].into_iter(), 2.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_or_uses_fallback_only_when_empty() {
        assert!((ratio_or(3.0, 4.0, 1.0) - 0.75).abs() < 1e-12);
        assert_eq!(ratio_or(0.0, 0.0, 1.0), 1.0);
        assert_eq!(ratio_or(0.0, 0.0, 0.0), 0.0);
        assert_eq!(ratio_or(5.0, -1.0, 0.5), 0.5);
    }
}
