//! dz-trace: simulation-clock structured tracing, telemetry export, and
//! critical-path attribution for the DeltaZip simulators.
//!
//! Three pillars:
//!
//! 1. **Typed event log** — engines emit [`TraceEvent`]s into a bounded
//!    ring-buffer [`TraceLog`] through a [`Tracer`] handle that is free
//!    when disabled (a single `Option` check; the event constructor is a
//!    closure that never runs). Export with [`chrome::chrome_trace_json`]
//!    (Perfetto-loadable) or a [`prom::PromSnapshot`].
//! 2. **Gauge recorder** — [`GaugeSample`]s capture queue depth, batch
//!    occupancy, residency/warmth composition, and transfer-channel
//!    in-flight counts at event boundaries.
//! 3. **Critical-path attribution** — [`attrib`] decomposes each
//!    request's e2e into named causes and aggregates "where did the p99
//!    go" breakdowns; [`stats`] is the shared percentile/ratio math.
//!
//! Tracing-off runs are bit-identical to untraced builds: emission sites
//! only read simulation state, never mutate it.

#![warn(missing_docs)]

pub mod attrib;
pub mod chrome;
mod event;
pub mod prom;
pub mod stats;

pub use attrib::{AttributedRequest, CauseBreakdown, Causes, CAUSE_NAMES};
pub use chrome::{chrome_trace_json, write_chrome_trace, TraceTrack};
pub use event::{EvictTier, GaugeSample, ToppingKind, TraceEvent, TraceLog};
pub use prom::PromSnapshot;
pub use stats::StreamingQuantiles;

/// Tracing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum retained events (oldest dropped beyond this); gauge
    /// samples get the same bound.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 1 << 16 }
    }
}

/// Cheap tracing handle held by engines. Disabled by default; when
/// disabled, [`Tracer::emit`] is a branch on a `None` and the event
/// closure never runs, so instrumented hot loops pay (essentially)
/// nothing.
#[derive(Debug, Default)]
pub struct Tracer {
    log: Option<Box<TraceLog>>,
}

impl Tracer {
    /// A disabled tracer (the default for every engine).
    pub fn disabled() -> Self {
        Tracer { log: None }
    }

    /// An enabled tracer with a fresh bounded log.
    pub fn enabled(config: TraceConfig) -> Self {
        Tracer {
            log: Some(Box::new(TraceLog::with_capacity(config.capacity))),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.log.is_some()
    }

    /// Records the event built by `f`, which is only invoked when the
    /// tracer is enabled.
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let Some(log) = self.log.as_mut() {
            log.push(f());
        }
    }

    /// Records the gauge sample built by `f`, only invoked when enabled.
    #[inline]
    pub fn gauge(&mut self, f: impl FnOnce() -> GaugeSample) {
        if let Some(log) = self.log.as_mut() {
            log.push_gauge(f());
        }
    }

    /// Borrows the log, if enabled.
    pub fn log(&self) -> Option<&TraceLog> {
        self.log.as_deref()
    }

    /// Takes the accumulated log, leaving the tracer disabled.
    pub fn take_log(&mut self) -> Option<TraceLog> {
        self.log.take().map(|b| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let mut t = Tracer::disabled();
        let mut ran = false;
        t.emit(|| {
            ran = true;
            TraceEvent::FirstToken { id: 0, at: 0.0 }
        });
        assert!(!ran);
        assert!(t.take_log().is_none());
    }

    #[test]
    fn enabled_tracer_records_and_yields_log() {
        let mut t = Tracer::enabled(TraceConfig { capacity: 4 });
        assert!(t.is_enabled());
        t.emit(|| TraceEvent::FirstToken { id: 1, at: 2.0 });
        t.gauge(|| GaugeSample {
            at: 2.0,
            ..GaugeSample::default()
        });
        let log = t.take_log().expect("log");
        assert_eq!(log.len(), 1);
        assert_eq!(log.gauges().count(), 1);
        assert!(!t.is_enabled());
    }
}
