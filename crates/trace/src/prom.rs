//! Prometheus text-exposition snapshot builder.
//!
//! Mirrors what the real Scratchpad deployment scrapes (the serve script
//! wires `PROMETHEUS_MULTIPROC_DIR` before launching workers): consumers
//! build a snapshot at end of run and dump it next to the bench JSON, so
//! the same dashboards work on simulated and real runs.

use std::fmt::Write as _;

/// Incremental builder for a Prometheus text-exposition document.
#[derive(Debug, Clone, Default)]
pub struct PromSnapshot {
    out: String,
}

impl PromSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        PromSnapshot::default()
    }

    /// Emits the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is one of `counter`, `gauge`, `summary`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Emits the three-line `quantile` samples plus `_sum`/`_count` for a
    /// summary family from a sorted-or-not sample vector.
    pub fn summary(&mut self, name: &str, labels: &[(&str, &str)], values: &[f64]) {
        for q in [0.5, 0.9, 0.99] {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            let qs = format!("{q}");
            with_q.push(("quantile", &qs));
            // An empty summary still exposes its quantile lines; NaN is
            // the Prometheus convention for "no observations".
            let v = crate::stats::percentile(values.to_vec(), q).unwrap_or(f64::NAN);
            self.sample(name, &with_q, v);
        }
        self.sample(&format!("{name}_sum"), labels, values.iter().sum());
        self.sample(&format!("{name}_count"), labels, values.len() as f64);
    }

    /// Finalizes the document.
    pub fn render(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_families_and_labels() {
        let mut p = PromSnapshot::new();
        p.header("dz_requests_total", "counter", "Requests served.");
        p.sample("dz_requests_total", &[("engine", "deltazip")], 42.0);
        p.header("dz_e2e_seconds", "summary", "End-to-end latency.");
        p.summary("dz_e2e_seconds", &[], &[1.0, 2.0, 3.0, 4.0]);
        let text = p.render();
        assert!(text.contains("# TYPE dz_requests_total counter"));
        assert!(text.contains("dz_requests_total{engine=\"deltazip\"} 42"));
        assert!(text.contains("dz_e2e_seconds{quantile=\"0.5\"} 2.5"));
        assert!(text.contains("dz_e2e_seconds_sum 10"));
        assert!(text.contains("dz_e2e_seconds_count 4"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromSnapshot::new();
        p.sample("m", &[("l", "a\"b\\c")], 1.0);
        assert!(p.render().contains(r#"l="a\"b\\c""#));
    }
}
