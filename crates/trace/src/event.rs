//! Typed simulation-clock trace events and the bounded event log.

use std::collections::VecDeque;

/// Which residency tier an eviction removed a delta from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictTier {
    /// Evicted from GPU HBM (delta remains host-warm).
    Gpu,
    /// Evicted from the host cache (delta falls back to disk).
    Host,
}

/// The variant kind ("topping") a request carries, as seen by trace
/// consumers.
///
/// Mirrors the serving layer's variant taxonomy without depending on it
/// (dz-serve depends on dz-trace, not the reverse), so mixed toppings
/// batches stay debuggable from the trace alone. Legacy delta-only
/// engines emit [`ToppingKind::Delta`], the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ToppingKind {
    /// The shared base model — no topping applied.
    Base,
    /// A low-rank adapter served through the SGMV path.
    Lora,
    /// A compressed full-model delta served through SBMM.
    #[default]
    Delta,
    /// A delta with an adapter stacked on top (both kernel paths).
    Stacked,
}

impl ToppingKind {
    /// Stable lowercase label used in exported trace args.
    pub fn label(self) -> &'static str {
        match self {
            ToppingKind::Base => "base",
            ToppingKind::Lora => "lora",
            ToppingKind::Delta => "delta",
            ToppingKind::Stacked => "stacked",
        }
    }
}

/// One structured event on the simulation clock.
///
/// Every variant carries `at`, the simulation timestamp in seconds.
/// Request-scoped variants carry the request `id` as seen by the emitting
/// engine; [`TraceLog::remap_request_ids`] rewrites dense per-replica ids
/// back to global trace ids after a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request entered the engine queue.
    RequestQueued {
        /// Request id.
        id: usize,
        /// Model (variant) id the request targets.
        model: usize,
        /// Variant kind the request carries.
        kind: ToppingKind,
        /// Simulation time (s).
        at: f64,
    },
    /// A request was admitted into the running batch.
    RequestAdmitted {
        /// Request id.
        id: usize,
        /// Model (variant) id the request targets.
        model: usize,
        /// Variant kind the request carries.
        kind: ToppingKind,
        /// Simulation time (s).
        at: f64,
    },
    /// The request produced its first output token.
    FirstToken {
        /// Request id.
        id: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// The request produced its last output token.
    RequestFinished {
        /// Request id.
        id: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// The request was preempted back into the queue.
    RequestPreempted {
        /// Request id.
        id: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// A demand (blocking) delta load started.
    SwapStart {
        /// Delta id being loaded.
        delta: usize,
        /// Simulation time (s).
        at: f64,
        /// Disk-stage service demand of the load (s).
        disk_s: f64,
        /// PCIe-stage service demand of the load (s).
        pcie_s: f64,
        /// Uncontended duration of the load (s).
        solo_s: f64,
    },
    /// A demand delta load completed ("landed").
    SwapLand {
        /// Delta id that landed.
        delta: usize,
        /// Simulation time (s).
        at: f64,
        /// Requests that were blocked waiting on this delta.
        waiters: usize,
    },
    /// A speculative prefetch load was issued.
    PrefetchIssued {
        /// Delta id being prefetched.
        delta: usize,
        /// Simulation time (s).
        at: f64,
        /// Disk-stage service demand of the prefetch (s).
        disk_s: f64,
    },
    /// A prefetch load completed without ever being promoted.
    PrefetchLand {
        /// Delta id that landed.
        delta: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// An in-flight prefetch was promoted to a demand load.
    PrefetchPromoted {
        /// Delta id promoted.
        delta: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// A demand lookup hit prefetched (or in-flight prefetch) state.
    PrefetchHit {
        /// Delta id hit.
        delta: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// A delta was evicted from a residency tier.
    Evict {
        /// Delta id evicted.
        delta: usize,
        /// Tier it was evicted from.
        tier: EvictTier,
        /// Simulation time (s).
        at: f64,
    },
    /// The cluster router migrated placement entries.
    Migrate {
        /// Number of placement entries that moved.
        count: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// The cluster front end deferred a request (admission backoff).
    Defer {
        /// Request id.
        id: usize,
        /// Model (delta) id the request targets.
        model: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// The cluster front end shed a request (SLO-hopeless admission drop).
    Shed {
        /// Request id.
        id: usize,
        /// Model (delta) id the request targets.
        model: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// A replica crashed: its warm sets and in-flight requests are lost.
    ReplicaDown {
        /// Replica id that went down.
        replica: usize,
        /// In-flight requests lost (re-queued at the front end).
        lost: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// A crashed replica came back (cold) and is routable again.
    ReplicaUp {
        /// Replica id that restarted.
        replica: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// The autoscaler activated an additional (cold) replica.
    ScaleUp {
        /// Replica id that was activated.
        replica: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// The autoscaler drained a replica out of the routable set.
    ScaleDown {
        /// Replica id that was drained.
        replica: usize,
        /// Simulation time (s).
        at: f64,
    },
    /// Rolling delta-version rollout progress: traffic for `model` is
    /// shifting to its successor delta `v2`.
    Rollout {
        /// Model id being replaced.
        model: usize,
        /// Successor model id receiving the shifted traffic.
        v2: usize,
        /// Fraction of traffic currently going to `v2` (0..=1).
        frac: f64,
        /// Simulation time (s).
        at: f64,
    },
    /// One batched decode step (prefill + restore + decode iteration).
    BatchStep {
        /// Iteration start time (s).
        at: f64,
        /// Iteration duration (s).
        dur_s: f64,
        /// Requests in the running batch.
        batch: usize,
        /// Distinct deltas co-batched this step.
        deltas: usize,
        /// Distinct LoRA adapters co-batched this step (stacked variants
        /// count in both `deltas` and `loras`).
        loras: usize,
    },
}

impl TraceEvent {
    /// Simulation timestamp of the event (seconds).
    pub fn at(&self) -> f64 {
        match *self {
            TraceEvent::RequestQueued { at, .. }
            | TraceEvent::RequestAdmitted { at, .. }
            | TraceEvent::FirstToken { at, .. }
            | TraceEvent::RequestFinished { at, .. }
            | TraceEvent::RequestPreempted { at, .. }
            | TraceEvent::SwapStart { at, .. }
            | TraceEvent::SwapLand { at, .. }
            | TraceEvent::PrefetchIssued { at, .. }
            | TraceEvent::PrefetchLand { at, .. }
            | TraceEvent::PrefetchPromoted { at, .. }
            | TraceEvent::PrefetchHit { at, .. }
            | TraceEvent::Evict { at, .. }
            | TraceEvent::Migrate { at, .. }
            | TraceEvent::Defer { at, .. }
            | TraceEvent::Shed { at, .. }
            | TraceEvent::ReplicaDown { at, .. }
            | TraceEvent::ReplicaUp { at, .. }
            | TraceEvent::ScaleUp { at, .. }
            | TraceEvent::ScaleDown { at, .. }
            | TraceEvent::Rollout { at, .. }
            | TraceEvent::BatchStep { at, .. } => at,
        }
    }

    /// Mutable access to the request id, for variants that carry one.
    fn request_id_mut(&mut self) -> Option<&mut usize> {
        match self {
            TraceEvent::RequestQueued { id, .. }
            | TraceEvent::RequestAdmitted { id, .. }
            | TraceEvent::FirstToken { id, .. }
            | TraceEvent::RequestFinished { id, .. }
            | TraceEvent::RequestPreempted { id, .. }
            | TraceEvent::Defer { id, .. }
            | TraceEvent::Shed { id, .. } => Some(id),
            _ => None,
        }
    }
}

/// Point-in-time gauge sample captured at an event boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaugeSample {
    /// Simulation time (s).
    pub at: f64,
    /// Requests waiting in the queue (not yet admitted).
    pub queue_depth: usize,
    /// Requests in the running batch.
    pub batch: usize,
    /// Admitted requests blocked on a delta load.
    pub blocked: usize,
    /// Deltas resident in GPU HBM.
    pub gpu_resident: usize,
    /// Deltas whose warmth is `Disk` (cold).
    pub warmth_disk: usize,
    /// Deltas whose warmth is `Host` (compressed bytes host-resident).
    pub warmth_host: usize,
    /// Deltas whose warmth is `HostDecoded` (decode-free hit).
    pub warmth_host_decoded: usize,
    /// Bytes resident on the GPU for deltas.
    pub gpu_bytes: f64,
    /// Bytes resident in the host cache.
    pub host_bytes: f64,
    /// In-flight demand loads on the transfer timeline.
    pub inflight_demand: usize,
    /// In-flight prefetch loads on the transfer timeline.
    pub inflight_prefetch: usize,
    /// Routable (live, active) replicas in the fleet. Zero for
    /// single-engine lanes; the cluster front end samples it so chaos
    /// runs show crash/scale churn as a counter lane.
    pub live_replicas: usize,
}

/// Bounded ring-buffer log of [`TraceEvent`]s plus [`GaugeSample`]s.
///
/// When the ring is full the *oldest* events are dropped and counted in
/// [`TraceLog::dropped`], so a long run degrades to "most recent window"
/// rather than growing without bound.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: VecDeque<TraceEvent>,
    gauges: VecDeque<GaugeSample>,
    capacity: usize,
    dropped: usize,
}

impl TraceLog {
    /// Creates an empty log bounded to `capacity` events (and as many
    /// gauge samples).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            events: VecDeque::new(),
            gauges: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Appends a gauge sample, evicting the oldest if the ring is full.
    pub fn push_gauge(&mut self, g: GaugeSample) {
        if self.gauges.len() >= self.capacity {
            self.gauges.pop_front();
        }
        self.gauges.push_back(g);
    }

    /// Events in emission order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Gauge samples in emission order.
    pub fn gauges(&self) -> impl Iterator<Item = &GaugeSample> {
        self.gauges.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Rewrites request ids through `map` (dense id -> global id).
    ///
    /// Cluster replicas replay sub-traces with dense local ids; this
    /// restores the global trace ids so lanes from different replicas
    /// agree on request identity. Ids outside `map` are left unchanged.
    pub fn remap_request_ids(&mut self, map: &[usize]) {
        for ev in self.events.iter_mut() {
            if let Some(id) = ev.request_id_mut() {
                if let Some(&global) = map.get(*id) {
                    *id = global;
                }
            }
        }
    }

    /// Merges `other`'s events and gauges into this log (used by tests
    /// and multi-phase experiments; ordering is preserved per source).
    pub fn absorb(&mut self, other: TraceLog) {
        for ev in other.events {
            self.push(ev);
        }
        for g in other.gauges {
            self.push_gauge(g);
        }
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut log = TraceLog::with_capacity(2);
        for i in 0..4 {
            log.push(TraceEvent::FirstToken {
                id: i,
                at: i as f64,
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 2);
        let ids: Vec<_> = log
            .events()
            .map(|e| match e {
                TraceEvent::FirstToken { id, .. } => *id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn remap_rewrites_only_request_ids() {
        let mut log = TraceLog::with_capacity(8);
        log.push(TraceEvent::RequestQueued {
            id: 0,
            model: 3,
            kind: ToppingKind::Delta,
            at: 0.0,
        });
        log.push(TraceEvent::SwapStart {
            delta: 0,
            at: 1.0,
            disk_s: 0.1,
            pcie_s: 0.1,
            solo_s: 0.2,
        });
        log.remap_request_ids(&[42]);
        let evs: Vec<_> = log.events().cloned().collect();
        assert_eq!(
            evs[0],
            TraceEvent::RequestQueued {
                id: 42,
                model: 3,
                kind: ToppingKind::Delta,
                at: 0.0
            }
        );
        // Delta ids are not request ids and must not be rewritten.
        assert!(matches!(evs[1], TraceEvent::SwapStart { delta: 0, .. }));
    }
}
