//! Critical-path attribution: decompose each request's end-to-end
//! latency into named causes and aggregate a "where did the p99 go"
//! breakdown.
//!
//! Engines accrue wall-clock intervals into a [`Causes`] ledger as the
//! simulation runs (timestamp-telescoping, so the five causes sum to the
//! request's e2e to within floating-point noise — pinned at `1e-9` by a
//! property test in `dz-serve`). [`breakdown`] then averages the ledgers
//! over all requests and over the tail (requests at or beyond a chosen
//! e2e percentile), which is what turns "policy X wins 1.8x at p99" into
//! "because contention share fell".

use crate::stats;
use serde::Serialize;

/// Stable cause names, in [`Causes::as_array`] order.
pub const CAUSE_NAMES: [&str; 5] = [
    "queue",
    "stall_own",
    "stall_contention",
    "decode",
    "preempt",
];

/// Per-request ledger of attributed seconds. The five fields partition
/// the request's end-to-end latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct Causes {
    /// Waiting in the queue before first admission.
    pub queue_s: f64,
    /// Blocked on the request's *own* delta load, at the load's
    /// uncontended (solo) rate.
    pub stall_own_s: f64,
    /// Extra stall inflicted by transfer-channel contention: the load
    /// took longer than `solo_s()` because other transfers shared the
    /// disk/PCIe channels.
    pub stall_contention_s: f64,
    /// Compute: prefill, activation restore, and decode iterations
    /// (including batch-alignment slack inside an iteration).
    pub decode_s: f64,
    /// Re-queued time after a preemption.
    pub preempt_s: f64,
}

impl Causes {
    /// Sum of all causes (equals e2e for a finished request).
    pub fn total(&self) -> f64 {
        self.queue_s + self.stall_own_s + self.stall_contention_s + self.decode_s + self.preempt_s
    }

    /// The causes as an array in [`CAUSE_NAMES`] order.
    pub fn as_array(&self) -> [f64; 5] {
        [
            self.queue_s,
            self.stall_own_s,
            self.stall_contention_s,
            self.decode_s,
            self.preempt_s,
        ]
    }

    /// Field-wise accumulation.
    pub fn accumulate(&mut self, other: &Causes) {
        self.queue_s += other.queue_s;
        self.stall_own_s += other.stall_own_s;
        self.stall_contention_s += other.stall_contention_s;
        self.decode_s += other.decode_s;
        self.preempt_s += other.preempt_s;
    }

    /// Field-wise scaling (used to turn sums into means).
    pub fn scaled(&self, k: f64) -> Causes {
        Causes {
            queue_s: self.queue_s * k,
            stall_own_s: self.stall_own_s * k,
            stall_contention_s: self.stall_contention_s * k,
            decode_s: self.decode_s * k,
            preempt_s: self.preempt_s * k,
        }
    }
}

/// One request's e2e latency and its cause ledger.
#[derive(Debug, Clone, Copy)]
pub struct AttributedRequest {
    /// End-to-end latency (s).
    pub e2e_s: f64,
    /// Attributed causes (should sum to `e2e_s`).
    pub causes: Causes,
}

/// Aggregated attribution over a set of requests: mean causes over all
/// requests, and mean causes over the e2e tail.
#[derive(Debug, Clone, Serialize)]
pub struct CauseBreakdown {
    /// Requests aggregated.
    pub n: usize,
    /// Mean attributed seconds per request, all requests.
    pub mean: Causes,
    /// E2E threshold defining the tail (the `tail_q` percentile).
    pub tail_threshold_s: f64,
    /// Requests in the tail.
    pub n_tail: usize,
    /// Mean attributed seconds per request, tail requests only.
    pub tail_mean: Causes,
}

impl CauseBreakdown {
    /// Each cause's share of mean e2e, in [`CAUSE_NAMES`] order.
    pub fn mean_share(&self) -> [f64; 5] {
        share(&self.mean)
    }

    /// Each cause's share of mean tail e2e, in [`CAUSE_NAMES`] order.
    pub fn tail_share(&self) -> [f64; 5] {
        share(&self.tail_mean)
    }
}

fn share(c: &Causes) -> [f64; 5] {
    let total = c.total();
    c.as_array().map(|v| stats::ratio_or(v, total, 0.0))
}

/// Aggregates per-request attributions.
///
/// The tail is every request whose e2e is `>=` the `tail_q` percentile
/// of e2e (so `tail_q = 0.99` answers "where did the p99 go"). Empty
/// input yields a zeroed breakdown.
pub fn breakdown(requests: &[AttributedRequest], tail_q: f64) -> CauseBreakdown {
    if requests.is_empty() {
        return CauseBreakdown {
            n: 0,
            mean: Causes::default(),
            tail_threshold_s: 0.0,
            n_tail: 0,
            tail_mean: Causes::default(),
        };
    }
    let threshold = stats::percentile(requests.iter().map(|r| r.e2e_s).collect(), tail_q)
        .expect("non-empty by the guard above");
    let mut sum = Causes::default();
    let mut tail_sum = Causes::default();
    let mut n_tail = 0usize;
    for r in requests {
        sum.accumulate(&r.causes);
        if r.e2e_s >= threshold {
            tail_sum.accumulate(&r.causes);
            n_tail += 1;
        }
    }
    CauseBreakdown {
        n: requests.len(),
        mean: sum.scaled(1.0 / requests.len() as f64),
        tail_threshold_s: threshold,
        n_tail,
        tail_mean: if n_tail == 0 {
            Causes::default()
        } else {
            tail_sum.scaled(1.0 / n_tail as f64)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(e2e: f64, queue: f64, own: f64, cont: f64, decode: f64) -> AttributedRequest {
        AttributedRequest {
            e2e_s: e2e,
            causes: Causes {
                queue_s: queue,
                stall_own_s: own,
                stall_contention_s: cont,
                decode_s: decode,
                preempt_s: e2e - queue - own - cont - decode,
            },
        }
    }

    #[test]
    fn causes_total_and_array_agree() {
        let c = Causes {
            queue_s: 1.0,
            stall_own_s: 2.0,
            stall_contention_s: 3.0,
            decode_s: 4.0,
            preempt_s: 5.0,
        };
        assert_eq!(c.total(), 15.0);
        assert_eq!(c.as_array().iter().sum::<f64>(), 15.0);
        assert_eq!(CAUSE_NAMES.len(), c.as_array().len());
    }

    #[test]
    fn breakdown_separates_tail_from_mean() {
        // 9 fast decode-bound requests and one slow contention-bound one.
        let mut reqs: Vec<_> = (0..9).map(|_| req(1.0, 0.1, 0.0, 0.0, 0.9)).collect();
        reqs.push(req(10.0, 0.5, 0.5, 8.0, 1.0));
        let b = breakdown(&reqs, 0.9);
        assert_eq!(b.n, 10);
        assert!(b.n_tail >= 1 && b.n_tail < 10);
        // The tail is dominated by contention, the mean by decode.
        let tail = b.tail_share();
        let mean = b.mean_share();
        assert!(tail[2] > 0.5, "tail contention share {}", tail[2]);
        assert!(mean[3] > tail[3], "decode share must shrink in the tail");
        // Shares sum to 1 when any time was attributed.
        assert!((tail.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((mean.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zeroed() {
        let b = breakdown(&[], 0.99);
        assert_eq!(b.n, 0);
        assert_eq!(b.tail_mean.total(), 0.0);
        assert_eq!(b.mean_share(), [0.0; 5]);
    }
}
