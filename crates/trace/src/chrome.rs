//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Layout: one *process* per track (replica or front end), with four
//! threads per process — `requests` (async spans queued->finished plus
//! admit/first-token/preempt instants), `transfers` (async spans for
//! demand swaps and prefetches plus evict/hit instants), `decode`
//! (complete `X` events, one per batched iteration), and `gauges`
//! (counter events sampled at event boundaries).
//!
//! Async spans use lowercase `"b"`/`"e"` phases with per-process ids so
//! overlapping spans (many requests in flight at once) render correctly;
//! uppercase `B`/`E` are stack-scoped per thread and would interleave.
//! Spans still open when the log ends (e.g. an in-flight prefetch at
//! drain) are dropped so every emitted `"b"` has a matching `"e"`.

use crate::event::{EvictTier, GaugeSample, TraceEvent, TraceLog};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One lane group in the exported trace: a named log (a replica, a
/// stand-alone engine, or the cluster front end).
#[derive(Debug, Clone, Default)]
pub struct TraceTrack {
    /// Process name shown in the trace viewer.
    pub name: String,
    /// The event log for this track.
    pub log: TraceLog,
}

const TID_REQUESTS: u32 = 1;
const TID_TRANSFERS: u32 = 2;
const TID_DECODE: u32 = 3;
const TID_GAUGES: u32 = 4;

/// Serializes `tracks` as a Chrome trace-event JSON document.
///
/// Events are sorted by timestamp (metadata first), so the emitted
/// `traceEvents` array is monotone in `ts`.
pub fn chrome_trace_json(tracks: &[TraceTrack]) -> String {
    // (ts_us, tie-break sequence, rendered JSON object)
    let mut lines: Vec<(f64, usize, String)> = Vec::new();
    let mut seq = 0usize;

    for (i, track) in tracks.iter().enumerate() {
        let pid = i + 1;
        raw(
            &mut lines,
            &mut seq,
            -1.0,
            format!(
                r#"{{"name":"process_name","ph":"M","pid":{pid},"args":{{"name":"{}"}}}}"#,
                escape(&track.name)
            ),
        );
        for (tid, name) in [
            (TID_REQUESTS, "requests"),
            (TID_TRANSFERS, "transfers"),
            (TID_DECODE, "decode"),
            (TID_GAUGES, "gauges"),
        ] {
            raw(
                &mut lines,
                &mut seq,
                -1.0,
                format!(
                    r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{name}"}}}}"#
                ),
            );
        }

        // Open async spans by (category, id) -> (start ts_us, name, args).
        let mut open: HashMap<(&'static str, usize), (f64, String, String)> = HashMap::new();
        for ev in track.log.events() {
            let ts = ev.at() * 1e6;
            match *ev {
                TraceEvent::RequestQueued {
                    id,
                    model,
                    kind,
                    at: _,
                } => {
                    open.insert(
                        ("request", id),
                        (
                            ts,
                            format!("req {id}"),
                            format!(r#"{{"model":{model},"kind":"{}"}}"#, kind.label()),
                        ),
                    );
                }
                TraceEvent::RequestFinished { id, at: _ } => {
                    if let Some((t0, name, args)) = open.remove(&("request", id)) {
                        span(
                            &mut lines,
                            &mut seq,
                            pid,
                            TID_REQUESTS,
                            "request",
                            id,
                            t0,
                            ts,
                            &name,
                            &args,
                            "",
                        );
                    }
                }
                TraceEvent::RequestAdmitted {
                    id,
                    model,
                    kind,
                    at: _,
                } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "admit",
                        ts,
                        &format!(r#"{{"id":{id},"model":{model},"kind":"{}"}}"#, kind.label()),
                    );
                }
                TraceEvent::FirstToken { id, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "first_token",
                        ts,
                        &format!(r#"{{"id":{id}}}"#),
                    );
                }
                TraceEvent::RequestPreempted { id, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "preempt",
                        ts,
                        &format!(r#"{{"id":{id}}}"#),
                    );
                }
                TraceEvent::SwapStart {
                    delta,
                    at: _,
                    disk_s,
                    pcie_s,
                    solo_s,
                } => {
                    open.insert(
                        ("swap", delta),
                        (
                            ts,
                            format!("swap {delta}"),
                            format!(r#"{{"disk_s":{disk_s},"pcie_s":{pcie_s},"solo_s":{solo_s}}}"#),
                        ),
                    );
                }
                TraceEvent::SwapLand {
                    delta,
                    at: _,
                    waiters,
                } => {
                    if let Some((t0, name, args)) = open.remove(&("swap", delta)) {
                        span(
                            &mut lines,
                            &mut seq,
                            pid,
                            TID_TRANSFERS,
                            "swap",
                            delta,
                            t0,
                            ts,
                            &name,
                            &args,
                            &format!(r#"{{"waiters":{waiters}}}"#),
                        );
                    }
                }
                TraceEvent::PrefetchIssued {
                    delta,
                    at: _,
                    disk_s,
                } => {
                    open.insert(
                        ("prefetch", delta),
                        (
                            ts,
                            format!("prefetch {delta}"),
                            format!(r#"{{"disk_s":{disk_s}}}"#),
                        ),
                    );
                }
                TraceEvent::PrefetchLand { delta, at: _ }
                | TraceEvent::PrefetchPromoted { delta, at: _ } => {
                    let promoted = matches!(ev, TraceEvent::PrefetchPromoted { .. });
                    if let Some((t0, name, args)) = open.remove(&("prefetch", delta)) {
                        span(
                            &mut lines,
                            &mut seq,
                            pid,
                            TID_TRANSFERS,
                            "prefetch",
                            delta,
                            t0,
                            ts,
                            &name,
                            &args,
                            &format!(r#"{{"promoted":{promoted}}}"#),
                        );
                    }
                }
                TraceEvent::PrefetchHit { delta, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_TRANSFERS,
                        "prefetch_hit",
                        ts,
                        &format!(r#"{{"delta":{delta}}}"#),
                    );
                }
                TraceEvent::Evict { delta, tier, at: _ } => {
                    let name = match tier {
                        EvictTier::Gpu => "evict_gpu",
                        EvictTier::Host => "evict_host",
                    };
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_TRANSFERS,
                        name,
                        ts,
                        &format!(r#"{{"delta":{delta}}}"#),
                    );
                }
                TraceEvent::Migrate { count, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "migrate",
                        ts,
                        &format!(r#"{{"count":{count}}}"#),
                    );
                }
                TraceEvent::Defer { id, model, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "defer",
                        ts,
                        &format!(r#"{{"id":{id},"model":{model}}}"#),
                    );
                }
                TraceEvent::Shed { id, model, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "shed",
                        ts,
                        &format!(r#"{{"id":{id},"model":{model}}}"#),
                    );
                }
                TraceEvent::ReplicaDown {
                    replica,
                    lost,
                    at: _,
                } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "replica_down",
                        ts,
                        &format!(r#"{{"replica":{replica},"lost":{lost}}}"#),
                    );
                }
                TraceEvent::ReplicaUp { replica, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "replica_up",
                        ts,
                        &format!(r#"{{"replica":{replica}}}"#),
                    );
                }
                TraceEvent::ScaleUp { replica, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "scale_up",
                        ts,
                        &format!(r#"{{"replica":{replica}}}"#),
                    );
                }
                TraceEvent::ScaleDown { replica, at: _ } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "scale_down",
                        ts,
                        &format!(r#"{{"replica":{replica}}}"#),
                    );
                }
                TraceEvent::Rollout {
                    model,
                    v2,
                    frac,
                    at: _,
                } => {
                    instant(
                        &mut lines,
                        &mut seq,
                        pid,
                        TID_REQUESTS,
                        "rollout",
                        ts,
                        &format!(r#"{{"model":{model},"v2":{v2},"frac":{frac}}}"#),
                    );
                }
                TraceEvent::BatchStep {
                    at: _,
                    dur_s,
                    batch,
                    deltas,
                    loras,
                } => {
                    raw(
                        &mut lines,
                        &mut seq,
                        ts,
                        format!(
                            r#"{{"name":"batch_step","cat":"decode","ph":"X","ts":{ts:.3},"dur":{:.3},"pid":{pid},"tid":{TID_DECODE},"args":{{"batch":{batch},"deltas":{deltas},"loras":{loras}}}}}"#,
                            (dur_s * 1e6).max(0.0)
                        ),
                    );
                }
            }
        }
        // Unclosed spans (in-flight at drain) are dropped: every "b"
        // in the output has a matching "e".

        for g in track.log.gauges() {
            counters(&mut lines, &mut seq, pid, g);
        }
    }

    lines.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, (_, _, line)) in lines.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(line);
    }
    out.push_str("\n]}\n");
    out
}

/// Renders `tracks` and writes the JSON document to `path`.
pub fn write_chrome_trace(path: &std::path::Path, tracks: &[TraceTrack]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, chrome_trace_json(tracks))
}

fn raw(lines: &mut Vec<(f64, usize, String)>, seq: &mut usize, ts: f64, line: String) {
    lines.push((ts, *seq, line));
    *seq += 1;
}

#[allow(clippy::too_many_arguments)]
fn span(
    lines: &mut Vec<(f64, usize, String)>,
    seq: &mut usize,
    pid: usize,
    tid: u32,
    cat: &str,
    id: usize,
    t0: f64,
    t1: f64,
    name: &str,
    begin_args: &str,
    end_args: &str,
) {
    // Per-process async id so concurrent replicas swapping the same
    // delta never alias.
    let gid = pid * 1_000_000 + id;
    lines.push((
        t0,
        *seq,
        format!(
            r#"{{"name":"{name}","cat":"{cat}","ph":"b","id":{gid},"ts":{t0:.3},"pid":{pid},"tid":{tid},"args":{begin_args}}}"#
        ),
    ));
    *seq += 1;
    let end_args = if end_args.is_empty() { "{}" } else { end_args };
    lines.push((
        t1.max(t0),
        *seq,
        format!(
            r#"{{"name":"{name}","cat":"{cat}","ph":"e","id":{gid},"ts":{:.3},"pid":{pid},"tid":{tid},"args":{end_args}}}"#,
            t1.max(t0)
        ),
    ));
    *seq += 1;
}

fn instant(
    lines: &mut Vec<(f64, usize, String)>,
    seq: &mut usize,
    pid: usize,
    tid: u32,
    name: &str,
    ts: f64,
    args: &str,
) {
    lines.push((
        ts,
        *seq,
        format!(
            r#"{{"name":"{name}","cat":"event","ph":"i","s":"t","ts":{ts:.3},"pid":{pid},"tid":{tid},"args":{args}}}"#
        ),
    ));
    *seq += 1;
}

fn counters(lines: &mut Vec<(f64, usize, String)>, seq: &mut usize, pid: usize, g: &GaugeSample) {
    let ts = g.at * 1e6;
    for (name, args) in [
        (
            "load",
            format!(
                r#"{{"queued":{},"batch":{},"blocked":{}}}"#,
                g.queue_depth, g.batch, g.blocked
            ),
        ),
        (
            "residency",
            format!(
                r#"{{"gpu":{},"host_decoded":{},"host":{},"disk":{}}}"#,
                g.gpu_resident, g.warmth_host_decoded, g.warmth_host, g.warmth_disk
            ),
        ),
        (
            "bytes",
            format!(r#"{{"gpu":{},"host":{}}}"#, g.gpu_bytes, g.host_bytes),
        ),
        (
            "inflight",
            format!(
                r#"{{"demand":{},"prefetch":{}}}"#,
                g.inflight_demand, g.inflight_prefetch
            ),
        ),
    ] {
        lines.push((
            ts,
            *seq,
            format!(
                r#"{{"name":"{name}","ph":"C","ts":{ts:.3},"pid":{pid},"tid":{TID_GAUGES},"args":{args}}}"#
            ),
        ));
        *seq += 1;
    }
    // Fleet-size lane, only for tracks that actually sample it (the
    // cluster front end); single-engine lanes never set it and skip
    // the extra counter entirely.
    if g.live_replicas > 0 {
        lines.push((
            ts,
            *seq,
            format!(
                r#"{{"name":"fleet","ph":"C","ts":{ts:.3},"pid":{pid},"tid":{TID_GAUGES},"args":{{"live":{}}}}}"#,
                g.live_replicas
            ),
        ));
        *seq += 1;
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ToppingKind;

    fn sample_track() -> TraceTrack {
        let mut log = TraceLog::with_capacity(64);
        log.push(TraceEvent::RequestQueued {
            id: 0,
            model: 2,
            kind: ToppingKind::Lora,
            at: 0.0,
        });
        log.push(TraceEvent::RequestAdmitted {
            id: 0,
            model: 2,
            kind: ToppingKind::Lora,
            at: 0.5,
        });
        log.push(TraceEvent::SwapStart {
            delta: 2,
            at: 0.5,
            disk_s: 0.3,
            pcie_s: 0.1,
            solo_s: 0.4,
        });
        log.push(TraceEvent::SwapLand {
            delta: 2,
            at: 0.9,
            waiters: 1,
        });
        log.push(TraceEvent::BatchStep {
            at: 0.9,
            dur_s: 0.1,
            batch: 1,
            deltas: 1,
            loras: 1,
        });
        log.push(TraceEvent::FirstToken { id: 0, at: 1.0 });
        log.push(TraceEvent::RequestFinished { id: 0, at: 1.2 });
        // In-flight prefetch with no land: must be dropped from output.
        log.push(TraceEvent::PrefetchIssued {
            delta: 5,
            at: 1.1,
            disk_s: 0.3,
        });
        log.push_gauge(GaugeSample {
            at: 1.0,
            queue_depth: 0,
            batch: 1,
            gpu_resident: 1,
            ..GaugeSample::default()
        });
        TraceTrack {
            name: "engine".into(),
            log,
        }
    }

    #[test]
    fn spans_are_balanced_and_sorted() {
        let json = chrome_trace_json(&[sample_track()]);
        let b = json.matches(r#""ph":"b""#).count();
        let e = json.matches(r#""ph":"e""#).count();
        assert_eq!(b, e, "unbalanced spans:\n{json}");
        // request + swap span; prefetch was dropped (no land).
        assert_eq!(b, 2);
        assert!(!json.contains("prefetch 5"));
        // Monotone ts.
        let mut last = f64::NEG_INFINITY;
        for part in json.split(r#""ts":"#).skip(1) {
            let num: f64 = part.split([',', '}']).next().unwrap().parse().unwrap();
            assert!(num >= last, "ts went backwards: {num} < {last}");
            last = num;
        }
    }

    #[test]
    fn process_names_are_escaped() {
        let track = TraceTrack {
            name: "weird\"name".into(),
            log: TraceLog::with_capacity(1),
        };
        let json = chrome_trace_json(&[track]);
        assert!(json.contains(r#"weird\"name"#));
    }
}
