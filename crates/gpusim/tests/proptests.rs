//! Property-based tests of the performance model's monotonicity and the
//! event queue's ordering guarantees.

use dz_gpusim::kernel::{matmul_time, sbmm_time, BatchedImpl, MatmulDesc, WeightFormat};
use dz_gpusim::spec::A800;
use dz_gpusim::EventQueue;
use proptest::prelude::*;

proptest! {
    #[test]
    fn matmul_time_monotone_in_m(k in 64usize..2048, n in 64usize..2048, m in 1usize..512) {
        let t1 = matmul_time(&A800, &MatmulDesc { m, k, n, format: WeightFormat::Fp16 });
        let t2 = matmul_time(&A800, &MatmulDesc { m: m * 2, k, n, format: WeightFormat::Fp16 });
        prop_assert!(t2 >= t1 - 1e-12);
    }

    #[test]
    fn sparse_weights_never_move_more_bytes(k in 64usize..4096, n in 64usize..4096, bits in 2u32..8) {
        let dense = WeightFormat::Int { bits, sparse24: false }.weight_bytes(k, n);
        let sparse = WeightFormat::Int { bits, sparse24: true }.weight_bytes(k, n);
        prop_assert!(sparse < dense + 1.0);
        prop_assert!(WeightFormat::Fp16.weight_bytes(k, n) > dense);
    }

    #[test]
    fn sbmm_plus_never_slower_than_naive(reqs in proptest::collection::vec(0usize..8, 1..32)) {
        let fmt = WeightFormat::Int { bits: 4, sparse24: true };
        let plus = sbmm_time(&A800, &reqs, 1024, 1024, fmt, BatchedImpl::SbmmPlus);
        let naive = sbmm_time(&A800, &reqs, 1024, 1024, fmt, BatchedImpl::NaiveForLoop);
        prop_assert!(plus <= naive + 1e-12, "plus {plus} naive {naive}");
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut prev = -1.0f64;
        let mut count = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }
}
