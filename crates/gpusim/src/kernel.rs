//! Roofline kernel timing and batched-matmul strategy models.

use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};

/// On-GPU weight representation of a matmul operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightFormat {
    /// Dense FP16 weights.
    Fp16,
    /// Quantized weights, optionally 2:4 sparse.
    Int {
        /// Bits per value (1, 2, 4, ...).
        bits: u32,
        /// 2:4 structured sparsity (halves stored values, adds 2-bit indices).
        sparse24: bool,
    },
}

impl WeightFormat {
    /// Bytes needed to store a `k x n` weight matrix in this format.
    pub fn weight_bytes(&self, k: usize, n: usize) -> f64 {
        let vals = (k * n) as f64;
        match *self {
            WeightFormat::Fp16 => vals * 2.0,
            WeightFormat::Int { bits, sparse24 } => {
                if sparse24 {
                    // Half the values at `bits`, plus 2-bit indices for each
                    // kept value, plus ~1/16 scale overhead.
                    vals / 2.0 * bits as f64 / 8.0 + vals / 2.0 * 2.0 / 8.0 + vals / 16.0 * 0.25
                } else {
                    vals * bits as f64 / 8.0 + vals / 16.0 * 0.25
                }
            }
        }
    }

    /// Compute-ceiling multiplier relative to the dense FP16 peak.
    pub fn compute_multiplier(&self, spec: &GpuSpec) -> f64 {
        match *self {
            WeightFormat::Fp16 => 1.0,
            WeightFormat::Int { sparse24, .. } => {
                if sparse24 {
                    // Sparse tensor cores skip the pruned half.
                    spec.sparse_speedup
                } else {
                    // Dequant-to-FP16 kernels top out at the dense peak.
                    1.0
                }
            }
        }
    }
}

/// One `m x k x n` matmul (activations `m x k`, weights `k x n`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatmulDesc {
    /// Rows of activations (batch x tokens).
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output dimension.
    pub n: usize,
    /// Weight storage format.
    pub format: WeightFormat,
}

impl MatmulDesc {
    /// FLOPs of the dense-equivalent product.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }

    /// Bytes moved: weights once, activations in and out.
    pub fn bytes(&self) -> f64 {
        self.format.weight_bytes(self.k, self.n)
            + (self.m * self.k) as f64 * 2.0
            + (self.m * self.n) as f64 * 2.0
    }
}

/// Roofline execution time of one matmul, including launch overhead.
pub fn matmul_time(spec: &GpuSpec, desc: &MatmulDesc) -> f64 {
    let peak = spec.fp16_tflops * 1e12 * spec.efficiency * desc.format.compute_multiplier(spec);
    let compute = desc.flops() / peak;
    let memory = desc.bytes() / (spec.hbm_bw_gbps * 1e9);
    compute.max(memory) + spec.kernel_launch_us * 1e-6
}

/// Achieved FLOP/s of one matmul normalized to the dense FP16 peak
/// (the y-axis of Figure 6).
pub fn normalized_achieved_flops(spec: &GpuSpec, desc: &MatmulDesc) -> f64 {
    let t = matmul_time(spec, desc);
    desc.flops() / t / (spec.fp16_tflops * 1e12)
}

/// Strategy for executing a batch of per-delta matmuls (Figures 7 and 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchedImpl {
    /// Dense FP16 weights, one launch per delta.
    Fp16ForLoop,
    /// Dense FP16 via `torch.bmm`: weights first stacked into one tensor.
    Fp16Bmm,
    /// Low-precision kernel per request group, no reordering: scattered
    /// reads inflate the memory traffic.
    NaiveForLoop,
    /// Request reordering only ("Ours" in Figure 17): per-delta launches
    /// over contiguous inputs.
    Sbmm,
    /// Reordering + single dynamic-parallel launch ("Ours+"): launch cost
    /// amortized to two kernels total.
    SbmmPlus,
}

/// Penalty factor on memory traffic for scattered (unsorted) batches.
const RANDOM_ACCESS_PENALTY: f64 = 2.0;

/// Time to compute `y_i = x_i * Delta_{idx(i)}` for a batch.
///
/// `reqs_per_delta[d]` is the number of requests mapped to delta `d`
/// (zeros allowed); each delta is `k x n` in `format`.
pub fn sbmm_time(
    spec: &GpuSpec,
    reqs_per_delta: &[usize],
    k: usize,
    n: usize,
    format: WeightFormat,
    strategy: BatchedImpl,
) -> f64 {
    let launch = spec.kernel_launch_us * 1e-6;
    let bw = spec.hbm_bw_gbps * 1e9;
    let active: Vec<usize> = reqs_per_delta.iter().copied().filter(|&r| r > 0).collect();
    if active.is_empty() {
        return 0.0;
    }
    match strategy {
        BatchedImpl::Fp16ForLoop => active
            .iter()
            .map(|&m| {
                matmul_time(
                    spec,
                    &MatmulDesc {
                        m,
                        k,
                        n,
                        format: WeightFormat::Fp16,
                    },
                )
            })
            .sum(),
        BatchedImpl::Fp16Bmm => {
            // Stack weights (read + write through HBM), then one launch.
            let stack_bytes = active.len() as f64 * WeightFormat::Fp16.weight_bytes(k, n) * 2.0;
            let total_m: usize = active.iter().sum();
            let mm = matmul_time(
                spec,
                &MatmulDesc {
                    m: total_m,
                    k,
                    n,
                    format: WeightFormat::Fp16,
                },
            );
            stack_bytes / bw + mm
        }
        BatchedImpl::NaiveForLoop => active
            .iter()
            .map(|&m| {
                let desc = MatmulDesc { m, k, n, format };
                let peak =
                    spec.fp16_tflops * 1e12 * spec.efficiency * format.compute_multiplier(spec);
                let compute = desc.flops() / peak;
                let memory = desc.bytes() * RANDOM_ACCESS_PENALTY / bw;
                compute.max(memory) + launch
            })
            .sum(),
        BatchedImpl::Sbmm => active
            .iter()
            .map(|&m| matmul_time(spec, &MatmulDesc { m, k, n, format }))
            .sum(),
        BatchedImpl::SbmmPlus => {
            // Two launches total (config kernel + fused blocked matmul);
            // memory traffic still adds up across deltas, compute overlaps
            // across SMs up to the bandwidth bound. The dispatcher falls
            // back to plain per-group launches when those are cheaper
            // (e.g. a single active delta does not need dynamic
            // parallelism).
            let total_bytes: f64 = active
                .iter()
                .map(|&m| MatmulDesc { m, k, n, format }.bytes())
                .sum();
            let total_flops: f64 = active
                .iter()
                .map(|&m| MatmulDesc { m, k, n, format }.flops())
                .sum();
            let peak = spec.fp16_tflops * 1e12 * spec.efficiency * format.compute_multiplier(spec);
            let fused = (total_flops / peak).max(total_bytes / bw) + 2.0 * launch;
            let per_group = sbmm_time(spec, reqs_per_delta, k, n, format, BatchedImpl::Sbmm);
            fused.min(per_group)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::A800;

    const INT4S: WeightFormat = WeightFormat::Int {
        bits: 4,
        sparse24: true,
    };
    const INT4: WeightFormat = WeightFormat::Int {
        bits: 4,
        sparse24: false,
    };

    #[test]
    fn weight_bytes_orderings() {
        let fp16 = WeightFormat::Fp16.weight_bytes(4096, 4096);
        let int4 = INT4.weight_bytes(4096, 4096);
        let int4s = INT4S.weight_bytes(4096, 4096);
        assert!(int4 < fp16 / 3.5, "int4 {int4} vs fp16 {fp16}");
        assert!(int4s < int4, "sparse should be smaller than dense int4");
    }

    #[test]
    fn decode_is_memory_bound_prefill_compute_bound() {
        let decode = MatmulDesc {
            m: 4,
            k: 4096,
            n: 4096,
            format: WeightFormat::Fp16,
        };
        let prefill = MatmulDesc {
            m: 4096,
            k: 4096,
            n: 4096,
            format: WeightFormat::Fp16,
        };
        let bw = A800.hbm_bw_gbps * 1e9;
        let peak = A800.fp16_tflops * 1e12 * A800.efficiency;
        assert!(
            decode.bytes() / bw > decode.flops() / peak,
            "decode should be memory bound"
        );
        assert!(
            prefill.flops() / peak > prefill.bytes() / bw,
            "prefill should be compute bound"
        );
    }

    #[test]
    fn figure6_shape_small_inputs_quant_wins_by_bytes() {
        // At m in 1..4 every format is memory bound; normalized achieved
        // flops ranks by bytes moved: sparse-int4 < int4 < fp16 bytes, so
        // sparse-int4 achieves the most.
        for m in [1usize, 2, 4] {
            let f = |fmt| {
                normalized_achieved_flops(
                    &A800,
                    &MatmulDesc {
                        m,
                        k: 4096,
                        n: 4096,
                        format: fmt,
                    },
                )
            };
            assert!(f(INT4S) > f(INT4), "m={m}");
            assert!(f(INT4) > f(WeightFormat::Fp16), "m={m}");
        }
    }

    #[test]
    fn figure6_shape_large_inputs_sparse_exceeds_dense_peak() {
        let big = MatmulDesc {
            m: 4096,
            k: 4096,
            n: 4096,
            format: INT4S,
        };
        let norm = normalized_achieved_flops(&A800, &big);
        // Sparse tensor cores push past the dense peak (paper: ~1.6x, times
        // the efficiency factor).
        assert!(norm > 1.0, "normalized {norm}");
        let dense = MatmulDesc {
            m: 4096,
            k: 4096,
            n: 4096,
            format: WeightFormat::Fp16,
        };
        let dn = normalized_achieved_flops(&A800, &dense);
        assert!(norm > dn * 1.3, "sparse {norm} vs dense {dn}");
        // Dense int4 converges to dense fp16 at large m (same mma ceiling).
        let di = normalized_achieved_flops(
            &A800,
            &MatmulDesc {
                m: 4096,
                k: 4096,
                n: 4096,
                format: INT4,
            },
        );
        assert!((di - dn).abs() / dn < 0.2, "int4 {di} vs fp16 {dn}");
    }

    #[test]
    fn figure7_shape_sbmm_beats_loops_and_bmm() {
        for n_models in [16usize, 64] {
            let reqs = vec![1usize; n_models];
            let t = |s| sbmm_time(&A800, &reqs, 4096, 4096, INT4S, s);
            let fp16_loop = t(BatchedImpl::Fp16ForLoop);
            let bmm = t(BatchedImpl::Fp16Bmm);
            let naive = t(BatchedImpl::NaiveForLoop);
            let ours = t(BatchedImpl::Sbmm);
            let ours_plus = t(BatchedImpl::SbmmPlus);
            assert!(ours < naive, "n={n_models}: reorder must help");
            assert!(ours_plus < ours, "n={n_models}: fused launch must help");
            assert!(ours_plus < fp16_loop, "n={n_models}");
            assert!(ours_plus < bmm, "n={n_models}");
        }
    }

    #[test]
    fn sbmm_scales_gently_with_model_count_at_fixed_requests() {
        // Figure 17: with total requests fixed, Ours+ grows slowly in the
        // number of distinct models.
        let total_reqs = 64usize;
        let t_few = sbmm_time(
            &A800,
            &[total_reqs / 4; 4],
            2048,
            2048,
            INT4S,
            BatchedImpl::SbmmPlus,
        );
        let t_many = sbmm_time(
            &A800,
            &vec![1; total_reqs],
            2048,
            2048,
            INT4S,
            BatchedImpl::SbmmPlus,
        );
        // More distinct models touch more weight bytes, so some growth is
        // expected, but far less than the naive loop's.
        let naive_many = sbmm_time(
            &A800,
            &vec![1; total_reqs],
            2048,
            2048,
            INT4S,
            BatchedImpl::NaiveForLoop,
        );
        assert!(t_many < naive_many / 1.5);
        assert!(t_many > t_few);
    }

    #[test]
    fn empty_batch_costs_nothing() {
        assert_eq!(
            sbmm_time(&A800, &[0, 0], 1024, 1024, INT4S, BatchedImpl::Sbmm),
            0.0
        );
    }

    #[test]
    fn launch_overhead_visible_at_tiny_work() {
        let tiny = MatmulDesc {
            m: 1,
            k: 64,
            n: 64,
            format: WeightFormat::Fp16,
        };
        let t = matmul_time(&A800, &tiny);
        assert!(t >= A800.kernel_launch_us * 1e-6);
    }
}
