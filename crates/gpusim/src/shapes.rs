//! Transformer shape descriptors for the serving simulations.
//!
//! The serving experiments run at the paper's real model scales (7B/13B/70B
//! parameters); only *shapes* matter to the performance model, no weights
//! are materialized.

use serde::Serialize;

/// Dimensions of a decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ModelShape {
    /// Human name.
    pub name: &'static str,
    /// Transformer blocks.
    pub n_layers: usize,
    /// Residual width.
    pub d_model: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl ModelShape {
    /// Llama-2 7B.
    pub fn llama7b() -> Self {
        ModelShape {
            name: "llama-7b",
            n_layers: 32,
            d_model: 4096,
            d_ff: 11008,
            vocab: 32000,
        }
    }

    /// Llama-2 13B.
    pub fn llama13b() -> Self {
        ModelShape {
            name: "llama-13b",
            n_layers: 40,
            d_model: 5120,
            d_ff: 13824,
            vocab: 32000,
        }
    }

    /// Llama-2 70B (attention treated as MHA; GQA ignored, which only
    /// shifts constants).
    pub fn llama70b() -> Self {
        ModelShape {
            name: "llama-70b",
            n_layers: 80,
            d_model: 8192,
            d_ff: 28672,
            vocab: 32000,
        }
    }

    /// Per-layer linear shapes `(k, n)`: q, k, v, o projections plus the
    /// SwiGLU MLP (gate, up, down).
    pub fn layer_linears(&self) -> Vec<(usize, usize)> {
        vec![
            (self.d_model, self.d_model), // wq
            (self.d_model, self.d_model), // wk
            (self.d_model, self.d_model), // wv
            (self.d_model, self.d_model), // wo
            (self.d_model, self.d_ff),    // gate
            (self.d_model, self.d_ff),    // up
            (self.d_ff, self.d_model),    // down
        ]
    }

    /// Parameter count of all linear layers.
    pub fn linear_params(&self) -> usize {
        let per: usize = self.layer_linears().iter().map(|(k, n)| k * n).sum();
        per * self.n_layers
    }

    /// Total parameter count (linears + embeddings; norms negligible).
    pub fn total_params(&self) -> usize {
        self.linear_params() + 2 * self.vocab * self.d_model
    }

    /// FP16 bytes of the whole model.
    pub fn fp16_bytes(&self) -> f64 {
        self.total_params() as f64 * 2.0
    }

    /// Bytes of a compressed delta for this shape.
    ///
    /// `bits` + 2:4 sparsity on every linear layer, everything else FP16 —
    /// the same accounting `dz-compress` does exactly, applied at scale.
    pub fn delta_bytes(&self, bits: u32, sparse24: bool) -> f64 {
        let fmt = crate::kernel::WeightFormat::Int { bits, sparse24 };
        let per_layer: f64 = self
            .layer_linears()
            .iter()
            .map(|&(k, n)| fmt.weight_bytes(k, n))
            .sum();
        // Embeddings ride along uncompressed.
        per_layer * self.n_layers as f64 + (2 * self.vocab * self.d_model) as f64 * 2.0
    }

    /// Bytes of a LoRA adapter of rank `r` applied to q and v projections.
    pub fn lora_bytes(&self, rank: usize) -> f64 {
        // Two adapted projections per layer, each A (d x r) + B (r x d).
        (self.n_layers * 2 * 2 * self.d_model * rank) as f64 * 2.0
    }

    /// KV-cache bytes per token (FP16 keys + values across layers).
    pub fn kv_bytes_per_token(&self) -> f64 {
        (2 * self.n_layers * self.d_model) as f64 * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_land_near_nameplate() {
        let b7 = ModelShape::llama7b().total_params() as f64 / 1e9;
        let b13 = ModelShape::llama13b().total_params() as f64 / 1e9;
        let b70 = ModelShape::llama70b().total_params() as f64 / 1e9;
        assert!((6.0..8.0).contains(&b7), "7b -> {b7}");
        assert!((11.5..14.5).contains(&b13), "13b -> {b13}");
        assert!(
            (60.0..80.0).contains(&b70),
            "70b -> {b70} (MHA approximation, no GQA)"
        );
    }

    #[test]
    fn delta_is_much_smaller_than_model() {
        let s = ModelShape::llama13b();
        let full = s.fp16_bytes();
        let d4 = s.delta_bytes(4, true);
        let d2 = s.delta_bytes(2, true);
        assert!(full / d4 > 4.0, "4bit ratio {}", full / d4);
        assert!(full / d2 > 5.5, "2bit ratio {}", full / d2);
        assert!(d2 < d4);
    }

    #[test]
    fn lora_is_smaller_than_delta() {
        let s = ModelShape::llama13b();
        assert!(s.lora_bytes(16) < s.delta_bytes(2, true));
        assert!(s.lora_bytes(16) < s.lora_bytes(64));
    }

    #[test]
    fn kv_bytes_scale_with_depth_and_width() {
        assert!(
            ModelShape::llama70b().kv_bytes_per_token()
                > ModelShape::llama7b().kv_bytes_per_token()
        );
    }
}
