//! A discrete-event GPU cluster performance model.
//!
//! No GPUs exist in this environment, so serving performance (Figures 6-19
//! of the paper) is reproduced on an analytical model with the standard
//! first-order structure:
//!
//! * **roofline kernels** — a matmul costs
//!   `max(flops / peak, bytes / bandwidth) + launch overhead`; decode steps
//!   are memory-bound (weight bytes dominate), prefill is compute-bound,
//! * **sparse tensor cores** — 2:4 kernels get a higher compute ceiling at
//!   large inputs (the paper measures ~1.6x over dense FP16 peak),
//! * **batched-matmul strategies** — per-request loops pay per-launch
//!   overhead and scattered access; SBMM pays two launches total,
//! * **transfers** — disk -> host -> device with per-hop bandwidth and
//!   latency (NVMe vs NFS vs PCIe), optionally through the lossless codec,
//! * **collectives** — ring all-reduce for tensor parallelism.
//!
//! The absolute constants are calibrated to public datasheets (A800 / A100,
//! RTX 3090); every experiment uses *relative* comparisons, which is what
//! the paper's claims are about.

pub mod event;
pub mod kernel;
pub mod shapes;
pub mod spec;
pub mod xfer;

pub use event::{EventClass, EventQueue, SimTime};
pub use kernel::{matmul_time, sbmm_time, BatchedImpl, MatmulDesc, WeightFormat};
pub use shapes::ModelShape;
pub use spec::{GpuSpec, NodeSpec, StorageKind};
