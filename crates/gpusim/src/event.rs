//! A minimal discrete-event simulation core.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation timestamp in seconds.
pub type SimTime = f64;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by insertion order so the
        // simulation is deterministic.
        other
            .at
            .partial_cmp(&self.at)
            .expect("event time must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap event queue with a monotonic clock.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    now: SimTime,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or in the past.
    pub fn push(&mut self, at: SimTime, payload: T) {
        assert!(!at.is_nan(), "event time must not be NaN");
        assert!(
            at >= self.now - 1e-12,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` after a relative delay.
    pub fn push_after(&mut self, delay: SimTime, payload: T) {
        let at = self.now + delay.max(0.0);
        self.push(at, payload);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now - 1e-9, "clock went backwards");
            self.now = self.now.max(e.at);
            (self.now, e.payload)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        q.push(7.0, ());
        let (t1, _) = q.pop().unwrap();
        let (t2, _) = q.pop().unwrap();
        assert!(t2 >= t1);
        assert_eq!(q.now(), 7.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        let _ = q.pop();
        q.push(1.0, ());
    }

    #[test]
    fn push_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.push(2.0, "first");
        let _ = q.pop();
        q.push_after(3.0, "second");
        let (t, _) = q.pop().unwrap();
        assert!((t - 5.0).abs() < 1e-12);
    }
}
