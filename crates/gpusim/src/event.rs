//! A minimal discrete-event simulation core.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation timestamp in seconds.
pub type SimTime = f64;

/// An event priority class: at equal timestamps, lower classes pop first.
///
/// Multi-source simulations (e.g. a cluster front end merging chaos and
/// arrival streams) encode "stream A fires before stream B at the same
/// instant" as a class instead of biasing timestamps, which keeps the
/// clock exact and the ordering auditable.
pub type EventClass = u8;

struct Entry<T> {
    at: SimTime,
    class: EventClass,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.class == other.class && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken first by class, then by
        // insertion order so the simulation is deterministic.
        other
            .at
            .partial_cmp(&self.at)
            .expect("event time must not be NaN")
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap event queue with a monotonic clock.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    now: SimTime,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at` in the default class 0.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or in the past.
    pub fn push(&mut self, at: SimTime, payload: T) {
        self.push_class(at, 0, payload);
    }

    /// Schedules `payload` at absolute time `at` with an explicit
    /// priority `class`: at equal timestamps, lower classes pop first.
    ///
    /// # Panics
    ///
    /// Panics if `at` is NaN or in the past.
    pub fn push_class(&mut self, at: SimTime, class: EventClass, payload: T) {
        assert!(!at.is_nan(), "event time must not be NaN");
        assert!(
            at >= self.now - 1e-12,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.heap.push(Entry {
            at,
            class,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` after a relative delay.
    pub fn push_after(&mut self, delay: SimTime, payload: T) {
        let at = self.now + delay.max(0.0);
        self.push(at, payload);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_classed().map(|(t, _, p)| (t, p))
    }

    /// Pops the next event with its class, advancing the clock.
    pub fn pop_classed(&mut self) -> Option<(SimTime, EventClass, T)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now - 1e-9, "clock went backwards");
            self.now = self.now.max(e.at);
            (self.now, e.class, e.payload)
        })
    }

    /// The next event without popping it: `(time, class, payload)`.
    pub fn peek(&self) -> Option<(SimTime, EventClass, &T)> {
        self.heap.peek().map(|e| (e.at, e.class, &e.payload))
    }

    /// Iterates over every pending event in **arbitrary** (heap) order —
    /// for scans like "earliest pending event matching a predicate",
    /// which callers reduce over the full set rather than relying on
    /// ordering.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, EventClass, &T)> {
        self.heap.iter().map(|e| (e.at, e.class, &e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        q.push(7.0, ());
        let (t1, _) = q.pop().unwrap();
        let (t2, _) = q.pop().unwrap();
        assert!(t2 >= t1);
        assert_eq!(q.now(), 7.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        let _ = q.pop();
        q.push(1.0, ());
    }

    #[test]
    fn classes_order_before_seq_at_equal_time() {
        let mut q = EventQueue::new();
        q.push_class(1.0, 1, "arrival");
        q.push_class(1.0, 0, "chaos");
        q.push_class(1.0, 1, "arrival2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["chaos", "arrival", "arrival2"]);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push_class(2.0, 1, "b");
        q.push_class(1.0, 1, "a");
        let (t, class, p) = q.peek().expect("non-empty");
        assert_eq!((t, class, *p), (1.0, 1, "a"));
        let (t2, c2, p2) = q.pop_classed().expect("non-empty");
        assert_eq!((t2, c2, p2), (1.0, 1, "a"));
    }

    #[test]
    fn iter_covers_all_pending() {
        let mut q = EventQueue::new();
        q.push(3.0, 30);
        q.push(1.0, 10);
        q.push(2.0, 20);
        let earliest = q
            .iter()
            .filter(|(_, _, p)| **p >= 20)
            .map(|(t, _, _)| t)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(earliest, 2.0);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn push_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.push(2.0, "first");
        let _ = q.pop();
        q.push_after(3.0, "second");
        let (t, _) = q.pop().unwrap();
        assert!((t - 5.0).abs() < 1e-12);
    }
}
