//! Hardware specifications (datasheet-calibrated).

use serde::{Deserialize, Serialize};

/// One GPU SKU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Dense FP16 tensor-core peak, TFLOP/s.
    pub fp16_tflops: f64,
    /// Achievable speedup of 2:4 sparse tensor cores over the dense peak
    /// at large input sizes (the paper measures ~1.6x end to end).
    pub sparse_speedup: f64,
    /// HBM capacity, GiB.
    pub hbm_gb: f64,
    /// HBM bandwidth, GB/s.
    pub hbm_bw_gbps: f64,
    /// Host-to-device bandwidth, GB/s (PCIe).
    pub pcie_gbps: f64,
    /// Kernel launch overhead, microseconds.
    pub kernel_launch_us: f64,
    /// Fraction of peak a well-tuned kernel actually achieves.
    pub efficiency: f64,
}

/// NVIDIA A800 (A100-class; the paper's main testbed, 4 per node).
pub const A800: GpuSpec = GpuSpec {
    name: "A800-80G",
    fp16_tflops: 312.0,
    sparse_speedup: 1.6,
    hbm_gb: 80.0,
    hbm_bw_gbps: 2039.0,
    pcie_gbps: 25.0,
    kernel_launch_us: 6.0,
    efficiency: 0.8,
};

/// NVIDIA RTX 3090 (the paper's microbenchmark GPU).
pub const RTX3090: GpuSpec = GpuSpec {
    name: "RTX-3090",
    fp16_tflops: 71.0,
    sparse_speedup: 1.6,
    hbm_gb: 24.0,
    hbm_bw_gbps: 936.0,
    pcie_gbps: 16.0,
    kernel_launch_us: 6.0,
    efficiency: 0.75,
};

/// Where model state lives before it is loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// Local NVMe (the paper's all-NVMe parallel FS).
    Nvme,
    /// Network file system over a 50 Gbps RoCE link.
    Nfs,
}

impl StorageKind {
    /// Sequential read bandwidth, GB/s.
    pub fn read_gbps(self) -> f64 {
        match self {
            StorageKind::Nvme => 6.0,
            StorageKind::Nfs => 5.0, // ~50 Gbps network, shared.
        }
    }

    /// First-byte latency, seconds.
    pub fn latency_s(self) -> f64 {
        match self {
            StorageKind::Nvme => 100e-6,
            StorageKind::Nfs => 1e-3,
        }
    }
}

/// A serving node: homogeneous GPUs plus interconnect and storage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeSpec {
    /// GPU SKU.
    pub gpu: GpuSpec,
    /// GPUs in the tensor-parallel group.
    pub n_gpus: usize,
    /// GPU-to-GPU link bandwidth, GB/s (NVLink on A800, PCIe on 3090).
    pub link_gbps: f64,
    /// Per-hop link latency, seconds.
    pub link_latency_s: f64,
    /// Storage tier for cold model state.
    pub storage: StorageKind,
    /// Host DRAM capacity, GiB (CPU cache tier for deltas).
    pub host_mem_gb: f64,
}

impl NodeSpec {
    /// The paper's main testbed: 4 x A800 with NVLink and NVMe.
    pub fn a800_node(n_gpus: usize) -> Self {
        NodeSpec {
            gpu: A800,
            n_gpus,
            link_gbps: 200.0, // A800 NVLink (reduced vs A100's 300).
            link_latency_s: 5e-6,
            storage: StorageKind::Nvme,
            host_mem_gb: 2048.0,
        }
    }

    /// The microbenchmark box: RTX 3090s over PCIe.
    pub fn rtx3090_node(n_gpus: usize) -> Self {
        NodeSpec {
            gpu: RTX3090,
            n_gpus,
            link_gbps: 16.0,
            link_latency_s: 10e-6,
            storage: StorageKind::Nvme,
            host_mem_gb: 256.0,
        }
    }

    /// Ring all-reduce time for `bytes` across the TP group.
    pub fn allreduce_s(&self, bytes: f64) -> f64 {
        if self.n_gpus <= 1 {
            return 0.0;
        }
        let n = self.n_gpus as f64;
        // 2(n-1)/n of the data crosses each link, 2(n-1) latency hops.
        2.0 * (n - 1.0) / n * bytes / (self.link_gbps * 1e9) + 2.0 * (n - 1.0) * self.link_latency_s
    }

    /// Aggregate HBM capacity in bytes.
    pub fn total_hbm_bytes(&self) -> f64 {
        self.gpu.hbm_gb * 1e9 * self.n_gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasheet_orderings_hold() {
        // Spec structs are consts, but the orderings are datasheet claims
        // worth keeping as runtime checks readable in test output.
        let (a, r) = (A800, RTX3090);
        assert!(a.fp16_tflops > r.fp16_tflops);
        assert!(a.hbm_bw_gbps > r.hbm_bw_gbps);
        assert!(a.hbm_gb > r.hbm_gb);
    }

    #[test]
    fn allreduce_scales_with_bytes_and_links() {
        let node = NodeSpec::a800_node(4);
        let t1 = node.allreduce_s(1e6);
        let t2 = node.allreduce_s(1e8);
        assert!(t2 > t1);
        // Single GPU needs no collective.
        assert_eq!(NodeSpec::a800_node(1).allreduce_s(1e9), 0.0);
        // NVLink beats PCIe for the same payload.
        let pcie = NodeSpec::rtx3090_node(4).allreduce_s(1e8);
        let nvlink = node.allreduce_s(1e8);
        assert!(nvlink < pcie);
    }

    #[test]
    fn storage_tiers_are_ordered() {
        assert!(StorageKind::Nvme.read_gbps() >= StorageKind::Nfs.read_gbps());
        assert!(StorageKind::Nvme.latency_s() < StorageKind::Nfs.latency_s());
    }
}
