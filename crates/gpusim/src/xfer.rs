//! Data-movement timing: disk, host memory, and PCIe.

use crate::spec::{NodeSpec, StorageKind};

/// Where a payload currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// On disk (NVMe or NFS per the node spec).
    Disk,
    /// In host DRAM.
    Host,
    /// In GPU HBM.
    Device,
}

/// Time to read `bytes` from storage into host memory.
pub fn disk_to_host_s(storage: StorageKind, bytes: f64) -> f64 {
    storage.latency_s() + disk_channel_s(storage, bytes)
}

/// Solo seconds of disk-channel work for `bytes` (no latency head): the
/// unit a bandwidth-shared transfer timeline divides among concurrent
/// loads on the disk link.
pub fn disk_channel_s(storage: StorageKind, bytes: f64) -> f64 {
    bytes / (storage.read_gbps() * 1e9)
}

/// Solo seconds of PCIe-channel work for `bytes` (no setup head): the
/// unit a bandwidth-shared transfer timeline divides among concurrent
/// loads on the host→device link.
pub fn pcie_channel_s(node: &NodeSpec, bytes: f64) -> f64 {
    bytes / (node.gpu.pcie_gbps * 1e9)
}

/// Time to copy `bytes` from host memory to one GPU.
pub fn host_to_device_s(node: &NodeSpec, bytes: f64) -> f64 {
    20e-6 + pcie_channel_s(node, bytes)
}

/// Time to bring `bytes` from `from` to GPU memory (pipelining the two hops
/// at the slower bandwidth when starting from disk).
pub fn load_to_device_s(node: &NodeSpec, from: Tier, bytes: f64) -> f64 {
    match from {
        Tier::Device => 0.0,
        Tier::Host => host_to_device_s(node, bytes),
        Tier::Disk => {
            let disk_bw = node.storage.read_gbps() * 1e9;
            let pcie_bw = node.gpu.pcie_gbps * 1e9;
            // Staged copy is pipelined; the slower link dominates.
            node.storage.latency_s() + 20e-6 + bytes / disk_bw.min(pcie_bw)
        }
    }
}

/// Effect of the lossless stage on a disk load: fewer bytes cross the disk
/// link, decompression runs at `decomp_gbps` on the GPU (GDeflate-style).
///
/// Returns the end-to-end time for loading `raw_bytes` whose compressed
/// form is `compressed_bytes`.
pub fn load_compressed_s(
    node: &NodeSpec,
    raw_bytes: f64,
    compressed_bytes: f64,
    decomp_gbps: f64,
) -> f64 {
    let disk_bw = node.storage.read_gbps() * 1e9;
    let pcie_bw = node.gpu.pcie_gbps * 1e9;
    let io = node.storage.latency_s() + 20e-6 + compressed_bytes / disk_bw.min(pcie_bw);
    let decomp = raw_bytes / (decomp_gbps * 1e9);
    // I/O and GPU decompression pipeline; the slower stage dominates.
    io.max(decomp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    #[test]
    fn tiers_are_ordered_by_cost() {
        let node = NodeSpec::a800_node(4);
        let bytes = 1e9;
        let from_disk = load_to_device_s(&node, Tier::Disk, bytes);
        let from_host = load_to_device_s(&node, Tier::Host, bytes);
        let resident = load_to_device_s(&node, Tier::Device, bytes);
        assert!(from_disk > from_host);
        assert!(from_host > resident);
        assert_eq!(resident, 0.0);
    }

    #[test]
    fn compressed_load_wins_when_disk_is_slow() {
        // NFS-backed node: halving the bytes on the wire beats the
        // decompression cost (the paper's Step 4 rationale).
        let mut node = NodeSpec::a800_node(4);
        node.storage = StorageKind::Nfs;
        let raw = 10e9;
        let plain = load_to_device_s(&node, Tier::Disk, raw);
        let compressed = load_compressed_s(&node, raw, raw / 2.0, 60.0);
        assert!(compressed < plain, "{compressed} vs {plain}");
    }

    #[test]
    fn compressed_load_can_lose_when_decompression_dominates() {
        // Fast NVMe + slow decompressor: lossless is not worth it, exactly
        // the caveat the paper notes.
        let node = NodeSpec::a800_node(4);
        let raw = 10e9;
        let plain = load_to_device_s(&node, Tier::Disk, raw);
        let compressed = load_compressed_s(&node, raw, raw * 0.9, 2.0);
        assert!(compressed > plain, "{compressed} vs {plain}");
    }

    #[test]
    fn channel_work_decomposes_the_pipelined_disk_load() {
        // The pipelined disk→device path is the latency heads plus the
        // slower of the two channel-work terms — the decomposition the
        // swap timeline's bandwidth sharing operates on.
        let node = NodeSpec::a800_node(2);
        let bytes = 3e9;
        let want = node.storage.latency_s()
            + 20e-6
            + disk_channel_s(node.storage, bytes).max(pcie_channel_s(&node, bytes));
        let got = load_to_device_s(&node, Tier::Disk, bytes);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn transfer_scales_linearly() {
        let node = NodeSpec::rtx3090_node(1);
        let t1 = host_to_device_s(&node, 1e9);
        let t2 = host_to_device_s(&node, 2e9);
        assert!(t2 > t1 * 1.8 && t2 < t1 * 2.2);
    }
}
