//! Property-based tests for the transformer substrate.

use dz_model::transformer::{forward_full, forward_infer, test_config, KvCache, Params};
use dz_tensor::Rng;
use proptest::prelude::*;

fn arb_tokens(max_len: usize, vocab: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..vocab, 1..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn forward_is_finite_on_any_tokens(seed in any::<u64>(), ids in arb_tokens(20, 60)) {
        let cfg = test_config();
        let params = Params::init(cfg, &mut Rng::seeded(seed));
        let logits = forward_full(&params, &ids);
        prop_assert_eq!(logits.shape(), (ids.len(), cfg.vocab));
        prop_assert!(logits.all_finite());
    }

    #[test]
    fn kv_cache_matches_full_forward_any_split(seed in any::<u64>(), ids in arb_tokens(16, 60), split in 1usize..15) {
        let cfg = test_config();
        let params = Params::init(cfg, &mut Rng::seeded(seed));
        let split = split.min(ids.len());
        let full = forward_full(&params, &ids);
        let mut cache = KvCache::new(cfg.n_layers);
        let mut last = forward_infer(&params, &ids[..split], &mut cache);
        for t in split..ids.len() {
            last = forward_infer(&params, &ids[t..t + 1], &mut cache);
        }
        let reference = full.submatrix(ids.len() - 1, 0, 1, cfg.vocab);
        prop_assert!(last.max_abs_diff(&reference) < 1e-2,
            "cache diverged: {}", last.max_abs_diff(&reference));
    }

    #[test]
    fn delta_add_back_is_exact(seed in any::<u64>()) {
        let cfg = test_config();
        let base = Params::init(cfg, &mut Rng::seeded(seed));
        let tuned = Params::init(cfg, &mut Rng::seeded(seed ^ 0xFF));
        let delta = tuned.delta_from(&base);
        let mut rebuilt = base.clone();
        let dts = delta.tensors();
        for (r, d) in rebuilt.tensors_mut().into_iter().zip(dts) {
            r.add_assign(d);
        }
        let tts = tuned.tensors();
        for (a, b) in rebuilt.tensors().into_iter().zip(tts) {
            prop_assert!(a.max_abs_diff(b) < 1e-5);
        }
    }

    #[test]
    fn task_examples_always_evaluable(seed in any::<u64>()) {
        // Any sampled example fits the context and has in-vocab tokens, so
        // eval never panics.
        let cfg = test_config();
        let params = Params::init(cfg, &mut Rng::seeded(seed));
        let mut rng = Rng::seeded(seed ^ 1);
        for task in dz_model::tasks::all_tasks() {
            let ex = task.sample(&mut rng);
            let _ = dz_model::eval::example_correct(&params, &ex.tokens, ex.answer_len);
        }
    }
}
