//! GaLore: full-rank fine-tuning with low-rank gradient projection (§8).
//!
//! GaLore (Zhao et al., 2024) keeps optimizer state in a rank-`r` subspace:
//! each linear projection's gradient `G (m x n)` is projected to
//! `R = Pᵀ G (r x n)`, Adam runs on `R`, and the step `P · Adam(R)` is
//! applied to the *full* weight. Because the projector `P` is refreshed
//! periodically, the accumulated update is **full-rank** even though every
//! individual step is rank-`r` — which is exactly why LoRA-serving systems
//! cannot host GaLore-tuned models (§8) while DeltaZip serves them through
//! the ordinary ΔCompress delta path.
//!
//! Non-matrix parameters (embeddings, norms, biases, head) fall back to
//! plain Adam.

use crate::tasks::Task;
use crate::train::{clip_global_norm, grad_one, BatchItem, TrainConfig};
use crate::transformer::Params;
use dz_tensor::{Matrix, Rng};
use std::collections::HashMap;

/// GaLore hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GaloreConfig {
    /// Projection rank `r`.
    pub rank: usize,
    /// Optimizer steps between projector refreshes (`T` in the paper).
    pub refresh_every: usize,
}

impl GaloreConfig {
    /// The default recipe: rank `r`, refresh every 20 steps.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero.
    pub fn rank(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        GaloreConfig {
            rank,
            refresh_every: 20,
        }
    }
}

/// Orthonormalizes the columns of `m` in place (modified Gram-Schmidt).
///
/// Columns that become numerically zero (e.g. a vanished gradient) are
/// replaced with unit basis vectors so the projector stays full column
/// rank.
pub fn orthonormalize_columns(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    for c in 0..cols {
        for prev in 0..c {
            let mut dot = 0.0f32;
            for r in 0..rows {
                dot += m.get(r, c) * m.get(r, prev);
            }
            for r in 0..rows {
                let v = m.get(r, c) - dot * m.get(r, prev);
                m.set(r, c, v);
            }
        }
        let mut norm = 0.0f32;
        for r in 0..rows {
            norm += m.get(r, c) * m.get(r, c);
        }
        let norm = norm.sqrt();
        if norm > 1e-8 {
            for r in 0..rows {
                m.set(r, c, m.get(r, c) / norm);
            }
        } else {
            for r in 0..rows {
                m.set(r, c, if r == c % rows { 1.0 } else { 0.0 });
            }
        }
    }
}

/// Top-`r` left-singular-subspace estimate of `g` via two rounds of
/// subspace iteration warm-started from `seed` (or random).
fn refresh_projector(g: &Matrix, rank: usize, seed: Option<Matrix>, rng: &mut Rng) -> Matrix {
    let rows = g.rows();
    let mut p = match seed {
        Some(p) if p.shape() == (rows, rank) => p,
        _ => Matrix::randn(rows, rank, 1.0, rng),
    };
    for _ in 0..2 {
        // y = G (Gᵀ P): (m x n)(n x r) — never forms the m x m Gram matrix.
        let gt_p = g.matmul_tn(&p);
        p = g.matmul(&gt_p);
        orthonormalize_columns(&mut p);
    }
    p
}

struct MomentPair {
    m: Matrix,
    v: Matrix,
}

impl MomentPair {
    fn zeros(rows: usize, cols: usize) -> Self {
        MomentPair {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// Adam direction for gradient `g` (bias-corrected, beta 0.9/0.999).
    fn direction(&mut self, g: &Matrix, t: u64) -> Matrix {
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let mut out = Matrix::zeros(g.rows(), g.cols());
        for (((mw, vw), gw), ow) in self
            .m
            .data_mut()
            .iter_mut()
            .zip(self.v.data_mut().iter_mut())
            .zip(g.data())
            .zip(out.data_mut())
        {
            *mw = b1 * *mw + (1.0 - b1) * gw;
            *vw = b2 * *vw + (1.0 - b2) * gw * gw;
            *ow = (*mw / bc1) / ((*vw / bc2).sqrt() + eps);
        }
        out
    }
}

struct ProjectedState {
    p: Matrix,
    moments: MomentPair,
}

/// The GaLore optimizer over a full parameter set.
pub struct Galore {
    config: GaloreConfig,
    lr: f32,
    linear_names: std::collections::HashSet<String>,
    projected: HashMap<String, ProjectedState>,
    plain: HashMap<String, MomentPair>,
    t: u64,
    rng: Rng,
}

impl Galore {
    /// Creates optimizer state for `params`; every linear projection whose
    /// both dimensions exceed `rank` is trained in the projected subspace.
    pub fn new(params: &Params, config: GaloreConfig, lr: f32) -> Self {
        Galore {
            config,
            lr,
            linear_names: params.linear_layer_names().into_iter().collect(),
            projected: HashMap::new(),
            plain: HashMap::new(),
            t: 0,
            rng: Rng::seeded(0x6a10),
        }
    }

    fn is_projectable(&self, name: &str, shape: (usize, usize)) -> bool {
        shape.0 > self.config.rank && shape.1 > self.config.rank && self.linear_names.contains(name)
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut Params, grads: &Params) {
        self.t += 1;
        let t = self.t;
        let refresh = (t - 1).is_multiple_of(self.config.refresh_every as u64);
        let rank = self.config.rank;
        let lr = self.lr;
        let mut names: Vec<(String, (usize, usize))> = Vec::new();
        params.for_each(|name, m| names.push((name.to_string(), m.shape())));
        for (name, shape) in names {
            let g = grads.get(&name).expect("grad layout matches params");
            if self.is_projectable(&name, shape) {
                // Split borrows: the projector table and its RNG are
                // disjoint fields.
                let Galore { projected, rng, .. } = &mut *self;
                let state = projected
                    .entry(name.clone())
                    .or_insert_with(|| ProjectedState {
                        p: Matrix::zeros(0, 0),
                        moments: MomentPair::zeros(rank, shape.1),
                    });
                if refresh || state.p.is_empty() {
                    let seed = (!state.p.is_empty()).then(|| state.p.clone());
                    state.p = refresh_projector(g, rank, seed, rng);
                }
                // R = Pᵀ G (r x n); Adam in the subspace; step P · dir.
                let r = state.p.matmul_tn(g);
                let dir = state.moments.direction(&r, t);
                let full = state.p.matmul(&dir);
                let w = params.get_mut(&name).expect("param exists");
                w.add_scaled(&full, -lr);
            } else {
                let state = self
                    .plain
                    .entry(name.clone())
                    .or_insert_with(|| MomentPair::zeros(shape.0, shape.1));
                let dir = state.direction(g, t);
                let w = params.get_mut(&name).expect("param exists");
                w.add_scaled(&dir, -lr);
            }
        }
    }
}

/// Full-model fine-tuning with the GaLore optimizer; returns step losses.
pub fn finetune_galore(
    params: &mut Params,
    task: &dyn Task,
    cfg: TrainConfig,
    gcfg: GaloreConfig,
) -> Vec<f32> {
    let config = params.config;
    let mut rng = Rng::seeded(cfg.seed);
    let mut opt = Galore::new(params, gcfg, cfg.lr);
    let mut losses = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let mut grads = params.zeros_like();
        let mut loss_sum = 0.0f32;
        for _ in 0..cfg.batch {
            let ex = task.sample(&mut rng);
            let item = BatchItem::task(ex.tokens, ex.answer_len);
            loss_sum += grad_one(params, &config, &item, &mut grads);
        }
        grads.for_each_mut(|_, m| m.scale_assign(1.0 / cfg.batch as f32));
        clip_global_norm(&mut grads, cfg.clip);
        opt.step(params, &grads);
        losses.push(loss_sum / cfg.batch as f32);
    }
    losses
}

/// Residual fraction of the best rank-`r` approximation of `m`:
/// `||M - P Pᵀ M||_F / ||M||_F` with `P` from subspace iteration.
///
/// A LoRA-style update scores near zero at its own rank; a genuinely
/// full-rank update keeps a substantial residual.
pub fn low_rank_residual(m: &Matrix, rank: usize, rng: &mut Rng) -> f32 {
    let norm = m.frob_norm();
    if norm == 0.0 {
        return 0.0;
    }
    let mut p = refresh_projector(m, rank, None, rng);
    // Extra iterations for a tighter subspace estimate.
    for _ in 0..3 {
        let gt_p = m.matmul_tn(&p);
        p = m.matmul(&gt_p);
        orthonormalize_columns(&mut p);
    }
    let proj = p.matmul(&p.matmul_tn(m));
    m.sub(&proj).frob_norm() / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lora::{finetune_lora, LoraAdapter, LoraConfig};
    use crate::tasks::{Corpus, RecallTask};
    use crate::train::pretrain;
    use crate::transformer::test_config;

    fn learning_config() -> crate::transformer::ModelConfig {
        crate::transformer::ModelConfig {
            d_model: 32,
            n_heads: 4,
            d_ff: 64,
            ..test_config()
        }
    }

    #[test]
    fn orthonormalize_yields_orthonormal_columns() {
        let mut rng = Rng::seeded(1);
        let mut m = Matrix::randn(16, 4, 1.0, &mut rng);
        orthonormalize_columns(&mut m);
        let gram = m.transpose().matmul(&m);
        for r in 0..4 {
            for c in 0..4 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!(
                    (gram.get(r, c) - want).abs() < 1e-4,
                    "gram[{r},{c}] = {}",
                    gram.get(r, c)
                );
            }
        }
    }

    #[test]
    fn orthonormalize_survives_zero_columns() {
        let mut m = Matrix::zeros(6, 3);
        orthonormalize_columns(&mut m);
        // Columns replaced with unit vectors; norms are 1.
        for c in 0..3 {
            let norm: f32 = (0..6).map(|r| m.get(r, c) * m.get(r, c)).sum();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn low_rank_residual_separates_ranks() {
        let mut rng = Rng::seeded(2);
        // Exact rank-2 matrix: residual at rank 2 must vanish.
        let a = Matrix::randn(24, 2, 1.0, &mut rng);
        let b = Matrix::randn(2, 24, 1.0, &mut rng);
        let low = a.matmul(&b);
        assert!(low_rank_residual(&low, 2, &mut rng) < 1e-3);
        // A random dense matrix keeps substantial residual at rank 2.
        let dense = Matrix::randn(24, 24, 1.0, &mut rng);
        assert!(low_rank_residual(&dense, 2, &mut rng) > 0.3);
    }

    #[test]
    fn galore_learns_the_task() {
        let cfg = learning_config();
        let mut rng = Rng::seeded(3);
        let mut params = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut params, &corpus, TrainConfig::pretrain(300));
        let losses = finetune_galore(
            &mut params,
            &RecallTask,
            TrainConfig {
                steps: 400,
                batch: 8,
                lr: 3e-3,
                clip: 1.0,
                seed: 4,
            },
            GaloreConfig::rank(4),
        );
        let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(late < early, "galore loss {early} -> {late}");
        let acc = crate::eval::task_accuracy(&params, &RecallTask, 200, &mut Rng::seeded(5));
        assert!(acc > 0.6, "galore accuracy {acc}");
    }

    #[test]
    fn galore_updates_are_full_rank_unlike_lora() {
        // §8's serving argument: GaLore's accumulated delta is full-rank
        // (needs the delta path), LoRA's is exactly rank-r (adapter path).
        let cfg = learning_config();
        let mut rng = Rng::seeded(6);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(120));
        let rank = 2;
        let train_cfg = TrainConfig {
            steps: 120,
            batch: 4,
            lr: 3e-3,
            clip: 1.0,
            seed: 7,
        };

        let mut galore_model = base.clone();
        finetune_galore(&mut galore_model, &RecallTask, train_cfg, {
            GaloreConfig {
                rank,
                refresh_every: 10,
            }
        });
        let mut adapter = LoraAdapter::init(
            &base,
            LoraConfig {
                rank,
                alpha: 2.0 * rank as f32,
                targets: crate::lora::LoraTargets::AllLinear,
            },
            &mut rng,
        );
        finetune_lora(&base, &mut adapter, &RecallTask, train_cfg);
        let lora_model = adapter.merge(&base);

        let name = "layer0.wq";
        let galore_delta = galore_model
            .get(name)
            .expect("projection exists")
            .sub(base.get(name).expect("projection exists"));
        let lora_delta = lora_model
            .get(name)
            .expect("projection exists")
            .sub(base.get(name).expect("projection exists"));
        let galore_res = low_rank_residual(&galore_delta, rank, &mut rng);
        let lora_res = low_rank_residual(&lora_delta, rank, &mut rng);
        assert!(
            lora_res < 1e-3,
            "lora delta must be exactly rank-{rank}: residual {lora_res}"
        );
        assert!(
            galore_res > lora_res * 10.0 && galore_res > 0.05,
            "galore delta should be full-rank: residual {galore_res} vs lora {lora_res}"
        );
    }
}
