//! Synthetic downstream tasks of graded difficulty.
//!
//! These stand in for the paper's evaluation suites (Amazon Review
//! classification, Synthetic Palindrome Numbers, BoolQ-style Yes/No,
//! GSM8K-style math, NLI classification, SQL generation). Each task emits
//! token sequences whose final `answer_len` tokens are the label the model
//! must produce; accuracy is teacher-forced argmax over those positions.
//!
//! Difficulty is graded deliberately: the recall task is learnable by a
//! low-rank update (so LoRA ties FMT, like SQL generation in Figure 2 of
//! the paper), while carry arithmetic needs full-rank updates (so FMT beats
//! LoRA, like GSM8K/HumanEval).

use crate::vocab::{self, digit, word, BOS, EQUALS, NEG, NO, PLUS, POS, QUERY, SEP, YES};
use dz_tensor::Rng;

/// One training or evaluation example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// The full token sequence, answer included at the end.
    pub tokens: Vec<usize>,
    /// How many trailing tokens form the answer.
    pub answer_len: usize,
}

impl Example {
    /// The answer tokens.
    pub fn answer(&self) -> &[usize] {
        &self.tokens[self.tokens.len() - self.answer_len..]
    }

    /// The prompt (everything before the answer).
    pub fn prompt(&self) -> &[usize] {
        &self.tokens[..self.tokens.len() - self.answer_len]
    }
}

/// Rough difficulty class, used to mirror the paper's task grading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Difficulty {
    /// Learnable by low-rank adapters (LoRA ties FMT).
    Easy,
    /// In between.
    Medium,
    /// Needs full-rank updates (FMT beats LoRA).
    Hard,
}

/// A synthetic downstream task.
pub trait Task: Send + Sync {
    /// Short stable identifier (used in experiment tables).
    fn name(&self) -> &'static str;
    /// Difficulty class.
    fn difficulty(&self) -> Difficulty;
    /// Samples one example.
    fn sample(&self, rng: &mut Rng) -> Example;
}

/// Sentiment-style classification (stands in for Amazon Review).
///
/// Words `0..NUM_WORDS/2` carry positive sentiment, the rest negative; the
/// label is the majority sentiment of the six drawn words.
#[derive(Debug, Default, Clone, Copy)]
pub struct SentimentTask;

impl Task for SentimentTask {
    fn name(&self) -> &'static str {
        "sentiment"
    }

    fn difficulty(&self) -> Difficulty {
        Difficulty::Easy
    }

    fn sample(&self, rng: &mut Rng) -> Example {
        let half = vocab::NUM_WORDS / 2;
        let positive_label = rng.bernoulli(0.5);
        let mut tokens = vec![BOS];
        let mut pos_count = 0usize;
        // Draw 7 words (odd, so no ties) biased toward the label.
        for _ in 0..7 {
            let from_label = rng.bernoulli(0.75);
            let is_pos = if from_label {
                positive_label
            } else {
                !positive_label
            };
            let w = if is_pos {
                word(rng.below(half))
            } else {
                word(half + rng.below(vocab::NUM_WORDS - half))
            };
            if is_pos {
                pos_count += 1;
            }
            tokens.push(w);
        }
        tokens.push(SEP);
        tokens.push(if pos_count > 3 { POS } else { NEG });
        Example {
            tokens,
            answer_len: 1,
        }
    }
}

/// Palindrome detection over digit strings (the paper's own synthetic task
/// for Pythia).
#[derive(Debug, Default, Clone, Copy)]
pub struct PalindromeTask;

impl Task for PalindromeTask {
    fn name(&self) -> &'static str {
        "palindrome"
    }

    fn difficulty(&self) -> Difficulty {
        Difficulty::Medium
    }

    fn sample(&self, rng: &mut Rng) -> Example {
        let n = 4 + rng.below(3); // 4..=6 digits
        let make_palindrome = rng.bernoulli(0.5);
        let mut digits: Vec<usize> = (0..n).map(|_| rng.below(10)).collect();
        if make_palindrome {
            for i in 0..n / 2 {
                digits[n - 1 - i] = digits[i];
            }
        } else {
            // Ensure it is NOT a palindrome by breaking one mirrored pair.
            let i = rng.below(n / 2);
            let mirrored = digits[i];
            let mut other = rng.below(10);
            while other == mirrored {
                other = rng.below(10);
            }
            digits[n - 1 - i] = other;
        }
        let is_pal = digits.iter().eq(digits.iter().rev());
        let mut tokens = vec![BOS];
        tokens.extend(digits.iter().map(|&d| digit(d)));
        tokens.push(SEP);
        tokens.push(if is_pal { YES } else { NO });
        Example {
            tokens,
            answer_len: 1,
        }
    }
}

/// Membership query (stands in for BoolQ-style yes/no questions): is the
/// queried digit present in the list?
#[derive(Debug, Default, Clone, Copy)]
pub struct BoolQTask;

impl Task for BoolQTask {
    fn name(&self) -> &'static str {
        "boolq"
    }

    fn difficulty(&self) -> Difficulty {
        Difficulty::Easy
    }

    fn sample(&self, rng: &mut Rng) -> Example {
        let n = 6;
        let digits: Vec<usize> = (0..n).map(|_| rng.below(10)).collect();
        // Choose present/absent query with equal probability.
        let want_present = rng.bernoulli(0.5);
        let q = if want_present {
            digits[rng.below(n)]
        } else {
            // Find a digit not in the list (exists since n < 10).
            loop {
                let c = rng.below(10);
                if !digits.contains(&c) {
                    break c;
                }
            }
        };
        let present = digits.contains(&q);
        let mut tokens = vec![BOS];
        tokens.extend(digits.iter().map(|&d| digit(d)));
        tokens.push(QUERY);
        tokens.push(digit(q));
        tokens.push(SEP);
        tokens.push(if present { YES } else { NO });
        Example {
            tokens,
            answer_len: 1,
        }
    }
}

/// Addition with carries (stands in for GSM8K-style math).
///
/// `BOS a + b = c1 c0` where the two-token answer is the decimal rendering
/// of `a + b` (tens digit then units digit). Both answer tokens must be
/// right, and the carry structure makes this the hardest task in the suite —
/// the one where low-rank adaptation falls short.
#[derive(Debug, Default, Clone, Copy)]
pub struct MathTask;

impl Task for MathTask {
    fn name(&self) -> &'static str {
        "math"
    }

    fn difficulty(&self) -> Difficulty {
        Difficulty::Hard
    }

    fn sample(&self, rng: &mut Rng) -> Example {
        let a = rng.below(10);
        let b = rng.below(10);
        let c = a + b;
        let tokens = vec![
            BOS,
            digit(a),
            PLUS,
            digit(b),
            EQUALS,
            digit(c / 10),
            digit(c % 10),
        ];
        Example {
            tokens,
            answer_len: 2,
        }
    }
}

/// Latent-order comparison (stands in for NLI classification): given two
/// distinct words, does the first precede the second in a fixed hidden
/// order? The model must internalize the global order of all word tokens.
#[derive(Debug, Default, Clone, Copy)]
pub struct NliTask;

impl Task for NliTask {
    fn name(&self) -> &'static str {
        "nli"
    }

    fn difficulty(&self) -> Difficulty {
        Difficulty::Medium
    }

    fn sample(&self, rng: &mut Rng) -> Example {
        let a = rng.below(vocab::NUM_WORDS);
        let mut b = rng.below(vocab::NUM_WORDS);
        while b == a {
            b = rng.below(vocab::NUM_WORDS);
        }
        let tokens = vec![
            BOS,
            word(a),
            SEP,
            word(b),
            QUERY,
            if a < b { YES } else { NO },
        ];
        Example {
            tokens,
            answer_len: 1,
        }
    }
}

/// Structured field lookup (stands in for SQL generation / structured
/// tasks): `BOS column-word QUERY value` where the value is a fixed
/// deterministic function of the column token. The model memorizes the
/// schema — a pure token-association skill that low-rank updates handle
/// well, keeping this the suite's LoRA-friendly representative.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecallTask;

/// The hidden schema function for [`RecallTask`].
fn schema_value(column: usize) -> usize {
    (7 * column + 3) % 10
}

impl Task for RecallTask {
    fn name(&self) -> &'static str {
        "recall"
    }

    fn difficulty(&self) -> Difficulty {
        Difficulty::Easy
    }

    fn sample(&self, rng: &mut Rng) -> Example {
        let column = rng.below(vocab::NUM_WORDS);
        let tokens = vec![BOS, word(column), QUERY, digit(schema_value(column))];
        Example {
            tokens,
            answer_len: 1,
        }
    }
}

/// Returns the full task suite in a stable order.
pub fn all_tasks() -> Vec<Box<dyn Task>> {
    vec![
        Box::new(SentimentTask),
        Box::new(PalindromeTask),
        Box::new(BoolQTask),
        Box::new(MathTask),
        Box::new(NliTask),
        Box::new(RecallTask),
    ]
}

/// Looks a task up by name.
pub fn task_by_name(name: &str) -> Option<Box<dyn Task>> {
    all_tasks().into_iter().find(|t| t.name() == name)
}

/// The pre-training corpus sampler.
///
/// A mixture of (a) Markov-ish word sentences, (b) digit strings, and
/// (c) task-shaped sequences with *uniform random* answers. The base model
/// therefore learns token statistics and formats but not the answer
/// mappings, so base accuracy on each task sits near chance — matching the
/// "Base" rows in the paper's quality figures.
#[derive(Debug, Clone, Copy)]
pub struct Corpus {
    /// Maximum sequence length to emit.
    pub max_len: usize,
}

impl Corpus {
    /// Creates a corpus bounded by the model's context length.
    pub fn new(max_len: usize) -> Self {
        assert!(max_len >= 12, "corpus needs room for task formats");
        Corpus { max_len }
    }

    /// Samples one pre-training sequence.
    pub fn sample(&self, rng: &mut Rng) -> Vec<usize> {
        match rng.below(4) {
            0 => self.word_sentence(rng),
            1 => self.digit_string(rng),
            _ => self.format_like(rng),
        }
    }

    fn word_sentence(&self, rng: &mut Rng) -> Vec<usize> {
        // First-order chain: each word prefers its successors; gives the
        // model non-trivial statistics to learn.
        let len = 6 + rng.below(self.max_len - 7);
        let mut toks = vec![BOS];
        let mut cur = rng.below(vocab::NUM_WORDS);
        for _ in 0..len {
            toks.push(word(cur));
            cur = if rng.bernoulli(0.7) {
                (cur + 1 + rng.below(3)) % vocab::NUM_WORDS
            } else {
                rng.below(vocab::NUM_WORDS)
            };
        }
        toks
    }

    fn digit_string(&self, rng: &mut Rng) -> Vec<usize> {
        let len = 4 + rng.below(self.max_len - 5);
        let mut toks = vec![BOS];
        for _ in 0..len {
            toks.push(digit(rng.below(10)));
        }
        toks
    }

    fn format_like(&self, rng: &mut Rng) -> Vec<usize> {
        // A task-format sequence whose answer is replaced by a random label,
        // teaching format but not mapping.
        let tasks = all_tasks();
        let t = &tasks[rng.below(tasks.len())];
        let mut ex = t.sample(rng);
        let n = ex.tokens.len();
        for i in (n - ex.answer_len)..n {
            ex.tokens[i] = match ex.tokens[i] {
                YES | NO => {
                    if rng.bernoulli(0.5) {
                        YES
                    } else {
                        NO
                    }
                }
                POS | NEG => {
                    if rng.bernoulli(0.5) {
                        POS
                    } else {
                        NEG
                    }
                }
                _ => digit(rng.below(10)),
            };
        }
        ex.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_task(task: &dyn Task, max_len: usize) {
        let mut rng = Rng::seeded(99);
        for _ in 0..200 {
            let ex = task.sample(&mut rng);
            assert!(ex.tokens.len() <= max_len, "{} too long", task.name());
            assert!(ex.answer_len >= 1 && ex.answer_len < ex.tokens.len());
            assert_eq!(ex.tokens[0], BOS);
            assert!(ex.tokens.iter().all(|&t| t < vocab::MIN_VOCAB));
        }
    }

    #[test]
    fn all_tasks_emit_wellformed_examples() {
        for t in all_tasks() {
            check_task(t.as_ref(), 24);
        }
    }

    #[test]
    fn labels_are_balanced() {
        let mut rng = Rng::seeded(7);
        for t in all_tasks() {
            if t.answer_is_binary() {
                let mut firsts = std::collections::HashMap::new();
                for _ in 0..2000 {
                    let ex = t.sample(&mut rng);
                    *firsts.entry(ex.answer()[0]).or_insert(0usize) += 1;
                }
                for (&label, &count) in &firsts {
                    let frac = count as f64 / 2000.0;
                    assert!(
                        frac > 0.35 && frac < 0.65,
                        "{}: label {} has frac {}",
                        t.name(),
                        label,
                        frac
                    );
                }
            }
        }
    }

    #[test]
    fn palindrome_labels_are_correct() {
        let mut rng = Rng::seeded(1);
        for _ in 0..500 {
            let ex = PalindromeTask.sample(&mut rng);
            let digits: Vec<usize> = ex.tokens[1..ex.tokens.len() - 2].to_vec();
            let is_pal = digits.iter().eq(digits.iter().rev());
            let label = *ex.answer().first().unwrap();
            assert_eq!(label, if is_pal { YES } else { NO });
        }
    }

    #[test]
    fn math_answers_are_correct_sums() {
        let mut rng = Rng::seeded(2);
        for _ in 0..500 {
            let ex = MathTask.sample(&mut rng);
            let d = |i: usize| ex.tokens[i] - vocab::DIGIT0;
            assert_eq!(d(5) * 10 + d(6), d(1) + d(3));
            assert_eq!(ex.answer_len, 2);
        }
    }

    #[test]
    fn recall_answers_follow_schema() {
        let mut rng = Rng::seeded(3);
        for _ in 0..500 {
            let ex = RecallTask.sample(&mut rng);
            let column = ex.tokens[1] - vocab::WORD0;
            assert_eq!(ex.tokens[3] - vocab::DIGIT0, schema_value(column));
        }
    }

    #[test]
    fn recall_is_deterministic_per_input() {
        // The same column must always map to the same value, and the map
        // must not be constant.
        assert_eq!(schema_value(4), schema_value(4));
        assert_ne!(schema_value(0), schema_value(1));
    }

    #[test]
    fn corpus_sequences_fit_context() {
        let corpus = Corpus::new(24);
        let mut rng = Rng::seeded(4);
        for _ in 0..500 {
            let s = corpus.sample(&mut rng);
            assert!(s.len() <= 24, "len {}", s.len());
            assert!(s.len() >= 2);
            assert!(s.iter().all(|&t| t < vocab::MIN_VOCAB));
        }
    }

    #[test]
    fn task_lookup_by_name() {
        assert!(task_by_name("math").is_some());
        assert!(task_by_name("nope").is_none());
    }

    impl dyn Task {
        fn answer_is_binary(&self) -> bool {
            matches!(self.name(), "sentiment" | "palindrome" | "boolq" | "nli")
        }
    }
}
