//! A minimal tape-based reverse-mode autograd engine.
//!
//! The tape records a DAG of matrix-valued nodes. Each operation stores the
//! forward value plus whatever it needs for its backward pass (e.g. softmax
//! attention probabilities). [`Tape::backward`] walks the nodes in reverse
//! creation order, which is a valid topological order because operands must
//! exist before the operations that consume them.
//!
//! The op set is exactly what a pre-LN GPT block needs: matmul, bias add,
//! residual add, GELU, LayerNorm, fused multi-head causal self-attention,
//! embedding gather, scaling, and a fused masked softmax cross-entropy loss.
//! Every backward implementation is validated against central finite
//! differences in this module's tests.

use dz_tensor::Matrix;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

enum Op {
    Leaf,
    /// `C = A * B`.
    MatMul(NodeId, NodeId),
    /// `C = A + B` (same shape).
    Add(NodeId, NodeId),
    /// `C = A + bias`, bias is `1 x cols` broadcast over rows.
    AddBias(NodeId, NodeId),
    /// `C = alpha * A`.
    Scale(NodeId, f32),
    /// Elementwise GELU (tanh approximation).
    Gelu(NodeId),
    /// Row-wise LayerNorm with learned gain/bias (`1 x cols` each).
    LayerNorm {
        x: NodeId,
        gain: NodeId,
        bias: NodeId,
        /// Cached `(mean, inv_std)` per row.
        row_stats: Vec<(f32, f32)>,
        /// Cached normalized input (pre gain/bias).
        normed: Matrix,
    },
    /// Fused multi-head causal self-attention over `(T, d)` inputs.
    Mha {
        q: NodeId,
        k: NodeId,
        v: NodeId,
        heads: usize,
        /// Cached per-head attention probabilities, each `(T, T)`.
        probs: Vec<Matrix>,
    },
    /// Row gather from an embedding table.
    Gather {
        table: NodeId,
        ids: Vec<usize>,
    },
    /// Mean masked softmax cross-entropy; output is `1 x 1`.
    CrossEntropy {
        logits: NodeId,
        targets: Vec<usize>,
        weights: Vec<f32>,
        /// Cached row softmax of the logits.
        probs: Matrix,
        /// Cached sum of weights.
        weight_sum: f32,
    },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    /// Whether backward should compute/accumulate a gradient here. Ops
    /// inherit `true` if any operand needs one; frozen leaves opt out.
    needs_grad: bool,
}

/// The autograd tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

fn gelu_scalar(x: f32) -> f32 {
    // Tanh approximation, as used by GPT-style models.
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044_715 * x * x * x;
    let t = (C * (x + x3)).tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Row-wise softmax used by the loss (numerically stabilized).
fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let out_row = out.row_mut(r);
        for (o, &x) in out_row.iter_mut().zip(row.iter()) {
            let e = (x - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in out_row.iter_mut() {
            *o *= inv;
        }
    }
    out
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        let needs_grad = match &op {
            Op::Leaf => true,
            Op::MatMul(a, b) | Op::Add(a, b) | Op::AddBias(a, b) => {
                self.nodes[a.0].needs_grad || self.nodes[b.0].needs_grad
            }
            Op::Scale(a, _) | Op::Gelu(a) => self.nodes[a.0].needs_grad,
            Op::LayerNorm { x, gain, bias, .. } => {
                self.nodes[x.0].needs_grad
                    || self.nodes[gain.0].needs_grad
                    || self.nodes[bias.0].needs_grad
            }
            Op::Mha { q, k, v, .. } => {
                self.nodes[q.0].needs_grad
                    || self.nodes[k.0].needs_grad
                    || self.nodes[v.0].needs_grad
            }
            Op::Gather { table, .. } => self.nodes[table.0].needs_grad,
            Op::CrossEntropy { logits, .. } => self.nodes[logits.0].needs_grad,
        };
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            needs_grad,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Registers an input (parameter or data) node.
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// Registers a frozen input: backward skips its gradient entirely.
    ///
    /// Use for pretrained weights during adapter training; the saving is
    /// substantial because weight gradients dominate backward cost.
    pub fn leaf_no_grad(&mut self, value: Matrix) -> NodeId {
        let id = self.push(value, Op::Leaf);
        self.nodes[id.0].needs_grad = false;
        id
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Gradient of the loss with respect to a node, if backward reached it.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Matrix product node.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise addition node.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Broadcast bias addition node (`bias` is `1 x cols`).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a single row of matching width.
    pub fn add_bias(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let (bav, bbv) = (self.value(a), self.value(bias));
        assert_eq!(bbv.rows(), 1, "bias must be a row vector");
        assert_eq!(bbv.cols(), bav.cols(), "bias width mismatch");
        let mut v = bav.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            for (x, b) in row.iter_mut().zip(bbv.row(0).iter()) {
                *x += b;
            }
        }
        self.push(v, Op::AddBias(a, bias))
    }

    /// Scalar multiple node.
    pub fn scale(&mut self, a: NodeId, alpha: f32) -> NodeId {
        let v = self.value(a).scale(alpha);
        self.push(v, Op::Scale(a, alpha))
    }

    /// GELU activation node.
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(gelu_scalar);
        self.push(v, Op::Gelu(a))
    }

    /// Row-wise LayerNorm node with learned gain and bias.
    pub fn layer_norm(&mut self, x: NodeId, gain: NodeId, bias: NodeId) -> NodeId {
        const EPS: f32 = 1e-5;
        let xv = self.value(x);
        let g = self.value(gain);
        let b = self.value(bias);
        assert_eq!(g.rows(), 1, "gain must be a row vector");
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        let (rows, cols) = xv.shape();
        let mut normed = Matrix::zeros(rows, cols);
        let mut out = Matrix::zeros(rows, cols);
        let mut row_stats = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = xv.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + EPS).sqrt();
            row_stats.push((mean, inv_std));
            for (c, &v) in row.iter().enumerate() {
                let n = (v - mean) * inv_std;
                normed.set(r, c, n);
                out.set(r, c, n * g.get(0, c) + b.get(0, c));
            }
        }
        self.push(
            out,
            Op::LayerNorm {
                x,
                gain,
                bias,
                row_stats,
                normed,
            },
        )
    }

    /// Fused multi-head causal self-attention node.
    ///
    /// `q`, `k`, `v` are `(T, d)` with `d % heads == 0`. Scores use the
    /// `1/sqrt(d_head)` scaling and a strict causal mask.
    pub fn mha_causal(&mut self, q: NodeId, k: NodeId, v: NodeId, heads: usize) -> NodeId {
        let (t, d) = self.value(q).shape();
        assert_eq!(self.value(k).shape(), (t, d), "k shape mismatch");
        assert_eq!(self.value(v).shape(), (t, d), "v shape mismatch");
        assert!(
            heads > 0 && d % heads == 0,
            "d={d} not divisible by heads={heads}"
        );
        let dh = d / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = Matrix::zeros(t, d);
        let mut probs = Vec::with_capacity(heads);
        for h in 0..heads {
            let qh = slice_cols(self.value(q), h * dh, dh);
            let kh = slice_cols(self.value(k), h * dh, dh);
            let vh = slice_cols(self.value(v), h * dh, dh);
            // Scores with causal mask, then row softmax.
            let mut scores = qh.matmul_nt(&kh);
            scores.scale_assign(scale);
            for i in 0..t {
                for j in (i + 1)..t {
                    scores.set(i, j, f32::NEG_INFINITY);
                }
            }
            let a = softmax_rows(&scores);
            let oh = a.matmul(&vh);
            write_cols(&mut out, &oh, h * dh);
            probs.push(a);
        }
        self.push(
            out,
            Op::Mha {
                q,
                k,
                v,
                heads,
                probs,
            },
        )
    }

    /// Embedding gather node: row `i` of the output is `table[ids[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn gather(&mut self, table: NodeId, ids: &[usize]) -> NodeId {
        let tv = self.value(table);
        let mut out = Matrix::zeros(ids.len(), tv.cols());
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < tv.rows(), "gather id {id} out of range");
            out.row_mut(r).copy_from_slice(tv.row(id));
        }
        self.push(
            out,
            Op::Gather {
                table,
                ids: ids.to_vec(),
            },
        )
    }

    /// Fused masked mean cross-entropy loss node (`1 x 1` output).
    ///
    /// `weights[i]` scales position `i`'s contribution; positions with zero
    /// weight are ignored. The loss is `sum_i w_i * nll_i / sum_i w_i`.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or all weights are zero.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[usize], weights: &[f32]) -> NodeId {
        let lv = self.value(logits);
        assert_eq!(lv.rows(), targets.len(), "target length mismatch");
        assert_eq!(lv.rows(), weights.len(), "weight length mismatch");
        let probs = softmax_rows(lv);
        let weight_sum: f32 = weights.iter().sum();
        assert!(
            weight_sum > 0.0,
            "cross_entropy needs at least one weighted position"
        );
        let mut loss = 0.0f64;
        for (r, (&t, &w)) in targets.iter().zip(weights.iter()).enumerate() {
            if w == 0.0 {
                continue;
            }
            assert!(t < lv.cols(), "target {t} out of vocab");
            let p = probs.get(r, t).max(1e-12);
            loss -= (w as f64) * (p as f64).ln();
        }
        let v = Matrix::from_vec(1, 1, vec![(loss / weight_sum as f64) as f32]);
        self.push(
            v,
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                weights: weights.to_vec(),
                probs,
                weight_sum,
            },
        )
    }

    /// Runs the backward pass from `root`, which must be a `1 x 1` node.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not scalar-shaped.
    pub fn backward(&mut self, root: NodeId) {
        assert_eq!(
            self.nodes[root.0].value.shape(),
            (1, 1),
            "backward root must be scalar"
        );
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[root.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));
        for i in (0..=root.0).rev() {
            let Some(grad_out) = self.nodes[i].grad.take() else {
                continue;
            };
            // Take op temporarily to appease the borrow checker, then put it back.
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            self.apply_backward(&op, &grad_out);
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(grad_out);
        }
    }

    fn accumulate(&mut self, id: NodeId, g: Matrix) {
        if !self.nodes[id.0].needs_grad {
            return;
        }
        match &mut self.nodes[id.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    fn wants(&self, id: NodeId) -> bool {
        self.nodes[id.0].needs_grad
    }

    fn apply_backward(&mut self, op: &Op, grad_out: &Matrix) {
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                if self.wants(*a) {
                    let ga = grad_out.matmul_nt(self.value(*b));
                    self.accumulate(*a, ga);
                }
                if self.wants(*b) {
                    let gb = self.value(*a).matmul_tn(grad_out);
                    self.accumulate(*b, gb);
                }
            }
            Op::Add(a, b) => {
                self.accumulate(*a, grad_out.clone());
                self.accumulate(*b, grad_out.clone());
            }
            Op::AddBias(a, bias) => {
                self.accumulate(*a, grad_out.clone());
                let mut gb = Matrix::zeros(1, grad_out.cols());
                for r in 0..grad_out.rows() {
                    for (c, g) in grad_out.row(r).iter().enumerate() {
                        gb.set(0, c, gb.get(0, c) + g);
                    }
                }
                self.accumulate(*bias, gb);
            }
            Op::Scale(a, alpha) => {
                self.accumulate(*a, grad_out.scale(*alpha));
            }
            Op::Gelu(a) => {
                let x = self.value(*a);
                let mut g = grad_out.clone();
                for (gi, xi) in g.data_mut().iter_mut().zip(x.data().iter()) {
                    *gi *= gelu_grad_scalar(*xi);
                }
                self.accumulate(*a, g);
            }
            Op::LayerNorm {
                x,
                gain,
                bias,
                row_stats,
                normed,
            } => {
                let g = self.value(*gain).clone();
                let (rows, cols) = normed.shape();
                let mut gx = Matrix::zeros(rows, cols);
                let mut ggain = Matrix::zeros(1, cols);
                let mut gbias = Matrix::zeros(1, cols);
                for (r, &(_, inv_std)) in row_stats.iter().enumerate() {
                    // dnorm = grad_out * gain.
                    let mut dnorm = vec![0.0f32; cols];
                    let go_row = grad_out.row(r);
                    let n_row = normed.row(r);
                    for c in 0..cols {
                        dnorm[c] = go_row[c] * g.get(0, c);
                        ggain.set(0, c, ggain.get(0, c) + go_row[c] * n_row[c]);
                        gbias.set(0, c, gbias.get(0, c) + go_row[c]);
                    }
                    let mean_dnorm: f32 = dnorm.iter().sum::<f32>() / cols as f32;
                    let mean_dnorm_n: f32 = dnorm
                        .iter()
                        .zip(n_row.iter())
                        .map(|(d, n)| d * n)
                        .sum::<f32>()
                        / cols as f32;
                    let gx_row = gx.row_mut(r);
                    for c in 0..cols {
                        gx_row[c] = inv_std * (dnorm[c] - mean_dnorm - n_row[c] * mean_dnorm_n);
                    }
                }
                self.accumulate(*x, gx);
                self.accumulate(*gain, ggain);
                self.accumulate(*bias, gbias);
            }
            Op::Mha {
                q,
                k,
                v,
                heads,
                probs,
            } => {
                let (t, d) = self.value(*q).shape();
                let dh = d / heads;
                let scale = 1.0 / (dh as f32).sqrt();
                let mut gq = Matrix::zeros(t, d);
                let mut gk = Matrix::zeros(t, d);
                let mut gv = Matrix::zeros(t, d);
                for (h, a) in probs.iter().enumerate() {
                    let qh = slice_cols(self.value(*q), h * dh, dh);
                    let kh = slice_cols(self.value(*k), h * dh, dh);
                    let vh = slice_cols(self.value(*v), h * dh, dh);
                    let go_h = slice_cols(grad_out, h * dh, dh);
                    // dV = A^T dO.
                    let gvh = a.matmul_tn(&go_h);
                    // dA = dO V^T.
                    let da = go_h.matmul_nt(&vh);
                    // dS = A .* (dA - rowsum(dA .* A)).
                    let mut ds = Matrix::zeros(t, t);
                    for i in 0..t {
                        let a_row = a.row(i);
                        let da_row = da.row(i);
                        let dot: f32 = a_row.iter().zip(da_row.iter()).map(|(x, y)| x * y).sum();
                        let ds_row = ds.row_mut(i);
                        for j in 0..t {
                            ds_row[j] = a_row[j] * (da_row[j] - dot);
                        }
                    }
                    // dQ = dS K * scale ; dK = dS^T Q * scale.
                    let mut gqh = ds.matmul(&kh);
                    gqh.scale_assign(scale);
                    let mut gkh = ds.matmul_tn(&qh);
                    gkh.scale_assign(scale);
                    write_cols_add(&mut gq, &gqh, h * dh);
                    write_cols_add(&mut gk, &gkh, h * dh);
                    write_cols_add(&mut gv, &gvh, h * dh);
                }
                self.accumulate(*q, gq);
                self.accumulate(*k, gk);
                self.accumulate(*v, gv);
            }
            Op::Gather { table, ids } => {
                if !self.wants(*table) {
                    return;
                }
                let cols = grad_out.cols();
                let mut gt = Matrix::zeros(self.value(*table).rows(), cols);
                for (r, &id) in ids.iter().enumerate() {
                    let src = grad_out.row(r);
                    let dst = gt.row_mut(id);
                    for (d, s) in dst.iter_mut().zip(src.iter()) {
                        *d += s;
                    }
                }
                self.accumulate(*table, gt);
            }
            Op::CrossEntropy {
                logits,
                targets,
                weights,
                probs,
                weight_sum,
            } => {
                let upstream = grad_out.get(0, 0);
                let mut gl = probs.clone();
                for r in 0..gl.rows() {
                    let w = weights[r];
                    if w == 0.0 {
                        for x in gl.row_mut(r) {
                            *x = 0.0;
                        }
                        continue;
                    }
                    let t = targets[r];
                    let coeff = upstream * w / *weight_sum;
                    let row = gl.row_mut(r);
                    row[t] -= 1.0;
                    for x in row.iter_mut() {
                        *x *= coeff;
                    }
                }
                self.accumulate(*logits, gl);
            }
        }
    }
}

/// Copies `width` columns starting at `c0` out of `m`.
fn slice_cols(m: &Matrix, c0: usize, width: usize) -> Matrix {
    m.submatrix(0, c0, m.rows(), width)
}

/// Writes `block` into `m` at column offset `c0` (overwrite).
fn write_cols(m: &mut Matrix, block: &Matrix, c0: usize) {
    m.set_submatrix(0, c0, block);
}

/// Adds `block` into `m` at column offset `c0`.
fn write_cols_add(m: &mut Matrix, block: &Matrix, c0: usize) {
    for r in 0..block.rows() {
        for c in 0..block.cols() {
            let cur = m.get(r, c0 + c);
            m.set(r, c0 + c, cur + block.get(r, c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dz_tensor::Rng;

    /// Central-difference gradient of `f` at `input`, where `f` evaluates a
    /// fresh graph and returns the scalar loss.
    fn numeric_grad(f: &dyn Fn(&Matrix) -> f32, input: &Matrix, eps: f32) -> Matrix {
        let mut g = Matrix::zeros(input.rows(), input.cols());
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let mut plus = input.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = input.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                g.set(r, c, (f(&plus) - f(&minus)) / (2.0 * eps));
            }
        }
        g
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32, what: &str) {
        let d = a.max_abs_diff(b);
        assert!(d < tol, "{what}: max diff {d} (tol {tol})");
    }

    #[test]
    fn matmul_backward_matches_fd() {
        let mut rng = Rng::seeded(1);
        let a0 = Matrix::randn(3, 4, 0.5, &mut rng);
        let b0 = Matrix::randn(4, 2, 0.5, &mut rng);
        let t0 = Matrix::randn(3, 2, 0.5, &mut rng);

        let loss_of = |a: &Matrix, b: &Matrix| -> f32 {
            // Scalar loss: CE of (A B) against fixed targets is overkill;
            // use sum of squares via hadamard with itself through CE-free path.
            // Simplest scalar: CE over logits.
            let mut tape = Tape::new();
            let an = tape.leaf(a.clone());
            let bn = tape.leaf(b.clone());
            let c = tape.matmul(an, bn);
            let _ = &t0;
            let l = tape.cross_entropy(c, &[0, 1, 0], &[1.0, 1.0, 1.0]);
            tape.value(l).get(0, 0)
        };

        let mut tape = Tape::new();
        let an = tape.leaf(a0.clone());
        let bn = tape.leaf(b0.clone());
        let c = tape.matmul(an, bn);
        let l = tape.cross_entropy(c, &[0, 1, 0], &[1.0, 1.0, 1.0]);
        tape.backward(l);

        let ga = numeric_grad(&|a| loss_of(a, &b0), &a0, 1e-3);
        let gb = numeric_grad(&|b| loss_of(&a0, b), &b0, 1e-3);
        assert_close(tape.grad(an).unwrap(), &ga, 2e-2, "dA");
        assert_close(tape.grad(bn).unwrap(), &gb, 2e-2, "dB");
    }

    #[test]
    fn gelu_backward_matches_fd() {
        let mut rng = Rng::seeded(2);
        let x0 = Matrix::randn(2, 5, 1.0, &mut rng);
        let loss_of = |x: &Matrix| -> f32 {
            let mut tape = Tape::new();
            let xn = tape.leaf(x.clone());
            let g = tape.gelu(xn);
            let l = tape.cross_entropy(g, &[1, 3], &[1.0, 1.0]);
            tape.value(l).get(0, 0)
        };
        let mut tape = Tape::new();
        let xn = tape.leaf(x0.clone());
        let g = tape.gelu(xn);
        let l = tape.cross_entropy(g, &[1, 3], &[1.0, 1.0]);
        tape.backward(l);
        let gx = numeric_grad(&loss_of, &x0, 1e-3);
        assert_close(tape.grad(xn).unwrap(), &gx, 2e-2, "dX gelu");
    }

    #[test]
    fn layernorm_backward_matches_fd() {
        let mut rng = Rng::seeded(3);
        let x0 = Matrix::randn(3, 6, 1.0, &mut rng);
        let g0 = Matrix::randn(1, 6, 0.3, &mut rng).map(|v| v + 1.0);
        let b0 = Matrix::randn(1, 6, 0.3, &mut rng);
        let loss_of = |x: &Matrix, g: &Matrix, b: &Matrix| -> f32 {
            let mut tape = Tape::new();
            let xn = tape.leaf(x.clone());
            let gn = tape.leaf(g.clone());
            let bn = tape.leaf(b.clone());
            let y = tape.layer_norm(xn, gn, bn);
            let l = tape.cross_entropy(y, &[0, 2, 4], &[1.0, 0.5, 1.0]);
            tape.value(l).get(0, 0)
        };
        let mut tape = Tape::new();
        let xn = tape.leaf(x0.clone());
        let gn = tape.leaf(g0.clone());
        let bn = tape.leaf(b0.clone());
        let y = tape.layer_norm(xn, gn, bn);
        let l = tape.cross_entropy(y, &[0, 2, 4], &[1.0, 0.5, 1.0]);
        tape.backward(l);
        assert_close(
            tape.grad(xn).unwrap(),
            &numeric_grad(&|x| loss_of(x, &g0, &b0), &x0, 1e-3),
            3e-2,
            "dX ln",
        );
        assert_close(
            tape.grad(gn).unwrap(),
            &numeric_grad(&|g| loss_of(&x0, g, &b0), &g0, 1e-3),
            3e-2,
            "dGain ln",
        );
        assert_close(
            tape.grad(bn).unwrap(),
            &numeric_grad(&|b| loss_of(&x0, &g0, b), &b0, 1e-3),
            3e-2,
            "dBias ln",
        );
    }

    #[test]
    fn mha_backward_matches_fd() {
        let mut rng = Rng::seeded(4);
        let t = 4;
        let d = 6;
        let q0 = Matrix::randn(t, d, 0.7, &mut rng);
        let k0 = Matrix::randn(t, d, 0.7, &mut rng);
        let v0 = Matrix::randn(t, d, 0.7, &mut rng);
        let targets = [1, 0, 3, 2];
        let weights = [1.0, 1.0, 1.0, 1.0];
        let loss_of = |q: &Matrix, k: &Matrix, v: &Matrix| -> f32 {
            let mut tape = Tape::new();
            let qn = tape.leaf(q.clone());
            let kn = tape.leaf(k.clone());
            let vn = tape.leaf(v.clone());
            let o = tape.mha_causal(qn, kn, vn, 2);
            let l = tape.cross_entropy(o, &targets, &weights);
            tape.value(l).get(0, 0)
        };
        let mut tape = Tape::new();
        let qn = tape.leaf(q0.clone());
        let kn = tape.leaf(k0.clone());
        let vn = tape.leaf(v0.clone());
        let o = tape.mha_causal(qn, kn, vn, 2);
        let l = tape.cross_entropy(o, &targets, &weights);
        tape.backward(l);
        assert_close(
            tape.grad(qn).unwrap(),
            &numeric_grad(&|q| loss_of(q, &k0, &v0), &q0, 1e-3),
            3e-2,
            "dQ",
        );
        assert_close(
            tape.grad(kn).unwrap(),
            &numeric_grad(&|k| loss_of(&q0, k, &v0), &k0, 1e-3),
            3e-2,
            "dK",
        );
        assert_close(
            tape.grad(vn).unwrap(),
            &numeric_grad(&|v| loss_of(&q0, &k0, v), &v0, 1e-3),
            3e-2,
            "dV",
        );
    }

    #[test]
    fn gather_backward_scatters() {
        let mut rng = Rng::seeded(5);
        let table0 = Matrix::randn(5, 3, 1.0, &mut rng);
        let ids = [1usize, 1, 4];
        let loss_of = |tab: &Matrix| -> f32 {
            let mut tape = Tape::new();
            let tn = tape.leaf(tab.clone());
            let g = tape.gather(tn, &ids);
            let l = tape.cross_entropy(g, &[0, 1, 2], &[1.0, 1.0, 1.0]);
            tape.value(l).get(0, 0)
        };
        let mut tape = Tape::new();
        let tn = tape.leaf(table0.clone());
        let g = tape.gather(tn, &ids);
        let l = tape.cross_entropy(g, &[0, 1, 2], &[1.0, 1.0, 1.0]);
        tape.backward(l);
        assert_close(
            tape.grad(tn).unwrap(),
            &numeric_grad(&loss_of, &table0, 1e-3),
            2e-2,
            "dTable",
        );
        // Rows never gathered must have zero grad.
        let gt = tape.grad(tn).unwrap();
        assert!(gt.row(0).iter().all(|&v| v == 0.0));
        assert!(gt.row(2).iter().all(|&v| v == 0.0));
        assert!(gt.row(3).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cross_entropy_masked_positions_get_zero_grad() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.5, 0.2, 0.1]]);
        let mut tape = Tape::new();
        let ln = tape.leaf(logits);
        let l = tape.cross_entropy(ln, &[2, 0], &[1.0, 0.0]);
        tape.backward(l);
        let g = tape.grad(ln).unwrap();
        assert!(g.row(1).iter().all(|&v| v == 0.0));
        assert!(g.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn cross_entropy_value_matches_manual() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let mut tape = Tape::new();
        let ln = tape.leaf(logits);
        let l = tape.cross_entropy(ln, &[0], &[1.0]);
        let expect = (2.0f32).ln();
        assert!((tape.value(l).get(0, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn residual_and_bias_composition() {
        // A small composed graph exercising Add, AddBias and Scale.
        let mut rng = Rng::seeded(6);
        let x0 = Matrix::randn(2, 3, 1.0, &mut rng);
        let b0 = Matrix::randn(1, 3, 1.0, &mut rng);
        let loss_of = |x: &Matrix, b: &Matrix| -> f32 {
            let mut tape = Tape::new();
            let xn = tape.leaf(x.clone());
            let bn = tape.leaf(b.clone());
            let y = tape.add_bias(xn, bn);
            let y2 = tape.scale(y, 0.5);
            let y3 = tape.add(y2, xn);
            let l = tape.cross_entropy(y3, &[0, 1], &[1.0, 1.0]);
            tape.value(l).get(0, 0)
        };
        let mut tape = Tape::new();
        let xn = tape.leaf(x0.clone());
        let bn = tape.leaf(b0.clone());
        let y = tape.add_bias(xn, bn);
        let y2 = tape.scale(y, 0.5);
        let y3 = tape.add(y2, xn);
        let l = tape.cross_entropy(y3, &[0, 1], &[1.0, 1.0]);
        tape.backward(l);
        assert_close(
            tape.grad(xn).unwrap(),
            &numeric_grad(&|x| loss_of(x, &b0), &x0, 1e-3),
            2e-2,
            "dX composed",
        );
        assert_close(
            tape.grad(bn).unwrap(),
            &numeric_grad(&|b| loss_of(&x0, b), &b0, 1e-3),
            2e-2,
            "dBias composed",
        );
    }

    #[test]
    fn causal_mask_blocks_future_positions() {
        // Changing a future K/V row must not affect earlier outputs.
        let mut rng = Rng::seeded(7);
        let q = Matrix::randn(3, 4, 1.0, &mut rng);
        let k = Matrix::randn(3, 4, 1.0, &mut rng);
        let v = Matrix::randn(3, 4, 1.0, &mut rng);
        let mut tape = Tape::new();
        let (qn, kn, vn) = (
            tape.leaf(q.clone()),
            tape.leaf(k.clone()),
            tape.leaf(v.clone()),
        );
        let o1 = tape.mha_causal(qn, kn, vn, 2);
        let row0_before: Vec<f32> = tape.value(o1).row(0).to_vec();

        let mut k2 = k.clone();
        k2.set(2, 0, 99.0);
        let mut v2 = v.clone();
        v2.set(2, 1, -99.0);
        let mut tape2 = Tape::new();
        let (qn2, kn2, vn2) = (tape2.leaf(q), tape2.leaf(k2), tape2.leaf(v2));
        let o2 = tape2.mha_causal(qn2, kn2, vn2, 2);
        let row0_after: Vec<f32> = tape2.value(o2).row(0).to_vec();
        assert_eq!(row0_before, row0_after);
    }
}
