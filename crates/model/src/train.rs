//! Adam optimizer and the pre-training / fine-tuning loops.
//!
//! Pre-training teaches the base model the synthetic language; fine-tuning
//! (full-model, small learning rate, few steps) produces the model variants
//! whose deltas DeltaZip compresses. Keeping the fine-tuning learning rate
//! small is what yields the small-magnitude deltas of Figure 3 — the same
//! dynamic as real LLM fine-tuning.

use crate::autograd::Tape;
use crate::tasks::{Corpus, Task};
use crate::transformer::{forward_graph, ModelConfig, ParamNodes, Params};
use dz_tensor::{Matrix, Rng};

/// Adam hyper-parameters and state.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state matching `params`' shapes.
    pub fn new(params: &Params, lr: f32) -> Self {
        let shapes: Vec<Matrix> = params
            .tensors()
            .into_iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: shapes.clone(),
            v: shapes,
            t: 0,
        }
    }

    /// Applies one update given gradients with the same layout as `params`.
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes do not match the optimizer state.
    pub fn step(&mut self, params: &mut Params, grads: &Params) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let gs = grads.tensors();
        for ((p, g), (m, v)) in params
            .tensors_mut()
            .into_iter()
            .zip(gs)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape(), g.shape(), "grad shape mismatch");
            let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
            for ((pw, gw), (mw, vw)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data().iter())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mw = b1 * *mw + (1.0 - b1) * gw;
                *vw = b2 * *vw + (1.0 - b2) * gw * gw;
                let mhat = *mw / bc1;
                let vhat = *vw / bc2;
                *pw -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

/// Clips gradients to a global L2 norm; returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut Params, max_norm: f32) -> f32 {
    let norm = grads.global_norm() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        grads.for_each_mut(|_, m| m.scale_assign(scale));
    }
    norm
}

/// Knobs for a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Sequences per step (gradient accumulation).
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Global-norm clip.
    pub clip: f32,
    /// RNG seed for data sampling.
    pub seed: u64,
}

impl TrainConfig {
    /// Sensible defaults for pre-training at tiny scale.
    pub fn pretrain(steps: usize) -> Self {
        TrainConfig {
            steps,
            batch: 8,
            lr: 3e-3,
            clip: 1.0,
            seed: 1234,
        }
    }

    /// Sensible defaults for fine-tuning (small LR: small deltas).
    pub fn finetune(steps: usize) -> Self {
        TrainConfig {
            steps,
            batch: 8,
            lr: 4e-4,
            clip: 1.0,
            seed: 4321,
        }
    }
}

/// A batch item: a token sequence plus per-target loss weights.
///
/// For a sequence `t_0..t_{n-1}` the model input is `t_0..t_{n-2}` and the
/// targets are `t_1..t_{n-1}`; `weights[i]` scales the loss on target `i`.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Full token sequence.
    pub tokens: Vec<usize>,
    /// Per-target weights, length `tokens.len() - 1`.
    pub weights: Vec<f32>,
}

impl BatchItem {
    /// Language-modeling item: every target weighted equally.
    pub fn lm(tokens: Vec<usize>) -> Self {
        let w = vec![1.0; tokens.len().saturating_sub(1)];
        BatchItem { tokens, weights: w }
    }

    /// Task item: only the final `answer_len` targets carry loss.
    pub fn task(tokens: Vec<usize>, answer_len: usize) -> Self {
        let n = tokens.len() - 1;
        let mut weights = vec![0.0; n];
        for w in weights.iter_mut().skip(n - answer_len) {
            *w = 1.0;
        }
        BatchItem { tokens, weights }
    }
}

/// Computes loss and gradient for one item; returns the loss.
pub(crate) fn grad_one(
    params: &Params,
    config: &ModelConfig,
    item: &BatchItem,
    grads: &mut Params,
) -> f32 {
    let n = item.tokens.len();
    debug_assert!(n >= 2, "need at least two tokens");
    let input = &item.tokens[..n - 1];
    let targets = &item.tokens[1..];
    let mut tape = Tape::new();
    let nodes = ParamNodes::register(&mut tape, params);
    let logits = forward_graph(&mut tape, &nodes, config, input);
    let loss = tape.cross_entropy(logits, targets, &item.weights);
    let value = tape.value(loss).get(0, 0);
    tape.backward(loss);
    nodes.collect_grads(&tape, grads);
    value
}

/// Generic training loop over a sampler; returns per-step mean losses.
pub fn train(
    params: &mut Params,
    cfg: TrainConfig,
    mut sampler: impl FnMut(&mut Rng) -> BatchItem,
) -> Vec<f32> {
    let config = params.config;
    let mut rng = Rng::seeded(cfg.seed);
    let mut opt = Adam::new(params, cfg.lr);
    let mut losses = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let mut grads = params.zeros_like();
        let mut loss_sum = 0.0f32;
        for _ in 0..cfg.batch {
            let item = sampler(&mut rng);
            loss_sum += grad_one(params, &config, &item, &mut grads);
        }
        grads.for_each_mut(|_, m| m.scale_assign(1.0 / cfg.batch as f32));
        clip_global_norm(&mut grads, cfg.clip);
        opt.step(params, &grads);
        losses.push(loss_sum / cfg.batch as f32);
    }
    losses
}

/// Pre-trains on the synthetic corpus.
pub fn pretrain(params: &mut Params, corpus: &Corpus, cfg: TrainConfig) -> Vec<f32> {
    train(params, cfg, |rng| BatchItem::lm(corpus.sample(rng)))
}

/// Full-model fine-tuning on a task (loss only on answer tokens).
pub fn finetune_fmt(params: &mut Params, task: &dyn Task, cfg: TrainConfig) -> Vec<f32> {
    train(params, cfg, |rng| {
        let ex = task.sample(rng);
        BatchItem::task(ex.tokens, ex.answer_len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{RecallTask, SentimentTask};
    use crate::transformer::test_config;

    #[test]
    fn adam_reduces_loss_on_fixed_batch() {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let mut params = Params::init(cfg, &mut rng);
        let item = BatchItem::lm(vec![1, 10, 11, 12, 13]);
        let mut opt = Adam::new(&params, 1e-2);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let mut grads = params.zeros_like();
            let l = grad_one(&params, &cfg, &item, &mut grads);
            if first.is_none() {
                first = Some(l);
            }
            last = l;
            opt.step(&mut params, &grads);
        }
        assert!(
            last < first.unwrap() * 0.5,
            "loss did not drop: {} -> {last}",
            first.unwrap()
        );
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let cfg = test_config();
        let mut rng = Rng::seeded(2);
        let mut g = Params::init(cfg, &mut rng);
        g.for_each_mut(|_, m| m.map_assign(|_| 10.0));
        let before = clip_global_norm(&mut g, 1.0);
        assert!(before > 1.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-3);
        // Small gradients are untouched.
        let mut g2 = Params::init(cfg, &mut rng).zeros_like();
        g2.tok_emb.set(0, 0, 0.5);
        let n = clip_global_norm(&mut g2, 1.0);
        assert!((n - 0.5).abs() < 1e-6);
        assert_eq!(g2.tok_emb.get(0, 0), 0.5);
    }

    #[test]
    fn batch_item_task_weights_cover_answer_only() {
        let item = BatchItem::task(vec![1, 2, 3, 4, 5], 2);
        assert_eq!(item.weights, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn training_learns_an_easy_task() {
        // End-to-end sanity: a tiny model learns sentiment far above chance.
        let cfg = test_config();
        let mut rng = Rng::seeded(3);
        let mut params = Params::init(cfg, &mut rng);
        let losses = finetune_fmt(
            &mut params,
            &SentimentTask,
            TrainConfig {
                steps: 120,
                batch: 8,
                lr: 3e-3,
                clip: 1.0,
                seed: 7,
            },
        );
        let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(late < early * 0.6, "loss {early} -> {late}");
        let acc = crate::eval::task_accuracy(&params, &SentimentTask, 200, &mut Rng::seeded(11));
        assert!(acc > 0.8, "accuracy only {acc}");
    }

    #[test]
    fn recall_task_is_learnable() {
        // The schema-lookup task needs a little width to memorize the
        // 20x20 table; use the learning-sized config.
        let cfg = crate::transformer::ModelConfig {
            d_model: 32,
            n_heads: 4,
            d_ff: 64,
            ..test_config()
        };
        let mut rng = Rng::seeded(4);
        let mut params = Params::init(cfg, &mut rng);
        finetune_fmt(
            &mut params,
            &RecallTask,
            TrainConfig {
                steps: 500,
                batch: 8,
                lr: 3e-3,
                clip: 1.0,
                seed: 8,
            },
        );
        let acc = crate::eval::task_accuracy(&params, &RecallTask, 200, &mut Rng::seeded(12));
        assert!(acc > 0.6, "accuracy only {acc}");
    }

    #[test]
    fn finetuning_from_base_produces_small_deltas() {
        let cfg = test_config();
        let mut rng = Rng::seeded(5);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(40));
        let mut tuned = base.clone();
        finetune_fmt(&mut tuned, &SentimentTask, TrainConfig::finetune(40));
        let delta = tuned.delta_from(&base);
        // The delta must be small relative to the weights themselves.
        let ratio = delta.global_norm() / base.global_norm();
        assert!(ratio < 0.35, "delta/base norm ratio {ratio}");
        // And adding it back must reproduce the tuned model.
        let mut rebuilt = base.clone();
        let dts = delta.tensors();
        for (r, d) in rebuilt.tensors_mut().into_iter().zip(dts) {
            r.add_assign(d);
        }
        let tts = tuned.tensors();
        for (a, b) in rebuilt.tensors().into_iter().zip(tts) {
            assert!(a.max_abs_diff(b) < 1e-6);
        }
    }
}
