//! Shared forward-graph builder for adapter fine-tuning methods.
//!
//! LoRA ([`crate::lora`]) and RoSA ([`crate::rosa`]) both train adjunct
//! parameters against a frozen base: their forward graphs differ only in
//! what each linear projection adds on top of `h W + b`. This builder owns
//! the transformer wiring (embeddings, attention, MLP, norms) and delegates
//! every linear projection to the caller, so each method supplies just its
//! adapter term.

use crate::autograd::{NodeId, Tape};
use crate::transformer::Params;
use dz_tensor::Matrix;

/// Builds the frozen-base transformer graph over `ids`, calling `linear`
/// for every adapted projection.
///
/// `linear(tape, h, w, bias, name)` must return the projection output for
/// input activations `h` and frozen weight `w` — typically
/// `h W + b (+ adapter terms)`. Base weights must be registered with
/// [`Tape::leaf_no_grad`] inside the closure so backward skips their
/// gradient matmuls.
///
/// # Panics
///
/// Panics if `ids` is empty or longer than the model's maximum sequence.
pub(crate) fn adapted_forward(
    tape: &mut Tape,
    base: &Params,
    ids: &[usize],
    mut linear: impl FnMut(&mut Tape, NodeId, &Matrix, &Matrix, &str) -> NodeId,
) -> NodeId {
    let config = &base.config;
    assert!(!ids.is_empty() && ids.len() <= config.max_seq);
    let t = ids.len();
    let tok_table = tape.leaf_no_grad(base.tok_emb.clone());
    let pos_table = tape.leaf_no_grad(base.pos_emb.clone());
    let tok = tape.gather(tok_table, ids);
    let positions: Vec<usize> = (0..t).collect();
    let pos = tape.gather(pos_table, &positions);
    let mut x = tape.add(tok, pos);
    for (i, l) in base.layers.iter().enumerate() {
        let g1 = tape.leaf_no_grad(l.ln1_g.clone());
        let b1n = tape.leaf_no_grad(l.ln1_b.clone());
        let h = tape.layer_norm(x, g1, b1n);
        let q = linear(tape, h, &l.wq, &l.bq, &format!("layer{i}.wq"));
        let k = linear(tape, h, &l.wk, &l.bk, &format!("layer{i}.wk"));
        let v = linear(tape, h, &l.wv, &l.bv, &format!("layer{i}.wv"));
        let attn = tape.mha_causal(q, k, v, config.n_heads);
        let proj = linear(tape, attn, &l.wo, &l.bo, &format!("layer{i}.wo"));
        x = tape.add(x, proj);
        let g2 = tape.leaf_no_grad(l.ln2_g.clone());
        let b2n = tape.leaf_no_grad(l.ln2_b.clone());
        let h2 = tape.layer_norm(x, g2, b2n);
        let up = linear(tape, h2, &l.w1, &l.b1, &format!("layer{i}.w1"));
        let act = tape.gelu(up);
        let down = linear(tape, act, &l.w2, &l.b2, &format!("layer{i}.w2"));
        x = tape.add(x, down);
    }
    let gf = tape.leaf_no_grad(base.lnf_g.clone());
    let bf = tape.leaf_no_grad(base.lnf_b.clone());
    let xf = tape.layer_norm(x, gf, bf);
    let head = tape.leaf_no_grad(base.head.clone());
    tape.matmul(xf, head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::{forward_full, test_config};
    use dz_tensor::Rng;

    #[test]
    fn plain_linear_matches_reference_forward() {
        // With no adapter terms the builder must reproduce the standard
        // forward pass exactly.
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let base = Params::init(cfg, &mut rng);
        let ids = [1usize, 5, 9, 3];
        let mut tape = Tape::new();
        let logits = adapted_forward(&mut tape, &base, &ids, |tape, h, w, b, _| {
            let wn = tape.leaf_no_grad(w.clone());
            let bn = tape.leaf_no_grad(b.clone());
            let y = tape.matmul(h, wn);
            tape.add_bias(y, bn)
        });
        let got = tape.value(logits).clone();
        let want = forward_full(&base, &ids);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    #[should_panic]
    fn empty_input_is_rejected() {
        let cfg = test_config();
        let mut rng = Rng::seeded(2);
        let base = Params::init(cfg, &mut rng);
        let mut tape = Tape::new();
        let _ = adapted_forward(&mut tape, &base, &[], |_tape, h, _, _, _| h);
    }
}
