//! A tiny, fully trainable GPT-style transformer substrate.
//!
//! The DeltaZip paper compresses deltas of *real* fine-tuned models. We have
//! no GPU or pretrained checkpoints here, so this crate provides the closest
//! faithful substitute: a complete decoder-only transformer implemented from
//! scratch (tape-based reverse-mode autograd, Adam, LayerNorm, multi-head
//! causal attention) that we pre-train on a synthetic corpus and then
//! **actually full-model fine-tune** (or LoRA fine-tune) on synthetic
//! downstream tasks. Fine-tuning a converged model with a small learning
//! rate produces genuinely small-magnitude deltas — the phenomenon Figure 3
//! of the paper illustrates and ΔCompress exploits.
//!
//! Key modules:
//!
//! * [`autograd`] — a minimal tape with exactly the ops a transformer needs,
//!   each with a hand-written backward pass (checked against finite
//!   differences in tests),
//! * [`transformer`] — parameters, the training-time forward pass, and an
//!   inference pass with a KV cache,
//! * [`train`] — Adam plus pre-training / FMT / LoRA fine-tuning loops,
//! * [`tasks`] — synthetic downstream tasks of graded difficulty standing in
//!   for the paper's evaluation suites,
//! * [`lora`] — low-rank adapters (the PEFT baseline),
//! * [`zoo`] — named model-family presets mirroring the paper's model list.

pub(crate) mod adapted;
pub mod autograd;
pub mod eval;
pub mod galore;
pub mod lora;
pub mod rosa;
pub mod tasks;
pub mod train;
pub mod transformer;
pub mod vocab;
pub mod zoo;

pub use transformer::{ModelConfig, Params};
