//! Model quality evaluation: task accuracy, perplexity, greedy generation.

use crate::tasks::Task;
use crate::transformer::{forward_full, forward_infer, KvCache, Params};
use dz_tensor::{Matrix, Rng};

/// Index of the row-wise argmax.
fn argmax(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Teacher-forced accuracy on `n` fresh samples of a task.
///
/// An example counts as correct only if *every* answer token is the argmax
/// at its position (matching exact-match scoring of short answers).
pub fn task_accuracy(params: &Params, task: &dyn Task, n: usize, rng: &mut Rng) -> f64 {
    let mut correct = 0usize;
    for _ in 0..n {
        let ex = task.sample(rng);
        if example_correct(params, &ex.tokens, ex.answer_len) {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

/// Checks a single example under teacher forcing.
pub fn example_correct(params: &Params, tokens: &[usize], answer_len: usize) -> bool {
    let t = tokens.len();
    debug_assert!(answer_len >= 1 && answer_len < t);
    let logits = forward_full(params, &tokens[..t - 1]);
    for k in 0..answer_len {
        let pos = t - 1 - answer_len + k; // Logit row predicting tokens[pos + 1].
        if argmax(logits.row(pos)) != tokens[pos + 1] {
            return false;
        }
    }
    true
}

/// Mean negative log-likelihood per token over the given sequences (nats).
pub fn mean_nll(params: &Params, seqs: &[Vec<usize>]) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for seq in seqs {
        if seq.len() < 2 {
            continue;
        }
        let logits = forward_full(params, &seq[..seq.len() - 1]);
        for (row, &target) in (0..logits.rows()).zip(seq[1..].iter()) {
            let r = logits.row(row);
            let max = r.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + r.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            total += (lse - r[target]) as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Perplexity (`exp` of [`mean_nll`]).
pub fn perplexity(params: &Params, seqs: &[Vec<usize>]) -> f64 {
    mean_nll(params, seqs).exp()
}

/// Greedy generation with the KV cache; returns the generated ids.
///
/// Stops after `max_new` tokens (there is no EOS in the synthetic vocab; in
/// the serving simulator output lengths come from the workload model).
pub fn greedy_generate(params: &Params, prompt: &[usize], max_new: usize) -> Vec<usize> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let mut cache = KvCache::new(params.config.n_layers);
    let mut logits = forward_infer(params, prompt, &mut cache);
    let mut out = Vec::with_capacity(max_new);
    for _ in 0..max_new {
        if cache.len() >= params.config.max_seq {
            break;
        }
        let next = argmax(logits.row(0));
        out.push(next);
        if cache.len() == params.config.max_seq {
            break;
        }
        logits = forward_infer(params, &[next], &mut cache);
    }
    out
}

/// Convenience: batch accuracy over a fixed evaluation set.
pub fn accuracy_on(params: &Params, examples: &[(Vec<usize>, usize)]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let correct = examples
        .iter()
        .filter(|(toks, alen)| example_correct(params, toks, *alen))
        .count();
    correct as f64 / examples.len() as f64
}

/// Logit margin statistics on answer tokens (diagnostic for compression).
pub fn answer_margin(params: &Params, task: &dyn Task, n: usize, rng: &mut Rng) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for _ in 0..n {
        let ex = task.sample(rng);
        let t = ex.tokens.len();
        let logits: Matrix = forward_full(params, &ex.tokens[..t - 1]);
        for k in 0..ex.answer_len {
            let pos = t - 1 - ex.answer_len + k;
            let row = logits.row(pos);
            let target = ex.tokens[pos + 1];
            let target_logit = row[target];
            let best_other = row
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, &v)| v)
                .fold(f32::NEG_INFINITY, f32::max);
            total += (target_logit - best_other) as f64;
            count += 1;
        }
    }
    total / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{Corpus, SentimentTask, Task};
    use crate::transformer::{test_config, Params};

    #[test]
    fn untrained_model_is_near_chance() {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let p = Params::init(cfg, &mut rng);
        let acc = task_accuracy(&p, &SentimentTask, 300, &mut Rng::seeded(2));
        // Random logits over a 60-token vocab: near zero.
        assert!(acc < 0.25, "untrained accuracy suspiciously high: {acc}");
    }

    #[test]
    fn perplexity_of_untrained_model_near_vocab_size() {
        let cfg = test_config();
        let mut rng = Rng::seeded(3);
        let p = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        let seqs: Vec<Vec<usize>> = (0..20).map(|_| corpus.sample(&mut rng)).collect();
        let ppl = perplexity(&p, &seqs);
        assert!(
            ppl > cfg.vocab as f64 * 0.3 && ppl < cfg.vocab as f64 * 3.0,
            "ppl {ppl}"
        );
    }

    #[test]
    fn greedy_generate_produces_tokens() {
        let cfg = test_config();
        let mut rng = Rng::seeded(4);
        let p = Params::init(cfg, &mut rng);
        let out = greedy_generate(&p, &[1, 10, 11], 5);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&t| t < cfg.vocab));
    }

    #[test]
    fn greedy_generate_respects_context_limit() {
        let cfg = test_config();
        let mut rng = Rng::seeded(5);
        let p = Params::init(cfg, &mut rng);
        let prompt: Vec<usize> = (0..cfg.max_seq - 2).map(|i| 1 + i % 10).collect();
        let out = greedy_generate(&p, &prompt, 100);
        assert!(
            out.len() <= 2,
            "generated {} tokens past the limit",
            out.len()
        );
    }

    #[test]
    fn example_correct_checks_all_answer_positions() {
        let cfg = test_config();
        let mut rng = Rng::seeded(6);
        let p = Params::init(cfg, &mut rng);
        // Build a sequence; whatever the model predicts for the final two
        // positions, flipping one answer token must not *increase* accuracy.
        let mut rng2 = Rng::seeded(7);
        let ex = crate::tasks::MathTask.sample(&mut rng2);
        let ok = example_correct(&p, &ex.tokens, ex.answer_len);
        // On an untrained model correctness is almost surely false.
        let _ = ok;
        let acc = task_accuracy(&p, &crate::tasks::MathTask, 50, &mut Rng::seeded(8));
        assert!(acc < 0.3);
    }

    #[test]
    fn accuracy_on_fixed_set_is_deterministic() {
        let cfg = test_config();
        let mut rng = Rng::seeded(9);
        let p = Params::init(cfg, &mut rng);
        let mut rng2 = Rng::seeded(10);
        let set: Vec<(Vec<usize>, usize)> = (0..20)
            .map(|_| {
                let e = SentimentTask.sample(&mut rng2);
                (e.tokens, e.answer_len)
            })
            .collect();
        assert_eq!(accuracy_on(&p, &set), accuracy_on(&p, &set));
    }
}
