//! The decoder-only transformer: parameters, training forward, KV-cache
//! inference.
//!
//! Architecture is a standard pre-LN GPT block:
//!
//! ```text
//! x   = tok_emb[ids] + pos_emb[0..T]
//! h   = LN1(x);  attn = MHA(h Wq + bq, h Wk + bk, h Wv + bv);  x += attn Wo + bo
//! h   = LN2(x);  x += GELU(h W1 + b1) W2 + b2
//! out = LNf(x) Whead
//! ```
//!
//! The six projection matrices per layer (`wq wk wv wo w1 w2`) are the
//! "linear layers" that DeltaZip compresses; embeddings, biases and
//! LayerNorm parameters stay in full precision, exactly as the paper leaves
//! embeddings uncompressed.

use crate::autograd::{NodeId, Tape};
use dz_tensor::{Matrix, Rng};

/// Hyper-parameters of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Residual width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Maximum sequence length (positional table size).
    pub max_seq: usize,
}

impl ModelConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `d_model % n_heads != 0` or any dimension is zero.
    pub fn validate(&self) {
        assert!(self.vocab > 0 && self.d_model > 0 && self.n_layers > 0);
        assert!(self.n_heads > 0 && self.d_ff > 0 && self.max_seq > 0);
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "d_model {} not divisible by heads {}",
            self.d_model,
            self.n_heads
        );
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        let per_layer = 4 * self.d_model * self.d_model      // wq wk wv wo
            + 4 * self.d_model                               // bq bk bv bo
            + 2 * self.d_model * self.d_ff                   // w1 w2
            + self.d_ff + self.d_model                       // b1 b2
            + 4 * self.d_model; // ln1/ln2 gain+bias
        self.vocab * self.d_model                            // tok_emb
            + self.max_seq * self.d_model                    // pos_emb
            + self.n_layers * per_layer
            + 2 * self.d_model                               // lnf
            + self.d_model * self.vocab // head
    }
}

/// Parameters of one transformer block.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerParams {
    /// Query projection, `(d, d)`.
    pub wq: Matrix,
    /// Key projection, `(d, d)`.
    pub wk: Matrix,
    /// Value projection, `(d, d)`.
    pub wv: Matrix,
    /// Output projection, `(d, d)`.
    pub wo: Matrix,
    /// Query bias, `(1, d)`.
    pub bq: Matrix,
    /// Key bias, `(1, d)`.
    pub bk: Matrix,
    /// Value bias, `(1, d)`.
    pub bv: Matrix,
    /// Output bias, `(1, d)`.
    pub bo: Matrix,
    /// MLP up projection, `(d, ff)`.
    pub w1: Matrix,
    /// MLP up bias, `(1, ff)`.
    pub b1: Matrix,
    /// MLP down projection, `(ff, d)`.
    pub w2: Matrix,
    /// MLP down bias, `(1, d)`.
    pub b2: Matrix,
    /// Pre-attention LayerNorm gain, `(1, d)`.
    pub ln1_g: Matrix,
    /// Pre-attention LayerNorm bias, `(1, d)`.
    pub ln1_b: Matrix,
    /// Pre-MLP LayerNorm gain, `(1, d)`.
    pub ln2_g: Matrix,
    /// Pre-MLP LayerNorm bias, `(1, d)`.
    pub ln2_b: Matrix,
}

/// Full parameter set of a model.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Hyper-parameters this parameter set was built for.
    pub config: ModelConfig,
    /// Token embedding table, `(vocab, d)`.
    pub tok_emb: Matrix,
    /// Positional embedding table, `(max_seq, d)`.
    pub pos_emb: Matrix,
    /// Transformer blocks.
    pub layers: Vec<LayerParams>,
    /// Final LayerNorm gain.
    pub lnf_g: Matrix,
    /// Final LayerNorm bias.
    pub lnf_b: Matrix,
    /// Unembedding/head matrix, `(d, vocab)`.
    pub head: Matrix,
}

impl Params {
    /// Random initialization (scaled-normal weights, unit LayerNorm gains).
    pub fn init(config: ModelConfig, rng: &mut Rng) -> Self {
        config.validate();
        let d = config.d_model;
        let std = 0.08;
        let proj_std = std / (2.0 * config.n_layers as f32).sqrt();
        let layers = (0..config.n_layers)
            .map(|_| LayerParams {
                wq: Matrix::randn(d, d, std, rng),
                wk: Matrix::randn(d, d, std, rng),
                wv: Matrix::randn(d, d, std, rng),
                wo: Matrix::randn(d, d, proj_std, rng),
                bq: Matrix::zeros(1, d),
                bk: Matrix::zeros(1, d),
                bv: Matrix::zeros(1, d),
                bo: Matrix::zeros(1, d),
                w1: Matrix::randn(d, config.d_ff, std, rng),
                b1: Matrix::zeros(1, config.d_ff),
                w2: Matrix::randn(config.d_ff, d, proj_std, rng),
                b2: Matrix::zeros(1, d),
                ln1_g: Matrix::full(1, d, 1.0),
                ln1_b: Matrix::zeros(1, d),
                ln2_g: Matrix::full(1, d, 1.0),
                ln2_b: Matrix::zeros(1, d),
            })
            .collect();
        Params {
            config,
            tok_emb: Matrix::randn(config.vocab, d, std, rng),
            pos_emb: Matrix::randn(config.max_seq, d, std, rng),
            layers,
            lnf_g: Matrix::full(1, d, 1.0),
            lnf_b: Matrix::zeros(1, d),
            head: Matrix::randn(d, config.vocab, std, rng),
        }
    }

    /// Visits every parameter as `(name, matrix)` in a stable order.
    pub fn for_each(&self, mut f: impl FnMut(&str, &Matrix)) {
        f("tok_emb", &self.tok_emb);
        f("pos_emb", &self.pos_emb);
        for (i, l) in self.layers.iter().enumerate() {
            let names: [(&str, &Matrix); 16] = [
                ("wq", &l.wq),
                ("wk", &l.wk),
                ("wv", &l.wv),
                ("wo", &l.wo),
                ("bq", &l.bq),
                ("bk", &l.bk),
                ("bv", &l.bv),
                ("bo", &l.bo),
                ("w1", &l.w1),
                ("b1", &l.b1),
                ("w2", &l.w2),
                ("b2", &l.b2),
                ("ln1_g", &l.ln1_g),
                ("ln1_b", &l.ln1_b),
                ("ln2_g", &l.ln2_g),
                ("ln2_b", &l.ln2_b),
            ];
            for (n, m) in names {
                f(&format!("layer{i}.{n}"), m);
            }
        }
        f("lnf_g", &self.lnf_g);
        f("lnf_b", &self.lnf_b);
        f("head", &self.head);
    }

    /// Mutable visitor in the same stable order as [`Params::for_each`].
    pub fn for_each_mut(&mut self, mut f: impl FnMut(&str, &mut Matrix)) {
        f("tok_emb", &mut self.tok_emb);
        f("pos_emb", &mut self.pos_emb);
        for (i, l) in self.layers.iter_mut().enumerate() {
            let names: [(&str, &mut Matrix); 16] = [
                ("wq", &mut l.wq),
                ("wk", &mut l.wk),
                ("wv", &mut l.wv),
                ("wo", &mut l.wo),
                ("bq", &mut l.bq),
                ("bk", &mut l.bk),
                ("bv", &mut l.bv),
                ("bo", &mut l.bo),
                ("w1", &mut l.w1),
                ("b1", &mut l.b1),
                ("w2", &mut l.w2),
                ("b2", &mut l.b2),
                ("ln1_g", &mut l.ln1_g),
                ("ln1_b", &mut l.ln1_b),
                ("ln2_g", &mut l.ln2_g),
                ("ln2_b", &mut l.ln2_b),
            ];
            for (n, m) in names {
                f(&format!("layer{i}.{n}"), m);
            }
        }
        f("lnf_g", &mut self.lnf_g);
        f("lnf_b", &mut self.lnf_b);
        f("head", &mut self.head);
    }

    /// Names of the per-layer linear projections ΔCompress targets.
    pub fn linear_layer_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for i in 0..self.layers.len() {
            for n in ["wq", "wk", "wv", "wo", "w1", "w2"] {
                out.push(format!("layer{i}.{n}"));
            }
        }
        out
    }

    /// Looks up a parameter matrix by its stable name.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        match name {
            "tok_emb" => return Some(&self.tok_emb),
            "pos_emb" => return Some(&self.pos_emb),
            "lnf_g" => return Some(&self.lnf_g),
            "lnf_b" => return Some(&self.lnf_b),
            "head" => return Some(&self.head),
            _ => {}
        }
        let (layer, field) = parse_layer_name(name)?;
        let l = self.layers.get(layer)?;
        Some(match field {
            "wq" => &l.wq,
            "wk" => &l.wk,
            "wv" => &l.wv,
            "wo" => &l.wo,
            "bq" => &l.bq,
            "bk" => &l.bk,
            "bv" => &l.bv,
            "bo" => &l.bo,
            "w1" => &l.w1,
            "b1" => &l.b1,
            "w2" => &l.w2,
            "b2" => &l.b2,
            "ln1_g" => &l.ln1_g,
            "ln1_b" => &l.ln1_b,
            "ln2_g" => &l.ln2_g,
            "ln2_b" => &l.ln2_b,
            _ => return None,
        })
    }

    /// Mutable lookup by stable name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Matrix> {
        match name {
            "tok_emb" => return Some(&mut self.tok_emb),
            "pos_emb" => return Some(&mut self.pos_emb),
            "lnf_g" => return Some(&mut self.lnf_g),
            "lnf_b" => return Some(&mut self.lnf_b),
            "head" => return Some(&mut self.head),
            _ => {}
        }
        let (layer, field) = parse_layer_name(name)?;
        let l = self.layers.get_mut(layer)?;
        Some(match field {
            "wq" => &mut l.wq,
            "wk" => &mut l.wk,
            "wv" => &mut l.wv,
            "wo" => &mut l.wo,
            "bq" => &mut l.bq,
            "bk" => &mut l.bk,
            "bv" => &mut l.bv,
            "bo" => &mut l.bo,
            "w1" => &mut l.w1,
            "b1" => &mut l.b1,
            "w2" => &mut l.w2,
            "b2" => &mut l.b2,
            "ln1_g" => &mut l.ln1_g,
            "ln1_b" => &mut l.ln1_b,
            "ln2_g" => &mut l.ln2_g,
            "ln2_b" => &mut l.ln2_b,
            _ => return None,
        })
    }

    /// Replaces a parameter matrix by name; returns `false` if absent.
    ///
    /// # Panics
    ///
    /// Panics if the replacement has a different shape.
    pub fn set(&mut self, name: &str, value: Matrix) -> bool {
        match self.get_mut(name) {
            Some(m) => {
                assert_eq!(m.shape(), value.shape(), "shape mismatch replacing {name}");
                *m = value;
                true
            }
            None => false,
        }
    }

    /// Total bytes at FP16 (2 bytes/param), the paper's serving precision.
    pub fn fp16_bytes(&self) -> usize {
        let mut total = 0usize;
        self.for_each(|_, m| total += m.len() * 2);
        total
    }

    /// All parameter matrices in the stable `for_each` order.
    pub fn tensors(&self) -> Vec<&Matrix> {
        let mut out = vec![&self.tok_emb, &self.pos_emb];
        for l in &self.layers {
            out.extend([
                &l.wq, &l.wk, &l.wv, &l.wo, &l.bq, &l.bk, &l.bv, &l.bo, &l.w1, &l.b1, &l.w2, &l.b2,
                &l.ln1_g, &l.ln1_b, &l.ln2_g, &l.ln2_b,
            ]);
        }
        out.extend([&self.lnf_g, &self.lnf_b, &self.head]);
        out
    }

    /// Mutable variant of [`Params::tensors`], same order.
    pub fn tensors_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out: Vec<&mut Matrix> = vec![&mut self.tok_emb, &mut self.pos_emb];
        for l in &mut self.layers {
            out.extend([
                &mut l.wq,
                &mut l.wk,
                &mut l.wv,
                &mut l.wo,
                &mut l.bq,
                &mut l.bk,
                &mut l.bv,
                &mut l.bo,
                &mut l.w1,
                &mut l.b1,
                &mut l.w2,
                &mut l.b2,
                &mut l.ln1_g,
                &mut l.ln1_b,
                &mut l.ln2_g,
                &mut l.ln2_b,
            ]);
        }
        out.extend([&mut self.lnf_g, &mut self.lnf_b, &mut self.head]);
        out
    }

    /// A zero-filled clone with the same shapes (for gradient buffers).
    pub fn zeros_like(&self) -> Params {
        let mut z = self.clone();
        z.for_each_mut(|_, m| m.scale_assign(0.0));
        z
    }

    /// Frobenius norm over all parameters (for delta-magnitude reporting).
    pub fn global_norm(&self) -> f64 {
        let mut acc = 0.0f64;
        self.for_each(|_, m| {
            let n = m.frob_norm() as f64;
            acc += n * n;
        });
        acc.sqrt()
    }

    /// Elementwise delta `self - base` with the same layout.
    ///
    /// # Panics
    ///
    /// Panics if the two parameter sets have different shapes.
    pub fn delta_from(&self, base: &Params) -> Params {
        let mut d = self.clone();
        let base_t = base.tensors();
        for (dm, bm) in d.tensors_mut().into_iter().zip(base_t) {
            *dm = dm.sub(bm);
        }
        d
    }
}

/// Splits `"layer3.wq"` into `(3, "wq")`.
fn parse_layer_name(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("layer")?;
    let dot = rest.find('.')?;
    let idx: usize = rest[..dot].parse().ok()?;
    Some((idx, &rest[dot + 1..]))
}

/// Node handles for one layer's parameters on a tape.
struct LayerNodes {
    wq: NodeId,
    wk: NodeId,
    wv: NodeId,
    wo: NodeId,
    bq: NodeId,
    bk: NodeId,
    bv: NodeId,
    bo: NodeId,
    w1: NodeId,
    b1: NodeId,
    w2: NodeId,
    b2: NodeId,
    ln1_g: NodeId,
    ln1_b: NodeId,
    ln2_g: NodeId,
    ln2_b: NodeId,
}

/// Node handles for every parameter, in the same layout as [`Params`].
pub struct ParamNodes {
    tok_emb: NodeId,
    pos_emb: NodeId,
    layers: Vec<LayerNodes>,
    lnf_g: NodeId,
    lnf_b: NodeId,
    head: NodeId,
}

impl ParamNodes {
    /// Registers every parameter as a leaf on the tape.
    pub fn register(tape: &mut Tape, p: &Params) -> Self {
        ParamNodes {
            tok_emb: tape.leaf(p.tok_emb.clone()),
            pos_emb: tape.leaf(p.pos_emb.clone()),
            layers: p
                .layers
                .iter()
                .map(|l| LayerNodes {
                    wq: tape.leaf(l.wq.clone()),
                    wk: tape.leaf(l.wk.clone()),
                    wv: tape.leaf(l.wv.clone()),
                    wo: tape.leaf(l.wo.clone()),
                    bq: tape.leaf(l.bq.clone()),
                    bk: tape.leaf(l.bk.clone()),
                    bv: tape.leaf(l.bv.clone()),
                    bo: tape.leaf(l.bo.clone()),
                    w1: tape.leaf(l.w1.clone()),
                    b1: tape.leaf(l.b1.clone()),
                    w2: tape.leaf(l.w2.clone()),
                    b2: tape.leaf(l.b2.clone()),
                    ln1_g: tape.leaf(l.ln1_g.clone()),
                    ln1_b: tape.leaf(l.ln1_b.clone()),
                    ln2_g: tape.leaf(l.ln2_g.clone()),
                    ln2_b: tape.leaf(l.ln2_b.clone()),
                })
                .collect(),
            lnf_g: tape.leaf(p.lnf_g.clone()),
            lnf_b: tape.leaf(p.lnf_b.clone()),
            head: tape.leaf(p.head.clone()),
        }
    }

    /// Accumulates gradients from the tape into `grads` (same layout as the
    /// parameters, pre-zeroed or freshly created by the caller) in the
    /// stable `for_each` order.
    pub fn collect_grads(&self, tape: &Tape, grads: &mut Params) {
        let zero_like = |m: &Matrix| Matrix::zeros(m.rows(), m.cols());
        let pull = |tape: &Tape, id: NodeId, dst: &mut Matrix| {
            match tape.grad(id) {
                Some(g) => dst.add_assign(g),
                None => {
                    // Parameter unused in this graph; contributes zero.
                    let z = zero_like(dst);
                    let _ = z;
                }
            }
        };
        pull(tape, self.tok_emb, &mut grads.tok_emb);
        pull(tape, self.pos_emb, &mut grads.pos_emb);
        for (ln, gl) in self.layers.iter().zip(grads.layers.iter_mut()) {
            pull(tape, ln.wq, &mut gl.wq);
            pull(tape, ln.wk, &mut gl.wk);
            pull(tape, ln.wv, &mut gl.wv);
            pull(tape, ln.wo, &mut gl.wo);
            pull(tape, ln.bq, &mut gl.bq);
            pull(tape, ln.bk, &mut gl.bk);
            pull(tape, ln.bv, &mut gl.bv);
            pull(tape, ln.bo, &mut gl.bo);
            pull(tape, ln.w1, &mut gl.w1);
            pull(tape, ln.b1, &mut gl.b1);
            pull(tape, ln.w2, &mut gl.w2);
            pull(tape, ln.b2, &mut gl.b2);
            pull(tape, ln.ln1_g, &mut gl.ln1_g);
            pull(tape, ln.ln1_b, &mut gl.ln1_b);
            pull(tape, ln.ln2_g, &mut gl.ln2_g);
            pull(tape, ln.ln2_b, &mut gl.ln2_b);
        }
        pull(tape, self.lnf_g, &mut grads.lnf_g);
        pull(tape, self.lnf_b, &mut grads.lnf_b);
        pull(tape, self.head, &mut grads.head);
    }
}

/// Builds the forward graph for one sequence; returns the logits node.
///
/// # Panics
///
/// Panics if `ids` is empty or longer than `config.max_seq`.
pub fn forward_graph(
    tape: &mut Tape,
    nodes: &ParamNodes,
    config: &ModelConfig,
    ids: &[usize],
) -> NodeId {
    assert!(!ids.is_empty(), "empty sequence");
    assert!(ids.len() <= config.max_seq, "sequence longer than max_seq");
    let t = ids.len();
    let tok = tape.gather(nodes.tok_emb, ids);
    let positions: Vec<usize> = (0..t).collect();
    let pos = tape.gather(nodes.pos_emb, &positions);
    let mut x = tape.add(tok, pos);
    for l in &nodes.layers {
        let h = tape.layer_norm(x, l.ln1_g, l.ln1_b);
        let q0 = tape.matmul(h, l.wq);
        let q = tape.add_bias(q0, l.bq);
        let k0 = tape.matmul(h, l.wk);
        let k = tape.add_bias(k0, l.bk);
        let v0 = tape.matmul(h, l.wv);
        let v = tape.add_bias(v0, l.bv);
        let attn = tape.mha_causal(q, k, v, config.n_heads);
        let proj0 = tape.matmul(attn, l.wo);
        let proj = tape.add_bias(proj0, l.bo);
        x = tape.add(x, proj);
        let h2 = tape.layer_norm(x, l.ln2_g, l.ln2_b);
        let up0 = tape.matmul(h2, l.w1);
        let up = tape.add_bias(up0, l.b1);
        let act = tape.gelu(up);
        let down0 = tape.matmul(act, l.w2);
        let down = tape.add_bias(down0, l.b2);
        x = tape.add(x, down);
    }
    let xf = tape.layer_norm(x, nodes.lnf_g, nodes.lnf_b);
    tape.matmul(xf, nodes.head)
}

/// Per-layer KV cache for incremental decoding.
#[derive(Debug, Clone)]
pub struct KvCache {
    /// Cached keys per layer, each `(t_so_far, d)`.
    pub k: Vec<Matrix>,
    /// Cached values per layer, each `(t_so_far, d)`.
    pub v: Vec<Matrix>,
}

impl KvCache {
    /// An empty cache for `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        KvCache {
            k: (0..n_layers).map(|_| Matrix::zeros(0, 0)).collect(),
            v: (0..n_layers).map(|_| Matrix::zeros(0, 0)).collect(),
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        if self.k.is_empty() || self.k[0].cols() == 0 {
            0
        } else {
            self.k[0].rows()
        }
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn layer_norm_infer(x: &Matrix, g: &Matrix, b: &Matrix) -> Matrix {
    const EPS: f32 = 1e-5;
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let mean = row.iter().sum::<f32>() / x.cols() as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / x.cols() as f32;
        let inv = 1.0 / (var + EPS).sqrt();
        for (c, &v) in row.iter().enumerate() {
            out.set(r, c, (v - mean) * inv * g.get(0, c) + b.get(0, c));
        }
    }
    out
}

fn add_bias_infer(x: &mut Matrix, b: &Matrix) {
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        for (v, bb) in row.iter_mut().zip(b.row(0).iter()) {
            *v += bb;
        }
    }
}

fn gelu_infer(x: &mut Matrix) {
    const C: f32 = 0.797_884_6;
    x.map_assign(|v| 0.5 * v * (1.0 + (C * (v + 0.044_715 * v * v * v)).tanh()));
}

/// Inference forward over `new_ids`, extending `cache`; returns logits for
/// the *last* new position (`1 x vocab`).
///
/// # Panics
///
/// Panics if the total sequence would exceed `max_seq`.
pub fn forward_infer(params: &Params, new_ids: &[usize], cache: &mut KvCache) -> Matrix {
    let config = &params.config;
    let t0 = cache.len();
    let tn = new_ids.len();
    assert!(tn > 0, "no new tokens");
    assert!(t0 + tn <= config.max_seq, "sequence overflows max_seq");
    let d = config.d_model;
    let heads = config.n_heads;
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();

    // Embeddings.
    let mut x = Matrix::zeros(tn, d);
    for (r, &id) in new_ids.iter().enumerate() {
        let dst = x.row_mut(r);
        for (c, v) in dst.iter_mut().enumerate() {
            *v = params.tok_emb.get(id, c) + params.pos_emb.get(t0 + r, c);
        }
    }

    for (li, l) in params.layers.iter().enumerate() {
        let h = layer_norm_infer(&x, &l.ln1_g, &l.ln1_b);
        let mut q = h.matmul(&l.wq);
        add_bias_infer(&mut q, &l.bq);
        let mut k_new = h.matmul(&l.wk);
        add_bias_infer(&mut k_new, &l.bk);
        let mut v_new = h.matmul(&l.wv);
        add_bias_infer(&mut v_new, &l.bv);
        // Extend cache.
        let (k_all, v_all) = if t0 == 0 {
            (k_new, v_new)
        } else {
            (
                Matrix::vstack(&[&cache.k[li], &k_new]),
                Matrix::vstack(&[&cache.v[li], &v_new]),
            )
        };
        let total = t0 + tn;
        let mut attn_out = Matrix::zeros(tn, d);
        for hi in 0..heads {
            for r in 0..tn {
                let abs_pos = t0 + r;
                // Scores against all cached positions up to abs_pos.
                let mut scores = vec![0.0f32; abs_pos + 1];
                for (j, s) in scores.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for c in 0..dh {
                        acc += q.get(r, hi * dh + c) * k_all.get(j, hi * dh + c);
                    }
                    *s = acc * scale;
                }
                let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for s in scores.iter_mut() {
                    *s = (*s - max).exp();
                    sum += *s;
                }
                let inv = 1.0 / sum;
                for c in 0..dh {
                    let mut acc = 0.0f32;
                    for (j, s) in scores.iter().enumerate() {
                        acc += s * inv * v_all.get(j, hi * dh + c);
                    }
                    attn_out.set(r, hi * dh + c, acc);
                }
            }
        }
        let _ = total;
        cache.k[li] = k_all;
        cache.v[li] = v_all;
        let mut proj = attn_out.matmul(&l.wo);
        add_bias_infer(&mut proj, &l.bo);
        x.add_assign(&proj);
        let h2 = layer_norm_infer(&x, &l.ln2_g, &l.ln2_b);
        let mut up = h2.matmul(&l.w1);
        add_bias_infer(&mut up, &l.b1);
        gelu_infer(&mut up);
        let mut down = up.matmul(&l.w2);
        add_bias_infer(&mut down, &l.b2);
        x.add_assign(&down);
    }
    let xf = layer_norm_infer(&x, &params.lnf_g, &params.lnf_b);
    let logits = xf.matmul(&params.head);
    logits.submatrix(tn - 1, 0, 1, params.config.vocab)
}

/// Teacher-forced logits for a whole sequence (`T x vocab`), no cache.
pub fn forward_full(params: &Params, ids: &[usize]) -> Matrix {
    let mut tape = Tape::new();
    let nodes = ParamNodes::register(&mut tape, params);
    let logits = forward_graph(&mut tape, &nodes, &params.config, ids);
    tape.value(logits).clone()
}

/// Inference forward that also records the input activation of every linear
/// projection, keyed by the projection's stable parameter name.
///
/// The recorded matrix for `layerN.wq` is the `(T, d)` input that gets
/// multiplied by `wq` — exactly the `X` the OBS compression solver needs.
/// Returns the final logits alongside the recordings.
pub fn forward_probe(
    params: &Params,
    ids: &[usize],
    record: &mut dyn FnMut(&str, &Matrix),
) -> Matrix {
    let config = &params.config;
    assert!(!ids.is_empty() && ids.len() <= config.max_seq);
    let t = ids.len();
    let d = config.d_model;
    let mut x = Matrix::zeros(t, d);
    for (r, &id) in ids.iter().enumerate() {
        let dst = x.row_mut(r);
        for (c, v) in dst.iter_mut().enumerate() {
            *v = params.tok_emb.get(id, c) + params.pos_emb.get(r, c);
        }
    }
    let heads = config.n_heads;
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    for (li, l) in params.layers.iter().enumerate() {
        let h = layer_norm_infer(&x, &l.ln1_g, &l.ln1_b);
        record(&format!("layer{li}.wq"), &h);
        record(&format!("layer{li}.wk"), &h);
        record(&format!("layer{li}.wv"), &h);
        let mut q = h.matmul(&l.wq);
        add_bias_infer(&mut q, &l.bq);
        let mut k = h.matmul(&l.wk);
        add_bias_infer(&mut k, &l.bk);
        let mut v = h.matmul(&l.wv);
        add_bias_infer(&mut v, &l.bv);
        // Full causal attention (no cache needed for probing).
        let mut attn_out = Matrix::zeros(t, d);
        for hi in 0..heads {
            for r in 0..t {
                let mut scores = vec![0.0f32; r + 1];
                for (j, s) in scores.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for c in 0..dh {
                        acc += q.get(r, hi * dh + c) * k.get(j, hi * dh + c);
                    }
                    *s = acc * scale;
                }
                let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for s in scores.iter_mut() {
                    *s = (*s - max).exp();
                    sum += *s;
                }
                let inv = 1.0 / sum;
                for c in 0..dh {
                    let mut acc = 0.0f32;
                    for (j, s) in scores.iter().enumerate() {
                        acc += s * inv * v.get(j, hi * dh + c);
                    }
                    attn_out.set(r, hi * dh + c, acc);
                }
            }
        }
        record(&format!("layer{li}.wo"), &attn_out);
        let mut proj = attn_out.matmul(&l.wo);
        add_bias_infer(&mut proj, &l.bo);
        x.add_assign(&proj);
        let h2 = layer_norm_infer(&x, &l.ln2_g, &l.ln2_b);
        record(&format!("layer{li}.w1"), &h2);
        let mut up = h2.matmul(&l.w1);
        add_bias_infer(&mut up, &l.b1);
        gelu_infer(&mut up);
        record(&format!("layer{li}.w2"), &up);
        let mut down = up.matmul(&l.w2);
        add_bias_infer(&mut down, &l.b2);
        x.add_assign(&down);
    }
    let xf = layer_norm_infer(&x, &params.lnf_g, &params.lnf_b);
    xf.matmul(&params.head)
}

/// A tiny config for unit tests.
pub fn test_config() -> ModelConfig {
    ModelConfig {
        vocab: crate::vocab::MIN_VOCAB,
        d_model: 16,
        n_layers: 2,
        n_heads: 2,
        d_ff: 32,
        max_seq: 24,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_count_matches_actual_storage() {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let p = Params::init(cfg, &mut rng);
        let mut total = 0usize;
        p.for_each(|_, m| total += m.len());
        assert_eq!(total, cfg.param_count());
    }

    #[test]
    fn for_each_order_is_stable_and_mut_matches() {
        let cfg = test_config();
        let mut rng = Rng::seeded(2);
        let mut p = Params::init(cfg, &mut rng);
        let mut names1 = Vec::new();
        p.for_each(|n, _| names1.push(n.to_string()));
        let mut names2 = Vec::new();
        p.for_each_mut(|n, _| names2.push(n.to_string()));
        assert_eq!(names1, names2);
        assert!(names1.contains(&"layer1.wq".to_string()));
    }

    #[test]
    fn get_set_round_trip() {
        let cfg = test_config();
        let mut rng = Rng::seeded(3);
        let mut p = Params::init(cfg, &mut rng);
        let w = p.get("layer0.wq").unwrap().clone();
        let scaled = w.scale(2.0);
        assert!(p.set("layer0.wq", scaled.clone()));
        assert_eq!(p.get("layer0.wq").unwrap(), &scaled);
        assert!(!p.set("layer9.nope", Matrix::zeros(1, 1)));
        assert!(p.get("bogus").is_none());
    }

    #[test]
    fn forward_full_shapes() {
        let cfg = test_config();
        let mut rng = Rng::seeded(4);
        let p = Params::init(cfg, &mut rng);
        let logits = forward_full(&p, &[1, 2, 3, 4, 5]);
        assert_eq!(logits.shape(), (5, cfg.vocab));
        assert!(logits.all_finite());
    }

    #[test]
    fn kv_cache_matches_full_forward() {
        let cfg = test_config();
        let mut rng = Rng::seeded(5);
        let p = Params::init(cfg, &mut rng);
        let ids = [1usize, 10, 11, 2, 20, 21, 3];
        let full = forward_full(&p, &ids);
        // Incremental: feed the prompt, then one token at a time.
        let mut cache = KvCache::new(cfg.n_layers);
        let mut last = forward_infer(&p, &ids[..3], &mut cache);
        let mut diffs = vec![full.submatrix(2, 0, 1, cfg.vocab).max_abs_diff(&last)];
        for t in 3..ids.len() {
            last = forward_infer(&p, &ids[t..t + 1], &mut cache);
            diffs.push(full.submatrix(t, 0, 1, cfg.vocab).max_abs_diff(&last));
        }
        for (i, d) in diffs.iter().enumerate() {
            assert!(*d < 1e-3, "position {i}: diff {d}");
        }
        assert_eq!(cache.len(), ids.len());
    }

    #[test]
    fn training_grads_flow_to_all_layer_weights() {
        let cfg = test_config();
        let mut rng = Rng::seeded(6);
        let p = Params::init(cfg, &mut rng);
        let mut tape = Tape::new();
        let nodes = ParamNodes::register(&mut tape, &p);
        let ids = [1usize, 10, 11, 12];
        let logits = forward_graph(&mut tape, &nodes, &cfg, &ids);
        let loss = tape.cross_entropy(logits, &[10, 11, 12, 2], &[1.0; 4]);
        tape.backward(loss);
        let mut grads = Params::init(cfg, &mut rng);
        grads.for_each_mut(|_, m| m.scale_assign(0.0));
        nodes.collect_grads(&tape, &mut grads);
        // Every projection in every layer must receive signal.
        for (i, l) in grads.layers.iter().enumerate() {
            for (n, m) in [("wq", &l.wq), ("wv", &l.wv), ("w1", &l.w1), ("w2", &l.w2)] {
                assert!(m.frob_norm() > 0.0, "layer{i}.{n} got zero grad");
            }
        }
        assert!(grads.tok_emb.frob_norm() > 0.0);
        assert!(grads.head.frob_norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn config_validation() {
        ModelConfig {
            vocab: 10,
            d_model: 10,
            n_layers: 1,
            n_heads: 3,
            d_ff: 8,
            max_seq: 8,
        }
        .validate();
    }

    #[test]
    fn fp16_bytes_is_twice_param_count() {
        let cfg = test_config();
        let mut rng = Rng::seeded(7);
        let p = Params::init(cfg, &mut rng);
        assert_eq!(p.fp16_bytes(), 2 * cfg.param_count());
    }
}
