//! RoSA: robust adaptation with low-rank plus sparse adapters (§8).
//!
//! RoSA (Nikdan et al., 2024) augments the LoRA update `(alpha/r) A B` with
//! an unstructured sparse component `S`, so the effective update
//! `Δ = (alpha/r) A B + S` can capture the high-magnitude, localized weight
//! changes a purely low-rank update misses on hard tasks. The paper's §8
//! names RoSA as a method existing LoRA serving systems cannot host but
//! DeltaZip's decoupled architecture can — the serving side lives in
//! `dz-serve::lora` (`sparse_density > 0`).
//!
//! Training follows the RoSA recipe at our scale:
//!
//! 1. **Mask selection** — accumulate dense gradient magnitudes of each
//!    adapted projection over a short warmup, then keep the top `density`
//!    fraction of coordinates as the sparse support.
//! 2. **Joint training** — train `A`, `B` and the masked `S` together with
//!    Adam, projecting `S` back onto its support after every step.

use crate::autograd::{NodeId, Tape};
use crate::lora::{FlatAdam, LoraConfig, LoraPair};
use crate::tasks::Task;
use crate::train::{BatchItem, TrainConfig};
use crate::transformer::Params;
use dz_tensor::{Matrix, Rng};

/// RoSA hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RosaConfig {
    /// The low-rank half (rank, alpha, targets).
    pub lora: LoraConfig,
    /// Fraction of each adapted projection kept in the sparse component.
    pub density: f64,
    /// Gradient-accumulation steps used to pick the sparse support.
    pub mask_warmup_steps: usize,
    /// Learning-rate multiplier for the sparse component relative to the
    /// low-rank pairs (RoSA's recipe allows a separate sparse rate; at the
    /// tiny scales of this repo the shared rate works best, so the default
    /// is 1.0).
    pub sparse_lr_scale: f32,
}

impl RosaConfig {
    /// The default recipe: LoRA rank `r` plus a `density` sparse component
    /// trained at the shared learning rate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < density <= 1`.
    pub fn new(rank: usize, density: f64) -> Self {
        assert!(
            density > 0.0 && density <= 1.0,
            "density must be in (0, 1], got {density}"
        );
        RosaConfig {
            lora: LoraConfig::rank(rank),
            density,
            mask_warmup_steps: 4,
            sparse_lr_scale: 1.0,
        }
    }
}

/// The sparse half of one adapted projection.
#[derive(Debug, Clone)]
pub struct SparseComponent {
    /// Stable parameter name of the adapted base weight.
    pub name: String,
    /// Dense storage of the sparse values (zeros off-support).
    pub values: Matrix,
    /// 0/1 support mask, same shape as `values`.
    pub mask: Matrix,
}

impl SparseComponent {
    /// Number of entries on the support.
    pub fn nnz(&self) -> usize {
        self.mask.data().iter().filter(|&&m| m != 0.0).count()
    }

    /// Projects the values back onto the support.
    fn project(&mut self) {
        let mask = self.mask.clone();
        for (v, m) in self.values.data_mut().iter_mut().zip(mask.data()) {
            if *m == 0.0 {
                *v = 0.0;
            }
        }
    }
}

/// A full RoSA adapter: low-rank pairs plus sparse components, in layer
/// order.
#[derive(Debug, Clone)]
pub struct RosaAdapter {
    /// Configuration used to build the adapter.
    pub config: RosaConfig,
    /// The low-rank pairs (shared layout with plain LoRA).
    pub pairs: Vec<LoraPair>,
    /// The sparse components, parallel to `pairs`.
    pub sparse: Vec<SparseComponent>,
}

impl RosaAdapter {
    /// Initializes an adapter for `params`: `A` random, `B` zero, `S` zero
    /// with an empty mask (filled by warmup during training).
    pub fn init(params: &Params, config: RosaConfig, rng: &mut Rng) -> Self {
        let lora = crate::lora::LoraAdapter::init(params, config.lora, rng);
        let sparse = lora
            .pairs
            .iter()
            .map(|p| {
                let w = params.get(&p.name).expect("target exists");
                SparseComponent {
                    name: p.name.clone(),
                    values: Matrix::zeros(w.rows(), w.cols()),
                    mask: Matrix::zeros(w.rows(), w.cols()),
                }
            })
            .collect();
        RosaAdapter {
            config,
            pairs: lora.pairs,
            sparse,
        }
    }

    /// Effective low-rank scale `alpha / rank`.
    pub fn scale(&self) -> f32 {
        self.config.lora.alpha / self.config.lora.rank as f32
    }

    /// Parameter count: low-rank entries plus sparse non-zeros.
    pub fn param_count(&self) -> usize {
        let lr: usize = self.pairs.iter().map(|p| p.a.len() + p.b.len()).sum();
        let sp: usize = self.sparse.iter().map(SparseComponent::nnz).sum();
        lr + sp
    }

    /// Serving bytes: FP16 low-rank entries plus FP16 value + 32-bit
    /// coordinate per sparse non-zero.
    pub fn serving_bytes(&self) -> usize {
        let lr: usize = self.pairs.iter().map(|p| (p.a.len() + p.b.len()) * 2).sum();
        let sp: usize = self.sparse.iter().map(|s| s.nnz() * 6).sum();
        lr + sp
    }

    /// Merges the adapter into a copy of the base parameters.
    pub fn merge(&self, base: &Params) -> Params {
        let mut out = base.clone();
        let s = self.scale();
        for (pair, sparse) in self.pairs.iter().zip(&self.sparse) {
            let mut delta = pair.a.matmul(&pair.b).scale(s);
            delta.add_assign(&sparse.values);
            let w = out.get(&pair.name).expect("target exists").add(&delta);
            out.set(&pair.name, w);
        }
        out
    }
}

/// Per-pair tape nodes: `(A, B, S)`.
type RosaNodes = Vec<(NodeId, NodeId, NodeId)>;

fn forward_graph_rosa(
    tape: &mut Tape,
    base: &Params,
    adapter: &RosaAdapter,
    ids: &[usize],
) -> (NodeId, RosaNodes) {
    let scale = adapter.scale();
    let mut nodes: RosaNodes = Vec::with_capacity(adapter.pairs.len());
    for (pair, sparse) in adapter.pairs.iter().zip(&adapter.sparse) {
        let a = tape.leaf(pair.a.clone());
        let b = tape.leaf(pair.b.clone());
        let s = tape.leaf(sparse.values.clone());
        nodes.push((a, b, s));
    }
    let find = |name: &str| -> Option<usize> { adapter.pairs.iter().position(|p| p.name == name) };
    let logits = crate::adapted::adapted_forward(tape, base, ids, |tape, h, w, bias, name| {
        let wn = tape.leaf_no_grad(w.clone());
        let bn = tape.leaf_no_grad(bias.clone());
        let y0 = tape.matmul(h, wn);
        let y = tape.add_bias(y0, bn);
        if let Some(idx) = find(name) {
            let (an, bn2, sn) = nodes[idx];
            let ha = tape.matmul(h, an);
            let hab = tape.matmul(ha, bn2);
            let scaled = tape.scale(hab, scale);
            let y1 = tape.add(y, scaled);
            let hs = tape.matmul(h, sn);
            tape.add(y1, hs)
        } else {
            y
        }
    });
    (logits, nodes)
}

/// Accumulates |grad S| over warmup batches and fixes each component's
/// support to its top `density` fraction of coordinates.
fn select_masks(
    base: &Params,
    adapter: &mut RosaAdapter,
    task: &dyn Task,
    cfg: &TrainConfig,
    rng: &mut Rng,
) {
    let mut salience: Vec<Matrix> = adapter
        .sparse
        .iter()
        .map(|s| Matrix::zeros(s.values.rows(), s.values.cols()))
        .collect();
    for _ in 0..adapter.config.mask_warmup_steps {
        for _ in 0..cfg.batch {
            let ex = task.sample(rng);
            let item = BatchItem::task(ex.tokens, ex.answer_len);
            let n = item.tokens.len();
            let mut tape = Tape::new();
            let (logits, nodes) =
                forward_graph_rosa(&mut tape, base, adapter, &item.tokens[..n - 1]);
            let loss = tape.cross_entropy(logits, &item.tokens[1..], &item.weights);
            tape.backward(loss);
            for (si, &(_, _, sn)) in nodes.iter().enumerate() {
                if let Some(g) = tape.grad(sn) {
                    for (acc, gv) in salience[si].data_mut().iter_mut().zip(g.data()) {
                        *acc += gv.abs();
                    }
                }
            }
        }
    }
    for (sparse, sal) in adapter.sparse.iter_mut().zip(&salience) {
        let keep = ((sal.len() as f64 * adapter.config.density).round() as usize).max(1);
        let mut order: Vec<usize> = (0..sal.len()).collect();
        order.sort_by(|&a, &b| {
            sal.data()[b]
                .partial_cmp(&sal.data()[a])
                .expect("finite salience")
        });
        let mut mask = Matrix::zeros(sparse.mask.rows(), sparse.mask.cols());
        for &idx in order.iter().take(keep) {
            mask.data_mut()[idx] = 1.0;
        }
        sparse.mask = mask;
    }
}

/// Trains a RoSA adapter on a task with the base frozen; returns step
/// losses of the joint phase.
pub fn finetune_rosa(
    base: &Params,
    adapter: &mut RosaAdapter,
    task: &dyn Task,
    cfg: TrainConfig,
) -> Vec<f32> {
    let mut rng = Rng::seeded(cfg.seed);
    select_masks(base, adapter, task, &cfg, &mut rng);
    let tensor_refs: Vec<&Matrix> = adapter
        .pairs
        .iter()
        .zip(&adapter.sparse)
        .flat_map(|(p, s)| [&p.a, &p.b, &s.values])
        .collect();
    let scales: Vec<f32> = adapter
        .pairs
        .iter()
        .flat_map(|_| [1.0, 1.0, adapter.config.sparse_lr_scale])
        .collect();
    let mut opt = FlatAdam::with_lr_scales(&tensor_refs, cfg.lr, scales);
    drop(tensor_refs);
    let mut losses = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let mut grads: Vec<Matrix> = adapter
            .pairs
            .iter()
            .zip(&adapter.sparse)
            .flat_map(|(p, s)| {
                [
                    Matrix::zeros(p.a.rows(), p.a.cols()),
                    Matrix::zeros(p.b.rows(), p.b.cols()),
                    Matrix::zeros(s.values.rows(), s.values.cols()),
                ]
            })
            .collect();
        let mut loss_sum = 0.0f32;
        for _ in 0..cfg.batch {
            let ex = task.sample(&mut rng);
            let item = BatchItem::task(ex.tokens, ex.answer_len);
            let n = item.tokens.len();
            let mut tape = Tape::new();
            let (logits, nodes) =
                forward_graph_rosa(&mut tape, base, adapter, &item.tokens[..n - 1]);
            let loss = tape.cross_entropy(logits, &item.tokens[1..], &item.weights);
            loss_sum += tape.value(loss).get(0, 0);
            tape.backward(loss);
            for (pi, &(an, bn, sn)) in nodes.iter().enumerate() {
                for (slot, node) in [(0, an), (1, bn), (2, sn)] {
                    if let Some(g) = tape.grad(node) {
                        grads[3 * pi + slot].add_assign(g);
                    }
                }
            }
        }
        // Mask the sparse gradients so Adam moments never leave the
        // support, then average over the batch.
        for (pi, sparse) in adapter.sparse.iter().enumerate() {
            let g = &mut grads[3 * pi + 2];
            for (gv, m) in g.data_mut().iter_mut().zip(sparse.mask.data()) {
                *gv *= m;
            }
        }
        for g in &mut grads {
            g.scale_assign(1.0 / cfg.batch as f32);
        }
        let params_mut: Vec<&mut Matrix> = adapter
            .pairs
            .iter_mut()
            .zip(&mut adapter.sparse)
            .flat_map(|(p, s)| [&mut p.a, &mut p.b, &mut s.values])
            .collect();
        opt.step(params_mut, &grads);
        for sparse in &mut adapter.sparse {
            sparse.project();
        }
        losses.push(loss_sum / cfg.batch as f32);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{Corpus, RecallTask};
    use crate::train::pretrain;
    use crate::transformer::test_config;

    #[test]
    fn fresh_adapter_is_identity() {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let base = Params::init(cfg, &mut rng);
        let adapter = RosaAdapter::init(&base, RosaConfig::new(4, 0.02), &mut rng);
        let merged = adapter.merge(&base);
        let bts = base.tensors();
        for (a, b) in merged.tensors().into_iter().zip(bts) {
            assert!(a.max_abs_diff(b) < 1e-7);
        }
    }

    #[test]
    fn sparse_support_respects_density() {
        let cfg = crate::transformer::ModelConfig {
            d_model: 32,
            n_heads: 4,
            d_ff: 64,
            ..test_config()
        };
        let mut rng = Rng::seeded(2);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(50));
        let density = 0.05;
        let mut adapter = RosaAdapter::init(&base, RosaConfig::new(4, density), &mut rng);
        finetune_rosa(
            &base,
            &mut adapter,
            &RecallTask,
            TrainConfig {
                steps: 5,
                batch: 4,
                lr: 1e-2,
                clip: 1.0,
                seed: 3,
            },
        );
        for s in &adapter.sparse {
            let expected = ((s.values.len() as f64 * density).round() as usize).max(1);
            assert_eq!(s.nnz(), expected, "support size for {}", s.name);
            // Off-support values stay exactly zero.
            for (v, m) in s.values.data().iter().zip(s.mask.data()) {
                if *m == 0.0 {
                    assert_eq!(*v, 0.0);
                }
            }
        }
    }

    #[test]
    fn rosa_learns_and_beats_its_own_lora_half_budget() {
        // The claim behind RoSA: at similar adapter budget, low-rank+sparse
        // reaches at least the quality of the pure low-rank update. At this
        // scale we assert RoSA learns the task well above chance.
        let cfg = crate::transformer::ModelConfig {
            d_model: 32,
            n_heads: 4,
            d_ff: 64,
            ..test_config()
        };
        let mut rng = Rng::seeded(4);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = Corpus::new(cfg.max_seq);
        pretrain(&mut base, &corpus, TrainConfig::pretrain(300));
        let mut adapter = RosaAdapter::init(&base, RosaConfig::new(8, 0.05), &mut rng);
        let losses = finetune_rosa(
            &base,
            &mut adapter,
            &RecallTask,
            TrainConfig {
                steps: 400,
                batch: 8,
                lr: 1e-2,
                clip: 1.0,
                seed: 5,
            },
        );
        let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(late < early, "rosa loss {early} -> {late}");
        let merged = adapter.merge(&base);
        let acc =
            crate::eval::task_accuracy(&merged, &RecallTask, 200, &mut dz_tensor::Rng::seeded(6));
        assert!(acc > 0.6, "rosa accuracy {acc}");
    }

    #[test]
    fn serving_bytes_count_low_rank_and_sparse() {
        let cfg = test_config();
        let mut rng = Rng::seeded(7);
        let base = Params::init(cfg, &mut rng);
        let mut adapter = RosaAdapter::init(&base, RosaConfig::new(2, 0.01), &mut rng);
        // Empty mask: bytes are the low-rank half only.
        let lr_bytes: usize = adapter
            .pairs
            .iter()
            .map(|p| (p.a.len() + p.b.len()) * 2)
            .sum();
        assert_eq!(adapter.serving_bytes(), lr_bytes);
        // Fill one support entry: 6 more bytes.
        adapter.sparse[0].mask.data_mut()[0] = 1.0;
        assert_eq!(adapter.serving_bytes(), lr_bytes + 6);
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn zero_density_is_rejected() {
        let _ = RosaConfig::new(4, 0.0);
    }
}
