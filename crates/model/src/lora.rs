//! Low-rank adaptation (LoRA), the PEFT baseline.
//!
//! Each adapted projection `W (m x n)` gains a pair `A (m x r)`, `B (r x n)`
//! applied as `h W + (alpha / r) (h A) B` with the base frozen. `A` is
//! random-normal, `B` starts at zero so training begins at the base model.
//! Rank caps the expressiveness of the update — which is exactly why LoRA
//! trails full-model tuning on the hard tasks (Figure 2 of the paper).

use crate::autograd::{NodeId, Tape};
use crate::tasks::Task;
use crate::train::{BatchItem, TrainConfig};
use crate::transformer::{ModelConfig, Params};
use dz_tensor::{Matrix, Rng};

/// Which projections receive adapters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoraTargets {
    /// Only `wq` and `wv` (the classic recipe).
    AttentionQv,
    /// All six linear projections per layer.
    AllLinear,
}

/// LoRA hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoraConfig {
    /// Adapter rank.
    pub rank: usize,
    /// Scaling numerator; the effective scale is `alpha / rank`.
    pub alpha: f32,
    /// Which projections to adapt.
    pub targets: LoraTargets,
}

impl LoraConfig {
    /// The classic `r`-rank attention-only configuration.
    pub fn rank(rank: usize) -> Self {
        LoraConfig {
            rank,
            alpha: 2.0 * rank as f32,
            targets: LoraTargets::AllLinear,
        }
    }
}

/// One adapted projection.
#[derive(Debug, Clone)]
pub struct LoraPair {
    /// Stable parameter name of the adapted base weight (e.g. `layer0.wq`).
    pub name: String,
    /// Down projection `(m, r)`.
    pub a: Matrix,
    /// Up projection `(r, n)`.
    pub b: Matrix,
}

/// A full adapter: one pair per adapted projection.
#[derive(Debug, Clone)]
pub struct LoraAdapter {
    /// Configuration used to build the adapter.
    pub config: LoraConfig,
    /// The adapted pairs in layer order.
    pub pairs: Vec<LoraPair>,
}

fn target_names(model: &ModelConfig, targets: LoraTargets) -> Vec<String> {
    let fields: &[&str] = match targets {
        LoraTargets::AttentionQv => &["wq", "wv"],
        LoraTargets::AllLinear => &["wq", "wk", "wv", "wo", "w1", "w2"],
    };
    let mut out = Vec::new();
    for i in 0..model.n_layers {
        for f in fields {
            out.push(format!("layer{i}.{f}"));
        }
    }
    out
}

impl LoraAdapter {
    /// Initializes adapters for `params` (A random, B zero).
    pub fn init(params: &Params, config: LoraConfig, rng: &mut Rng) -> Self {
        let pairs = target_names(&params.config, config.targets)
            .into_iter()
            .map(|name| {
                let w = params.get(&name).expect("target exists");
                LoraPair {
                    a: Matrix::randn(w.rows(), config.rank, 0.05, rng),
                    b: Matrix::zeros(config.rank, w.cols()),
                    name,
                }
            })
            .collect();
        LoraAdapter { config, pairs }
    }

    /// Effective scale `alpha / rank`.
    pub fn scale(&self) -> f32 {
        self.config.alpha / self.config.rank as f32
    }

    /// Parameter count of the adapter.
    pub fn param_count(&self) -> usize {
        self.pairs.iter().map(|p| p.a.len() + p.b.len()).sum()
    }

    /// Bytes at FP16 (the paper's adapter serving precision).
    pub fn fp16_bytes(&self) -> usize {
        self.param_count() * 2
    }

    /// Merges the adapter into a copy of the base parameters.
    pub fn merge(&self, base: &Params) -> Params {
        let mut out = base.clone();
        let s = self.scale();
        for p in &self.pairs {
            let delta = p.a.matmul(&p.b).scale(s);
            let w = out.get(&p.name).expect("target exists").add(&delta);
            out.set(&p.name, w);
        }
        out
    }

    /// The dense delta the adapter represents (for size accounting).
    pub fn dense_delta_bytes_fp16(&self, base: &Params) -> usize {
        let mut total = 0usize;
        for p in &self.pairs {
            let w = base.get(&p.name).expect("target exists");
            total += w.len() * 2;
        }
        total
    }
}

/// Adam over a flat list of matrices (used for adapter training).
pub struct FlatAdam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Per-tensor learning-rate multipliers (1.0 = the base rate).
    scales: Vec<f32>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
}

impl FlatAdam {
    /// Creates state shaped like `tensors`.
    pub fn new(tensors: &[&Matrix], lr: f32) -> Self {
        Self::with_lr_scales(tensors, lr, vec![1.0; tensors.len()])
    }

    /// Creates state with a per-tensor learning-rate multiplier (RoSA
    /// trains its sparse component slower than the low-rank pairs).
    ///
    /// # Panics
    ///
    /// Panics if `scales` does not match `tensors`.
    pub fn with_lr_scales(tensors: &[&Matrix], lr: f32, scales: Vec<f32>) -> Self {
        assert_eq!(tensors.len(), scales.len(), "one scale per tensor");
        let zeros: Vec<Matrix> = tensors
            .iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        FlatAdam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            scales,
            m: zeros.clone(),
            v: zeros,
            t: 0,
        }
    }

    /// One update step.
    pub fn step(&mut self, params: Vec<&mut Matrix>, grads: &[Matrix]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), scale), (m, v)) in params
            .into_iter()
            .zip(grads.iter())
            .zip(self.scales.iter())
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let lr = self.lr * scale;
            for ((pw, gw), (mw, vw)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data().iter())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mw = self.beta1 * *mw + (1.0 - self.beta1) * gw;
                *vw = self.beta2 * *vw + (1.0 - self.beta2) * gw * gw;
                *pw -= lr * (*mw / bc1) / ((*vw / bc2).sqrt() + self.eps);
            }
        }
    }
}

/// Builds the LoRA forward graph and returns `(logits, adapter node ids)`.
fn forward_graph_lora(
    tape: &mut Tape,
    base: &Params,
    adapter: &LoraAdapter,
    ids: &[usize],
) -> (NodeId, Vec<(NodeId, NodeId)>) {
    let scale = adapter.scale();
    // Leaves for adapter pairs, addressable by name.
    let mut pair_nodes: Vec<(NodeId, NodeId)> = Vec::with_capacity(adapter.pairs.len());
    for p in &adapter.pairs {
        let a = tape.leaf(p.a.clone());
        let b = tape.leaf(p.b.clone());
        pair_nodes.push((a, b));
    }
    let find = |name: &str| -> Option<usize> { adapter.pairs.iter().position(|p| p.name == name) };
    // A linear projection with optional adapter; base weights are frozen,
    // so backward skips their (dominant) gradient matmuls entirely.
    let logits = crate::adapted::adapted_forward(tape, base, ids, |tape, h, w, bias, name| {
        let wn = tape.leaf_no_grad(w.clone());
        let bn = tape.leaf_no_grad(bias.clone());
        let y0 = tape.matmul(h, wn);
        let y = tape.add_bias(y0, bn);
        if let Some(idx) = find(name) {
            let (an, bn2) = pair_nodes[idx];
            let ha = tape.matmul(h, an);
            let hab = tape.matmul(ha, bn2);
            let scaled = tape.scale(hab, scale);
            tape.add(y, scaled)
        } else {
            y
        }
    });
    (logits, pair_nodes)
}

/// Trains the adapter on a task with the base frozen; returns step losses.
pub fn finetune_lora(
    base: &Params,
    adapter: &mut LoraAdapter,
    task: &dyn Task,
    cfg: TrainConfig,
) -> Vec<f32> {
    let mut rng = Rng::seeded(cfg.seed);
    let tensor_refs: Vec<&Matrix> = adapter.pairs.iter().flat_map(|p| [&p.a, &p.b]).collect();
    let mut opt = FlatAdam::new(&tensor_refs, cfg.lr);
    drop(tensor_refs);
    let mut losses = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let mut grads: Vec<Matrix> = adapter
            .pairs
            .iter()
            .flat_map(|p| {
                [
                    Matrix::zeros(p.a.rows(), p.a.cols()),
                    Matrix::zeros(p.b.rows(), p.b.cols()),
                ]
            })
            .collect();
        let mut loss_sum = 0.0f32;
        for _ in 0..cfg.batch {
            let ex = task.sample(&mut rng);
            let item = BatchItem::task(ex.tokens, ex.answer_len);
            let n = item.tokens.len();
            let mut tape = Tape::new();
            let (logits, pair_nodes) =
                forward_graph_lora(&mut tape, base, adapter, &item.tokens[..n - 1]);
            let loss = tape.cross_entropy(logits, &item.tokens[1..], &item.weights);
            loss_sum += tape.value(loss).get(0, 0);
            tape.backward(loss);
            for (pi, (an, bn)) in pair_nodes.iter().enumerate() {
                if let Some(g) = tape.grad(*an) {
                    grads[2 * pi].add_assign(g);
                }
                if let Some(g) = tape.grad(*bn) {
                    grads[2 * pi + 1].add_assign(g);
                }
            }
        }
        for g in &mut grads {
            g.scale_assign(1.0 / cfg.batch as f32);
        }
        let params_mut: Vec<&mut Matrix> = adapter
            .pairs
            .iter_mut()
            .flat_map(|p| [&mut p.a, &mut p.b])
            .collect();
        opt.step(params_mut, &grads);
        losses.push(loss_sum / cfg.batch as f32);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::RecallTask;
    use crate::transformer::test_config;

    #[test]
    fn fresh_adapter_is_identity() {
        let cfg = test_config();
        let mut rng = Rng::seeded(1);
        let base = Params::init(cfg, &mut rng);
        let adapter = LoraAdapter::init(&base, LoraConfig::rank(4), &mut rng);
        // B = 0 means merge(base) == base.
        let merged = adapter.merge(&base);
        let bts = base.tensors();
        for (a, b) in merged.tensors().into_iter().zip(bts) {
            assert!(a.max_abs_diff(b) < 1e-7);
        }
    }

    #[test]
    fn adapter_is_much_smaller_than_dense_delta() {
        let cfg = test_config();
        let mut rng = Rng::seeded(2);
        let base = Params::init(cfg, &mut rng);
        let adapter = LoraAdapter::init(&base, LoraConfig::rank(2), &mut rng);
        assert!(adapter.fp16_bytes() * 2 < adapter.dense_delta_bytes_fp16(&base));
    }

    #[test]
    fn lora_learns_easy_task_while_base_is_frozen() {
        // LoRA presumes a pretrained base whose features the low-rank update
        // can recombine; give it a learning-sized one.
        let cfg = crate::transformer::ModelConfig {
            d_model: 32,
            n_heads: 4,
            d_ff: 64,
            ..test_config()
        };
        let mut rng = Rng::seeded(3);
        let mut base = Params::init(cfg, &mut rng);
        let corpus = crate::tasks::Corpus::new(cfg.max_seq);
        crate::train::pretrain(&mut base, &corpus, crate::train::TrainConfig::pretrain(300));
        let base_snapshot = base.clone();
        let mut adapter = LoraAdapter::init(&base, LoraConfig::rank(8), &mut rng);
        let losses = finetune_lora(
            &base,
            &mut adapter,
            &RecallTask,
            TrainConfig {
                steps: 500,
                batch: 8,
                lr: 1e-2,
                clip: 1.0,
                seed: 5,
            },
        );
        let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        // The pretrained base already predicts the label format, so the
        // starting loss is low; require improvement, not a fixed ratio.
        assert!(late < early, "lora loss {early} -> {late}");
        // Base untouched.
        let bts = base_snapshot.tensors();
        for (a, b) in base.tensors().into_iter().zip(bts) {
            assert_eq!(a, b);
        }
        // Merged model learns the token association well above chance.
        let merged = adapter.merge(&base);
        let acc = crate::eval::task_accuracy(&merged, &RecallTask, 200, &mut Rng::seeded(6));
        assert!(acc > 0.6, "lora accuracy {acc}");
    }

    #[test]
    fn target_selection_respects_config() {
        let cfg = test_config();
        let mut rng = Rng::seeded(4);
        let base = Params::init(cfg, &mut rng);
        let qv = LoraAdapter::init(
            &base,
            LoraConfig {
                rank: 2,
                alpha: 4.0,
                targets: LoraTargets::AttentionQv,
            },
            &mut rng,
        );
        assert_eq!(qv.pairs.len(), 2 * cfg.n_layers);
        let all = LoraAdapter::init(&base, LoraConfig::rank(2), &mut rng);
        assert_eq!(all.pairs.len(), 6 * cfg.n_layers);
    }
}
