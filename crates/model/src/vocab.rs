//! The shared synthetic vocabulary.
//!
//! All models in the reproduction share one token space so that tasks,
//! corpora, and models compose freely (exactly like real LLM families share
//! a tokenizer). The layout reserves low ids for control tokens, then
//! digits, then answer labels, then a bank of "word" tokens used by the
//! corpus generator and the classification tasks.

/// Padding token.
pub const PAD: usize = 0;
/// Beginning-of-sequence token.
pub const BOS: usize = 1;
/// Separator between task fields.
pub const SEP: usize = 2;
/// "=" token used by arithmetic tasks.
pub const EQUALS: usize = 3;
/// Query marker used by recall tasks.
pub const QUERY: usize = 4;
/// "yes" answer label.
pub const YES: usize = 5;
/// "no" answer label.
pub const NO: usize = 6;
/// "positive" answer label.
pub const POS: usize = 7;
/// "negative" answer label.
pub const NEG: usize = 8;
/// "+" operator token.
pub const PLUS: usize = 9;

/// First digit token; digit `d` is `DIGIT0 + d`.
pub const DIGIT0: usize = 10;

/// First generic word token.
pub const WORD0: usize = 20;

/// Number of generic word tokens.
pub const NUM_WORDS: usize = 40;

/// Smallest vocabulary size that contains every token above.
pub const MIN_VOCAB: usize = WORD0 + NUM_WORDS;

/// Token id for digit `d` (0..=9).
///
/// # Panics
///
/// Panics if `d > 9`.
pub fn digit(d: usize) -> usize {
    assert!(d <= 9, "digit out of range");
    DIGIT0 + d
}

/// Token id for word index `w`.
///
/// # Panics
///
/// Panics if `w >= NUM_WORDS`.
pub fn word(w: usize) -> usize {
    assert!(w < NUM_WORDS, "word index out of range");
    WORD0 + w
}

/// Human-readable rendering of a token id, for demos and debugging.
pub fn render(tok: usize) -> String {
    match tok {
        PAD => "<pad>".into(),
        BOS => "<bos>".into(),
        SEP => "|".into(),
        EQUALS => "=".into(),
        QUERY => "?".into(),
        YES => "yes".into(),
        NO => "no".into(),
        POS => "pos".into(),
        NEG => "neg".into(),
        PLUS => "+".into(),
        d if (DIGIT0..DIGIT0 + 10).contains(&d) => format!("{}", d - DIGIT0),
        w if (WORD0..WORD0 + NUM_WORDS).contains(&w) => format!("w{}", w - WORD0),
        other => format!("<{other}>"),
    }
}

/// Renders a token sequence as a readable string.
pub fn render_seq(toks: &[usize]) -> String {
    toks.iter()
        .map(|&t| render(t))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_ids_do_not_collide() {
        let mut ids = vec![PAD, BOS, SEP, EQUALS, QUERY, YES, NO, POS, NEG, PLUS];
        for d in 0..10 {
            ids.push(digit(d));
        }
        for w in 0..NUM_WORDS {
            ids.push(word(w));
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate token ids");
        assert!(ids.iter().all(|&i| i < MIN_VOCAB));
    }

    #[test]
    fn render_round_trips_visually() {
        assert_eq!(render(digit(7)), "7");
        assert_eq!(render(word(0)), "w0");
        assert_eq!(render(YES), "yes");
        assert_eq!(render_seq(&[BOS, digit(1), PLUS, digit(2)]), "<bos> 1 + 2");
    }

    #[test]
    #[should_panic(expected = "digit out of range")]
    fn digit_bounds() {
        let _ = digit(10);
    }
}
