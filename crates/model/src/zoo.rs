//! Named model-family presets mirroring the paper's evaluation models.
//!
//! Each preset is a tiny transformer whose *relative* proportions echo the
//! paper's model list. The Gemma analogs use a 4x larger vocabulary at the
//! same width, reproducing the paper's observation that Gemma-2's
//! embedding-heavy parameter budget caps the achievable whole-model
//! compression ratio (embeddings are not compressed).

use crate::transformer::ModelConfig;
use crate::vocab::MIN_VOCAB;

/// A named preset plus its paper analog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelPreset {
    /// Stable preset name.
    pub name: &'static str,
    /// Which paper model this stands in for.
    pub paper_analog: &'static str,
    /// Model family (presets in one family share a tokenizer/vocab).
    pub family: &'static str,
    /// The hyper-parameters.
    pub config: ModelConfig,
}

/// Standard vocabulary for the Llama/Pythia-analog families.
pub const VOCAB_STD: usize = MIN_VOCAB; // 60
/// Enlarged vocabulary for the Gemma-analog family (embedding heavy).
pub const VOCAB_LARGE: usize = 4 * MIN_VOCAB; // 240

/// All presets in evaluation order (matches Table 1 of the paper).
pub fn presets() -> Vec<ModelPreset> {
    vec![
        ModelPreset {
            name: "pythia-tiny",
            paper_analog: "Pythia-2.8B",
            family: "pythia",
            config: ModelConfig {
                vocab: VOCAB_STD,
                d_model: 32,
                n_layers: 2,
                n_heads: 2,
                d_ff: 64,
                max_seq: 24,
            },
        },
        ModelPreset {
            name: "llama-tiny-s",
            paper_analog: "Llama-2 7B",
            family: "llama",
            config: ModelConfig {
                vocab: VOCAB_STD,
                d_model: 48,
                n_layers: 3,
                n_heads: 4,
                d_ff: 96,
                max_seq: 24,
            },
        },
        ModelPreset {
            name: "llama-tiny-m",
            paper_analog: "Llama-2 13B",
            family: "llama",
            config: ModelConfig {
                vocab: VOCAB_STD,
                d_model: 64,
                n_layers: 4,
                n_heads: 4,
                d_ff: 128,
                max_seq: 24,
            },
        },
        ModelPreset {
            name: "llama-tiny-l",
            paper_analog: "Llama-2 70B",
            family: "llama",
            config: ModelConfig {
                vocab: VOCAB_STD,
                d_model: 96,
                n_layers: 5,
                n_heads: 6,
                d_ff: 192,
                max_seq: 24,
            },
        },
        ModelPreset {
            name: "gemma-tiny-s",
            paper_analog: "Gemma 2 2B",
            family: "gemma",
            config: ModelConfig {
                vocab: VOCAB_LARGE,
                d_model: 32,
                n_layers: 2,
                n_heads: 2,
                d_ff: 64,
                max_seq: 24,
            },
        },
        ModelPreset {
            name: "gemma-tiny-m",
            paper_analog: "Gemma 2 9B",
            family: "gemma",
            config: ModelConfig {
                vocab: VOCAB_LARGE,
                d_model: 48,
                n_layers: 3,
                n_heads: 4,
                d_ff: 96,
                max_seq: 24,
            },
        },
        ModelPreset {
            name: "openllama-tiny",
            paper_analog: "OpenLlama 3B",
            family: "llama",
            config: ModelConfig {
                vocab: VOCAB_STD,
                d_model: 40,
                n_layers: 3,
                n_heads: 4,
                d_ff: 80,
                max_seq: 24,
            },
        },
    ]
}

/// Looks up a preset by name.
pub fn preset(name: &str) -> Option<ModelPreset> {
    presets().into_iter().find(|p| p.name == name)
}

/// Fraction of parameters in embedding tables (not compressed by ΔCompress).
pub fn embedding_fraction(config: &ModelConfig) -> f64 {
    let emb = (config.vocab + config.max_seq + config.vocab) * config.d_model;
    emb as f64 / config.param_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_unique() {
        let ps = presets();
        for p in &ps {
            p.config.validate();
        }
        let mut names: Vec<_> = ps.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ps.len());
    }

    #[test]
    fn llama_sizes_are_ordered() {
        let s = preset("llama-tiny-s").unwrap().config.param_count();
        let m = preset("llama-tiny-m").unwrap().config.param_count();
        let l = preset("llama-tiny-l").unwrap().config.param_count();
        assert!(s < m && m < l, "{s} {m} {l}");
    }

    #[test]
    fn gemma_is_embedding_heavy() {
        let llama = preset("llama-tiny-s").unwrap();
        let gemma = preset("gemma-tiny-s").unwrap();
        assert!(
            embedding_fraction(&gemma.config) > 1.5 * embedding_fraction(&llama.config),
            "gemma {} vs llama {}",
            embedding_fraction(&gemma.config),
            embedding_fraction(&llama.config)
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(preset("pythia-tiny").is_some());
        assert!(preset("gpt-5").is_none());
    }
}
