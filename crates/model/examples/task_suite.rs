//! Task-suite learnability check: base vs FMT vs LoRA accuracy per task.
//!
//! A quick way to eyeball the graded-difficulty design of the synthetic
//! suite (easy tasks LoRA-learnable, hard ones not); the real experiment
//! drivers live in `dz-bench`.
//!
//! ```text
//! cargo run --release -p dz-model --example task_suite
//! ```

use dz_model::lora::{finetune_lora, LoraAdapter, LoraConfig};
use dz_model::tasks::{all_tasks, Corpus};
use dz_model::train::{finetune_fmt, pretrain, TrainConfig};
use dz_model::transformer::{ModelConfig, Params};
use dz_tensor::Rng;

fn main() {
    let cfg = ModelConfig {
        vocab: 60,
        d_model: 32,
        n_layers: 2,
        n_heads: 4,
        d_ff: 64,
        max_seq: 24,
    };
    let mut rng = Rng::seeded(1);
    let mut base = Params::init(cfg, &mut rng);
    let corpus = Corpus::new(cfg.max_seq);
    println!("pre-training base...");
    pretrain(&mut base, &corpus, TrainConfig::pretrain(400));
    println!(
        "{:<11} {:>6} {:>6} {:>6}  (difficulty)",
        "task", "base", "fmt", "lora"
    );
    for task in all_tasks() {
        let base_acc =
            dz_model::eval::task_accuracy(&base, task.as_ref(), 300, &mut Rng::seeded(2));
        let mut fmt = base.clone();
        finetune_fmt(
            &mut fmt,
            task.as_ref(),
            TrainConfig {
                steps: 1000,
                batch: 8,
                lr: 2e-3,
                clip: 1.0,
                seed: 8,
            },
        );
        let fmt_acc = dz_model::eval::task_accuracy(&fmt, task.as_ref(), 300, &mut Rng::seeded(2));
        let mut adapter = LoraAdapter::init(&base, LoraConfig::rank(8), &mut rng);
        finetune_lora(
            &base,
            &mut adapter,
            task.as_ref(),
            TrainConfig {
                steps: 1000,
                batch: 8,
                lr: 1e-2,
                clip: 1.0,
                seed: 9,
            },
        );
        let lora_acc = dz_model::eval::task_accuracy(
            &adapter.merge(&base),
            task.as_ref(),
            300,
            &mut Rng::seeded(2),
        );
        println!(
            "{:<11} {:>6.3} {:>6.3} {:>6.3}  ({:?})",
            task.name(),
            base_acc,
            fmt_acc,
            lora_acc,
            task.difficulty()
        );
    }
}
