//! Nonstationary workload shapes: diurnal load, flash crowds, drift.
//!
//! [`crate::trace::Trace::generate`] produces stationary traffic: a constant
//! Poisson rate and a popularity distribution that never moves. Real fleets
//! are not so polite — load follows the sun, a cold variant goes viral, and
//! the popular head slowly migrates across the catalog. This module layers a
//! [`Nonstationarity`] shape on top of an ordinary [`TraceSpec`]:
//!
//! * arrivals become a nonhomogeneous Poisson process, sampled exactly by
//!   thinning against the peak rate,
//! * per-arrival model choice re-weights the distribution's static weights
//!   as a closed-form function of time (no hidden schedule state), so a
//!   shaped trace is exactly reproducible from `(spec, shape)`.
//!
//! The shape is `Copy + Serialize`, like `TraceSpec` itself, so experiment
//! configs can embed it and provenance stamps can record it.

use crate::lengths::LengthModel;
use crate::trace::{Request, Trace, TraceSpec};
use dz_tensor::Rng;
use serde::{Deserialize, Serialize};

/// A time-varying structure layered on top of a stationary [`TraceSpec`].
///
/// The spec's `arrival_rate` is the *baseline* rate and its `popularity`
/// supplies the *base* per-model weights; the shape modulates both as
/// closed-form functions of time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Nonstationarity {
    /// Sinusoidal load: `rate(t) = base * (1 + amplitude * sin(2πt/period))`.
    ///
    /// Popularity is unchanged; only the arrival intensity breathes. The
    /// first half of each period is the peak, the second half the trough.
    Diurnal {
        /// Full peak-to-peak cycle length in seconds.
        period_s: f64,
        /// Relative swing in `[0, 1]`; clamped. 0 is stationary, 1 makes
        /// the trough fully dark.
        amplitude: f64,
    },
    /// A cold delta goes viral at `at_s`: the target model's weight is
    /// multiplied by `1 + boost * env(t)` and the fleet-wide arrival rate
    /// surges by `1 + rate_surge * env(t)`, where
    /// `env(t) = exp(-(t - at_s) / decay_s)` for `t >= at_s` and 0 before.
    FlashCrowd {
        /// Model index that goes viral (pick a tail rank so it starts cold).
        model: usize,
        /// Shock onset in seconds.
        at_s: f64,
        /// Peak multiplicative popularity boost for the viral model.
        boost: f64,
        /// Exponential decay constant of the shock, seconds.
        decay_s: f64,
        /// Peak relative surge of the global arrival rate (0 = popularity
        /// shift only, 1 = rate doubles at onset).
        rate_surge: f64,
    },
    /// Popularity drift: the weight vector rotates across the catalog at
    /// `models_per_s` ranks per second, so the head model at time `t` is
    /// rank 0 shifted by `floor(t * models_per_s)` positions.
    Drift {
        /// Rotation speed in model ranks per second.
        models_per_s: f64,
    },
}

impl Nonstationarity {
    /// Instantaneous arrival-rate multiplier at time `t` (relative to the
    /// spec's baseline rate). Always in `(0, peak_rate_factor()]`.
    pub fn rate_factor(&self, t: f64) -> f64 {
        match *self {
            Nonstationarity::Diurnal {
                period_s,
                amplitude,
            } => {
                let a = amplitude.clamp(0.0, 1.0);
                let p = period_s.max(1e-9);
                1.0 + a * (2.0 * std::f64::consts::PI * t / p).sin()
            }
            Nonstationarity::FlashCrowd {
                at_s,
                decay_s,
                rate_surge,
                ..
            } => 1.0 + rate_surge.max(0.0) * envelope(t, at_s, decay_s),
            Nonstationarity::Drift { .. } => 1.0,
        }
    }

    /// Supremum of [`Nonstationarity::rate_factor`] over all `t`; the
    /// thinning bound for exact nonhomogeneous-Poisson sampling.
    pub fn peak_rate_factor(&self) -> f64 {
        match *self {
            Nonstationarity::Diurnal { amplitude, .. } => 1.0 + amplitude.clamp(0.0, 1.0),
            Nonstationarity::FlashCrowd { rate_surge, .. } => 1.0 + rate_surge.max(0.0),
            Nonstationarity::Drift { .. } => 1.0,
        }
    }

    /// Per-model weights at time `t`, derived from the distribution's
    /// static `base` weights.
    pub fn weights_at(&self, base: &[f64], t: f64) -> Vec<f64> {
        match *self {
            Nonstationarity::Diurnal { .. } => base.to_vec(),
            Nonstationarity::FlashCrowd {
                model,
                at_s,
                boost,
                decay_s,
                ..
            } => {
                let mut w = base.to_vec();
                if model < w.len() {
                    w[model] *= 1.0 + boost.max(0.0) * envelope(t, at_s, decay_s);
                }
                w
            }
            Nonstationarity::Drift { models_per_s } => {
                let n = base.len();
                if n == 0 {
                    return Vec::new();
                }
                let shift = (t.max(0.0) * models_per_s.max(0.0)) as usize % n;
                // Model (rank + shift) % n gets the weight of `rank`: the
                // head walks forward through the catalog.
                let mut w = vec![0.0; n];
                for (rank, &b) in base.iter().enumerate() {
                    w[(rank + shift) % n] = b;
                }
                w
            }
        }
    }
}

/// `exp(-(t - at) / decay)` after onset, 0 before; a `decay <= 0` shock is
/// an instantaneous spike (0 everywhere except exactly at onset).
fn envelope(t: f64, at_s: f64, decay_s: f64) -> f64 {
    if t < at_s {
        0.0
    } else if decay_s <= 0.0 {
        if t == at_s {
            1.0
        } else {
            0.0
        }
    } else {
        (-(t - at_s) / decay_s).exp()
    }
}

/// Samples a nonhomogeneous Poisson process with intensity
/// `rate * shape.rate_factor(t)` over `[0, duration_s]` by thinning.
pub fn shaped_arrivals(
    rate: f64,
    duration_s: f64,
    shape: Nonstationarity,
    rng: &mut Rng,
) -> Vec<f64> {
    assert!(rate > 0.0, "arrival rate must be positive");
    assert!(duration_s >= 0.0, "duration must be non-negative");
    let peak = rate * shape.peak_rate_factor();
    let mut out = Vec::with_capacity((rate * duration_s * 1.2) as usize + 4);
    let mut t = 0.0;
    loop {
        t += rng.exponential(peak);
        if t > duration_s {
            break;
        }
        // Accept with probability rate(t) / peak.
        let accept = rate * shape.rate_factor(t) / peak;
        if rng.bernoulli(accept.clamp(0.0, 1.0)) {
            out.push(t);
        }
    }
    out
}

impl Trace {
    /// Generates a trace whose arrivals and popularity follow `shape` on
    /// top of the stationary baseline in `spec`.
    ///
    /// Deterministic in `(spec, shape)`. The shape modulates the
    /// distribution's *static* weights ([`crate::PopularityDist::weights`]);
    /// the Azure-like ON/OFF burst schedule is a stationary mechanism and
    /// is not replayed here — combine bursts with shapes via
    /// [`Trace::then`] if both are needed.
    pub fn generate_shaped(spec: TraceSpec, shape: Nonstationarity) -> Trace {
        assert!(spec.n_models > 0, "need at least one model");
        let mut rng = Rng::seeded(spec.seed);
        let arrivals = shaped_arrivals(spec.arrival_rate, spec.duration_s, shape, &mut rng);
        let base = spec.popularity.weights(spec.n_models);
        let lengths = LengthModel::lmsys_like();
        let requests = arrivals
            .into_iter()
            .enumerate()
            .map(|(id, arrival)| {
                let w = shape.weights_at(&base, arrival);
                let model = rng.weighted(&w);
                let (prompt_tokens, output_tokens) = lengths.sample(&mut rng);
                Request {
                    id,
                    model,
                    arrival,
                    prompt_tokens,
                    output_tokens,
                }
            })
            .collect();
        Trace { spec, requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::PopularityDist;

    fn spec(rate: f64, duration_s: f64, pop: PopularityDist) -> TraceSpec {
        TraceSpec {
            n_models: 16,
            arrival_rate: rate,
            duration_s,
            popularity: pop,
            seed: 11,
        }
    }

    #[test]
    fn diurnal_peak_outdraws_the_trough() {
        let shape = Nonstationarity::Diurnal {
            period_s: 200.0,
            amplitude: 0.9,
        };
        let t = Trace::generate_shaped(spec(8.0, 200.0, PopularityDist::Uniform), shape);
        // sin > 0 on the first half-period, < 0 on the second.
        let peak = t.requests.iter().filter(|r| r.arrival < 100.0).count();
        let trough = t.len() - peak;
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn diurnal_mean_rate_stays_near_baseline() {
        // The sinusoid integrates to zero over whole periods, so total
        // volume matches the stationary baseline.
        let shape = Nonstationarity::Diurnal {
            period_s: 50.0,
            amplitude: 1.0,
        };
        let mut total = 0usize;
        for seed in 0..6 {
            let mut s = spec(5.0, 200.0, PopularityDist::Uniform);
            s.seed = seed;
            total += Trace::generate_shaped(s, shape).len();
        }
        let mean = total as f64 / 6.0;
        assert!((mean - 1000.0).abs() < 120.0, "mean {mean}");
    }

    #[test]
    fn flash_crowd_makes_a_cold_model_viral() {
        let shape = Nonstationarity::FlashCrowd {
            model: 13, // deep in the Zipf tail: cold before the shock
            at_s: 100.0,
            boost: 400.0,
            decay_s: 40.0,
            rate_surge: 1.0,
        };
        let t =
            Trace::generate_shaped(spec(6.0, 200.0, PopularityDist::Zipf { alpha: 1.3 }), shape);
        let before: Vec<_> = t.requests.iter().filter(|r| r.arrival < 100.0).collect();
        let shock: Vec<_> = t
            .requests
            .iter()
            .filter(|r| (100.0..140.0).contains(&r.arrival))
            .collect();
        let share = |rs: &[&Request]| {
            rs.iter().filter(|r| r.model == 13).count() as f64 / rs.len().max(1) as f64
        };
        assert!(share(&before) < 0.05, "viral model hot too early");
        assert!(
            share(&shock) > 0.5,
            "viral model share during shock: {}",
            share(&shock)
        );
        // The rate surge adds traffic right after onset.
        let pre_window = before.iter().filter(|r| r.arrival >= 60.0).count();
        assert!(
            shock.len() > pre_window,
            "no surge: {} vs {}",
            shock.len(),
            pre_window
        );
    }

    #[test]
    fn drift_walks_the_head_across_the_catalog() {
        let shape = Nonstationarity::Drift {
            models_per_s: 0.05, // 10 ranks over a 200 s trace
        };
        let t = Trace::generate_shaped(
            spec(10.0, 200.0, PopularityDist::Zipf { alpha: 2.0 }),
            shape,
        );
        let head_in = |lo: f64, hi: f64| {
            let mut counts = [0usize; 16];
            for r in t.requests.iter().filter(|r| (lo..hi).contains(&r.arrival)) {
                counts[r.model] += 1;
            }
            counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0
        };
        let early = head_in(0.0, 20.0);
        let late = head_in(160.0, 180.0);
        assert_ne!(early, late, "head never moved");
        assert_eq!(early, 0, "drift starts at the base head");
        assert_eq!(late, 8, "after 160-180 s the head sits 8 ranks over");
    }

    #[test]
    fn shaped_generation_is_deterministic() {
        let shape = Nonstationarity::FlashCrowd {
            model: 5,
            at_s: 30.0,
            boost: 50.0,
            decay_s: 20.0,
            rate_surge: 0.5,
        };
        let s = spec(4.0, 100.0, PopularityDist::Zipf { alpha: 1.5 });
        assert_eq!(
            Trace::generate_shaped(s, shape),
            Trace::generate_shaped(s, shape)
        );
        let mut s2 = s;
        s2.seed = 12;
        assert_ne!(
            Trace::generate_shaped(s, shape),
            Trace::generate_shaped(s2, shape)
        );
    }

    #[test]
    fn rate_factor_never_exceeds_the_peak() {
        let shapes = [
            Nonstationarity::Diurnal {
                period_s: 60.0,
                amplitude: 0.8,
            },
            Nonstationarity::FlashCrowd {
                model: 0,
                at_s: 10.0,
                boost: 9.0,
                decay_s: 5.0,
                rate_surge: 2.0,
            },
            Nonstationarity::Drift { models_per_s: 0.1 },
        ];
        for shape in shapes {
            let peak = shape.peak_rate_factor();
            for i in 0..500 {
                let t = i as f64 * 0.37;
                let f = shape.rate_factor(t);
                assert!(
                    f > 0.0 && f <= peak + 1e-12,
                    "{shape:?} at {t}: {f} > {peak}"
                );
            }
        }
    }

    #[test]
    fn drift_weights_rotate_and_preserve_mass() {
        let base = PopularityDist::Zipf { alpha: 1.5 }.weights(8);
        let shape = Nonstationarity::Drift { models_per_s: 1.0 };
        let w = shape.weights_at(&base, 3.0);
        assert_eq!(w.len(), 8);
        let sum_b: f64 = base.iter().sum();
        let sum_w: f64 = w.iter().sum();
        assert!((sum_b - sum_w).abs() < 1e-12);
        // Head weight moved to rank 3.
        assert_eq!(w[3], base[0]);
        assert_eq!(w[4], base[1]);
    }

    #[test]
    fn sorted_arrivals_and_valid_requests() {
        let shape = Nonstationarity::Diurnal {
            period_s: 40.0,
            amplitude: 0.5,
        };
        let t = Trace::generate_shaped(spec(3.0, 80.0, PopularityDist::Uniform), shape);
        let mut prev = 0.0;
        for (i, r) in t.requests.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.arrival >= prev && r.arrival <= 80.0);
            assert!(r.model < 16);
            assert!(r.prompt_tokens >= 1 && r.output_tokens >= 1);
            prev = r.arrival;
        }
    }
}
