//! Prompt/output length distributions.

use dz_tensor::Rng;

/// Log-normal token-length model with clipping.
#[derive(Debug, Clone, Copy)]
pub struct LengthModel {
    /// Log-mean of the prompt length.
    pub prompt_mu: f64,
    /// Log-std of the prompt length.
    pub prompt_sigma: f64,
    /// Log-mean of the output length.
    pub output_mu: f64,
    /// Log-std of the output length.
    pub output_sigma: f64,
    /// Inclusive clip range for both.
    pub min_tokens: usize,
    /// Upper clip.
    pub max_tokens: usize,
}

impl LengthModel {
    /// Parameters matching published LMSys Chatbot Arena statistics
    /// (median prompt ~50 tokens with a heavy tail, outputs ~200).
    pub fn lmsys_like() -> Self {
        LengthModel {
            prompt_mu: 4.0, // median ~55 tokens
            prompt_sigma: 0.9,
            output_mu: 5.1, // median ~165 tokens
            output_sigma: 0.7,
            min_tokens: 4,
            max_tokens: 2048,
        }
    }

    /// Samples `(prompt_tokens, output_tokens)`.
    pub fn sample(&self, rng: &mut Rng) -> (usize, usize) {
        let p = rng.lognormal(self.prompt_mu, self.prompt_sigma);
        let o = rng.lognormal(self.output_mu, self.output_sigma);
        (
            (p as usize).clamp(self.min_tokens, self.max_tokens),
            (o as usize).clamp(self.min_tokens, self.max_tokens),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_bounds() {
        let m = LengthModel::lmsys_like();
        let mut rng = Rng::seeded(1);
        for _ in 0..5000 {
            let (p, o) = m.sample(&mut rng);
            assert!((m.min_tokens..=m.max_tokens).contains(&p));
            assert!((m.min_tokens..=m.max_tokens).contains(&o));
        }
    }

    #[test]
    fn medians_match_targets() {
        let m = LengthModel::lmsys_like();
        let mut rng = Rng::seeded(2);
        let mut prompts: Vec<usize> = (0..20000).map(|_| m.sample(&mut rng).0).collect();
        prompts.sort_unstable();
        let median = prompts[prompts.len() / 2] as f64;
        assert!((40.0..75.0).contains(&median), "prompt median {median}");
        let mut outs: Vec<usize> = (0..20000).map(|_| m.sample(&mut rng).1).collect();
        outs.sort_unstable();
        let omedian = outs[outs.len() / 2] as f64;
        assert!((120.0..220.0).contains(&omedian), "output median {omedian}");
    }

    #[test]
    fn distribution_has_a_heavy_tail() {
        let m = LengthModel::lmsys_like();
        let mut rng = Rng::seeded(3);
        let lens: Vec<usize> = (0..20000).map(|_| m.sample(&mut rng).0).collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(mean > median * 1.2, "mean {mean} vs median {median}");
    }
}
