//! Trace statistics: the per-window invocation matrix behind Figure 1.

use crate::trace::Trace;

/// Per-model invocation counts in fixed windows.
///
/// `counts[m][w]` is the number of requests for model `m` arriving in
/// window `w` of `window_s` seconds — the heat-map of Figure 1.
pub fn invocation_matrix(trace: &Trace, window_s: f64) -> Vec<Vec<usize>> {
    assert!(window_s > 0.0, "window must be positive");
    let n_windows = (trace.spec.duration_s / window_s).ceil() as usize;
    let mut counts = vec![vec![0usize; n_windows.max(1)]; trace.spec.n_models];
    for r in &trace.requests {
        let w = ((r.arrival / window_s) as usize).min(n_windows.saturating_sub(1));
        counts[r.model][w] += 1;
    }
    counts
}

/// Fraction of (model, window) cells with zero requests — the "yellow area"
/// of Figure 1 that motivates multiplexing.
pub fn idle_fraction(matrix: &[Vec<usize>]) -> f64 {
    let total: usize = matrix.iter().map(|row| row.len()).sum();
    if total == 0 {
        return 0.0;
    }
    let idle: usize = matrix
        .iter()
        .map(|row| row.iter().filter(|&&c| c == 0).count())
        .sum();
    idle as f64 / total as f64
}

/// Renders the matrix as an ASCII heat map (one row per model).
pub fn render_heatmap(matrix: &[Vec<usize>]) -> String {
    const SHADES: [char; 5] = ['.', '░', '▒', '▓', '█'];
    let max = matrix
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);
    let mut out = String::new();
    for (m, row) in matrix.iter().enumerate() {
        out.push_str(&format!("model {m:>3} |"));
        for &c in row {
            let idx = if c == 0 {
                0
            } else {
                1 + (c * (SHADES.len() - 2)) / max
            };
            out.push(SHADES[idx.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popularity::PopularityDist;
    use crate::trace::{Trace, TraceSpec};

    fn trace(pop: PopularityDist) -> Trace {
        Trace::generate(TraceSpec {
            n_models: 6,
            arrival_rate: 1.0,
            duration_s: 120.0,
            popularity: pop,
            seed: 11,
        })
    }

    #[test]
    fn matrix_counts_every_request() {
        let t = trace(PopularityDist::Uniform);
        let m = invocation_matrix(&t, 10.0);
        let total: usize = m.iter().flat_map(|r| r.iter()).sum();
        assert_eq!(total, t.len());
        assert_eq!(m.len(), 6);
        assert_eq!(m[0].len(), 12);
    }

    #[test]
    fn skewed_traces_have_more_idle_cells() {
        let u = idle_fraction(&invocation_matrix(&trace(PopularityDist::Uniform), 10.0));
        let z = idle_fraction(&invocation_matrix(
            &trace(PopularityDist::Zipf { alpha: 1.5 }),
            10.0,
        ));
        assert!(z > u, "zipf idle {z} vs uniform idle {u}");
    }

    #[test]
    fn heatmap_renders_one_row_per_model() {
        let t = trace(PopularityDist::AzureLike);
        let m = invocation_matrix(&t, 10.0);
        let map = render_heatmap(&m);
        assert_eq!(map.lines().count(), 6);
    }

    #[test]
    fn idle_fraction_of_empty_matrix_is_zero() {
        assert_eq!(idle_fraction(&[]), 0.0);
    }
}
