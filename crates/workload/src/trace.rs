//! Trace types and generation.

use crate::arrivals::poisson_arrivals;
use crate::lengths::LengthModel;
use crate::popularity::PopularityDist;
use dz_tensor::Rng;
use serde::{Deserialize, Serialize};

/// One inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique, dense id (index into the trace).
    pub id: usize,
    /// Which model variant the request targets.
    pub model: usize,
    /// Arrival time in seconds from trace start.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Output length in tokens.
    pub output_tokens: usize,
}

/// Parameters of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Number of model variants.
    pub n_models: usize,
    /// Global Poisson arrival rate, requests/second.
    pub arrival_rate: f64,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// Popularity distribution across variants.
    pub popularity: PopularityDist,
    /// RNG seed.
    pub seed: u64,
}

impl TraceSpec {
    /// The paper's default serving setup: 32 variants for 5 minutes.
    pub fn paper_default(rate: f64, popularity: PopularityDist) -> Self {
        TraceSpec {
            n_models: 32,
            arrival_rate: rate,
            duration_s: 300.0,
            popularity,
            seed: 0xD2,
        }
    }
}

/// A generated trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The generating spec.
    pub spec: TraceSpec,
    /// Requests sorted by arrival time.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Generates a trace from a spec.
    pub fn generate(spec: TraceSpec) -> Trace {
        let mut rng = Rng::seeded(spec.seed);
        let arrivals = poisson_arrivals(spec.arrival_rate, spec.duration_s, &mut rng);
        let model_picker = spec
            .popularity
            .sampler(spec.n_models, spec.duration_s, &mut rng);
        let lengths = LengthModel::lmsys_like();
        let requests = arrivals
            .into_iter()
            .enumerate()
            .map(|(id, arrival)| {
                let model = model_picker.pick(arrival, &mut rng);
                let (prompt_tokens, output_tokens) = lengths.sample(&mut rng);
                Request {
                    id,
                    model,
                    arrival,
                    prompt_tokens,
                    output_tokens,
                }
            })
            .collect();
        Trace { spec, requests }
    }

    /// Generates a trace through the O(log n)-per-pick
    /// [`crate::popularity::CumulativeSampler`] instead of the linear
    /// weighted walk — the fleet-scale path for million-request traces
    /// over hundreds of models.
    ///
    /// Same distribution family and still fully seed-deterministic, but
    /// **not** draw-for-draw identical to [`Trace::generate`] (the model
    /// pick consumes the uniform stream differently), so existing pinned
    /// seeds keep their traces. Bursty [`PopularityDist::AzureLike`]
    /// schedules have no static weight table; those fall back to the
    /// exact generator.
    pub fn generate_fast(spec: TraceSpec) -> Trace {
        if matches!(spec.popularity, PopularityDist::AzureLike) {
            return Trace::generate(spec);
        }
        let mut rng = Rng::seeded(spec.seed);
        let arrivals = poisson_arrivals(spec.arrival_rate, spec.duration_s, &mut rng);
        let sampler =
            crate::popularity::CumulativeSampler::new(&spec.popularity.weights(spec.n_models));
        let lengths = LengthModel::lmsys_like();
        let requests = arrivals
            .into_iter()
            .enumerate()
            .map(|(id, arrival)| {
                let model = sampler.sample(&mut rng);
                let (prompt_tokens, output_tokens) = lengths.sample(&mut rng);
                Request {
                    id,
                    model,
                    arrival,
                    prompt_tokens,
                    output_tokens,
                }
            })
            .collect();
        Trace { spec, requests }
    }

    /// Total requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Requests per model, length `n_models`.
    pub fn per_model_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.spec.n_models];
        for r in &self.requests {
            counts[r.model] += 1;
        }
        counts
    }

    /// Concatenates `other` after this trace in time: its requests are
    /// shifted by this trace's duration and all ids are re-assigned
    /// densely. Used to build regime-shift workloads (e.g. a skew change
    /// half-way) for controller experiments.
    ///
    /// The combined spec keeps this trace's popularity and seed (they no
    /// longer describe the whole trace), sums the durations, and
    /// duration-weights the arrival rate.
    pub fn then(&self, other: &Trace) -> Trace {
        let offset = self.spec.duration_s;
        let mut requests = self.requests.clone();
        requests.extend(other.requests.iter().map(|r| Request {
            id: 0, // Re-assigned below.
            model: r.model,
            arrival: r.arrival + offset,
            prompt_tokens: r.prompt_tokens,
            output_tokens: r.output_tokens,
        }));
        for (id, r) in requests.iter_mut().enumerate() {
            r.id = id;
        }
        let total_s = self.spec.duration_s + other.spec.duration_s;
        let rate = if total_s > 0.0 {
            (self.spec.arrival_rate * self.spec.duration_s
                + other.spec.arrival_rate * other.spec.duration_s)
                / total_s
        } else {
            self.spec.arrival_rate
        };
        Trace {
            spec: TraceSpec {
                n_models: self.spec.n_models.max(other.spec.n_models),
                arrival_rate: rate,
                duration_s: total_s,
                ..self.spec
            },
            requests,
        }
    }

    /// Serializes to JSONL (one request per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.requests {
            out.push_str(&serde_json::to_string(r).expect("request serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL trace produced by [`Trace::to_jsonl`].
    ///
    /// The spec is not stored in the JSONL; the caller supplies it.
    pub fn from_jsonl(spec: TraceSpec, text: &str) -> Result<Trace, serde_json::Error> {
        let mut requests = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            requests.push(serde_json::from_str(line)?);
        }
        Ok(Trace { spec, requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pop: PopularityDist) -> TraceSpec {
        TraceSpec {
            n_models: 8,
            arrival_rate: 2.0,
            duration_s: 100.0,
            popularity: pop,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Trace::generate(spec(PopularityDist::Uniform));
        let b = Trace::generate(spec(PopularityDist::Uniform));
        assert_eq!(a, b);
    }

    #[test]
    fn arrivals_sorted_and_in_range() {
        let t = Trace::generate(spec(PopularityDist::Zipf { alpha: 1.5 }));
        let mut prev = 0.0;
        for r in &t.requests {
            assert!(r.arrival >= prev);
            assert!(r.arrival <= 100.0);
            assert!(r.model < 8);
            assert!(r.prompt_tokens >= 1 && r.output_tokens >= 1);
            prev = r.arrival;
        }
        // About rate * duration requests.
        let n = t.len() as f64;
        assert!((120.0..280.0).contains(&n), "n = {n}");
    }

    #[test]
    fn request_count_matches_rate() {
        let mut total = 0usize;
        for seed in 0..5 {
            let mut s = spec(PopularityDist::Uniform);
            s.seed = seed;
            total += Trace::generate(s).len();
        }
        let mean = total as f64 / 5.0;
        assert!((mean - 200.0).abs() < 30.0, "mean {mean}");
    }

    #[test]
    fn generate_fast_is_deterministic_and_skewed() {
        let s = TraceSpec {
            n_models: 128,
            arrival_rate: 50.0,
            duration_s: 200.0,
            popularity: PopularityDist::Zipf { alpha: 1.2 },
            seed: 42,
        };
        let a = Trace::generate_fast(s);
        let b = Trace::generate_fast(s);
        assert_eq!(a, b);
        // Same arrival process as the exact generator (arrivals are drawn
        // before any model pick, so the streams agree up to that point).
        let exact = Trace::generate(s);
        assert_eq!(a.len(), exact.len());
        for (fast, slow) in a.requests.iter().zip(exact.requests.iter()) {
            assert_eq!(fast.arrival.to_bits(), slow.arrival.to_bits());
        }
        // Head model dominates under Zipf-1.2.
        let counts = a.per_model_counts();
        assert!(counts[0] > counts[10], "{:?}", &counts[..12]);
        let max_share = *counts.iter().max().unwrap() as f64 / a.len() as f64;
        assert!(max_share > 0.15, "{max_share}");
    }

    #[test]
    fn generate_fast_azure_falls_back_to_exact() {
        let s = spec(PopularityDist::AzureLike);
        assert_eq!(Trace::generate_fast(s), Trace::generate(s));
    }

    #[test]
    fn jsonl_round_trip() {
        let t = Trace::generate(spec(PopularityDist::Uniform));
        let text = t.to_jsonl();
        let back = Trace::from_jsonl(t.spec, &text).unwrap();
        // Float formatting may drop the last ulp; everything else is exact.
        assert_eq!(t.len(), back.len());
        for (a, b) in t.requests.iter().zip(back.requests.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.model, b.model);
            assert_eq!(a.prompt_tokens, b.prompt_tokens);
            assert_eq!(a.output_tokens, b.output_tokens);
            assert!((a.arrival - b.arrival).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_skews_popularity() {
        let u = Trace::generate(spec(PopularityDist::Uniform));
        let z = Trace::generate(spec(PopularityDist::Zipf { alpha: 1.5 }));
        let max_u = *u.per_model_counts().iter().max().unwrap() as f64 / u.len() as f64;
        let max_z = *z.per_model_counts().iter().max().unwrap() as f64 / z.len() as f64;
        assert!(max_z > max_u, "zipf top share {max_z} vs uniform {max_u}");
        assert!(max_z > 0.4, "zipf-1.5 head should dominate: {max_z}");
    }

    #[test]
    fn then_concatenates_in_time() {
        let a = Trace::generate(spec(PopularityDist::Uniform));
        let b = Trace::generate(TraceSpec {
            n_models: 12,
            arrival_rate: 4.0,
            duration_s: 50.0,
            popularity: PopularityDist::Zipf { alpha: 2.0 },
            seed: 9,
        });
        let joined = a.then(&b);
        assert_eq!(joined.len(), a.len() + b.len());
        assert_eq!(joined.spec.n_models, 12);
        assert!((joined.spec.duration_s - 150.0).abs() < 1e-9);
        // Weighted rate: (2*100 + 4*50) / 150.
        assert!((joined.spec.arrival_rate - 8.0 / 3.0).abs() < 1e-9);
        // Sorted arrivals, dense ids.
        let mut prev = 0.0;
        for (i, r) in joined.requests.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.arrival >= prev);
            prev = r.arrival;
        }
        // Second half starts after the first trace's duration.
        assert!(joined.requests[a.len()].arrival >= 100.0);
    }

    #[test]
    fn azure_like_is_bursty() {
        let t = Trace::generate(spec(PopularityDist::AzureLike));
        // Compute coefficient of variation of inter-arrival times per model;
        // bursty ON/OFF traffic has CV > 1 for at least some models.
        let mut cvs = Vec::new();
        for m in 0..8 {
            let times: Vec<f64> = t
                .requests
                .iter()
                .filter(|r| r.model == m)
                .map(|r| r.arrival)
                .collect();
            if times.len() < 10 {
                continue;
            }
            let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            cvs.push(var.sqrt() / mean);
        }
        assert!(
            cvs.iter().any(|&cv| cv > 1.2),
            "no bursty model found: {cvs:?}"
        );
    }
}
