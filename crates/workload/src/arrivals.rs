//! Arrival-process generation.

use dz_tensor::Rng;

/// Generates Poisson arrival timestamps at `rate` req/s over `duration_s`.
///
/// Returns an increasing sequence in `[0, duration_s]`.
///
/// # Panics
///
/// Panics if `rate <= 0` or `duration_s < 0`.
pub fn poisson_arrivals(rate: f64, duration_s: f64, rng: &mut Rng) -> Vec<f64> {
    assert!(rate > 0.0, "arrival rate must be positive");
    assert!(duration_s >= 0.0, "duration must be non-negative");
    let mut out = Vec::with_capacity((rate * duration_s * 1.2) as usize + 4);
    let mut t = 0.0;
    loop {
        t += rng.exponential(rate);
        if t > duration_s {
            break;
        }
        out.push(t);
    }
    out
}

/// Deterministic arrivals at a fixed interval (for microbenchmarks).
pub fn uniform_arrivals(interval_s: f64, duration_s: f64) -> Vec<f64> {
    assert!(interval_s > 0.0);
    let mut out = Vec::new();
    let mut t = interval_s;
    while t <= duration_s {
        out.push(t);
        t += interval_s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_right() {
        let mut rng = Rng::seeded(1);
        let mut total = 0usize;
        let trials = 30;
        for _ in 0..trials {
            total += poisson_arrivals(5.0, 100.0, &mut rng).len();
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 500.0).abs() < 25.0, "mean {mean}");
    }

    #[test]
    fn poisson_gaps_look_exponential() {
        let mut rng = Rng::seeded(2);
        let arr = poisson_arrivals(10.0, 1000.0, &mut rng);
        let gaps: Vec<f64> = arr.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        // Exponential: std ~= mean.
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv {cv}");
    }

    #[test]
    fn arrivals_are_sorted_and_bounded() {
        let mut rng = Rng::seeded(3);
        let arr = poisson_arrivals(3.0, 50.0, &mut rng);
        for w in arr.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arr.iter().all(|&t| t > 0.0 && t <= 50.0));
    }

    #[test]
    fn uniform_arrivals_spacing() {
        let arr = uniform_arrivals(0.5, 2.0);
        assert_eq!(arr, vec![0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn zero_duration_is_empty() {
        let mut rng = Rng::seeded(4);
        assert!(poisson_arrivals(5.0, 0.0, &mut rng).is_empty());
    }
}
