//! Model-popularity distributions: uniform, Zipf, and Azure-like bursts.

use dz_tensor::Rng;
use serde::{Deserialize, Serialize};

/// How requests distribute over model variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PopularityDist {
    /// All variants equally popular.
    Uniform,
    /// Static skew: variant `i` has weight `1 / (i+1)^alpha`.
    Zipf {
        /// Skew exponent (the paper uses 1.5 end-to-end, 3.0-5.0 in the
        /// delta-placement microbenchmark).
        alpha: f64,
    },
    /// Bursty proxy for the Azure serverless trace: each variant cycles
    /// through ON/OFF phases; weights are heavy-tailed and only ON models
    /// receive traffic.
    AzureLike,
}

/// A sampler assigning a model to each arrival instant.
pub struct ModelPicker {
    kind: PickerKind,
}

enum PickerKind {
    Static {
        weights: Vec<f64>,
    },
    Bursty {
        /// Per-model heavy-tailed base weight.
        weights: Vec<f64>,
        /// Per-model ON/OFF schedule as sorted phase-change times.
        schedules: Vec<Vec<(f64, bool)>>,
    },
}

impl PopularityDist {
    /// Static per-model traffic weights (unnormalized) of the
    /// distribution: what a cluster placement layer provisions for. For
    /// [`PopularityDist::AzureLike`] these are the heavy-tailed base
    /// weights; the ON/OFF burst schedule only exists in the sampler.
    pub fn weights(&self, n_models: usize) -> Vec<f64> {
        match self {
            PopularityDist::Uniform => vec![1.0; n_models],
            PopularityDist::Zipf { alpha } => (0..n_models)
                .map(|i| 1.0 / ((i + 1) as f64).powf(*alpha))
                .collect(),
            PopularityDist::AzureLike => (0..n_models)
                .map(|i| 1.0 / ((i + 1) as f64).powf(1.2))
                .collect(),
        }
    }

    /// Builds a sampler for `n_models` over a trace of `duration_s`.
    pub fn sampler(self, n_models: usize, duration_s: f64, rng: &mut Rng) -> ModelPicker {
        assert!(n_models > 0, "need at least one model");
        match self {
            PopularityDist::Uniform | PopularityDist::Zipf { .. } => ModelPicker {
                kind: PickerKind::Static {
                    weights: self.weights(n_models),
                },
            },
            PopularityDist::AzureLike => {
                // Heavy-tailed base popularity (Zipf-1.2) plus ON/OFF phases:
                // mean ON 20 s, mean OFF 60 s, head models mostly ON.
                let weights = self.weights(n_models);
                let schedules = (0..n_models)
                    .map(|i| {
                        let mut phases = Vec::new();
                        // Head models stay on longer.
                        let on_mean = 20.0 + 60.0 / (i + 1) as f64;
                        let off_mean = 10.0 + 8.0 * i as f64;
                        let mut t = 0.0;
                        let mut on = rng.bernoulli(0.5);
                        phases.push((0.0, on));
                        while t < duration_s {
                            let dwell = if on {
                                rng.exponential(1.0 / on_mean)
                            } else {
                                rng.exponential(1.0 / off_mean)
                            };
                            t += dwell;
                            on = !on;
                            phases.push((t, on));
                        }
                        phases
                    })
                    .collect();
                ModelPicker {
                    kind: PickerKind::Bursty { weights, schedules },
                }
            }
        }
    }
}

impl ModelPicker {
    /// Chooses a model for an arrival at time `t`.
    pub fn pick(&self, t: f64, rng: &mut Rng) -> usize {
        match &self.kind {
            PickerKind::Static { weights } => rng.weighted(weights),
            PickerKind::Bursty { weights, schedules } => {
                let effective: Vec<f64> = weights
                    .iter()
                    .enumerate()
                    .map(|(i, w)| if is_on(&schedules[i], t) { *w } else { 0.0 })
                    .collect();
                if effective.iter().sum::<f64>() <= 0.0 {
                    // Everyone OFF: fall back to base weights so the arrival
                    // still lands somewhere (the trace has no gaps).
                    rng.weighted(weights)
                } else {
                    rng.weighted(&effective)
                }
            }
        }
    }
}

/// A precomputed cumulative-weight sampler: one uniform draw plus a
/// binary search, O(log n) per pick instead of [`dz_tensor::Rng::weighted`]'s
/// O(n) linear walk.
///
/// Built once per trace generation, this is what makes million-request
/// fleet traces over hundreds of models cheap (a 1M-request trace over
/// 512 Zipf models does ~20M comparisons instead of ~512M subtractions).
/// It consumes exactly one `uniform_f64` per pick, like `weighted`, but
/// the float-accumulation path differs, so draws are *not* guaranteed
/// bit-identical to the linear walk — use it behind new entry points
/// (e.g. [`crate::Trace::generate_fast`]), not to replace existing
/// seeded paths.
pub struct CumulativeSampler {
    /// Inclusive prefix sums of the weights.
    prefix: Vec<f64>,
}

impl CumulativeSampler {
    /// Builds the sampler from unnormalized weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or do not sum to a positive value.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut prefix = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "weights must be non-negative");
            acc += w;
            prefix.push(acc);
        }
        assert!(acc > 0.0, "weights must have positive sum");
        CumulativeSampler { prefix }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// Whether the sampler has no categories (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }

    /// Draws one category index, weight-proportionally.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.prefix.last().expect("non-empty by construction");
        let target = rng.uniform_f64() * total;
        self.prefix
            .partition_point(|&p| p <= target)
            .min(self.prefix.len() - 1)
    }
}

fn is_on(schedule: &[(f64, bool)], t: f64) -> bool {
    // Last phase change at or before t.
    let mut on = schedule.first().map(|&(_, s)| s).unwrap_or(true);
    for &(at, state) in schedule {
        if at <= t {
            on = state;
        } else {
            break;
        }
    }
    on
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_expose_the_static_skew() {
        let w = PopularityDist::Zipf { alpha: 2.0 }.weights(4);
        assert!(w[0] > w[1] && w[1] > w[3]);
        assert_eq!(PopularityDist::Uniform.weights(3), vec![1.0; 3]);
        let azure = PopularityDist::AzureLike.weights(5);
        assert_eq!(azure.len(), 5);
        assert!(azure[0] > azure[4], "azure base weights are heavy-tailed");
    }

    #[test]
    fn uniform_is_roughly_even() {
        let mut rng = Rng::seeded(1);
        let picker = PopularityDist::Uniform.sampler(4, 100.0, &mut rng);
        let mut counts = [0usize; 4];
        for i in 0..8000 {
            counts[picker.pick(i as f64 * 0.01, &mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 8000.0;
            assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
        }
    }

    #[test]
    fn zipf_orders_models_by_rank() {
        let mut rng = Rng::seeded(2);
        let picker = PopularityDist::Zipf { alpha: 1.5 }.sampler(6, 100.0, &mut rng);
        let mut counts = [0usize; 6];
        for i in 0..20000 {
            counts[picker.pick(i as f64 * 0.005, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        assert!(counts[0] as f64 / 20000.0 > 0.4);
    }

    #[test]
    fn azure_like_has_quiet_periods() {
        let mut rng = Rng::seeded(3);
        let picker = PopularityDist::AzureLike.sampler(10, 600.0, &mut rng);
        // For a mid-tail model, find a window with zero picks and a window
        // with many (burstiness).
        let mut hits_per_window = vec![0usize; 60];
        for i in 0..30000 {
            let t = i as f64 * 0.02; // 600 s span.
            let m = picker.pick(t, &mut rng);
            if m == 4 {
                hits_per_window[(t / 10.0) as usize] += 1;
            }
        }
        let max = *hits_per_window.iter().max().unwrap();
        let zeros = hits_per_window.iter().filter(|&&c| c == 0).count();
        assert!(max > 5, "model 4 never bursts: {hits_per_window:?}");
        assert!(zeros > 5, "model 4 never goes quiet");
    }

    #[test]
    fn cumulative_sampler_matches_weights() {
        let mut rng = Rng::seeded(11);
        let weights = PopularityDist::Zipf { alpha: 1.2 }.weights(64);
        let sampler = CumulativeSampler::new(&weights);
        assert_eq!(sampler.len(), 64);
        let mut counts = vec![0usize; 64];
        let n = 200_000;
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate().take(8) {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "model {i}: got {got}, expected {expect}"
            );
        }
        // Zero-weight categories are never drawn.
        let sampler = CumulativeSampler::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1000 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn cumulative_sampler_rejects_zero_total() {
        let _ = CumulativeSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn is_on_walks_schedule() {
        let sched = vec![(0.0, false), (5.0, true), (9.0, false)];
        assert!(!is_on(&sched, 1.0));
        assert!(is_on(&sched, 6.0));
        assert!(!is_on(&sched, 20.0));
    }

    #[test]
    #[should_panic(expected = "need at least one model")]
    fn zero_models_rejected() {
        let mut rng = Rng::seeded(4);
        let _ = PopularityDist::Uniform.sampler(0, 10.0, &mut rng);
    }
}
