//! Multi-variant LLM serving workload generation.
//!
//! The paper drives its serving experiments with prompts/responses sampled
//! from the LMSys Chatbot Arena trace, Poisson arrivals, and three model
//! popularity regimes: uniform, Zipf-skewed, and the Azure serverless
//! function trace as a bursty proxy. None of those datasets ship here, so
//! this crate synthesizes traces with the same published characteristics:
//!
//! * arrivals — a global Poisson process at rate λ ([`arrivals`]),
//! * popularity — uniform, Zipf(α), or an Azure-like ON/OFF burst model
//!   with heavy-tailed per-model rates ([`popularity`]),
//! * lengths — log-normal prompt/output token counts clipped to the ranges
//!   reported for LMSys conversations ([`lengths`]).
//!
//! Traces serialize to JSONL for inspection and replay.

pub mod arrivals;
pub mod lengths;
pub mod nonstationary;
pub mod popularity;
pub mod stats;
pub mod trace;

pub use nonstationary::Nonstationarity;
pub use popularity::{CumulativeSampler, PopularityDist};
pub use trace::{Request, Trace, TraceSpec};
